"""Tests for the terminal visualizations."""

import numpy as np
import pytest

from repro.core.api import reshard
from repro.core.mesh import DeviceMesh
from repro.pipeline.executor import simulate_pipeline
from repro.pipeline.schedules import schedule_job
from repro.pipeline.stage import CommEdge, PipelineJob, StageProfile
from repro.sim.cluster import Cluster, ClusterSpec
from repro.viz import (
    GanttRow,
    device_traffic_matrix,
    flow_gantt,
    format_matrix,
    host_traffic_matrix,
    link_stats,
    pipeline_gantt,
    render_rows,
)


@pytest.fixture
def pipe_result():
    stages = [StageProfile(s, 1.0, 1.0, 1.0) for s in range(2)]
    edges = [CommEdge(0, 1, 0.4, 0.4, label="act")]
    job = PipelineJob(stages, edges, n_microbatches=4)
    return simulate_pipeline(job, schedule_job("1f1b", 2, 4), overlap=True)


@pytest.fixture
def reshard_result():
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    return reshard((64, 64, 16), src, "RS0R", dst, "S0RR", strategy="broadcast")


def test_render_rows_basic():
    rows = [GanttRow("a", ((0.0, 1.0, "F"), (1.0, 2.0, "B")))]
    out = render_rows(rows, width=20, t_max=2.0)
    line = out.splitlines()[0]
    assert line.startswith("a |")
    assert "F" in line and "B" in line
    # F occupies the first half
    body = line.split("|")[1]
    assert body[:10].count("F") == 10


def test_render_rows_empty():
    out = render_rows([], width=20)
    assert "0" in out  # axis only


def test_render_rows_width_guard():
    with pytest.raises(ValueError):
        render_rows([], width=5)


def test_pipeline_gantt_structure(pipe_result):
    out = pipeline_gantt(pipe_result, width=60)
    lines = out.splitlines()
    assert lines[0].strip().startswith("stage0")
    assert lines[1].strip().startswith("stage1")
    assert any("comm0>1" in ln for ln in lines)
    assert any("comm0<1" in ln for ln in lines)
    # stage rows contain both forward and backward glyphs
    assert "F" in lines[0] and "B" in lines[0]


def test_pipeline_gantt_microbatch_filter(pipe_result):
    full = pipeline_gantt(pipe_result, width=60)
    partial = pipeline_gantt(pipe_result, width=60, max_microbatches=1)
    assert partial.count("F") < full.count("F")


def test_flow_gantt_host_level(reshard_result):
    net = reshard_result.timing.network
    out = flow_gantt(net.trace, net.cluster, width=50, by="host")
    assert "->" in out
    assert "#" in out


def test_flow_gantt_device_level(reshard_result):
    net = reshard_result.timing.network
    out = flow_gantt(net.trace, net.cluster, width=50, by="device")
    assert "d" in out
    with pytest.raises(ValueError):
        flow_gantt(net.trace, net.cluster, by="rack")


def test_host_traffic_matrix(reshard_result):
    net = reshard_result.timing.network
    m = host_traffic_matrix(net.trace, net.cluster)
    assert m.shape == (4, 4)
    assert np.all(np.diag(m) == 0)
    assert m.sum() == pytest.approx(reshard_result.cross_host_bytes)
    # broadcast: senders are hosts 0/1, receivers hosts 2/3
    assert m[:2, 2:].sum() > 0


def test_device_traffic_matrix(reshard_result):
    net = reshard_result.timing.network
    m = device_traffic_matrix(net.trace, net.cluster)
    assert m.shape == (16, 16)
    assert m.sum() >= reshard_result.cross_host_bytes


def test_link_stats(reshard_result):
    net = reshard_result.timing.network
    stats = link_stats(net.trace, net.cluster, window=reshard_result.latency)
    assert len(stats) == 4
    total_sent = sum(s.bytes_sent for s in stats)
    assert total_sent == pytest.approx(reshard_result.cross_host_bytes)
    for s in stats:
        assert 0.0 <= s.send_utilization <= 1.01
    with pytest.raises(ValueError):
        link_stats(net.trace, net.cluster, window=0)


def test_format_matrix():
    m = np.array([[0.0, 2 << 20], [1 << 20, 0.0]])
    out = format_matrix(m, labels=["h0", "h1"])
    assert "2.0" in out and "1.0" in out
    assert "h0" in out
