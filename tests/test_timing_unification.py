"""One shared timing path: the pipeline executor prices cross-stage
messages with exactly the ``simulate_plan`` latency of the compiled
resharding plan — plus golden regression guards pinning the Fig. 5/6
microbenchmark numbers and the Fig. 7 end-to-end iteration times to the
seed implementation (the compiler refactor must not move a single
simulated result).
"""

from __future__ import annotations

import pytest

from repro.compiler import default_plan_cache, reset_default_plan_cache
from repro.core.executor import simulate_plan
from repro.experiments.fig5 import single_to_multi_latency
from repro.experiments.fig6 import TABLE2_CASES, case_latency
from repro.models.gpt import GPTConfig, build_gpt
from repro.models.parallel import run_iteration
from repro.sim.cluster import Cluster, ClusterSpec


def tiny_gpt():
    """A 2-stage GPT pipeline with 8 micro-batches on 2 hosts."""
    cluster = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
    config = GPTConfig(
        name="GPT-tiny", n_layers=4, hidden=1024, global_batch=32,
        dp=2, op=2, pp=2,
    )
    return build_gpt(config, cluster=cluster)


# ----------------------------------------------------------------------
# The unification regression guard
# ----------------------------------------------------------------------
class TestTimingUnification:
    def test_edge_time_is_simulate_plan_of_compiled_plan(self):
        result = run_iteration(tiny_gpt(), "broadcast")
        assert result.comm_edges
        for edge in result.comm_edges:
            for direction in ("fwd", "bwd"):
                plan = edge.resharding.plan(direction)
                fresh = simulate_plan(plan).total_time
                assert edge.comm_time(direction) == pytest.approx(
                    fresh, rel=1e-12, abs=0.0
                )

    def test_executor_comm_entries_match_compiled_plans(self):
        """Overlap mode: every message occupies the channel for exactly
        the compiled plan's simulated duration."""
        result = run_iteration(tiny_gpt(), "overlap")
        comms = result.pipeline.comms
        assert comms
        by_pair = {
            (e.src_stage, e.dst_stage): e for e in result.comm_edges
        }
        for entry in comms:
            key = (
                (entry.src_stage, entry.dst_stage)
                if entry.direction == "fwd"
                else (entry.dst_stage, entry.src_stage)
            )
            key = (min(key), max(key))
            edge = by_pair[key]
            expected = edge.comm_time(entry.direction)
            assert entry.end - entry.start == pytest.approx(
                expected, rel=1e-12, abs=0.0
            )

    def test_blocking_recvs_never_undercut_compiled_plans(self):
        """Blocking mode: a recv takes at least the compiled plan's
        duration (more only when it waits for the sender), and the
        unblocked recvs take exactly it."""
        result = run_iteration(tiny_gpt(), "broadcast")
        (edge,) = result.comm_edges
        for direction in ("fwd", "bwd"):
            expected = edge.comm_time(direction)
            durations = [
                e.end - e.start
                for e in result.pipeline.comms
                if e.direction == direction
            ]
            assert durations
            assert all(d >= expected - 1e-12 for d in durations)
            assert min(durations) == pytest.approx(expected, rel=1e-12)

    def test_cache_changes_compile_counts_not_makespans(self):
        """Cached and cache-disabled runs simulate to the identical
        iteration time, while the cached run serves >=50% of compile
        requests from the cache (>=8 micro-batches repeat each edge)."""
        spec = tiny_gpt()
        assert spec.n_microbatches >= 8
        reset_default_plan_cache()
        cached = run_iteration(spec, "ours")
        stats = default_plan_cache().stats()
        uncached = run_iteration(spec, "ours", cache=None)
        assert cached.iteration_time == uncached.iteration_time
        assert stats.requests > 0
        assert stats.compile_call_reduction >= 0.5


# ----------------------------------------------------------------------
# Golden numbers vs. the seed implementation
# ----------------------------------------------------------------------
#: Fig. 5 (single- to multi-host broadcast scaling), captured from the
#: seed implementation: (n_recv_hosts, gpus_per_host, strategy) -> s.
FIG5_GOLDEN = {
    (1, 1, "send_recv"): 0.8590934592,
    (1, 1, "allgather"): 0.8590934592,
    (1, 1, "broadcast"): 0.8717934591999963,
    (1, 2, "send_recv"): 1.7180869184,
    (1, 2, "allgather"): 0.86446716832,
    (1, 2, "broadcast"): 0.8718823452799963,
    (1, 3, "send_recv"): 2.5770803776,
    (1, 3, "allgather"): 2.5770803776,
    (1, 3, "broadcast"): 0.8719712313599963,
    (1, 4, "send_recv"): 3.4360738368000003,
    (1, 4, "allgather"): 0.8671615228800003,
    (1, 4, "broadcast"): 0.8720601174399963,
    (2, 2, "send_recv"): 3.4360738368000003,
    (2, 2, "allgather"): 1.5035385535999997,
    (2, 2, "broadcast"): 0.8787821177599963,
    (3, 2, "send_recv"): 5.1540607552,
    (3, 2, "allgather"): 5.1540607552,
    (3, 2, "broadcast"): 0.8856818902399961,
    (4, 2, "send_recv"): 6.8720476736,
    (4, 2, "allgather"): 1.611112736,
    (4, 2, "broadcast"): 0.8925816627199961,
}

#: Fig. 6 (Table 2 microbenchmark cases), captured from the seed.
FIG6_GOLDEN = {
    ("case1", "send_recv"): 3.4360738368000003,
    ("case1", "allgather"): 0.8671615228800003,
    ("case1", "broadcast"): 0.8720601174399963,
    ("case2", "send_recv"): 3.4360738368000003,
    ("case2", "allgather"): 0.8671615228800003,
    ("case2", "broadcast"): 0.8720601174399963,
    ("case3", "send_recv"): 3.4360738368000003,
    ("case3", "allgather"): 1.30091478432,
    ("case3", "broadcast"): 0.8723267756799963,
    ("case4", "send_recv"): 0.8590934592,
    ("case4", "allgather"): 1.6166127360000002,
    ("case4", "broadcast"): 0.8717934591999963,
    ("case5", "send_recv"): 3.4360738368000003,
    ("case5", "allgather"): 1.30091478432,
    ("case5", "broadcast"): 0.8723267756799963,
    ("case6", "send_recv"): 3.4360738368000003,
    ("case6", "allgather"): 1.15527806368,
    ("case6", "broadcast"): 0.8722320097484346,
    ("case7", "send_recv"): 13.7439953472,
    ("case7", "allgather"): 3.222025472,
    ("case7", "broadcast"): 1.7729637299200016,
    ("case8", "send_recv"): 5.1540607552,
    ("case8", "allgather"): 5.1540607552,
    ("case8", "broadcast"): 1.7583487804799935,
    ("case9", "send_recv"): 3.4360738368000003,
    ("case9", "allgather"): 1.30091478432,
    ("case9", "broadcast"): 0.8723267756799963,
}

#: Fig. 7 (GPT case 1 end-to-end iteration times), captured from the seed.
GPT_CASE1_GOLDEN = {
    "send_recv": 61.35452315156435,
    "alpa": 52.87459565076431,
    "broadcast": 52.928282741964416,
    "ours": 44.15784782996467,
    "signal": 44.14905478676444,
}


class TestGoldenNumbers:
    @pytest.mark.parametrize(
        "key", sorted(FIG5_GOLDEN), ids=lambda k: f"{k[0]}x{k[1]}-{k[2]}"
    )
    def test_fig5_unchanged_vs_seed(self, key):
        n_recv_hosts, gpus_per_host, strategy = key
        got = single_to_multi_latency(n_recv_hosts, gpus_per_host, strategy)
        assert got == pytest.approx(FIG5_GOLDEN[key], rel=1e-9)

    @pytest.mark.parametrize(
        "key", sorted(FIG6_GOLDEN), ids=lambda k: f"{k[0]}-{k[1]}"
    )
    def test_fig6_unchanged_vs_seed(self, key):
        name, strategy = key
        case = next(c for c in TABLE2_CASES if c.name == name)
        got = case_latency(case, strategy)
        assert got == pytest.approx(FIG6_GOLDEN[key], rel=1e-9)

    def test_gpt_case1_end_to_end_unchanged_vs_seed(self):
        from repro.models.gpt import GPT_CASES

        spec = build_gpt(GPT_CASES["GPT case1"])
        for method, golden in GPT_CASE1_GOLDEN.items():
            got = run_iteration(spec, method).iteration_time
            assert got == pytest.approx(golden, rel=1e-9), method
