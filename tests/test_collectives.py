"""Tests for the extra collectives (all-to-all, reduce-scatter, all-reduce)."""

import pytest

from repro.sim.cluster import GB, Cluster, ClusterSpec
from repro.sim.collectives import all_reduce, all_to_all, reduce_scatter
from repro.sim.network import Network
from repro.sim.primitives import ring_order


def make_net(n_hosts=4, dph=2) -> Network:
    return Network(
        Cluster(
            ClusterSpec(
                n_hosts=n_hosts,
                devices_per_host=dph,
                inter_host_latency=0.0,
                intra_host_latency=0.0,
            )
        )
    )


def test_all_to_all_intra_host():
    net = make_net(n_hosts=1, dph=4)
    h = all_to_all(net, [0, 1, 2, 3], GB / 4)
    net.run()
    # 3 rounds, each GB/4 per device over NVLink
    expect = 3 * (GB / 4) / net.cluster.spec.intra_host_bandwidth
    assert h.finish_time == pytest.approx(expect)
    assert len(net.trace) == 12


def test_all_to_all_cross_host():
    net = make_net(n_hosts=4, dph=1)
    h = all_to_all(net, [0, 1, 2, 3], GB / 4)
    net.run()
    expect = 3 * (GB / 4) / net.cluster.spec.inter_host_bandwidth
    assert h.finish_time == pytest.approx(expect)


def test_all_to_all_degenerate():
    net = make_net()
    assert all_to_all(net, [0], GB).done
    assert all_to_all(net, [0, 1], 0).done


def test_reduce_scatter_time():
    net = make_net(n_hosts=4, dph=1)
    h = reduce_scatter(net, [0, 1, 2, 3], GB)
    net.run()
    expect = 3 * (GB / 4) / net.cluster.spec.inter_host_bandwidth
    assert h.finish_time == pytest.approx(expect)


def test_all_reduce_is_two_phases():
    net = make_net(n_hosts=4, dph=1)
    h = all_reduce(net, [0, 1, 2, 3], GB)
    net.run()
    # 2 (N-1)/N * total / bw
    expect = 2 * 3 * (GB / 4) / net.cluster.spec.inter_host_bandwidth
    assert h.finish_time == pytest.approx(expect)
    assert h.done


def test_all_reduce_degenerate():
    net = make_net()
    assert all_reduce(net, [5], GB).done


def test_all_reduce_host_grouped_ring_faster():
    """Host-grouping the ring reduces cross-host rounds."""
    net1 = make_net(n_hosts=2, dph=2)
    bad = all_reduce(net1, [0, 2, 1, 3], GB)  # alternating hosts
    net1.run()
    net2 = make_net(n_hosts=2, dph=2)
    good = all_reduce(net2, ring_order(net2.cluster, 0, [0, 1, 2, 3]), GB)
    net2.run()
    assert good.finish_time < bad.finish_time
