"""Tests for heterogeneous networking (per-host NIC bandwidth overrides).

The paper lists heterogeneous networking among the challenges of
cross-mesh resharding (§1): uneven bandwidth must be considered when
assigning communication tasks.
"""

import numpy as np
import pytest

from repro.core.api import reshard
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.scheduling import SchedulingProblem, ensemble_schedule
from repro.sim.cluster import GB, GBPS, Cluster, ClusterSpec
from repro.sim.network import Network


def hetero_cluster(slow_host=0, slow_bw=5 * GBPS, n_hosts=4):
    return Cluster(
        ClusterSpec(
            n_hosts=n_hosts,
            devices_per_host=4,
            host_bandwidth_overrides=((slow_host, slow_bw),),
            inter_host_latency=0.0,
            intra_host_latency=0.0,
        )
    )


def test_spec_override_validation():
    with pytest.raises(ValueError, match="unknown host"):
        ClusterSpec(n_hosts=2, host_bandwidth_overrides=((5, 1.0),))
    with pytest.raises(ValueError, match="positive"):
        ClusterSpec(n_hosts=2, host_bandwidth_overrides=((0, 0.0),))


def test_host_nic_bandwidth_lookup():
    spec = ClusterSpec(n_hosts=3, host_bandwidth_overrides=((1, 5 * GBPS),))
    assert spec.host_nic_bandwidth(0) == pytest.approx(10 * GBPS)
    assert spec.host_nic_bandwidth(1) == pytest.approx(5 * GBPS)


def test_link_bandwidth_is_min_of_endpoints():
    c = hetero_cluster(slow_host=0)
    assert c.link_bandwidth(0, 4) == pytest.approx(5 * GBPS)  # slow host 0
    assert c.link_bandwidth(4, 8) == pytest.approx(10 * GBPS)


def test_flow_through_slow_nic_is_slower():
    c = hetero_cluster(slow_host=0)
    net = Network(c)
    slow = net.start_flow(0, 4, GB)   # from slow host
    net.run()
    net2 = Network(c)
    fast = net2.start_flow(4, 8, GB)  # between fast hosts
    net2.run()
    assert slow.finish_time == pytest.approx(2 * fast.finish_time)


def test_scheduler_avoids_slow_sender_host():
    """With a choice of sender hosts, the schedule routes around the
    slow NIC."""
    c = hetero_cluster(slow_host=0, slow_bw=1 * GBPS)
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    # fully replicated source: every unit task may pick either sender host
    rt = ReshardingTask((1 << 22, 2), src, "RR", dst, "S0R", dtype=np.float32)
    p = SchedulingProblem.from_resharding(rt)
    s = ensemble_schedule(p)
    assert all(h == 1 for h in s.assignment.values()), s.assignment


def test_durations_reflect_slow_receivers():
    c = hetero_cluster(slow_host=2, slow_bw=2 * GBPS)
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    rt = ReshardingTask((1 << 20, 2), src, "S0R", dst, "S0R", dtype=np.float32)
    p = SchedulingProblem.from_resharding(rt)
    durs = {t.task_id: max(t.duration_by_host.values()) for t in p.tasks}
    # the unit task whose receiver sits on the slow host takes 5x longer
    assert max(durs.values()) == pytest.approx(5 * min(durs.values()))


def test_end_to_end_hetero_reshard_correct_and_slower():
    c_fast = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    c_slow = Cluster(
        ClusterSpec(
            n_hosts=4,
            devices_per_host=4,
            host_bandwidth_overrides=((2, 2 * GBPS),),
        )
    )
    arr = np.arange(64 * 64 * 16, dtype=np.float32).reshape(64, 64, 16)
    lat = {}
    for name, c in (("fast", c_fast), ("slow", c_slow)):
        src = DeviceMesh.from_hosts(c, [0, 1])
        dst = DeviceMesh.from_hosts(c, [2, 3])
        r = reshard(arr, src, "S0RR", dst, "S0RR", strategy="broadcast")
        assert r.dst_tensor.allclose(arr)
        lat[name] = r.latency
    assert lat["slow"] > lat["fast"]
