"""Tests for joint multi-tensor boundary planning."""

import numpy as np
import pytest

from repro.core.executor import simulate_plan
from repro.core.joint import plan_joint_broadcast, reshard_boundary, simulate_joint
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.sim.cluster import Cluster, ClusterSpec
from repro.strategies import BroadcastStrategy


def make_tasks(shapes_specs, n_hosts=4):
    c = Cluster(ClusterSpec(n_hosts=n_hosts, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    return [
        ReshardingTask(shape, src, s_spec, dst, d_spec, dtype=np.float32)
        for shape, s_spec, d_spec in shapes_specs
    ]


BOUNDARY = [
    ((256, 64, 64), "S0RR", "S0RR"),   # "seq" activation
    ((256, 128, 64), "S0RR", "S0RR"),  # "skip" tensor
]


def test_joint_plans_cover_all_tensors():
    tasks = make_tasks(BOUNDARY)
    plans, schedule, key = plan_joint_broadcast(tasks)
    assert len(plans) == 2
    total_units = sum(len(rt.unit_tasks()) for rt in tasks)
    assert len(key) == total_units
    assert len(schedule.order) == total_units
    for plan, rt in zip(plans, tasks):
        assert len(plan.ops) == len(rt.unit_tasks())


def test_joint_simulation_completes():
    tasks = make_tasks(BOUNDARY)
    plans, schedule, key = plan_joint_broadcast(tasks)
    r = simulate_joint(plans, schedule, key)
    assert r.total_time > 0
    assert len(r.per_tensor_finish) == 2
    assert max(r.per_tensor_finish) == pytest.approx(r.total_time)
    total_bytes = sum(rt.total_nbytes for rt in tasks)
    assert r.bytes_cross_host == pytest.approx(total_bytes)


def test_joint_not_slower_than_sequential():
    """Joint scheduling must beat (or match) back-to-back planning."""
    tasks = make_tasks(BOUNDARY)
    joint = reshard_boundary(tasks).total_time
    seq = sum(
        simulate_plan(BroadcastStrategy().plan(rt)).total_time for rt in tasks
    )
    assert joint <= seq * 1.02


def test_joint_overlaps_disjoint_tensors():
    """Two tensors whose receivers sit on different hosts run fully in
    parallel under the joint schedule."""
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst_a = DeviceMesh.from_hosts(c, [2])
    dst_b = DeviceMesh.from_hosts(c, [3])
    t1 = ReshardingTask((1 << 20, 2), src, "RR", dst_a, "RR", dtype=np.float32)
    t2 = ReshardingTask((1 << 20, 2), src, "RR", dst_b, "RR", dtype=np.float32)
    joint = reshard_boundary([t1, t2]).total_time
    alone = simulate_plan(BroadcastStrategy().plan(t1)).total_time
    assert joint == pytest.approx(alone, rel=0.1)


def test_joint_single_tensor_matches_plain_broadcast():
    tasks = make_tasks(BOUNDARY[:1])
    joint = reshard_boundary(tasks).total_time
    plain = simulate_plan(BroadcastStrategy().plan(tasks[0])).total_time
    assert joint == pytest.approx(plain, rel=0.05)


def test_joint_validation():
    with pytest.raises(ValueError, match="at least one"):
        plan_joint_broadcast([])
    tasks = make_tasks(BOUNDARY)
    with pytest.raises(ValueError, match="unknown scheduler"):
        plan_joint_broadcast(tasks, scheduler="bogus")
    other = make_tasks(BOUNDARY[:1])
    with pytest.raises(ValueError, match="cluster"):
        plan_joint_broadcast([tasks[0], other[0]])
    with pytest.raises(ValueError, match="at least one plan"):
        simulate_joint([], None, [])
