"""Replayable service chaos: the acceptance scenario from the issue.

A seeded chaos schedule mixing slow compiles, transient compile faults,
client cancellations, and one poison request is driven through the
service twice; the runs must complete with zero worker crashes and
byte-identical telemetry.  A second scenario forces the circuit breaker
through its full open -> half-open -> closed trajectory under load.
"""

import dataclasses

import pytest

from repro.service import (
    PROFILES,
    AdmissionConfig,
    BreakerConfig,
    ServiceChaos,
    ServiceConfig,
    run_load,
)
from repro.sim.faults import RetryPolicy

CHAOS = ServiceChaos(
    seed=11,
    slow_rate=0.3,
    slow_extra=0.08,
    fault_rate=0.2,
    cancel_rate=0.1,
    cancel_after=0.02,
    poison_requests=("req-0040",),
)

CONFIG = ServiceConfig(
    n_workers=2,
    admission=AdmissionConfig(max_queue_depth=16, per_tenant_depth=8),
    breaker=BreakerConfig(failure_threshold=4, cooldown=0.5),
    retry=RetryPolicy(max_attempts=2, backoff_base=0.01),
)


def chaos_run():
    return run_load(
        PROFILES["bursty"], seed=11, config=CONFIG, chaos=CHAOS, timeout=3.0
    )


def test_chaos_run_is_overload_safe():
    report = chaos_run()
    # every request answered, no worker ever crashed
    assert report.worker_crashes == 0
    assert sum(report.status_counts.values()) == report.n_requests
    # the poison request failed itself -- and only itself
    assert report.status_counts.get("invalid", 0) == 1
    # chaos actually struck: cancellations and slow compiles observed
    assert report.status_counts.get("cancelled", 0) >= 1
    assert report.counter_totals.get("service/service.slow_compile", 0) >= 1
    # backlog stayed within the admission bound throughout
    assert report.max_queue_depth <= CONFIG.admission.max_queue_depth
    # p99 admission-to-response latency bounded by the request timeout
    assert report.p99_latency <= 3.0


def test_chaos_replay_is_byte_identical():
    first = chaos_run()
    second = chaos_run()
    assert first.telemetry_digest == second.telemetry_digest
    assert first.counter_totals == second.counter_totals
    assert first.status_counts == second.status_counts
    assert first.to_json() == second.to_json()


def test_different_seed_differs():
    """The digest is a real fingerprint, not a constant."""
    a = run_load(PROFILES["bursty"], seed=11, config=CONFIG, chaos=CHAOS,
                 timeout=3.0)
    b = run_load(PROFILES["bursty"], seed=12, config=CONFIG, chaos=CHAOS,
                 timeout=3.0)
    assert a.telemetry_digest != b.telemetry_digest


def test_poison_request_never_crashes_worker_or_trips_breaker():
    """Every request poisoned: all fail individually, breaker stays closed."""
    poison_all = ServiceChaos(
        seed=5,
        poison_requests=tuple(f"req-{i:04d}" for i in range(24)),
    )
    profile = dataclasses.replace(PROFILES["steady"], n_requests=24)
    report = run_load(profile, seed=5, config=CONFIG, chaos=poison_all)
    assert report.worker_crashes == 0
    assert report.status_counts.get("invalid", 0) == 24
    # client errors never count against the compiler's breaker
    assert report.counter_totals.get("service/service.shed.breaker-open", 0) == 0


@pytest.mark.parametrize("seed", [3, 11])
def test_breaker_trips_and_recovers_under_persistent_faults(seed):
    """High fault rate with no retries: breaker must open, then recover."""
    stormy = ServiceChaos(seed=seed, fault_rate=0.85)
    # cooldown short enough that probe windows open while load is still
    # arriving (the bursty profile's 80 arrivals span ~0.15s)
    config = ServiceConfig(
        n_workers=1,
        admission=AdmissionConfig(max_queue_depth=32, per_tenant_depth=32),
        breaker=BreakerConfig(failure_threshold=3, cooldown=0.02,
                              half_open_probes=1),
        retry=RetryPolicy(max_attempts=1, backoff_base=0.01),
    )
    profile = dataclasses.replace(PROFILES["bursty"], n_requests=80)
    report = run_load(profile, seed=seed, config=config, chaos=stormy,
                      timeout=5.0)
    assert report.worker_crashes == 0
    assert sum(report.status_counts.values()) == report.n_requests
    # the breaker opened at least once...
    assert report.counter_totals.get("service/service.failed", 0) >= 3
    opened = (
        report.counter_totals.get("service/service.shed.breaker-open", 0)
        + report.n_degraded
    )
    assert opened > 0, "breaker never rejected or degraded a request"
    # ...and probes got through again (half-open admitted compiles)
    assert report.counter_totals.get("service/service.breaker_probe", 0) >= 1
