"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.events import EventLoop


def test_initial_state():
    loop = EventLoop()
    assert loop.now == 0.0
    assert loop.pending == 0
    assert loop.processed == 0


def test_call_at_advances_time():
    loop = EventLoop()
    seen = []
    loop.call_at(1.5, lambda: seen.append(loop.now))
    assert loop.run() == 1.5
    assert seen == [1.5]


def test_call_after_relative():
    loop = EventLoop()
    order = []
    loop.call_after(2.0, lambda: order.append("b"))
    loop.call_after(1.0, lambda: order.append("a"))
    loop.run()
    assert order == ["a", "b"]
    assert loop.now == 2.0


def test_fifo_tie_breaking():
    loop = EventLoop()
    order = []
    for i in range(5):
        loop.call_at(1.0, lambda i=i: order.append(i))
    loop.run()
    assert order == [0, 1, 2, 3, 4]


def test_nested_scheduling_from_callback():
    loop = EventLoop()
    seen = []

    def outer():
        seen.append(("outer", loop.now))
        loop.call_after(1.0, lambda: seen.append(("inner", loop.now)))

    loop.call_at(1.0, outer)
    loop.run()
    assert seen == [("outer", 1.0), ("inner", 2.0)]


def test_zero_delay_callback_runs_at_same_time():
    loop = EventLoop()
    seen = []
    loop.call_at(3.0, lambda: loop.call_after(0.0, lambda: seen.append(loop.now)))
    loop.run()
    assert seen == [3.0]


def test_cancel_skips_event():
    loop = EventLoop()
    seen = []
    ev = loop.call_at(1.0, lambda: seen.append("cancelled"))
    loop.call_at(2.0, lambda: seen.append("kept"))
    ev.cancel()
    loop.run()
    assert seen == ["kept"]


def test_cannot_schedule_in_past():
    loop = EventLoop()
    loop.call_at(5.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError, match="past"):
        loop.call_at(1.0, lambda: None)


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError, match="negative"):
        loop.call_after(-1.0, lambda: None)


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    seen = []
    loop.call_at(1.0, lambda: seen.append(1))
    loop.call_at(10.0, lambda: seen.append(10))
    loop.run(until=5.0)
    assert seen == [1]
    assert loop.now == 5.0
    loop.run()
    assert seen == [1, 10]


def test_step_returns_false_when_idle():
    loop = EventLoop()
    assert loop.step() is False
    loop.call_at(1.0, lambda: None)
    assert loop.step() is True
    assert loop.step() is False


def test_event_budget_guard():
    loop = EventLoop()

    def rearm():
        loop.call_after(1.0, rearm)

    loop.call_after(1.0, rearm)
    with pytest.raises(RuntimeError, match="budget"):
        loop.run(max_events=100)


def test_processed_counter():
    loop = EventLoop()
    for i in range(7):
        loop.call_at(float(i), lambda: None)
    loop.run()
    assert loop.processed == 7
