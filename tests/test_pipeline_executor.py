"""Tests for the event-driven pipeline executor."""

import pytest

from repro.pipeline.executor import simulate_pipeline
from repro.pipeline.schedules import Task, schedule_job
from repro.pipeline.stage import CommEdge, PipelineJob, StageProfile


def make_job(n_stages=2, m=4, fwd=1.0, comm=0.0, act_bytes=1.0,
             bwd_x=None, bwd_w=None, edges=None):
    bwd_x = fwd if bwd_x is None else bwd_x
    bwd_w = fwd if bwd_w is None else bwd_w
    stages = [
        StageProfile(s, fwd_time=fwd, bwd_x_time=bwd_x, bwd_w_time=bwd_w,
                     activation_bytes=act_bytes)
        for s in range(n_stages)
    ]
    if edges is None:
        edges = [
            CommEdge(s, s + 1, fwd_time=comm, bwd_time=comm)
            for s in range(n_stages - 1)
        ]
    return PipelineJob(stages, edges, n_microbatches=m)


# ----------------------------------------------------------------------
# structural validation
# ----------------------------------------------------------------------
def test_job_validation():
    with pytest.raises(ValueError, match="stage ids"):
        PipelineJob([StageProfile(1, 1, 1, 1)], [], 1)
    with pytest.raises(ValueError, match="micro"):
        make_job(m=0)
    with pytest.raises(ValueError, match="cross"):
        CommEdge(1, 1, 0.0, 0.0)
    with pytest.raises(ValueError, match="forward"):
        CommEdge(2, 1, 0.0, 0.0)


def test_order_validation_rejects_bad_lists():
    job = make_job(n_stages=1, m=2)
    with pytest.raises(ValueError, match="forwards"):
        simulate_pipeline(job, [[Task("F", 0), Task("B", 0), Task("B", 1)]])
    with pytest.raises(ValueError, match="precedes"):
        simulate_pipeline(job, [[Task("B", 0), Task("F", 0),
                                 Task("F", 1), Task("B", 1)]])
    with pytest.raises(ValueError, match="coverage"):
        simulate_pipeline(job, [[Task("F", 0), Task("F", 1),
                                 Task("Bx", 0), Task("Bw", 0),
                                 Task("B", 1)]])


# ----------------------------------------------------------------------
# basic timing
# ----------------------------------------------------------------------
def test_single_stage_serial_time():
    job = make_job(n_stages=1, m=3)
    r = simulate_pipeline(job, schedule_job("1f1b", 1, 3))
    # 3 x (F + B) with F=1, B=2
    assert r.iteration_time == pytest.approx(9.0)
    assert r.stage_busy_time[0] == pytest.approx(9.0)


def test_two_stage_zero_comm_pipeline_bubble():
    m = 8
    job = make_job(n_stages=2, m=m)
    r = simulate_pipeline(job, schedule_job("1f1b", 2, m))
    # steady state m*(F+B) plus one stage's worth of fill/drain bubble
    assert r.iteration_time == pytest.approx(m * 3.0 + 3.0)


def test_schedules_equal_when_comm_free():
    """§4: with no communication cost 1F1B and eager-1F1B have the same
    latency."""
    m, p = 8, 3
    job = make_job(n_stages=p, m=m)
    t1 = simulate_pipeline(job, schedule_job("1f1b", p, m)).iteration_time
    t2 = simulate_pipeline(job, schedule_job("eager_1f1b", p, m)).iteration_time
    assert t1 == pytest.approx(t2)


def test_gpipe_slower_than_1f1b_never():
    """GPipe and 1F1B have identical makespan without comm; both valid."""
    job = make_job(n_stages=2, m=6)
    g = simulate_pipeline(job, schedule_job("gpipe", 2, 6)).iteration_time
    f = simulate_pipeline(job, schedule_job("1f1b", 2, 6)).iteration_time
    assert g == pytest.approx(f)


def test_comm_on_critical_path_when_blocking():
    m = 8
    job = make_job(n_stages=2, m=m, comm=0.5)
    r = simulate_pipeline(job, schedule_job("1f1b", 2, m), overlap=False)
    base = simulate_pipeline(make_job(n_stages=2, m=m),
                             schedule_job("1f1b", 2, m), overlap=False)
    # every micro-batch pays the fwd and bwd transfer on the critical path
    assert r.iteration_time >= base.iteration_time + m * 0.5


def test_overlap_beats_blocking():
    m = 8
    job = make_job(n_stages=2, m=m, comm=0.8)
    orders = schedule_job("1f1b", 2, m)
    blocking = simulate_pipeline(job, orders, overlap=False).iteration_time
    overlapped = simulate_pipeline(job, orders, overlap=True).iteration_time
    assert overlapped < blocking


def test_eager_hides_comm_fully_when_possible():
    m = 8
    job = make_job(n_stages=2, m=m, comm=0.8)
    eager = simulate_pipeline(job, schedule_job("eager_1f1b", 2, m), overlap=True)
    nocomm = simulate_pipeline(make_job(n_stages=2, m=m),
                               schedule_job("eager_1f1b", 2, m))
    # within ~one comm hop of the zero-comm floor
    assert eager.iteration_time <= nocomm.iteration_time + 2 * 0.8 + 1e-9


def test_ordering_blocking_ge_overlap_ge_eager():
    m = 16
    job = make_job(n_stages=2, m=m, comm=0.6)
    b = simulate_pipeline(job, schedule_job("1f1b", 2, m), overlap=False)
    o = simulate_pipeline(job, schedule_job("1f1b", 2, m), overlap=True)
    e = simulate_pipeline(job, schedule_job("eager_1f1b", 2, m), overlap=True)
    assert b.iteration_time >= o.iteration_time >= e.iteration_time


# ----------------------------------------------------------------------
# memory accounting
# ----------------------------------------------------------------------
def test_gpipe_peak_activation_is_all_microbatches():
    m = 6
    job = make_job(n_stages=2, m=m)
    r = simulate_pipeline(job, schedule_job("gpipe", 2, m))
    assert r.peak_activation_counts == {0: m, 1: m}


def test_1f1b_peak_activation_is_warmup_depth():
    m, p = 8, 3
    job = make_job(n_stages=p, m=m)
    r = simulate_pipeline(job, schedule_job("1f1b", p, m))
    assert r.peak_activation_counts == {0: 3, 1: 2, 2: 1}


def test_eager_peak_activation_matches_warmup():
    m, p = 8, 3
    job = make_job(n_stages=p, m=m)
    r = simulate_pipeline(job, schedule_job("eager_1f1b", p, m))
    assert r.peak_activation_counts == {0: 5, 1: 3, 2: 1}


def test_peak_memory_bytes():
    job = make_job(n_stages=2, m=4, act_bytes=10.0)
    job.stages[0] = StageProfile(0, 1, 1, 1, params_bytes=100.0,
                                 activation_bytes=10.0)
    r = simulate_pipeline(job, schedule_job("1f1b", 2, 4))
    assert r.peak_memory_bytes(0) == pytest.approx(100.0 + 2 * 10.0)


def test_delay_bw_weight_increases_peak_memory():
    m, p = 8, 2
    job = make_job(n_stages=p, m=m)
    plain = simulate_pipeline(job, schedule_job("1f1b", p, m))
    delayed = simulate_pipeline(job, schedule_job("1f1b", p, m,
                                                  delay_bw_weight=True))
    assert (delayed.peak_activation_counts[0]
            >= plain.peak_activation_counts[0])


# ----------------------------------------------------------------------
# dependency correctness
# ----------------------------------------------------------------------
def _events(result, stage, kind, mb):
    return [e for e in result.timeline
            if e.stage == stage and e.kind == kind and e.microbatch == mb][0]


@pytest.mark.parametrize("sched", ["gpipe", "1f1b", "eager_1f1b"])
@pytest.mark.parametrize("overlap", [False, True])
def test_causality_across_stages(sched, overlap):
    m, p = 6, 3
    job = make_job(n_stages=p, m=m, comm=0.3)
    r = simulate_pipeline(job, schedule_job(sched, p, m), overlap=overlap)
    for mb in range(m):
        for s in range(p - 1):
            # forward flows downstream with >= comm delay
            up = _events(r, s, "F", mb)
            down = _events(r, s + 1, "F", mb)
            assert down.start >= up.end + 0.3 - 1e-9
            # gradient flows upstream
            bdown = _events(r, s + 1, "B", mb)
            bup = _events(r, s, "B", mb)
            assert bup.start >= bdown.end + 0.3 - 1e-9


def test_skip_connection_edges():
    """U-Transformer-style: multiple edges between the same stage pair."""
    edges = [
        CommEdge(0, 1, fwd_time=0.2, bwd_time=0.2, label="seq"),
        CommEdge(0, 1, fwd_time=0.5, bwd_time=0.5, label="skip"),
    ]
    job = make_job(n_stages=2, m=4, edges=edges)
    r = simulate_pipeline(job, schedule_job("1f1b", 2, 4), overlap=True)
    # both transfers happen per micro-batch, in both directions
    fwd = [c for c in r.comms if c.direction == "fwd"]
    bwd = [c for c in r.comms if c.direction == "bwd"]
    assert len(fwd) == 8 and len(bwd) == 8
    # channel serializes same-direction transfers of one micro-batch
    labels = {(c.microbatch, c.label): c for c in fwd}
    for mb in range(4):
        a, b = labels[(mb, "seq")], labels[(mb, "skip")]
        assert a.end <= b.start + 1e-9 or b.end <= a.start + 1e-9


def test_deadlock_detection():
    """An impossible order (backward before upstream produced) deadlocks."""
    job = make_job(n_stages=2, m=2, comm=0.1)
    # stage 1 waits for F0 of mb 1 before stage 0 has scheduled it? build
    # a cyclic wait: stage0 wants B(0) before F(1), stage1 needs F(1)
    orders = [
        [Task("F", 0), Task("B", 0), Task("F", 1), Task("B", 1)],
        [Task("F", 0), Task("F", 1), Task("B", 0), Task("B", 1)],
    ]
    # stage0 B(0) needs stage1 B(0); stage1 B(0) needs F(1) which needs
    # stage0 F(1), which stage0 only runs after B(0): deadlock.
    with pytest.raises(RuntimeError, match="deadlock"):
        simulate_pipeline(job, orders, overlap=True)


def test_throughput_helper():
    job = make_job(n_stages=1, m=2)
    r = simulate_pipeline(job, schedule_job("1f1b", 1, 2))
    assert r.throughput_tflops(6e12, 4) == pytest.approx(6e12 / r.iteration_time / 4 / 1e12)
    with pytest.raises(ValueError):
        r.throughput_tflops(-1, 0)  # guarded by iteration_time>0 path
