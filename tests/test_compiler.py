"""Tests for the staged plan compiler and its content-addressed cache.

Covers the ISSUE's cache-correctness checklist: hits on identical
requests, misses on every perturbed signature component (tensor, specs,
mesh shapes, topology, fault scenario, epoch), explicit invalidation on
a ``HostFailure``, and byte-identical ``apply_plan`` output for cached
vs. freshly compiled plans — plus the pass-pipeline instrumentation and
the legacy ``strategy.plan()`` equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import (
    CompileContext,
    EdgeResharding,
    PlanCache,
    compile_resharding,
    default_plan_cache,
    plan_signature,
    reset_default_plan_cache,
    task_signature,
)
from repro.core.data import apply_plan
from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.core.tensor import DistributedTensor
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.faults import FaultSchedule, HostFailure, RetryPolicy
from repro.strategies import (
    AutoStrategy,
    BroadcastStrategy,
    SendRecvStrategy,
    make_strategy,
)

PASS_NAMES = ["lower", "select", "schedule", "fault_rewrite", "emit", "validate"]


def make_cluster(**overrides) -> Cluster:
    return Cluster(ClusterSpec(n_hosts=4, devices_per_host=4, **overrides))


def make_task(cluster=None, shape=(64, 64, 64), src_spec="RS0R",
              dst_spec="S0RR", src_hosts=(0, 1), dst_hosts=(2, 3)):
    c = cluster if cluster is not None else make_cluster()
    src = DeviceMesh.from_hosts(c, src_hosts)
    dst = DeviceMesh.from_hosts(c, dst_hosts)
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=np.float32)


# ----------------------------------------------------------------------
# Cache hit / miss semantics
# ----------------------------------------------------------------------
class TestCacheHitMiss:
    def test_identical_request_hits(self):
        cache = PlanCache()
        ctx = CompileContext(strategy="broadcast", cache=cache)
        first = compile_resharding(make_task(), ctx)
        second = compile_resharding(make_task(), ctx)
        assert second is first  # the stored CompiledPlan itself
        stats = cache.stats()
        assert (stats.requests, stats.hits, stats.misses) == (2, 1, 1)
        assert stats.size == 1
        assert stats.hit_rate == 0.5

    def test_content_addressed_not_identity_addressed(self):
        """Two distinct Cluster objects with equal content share entries."""
        cache = PlanCache()
        t1 = make_task(make_cluster())
        t2 = make_task(make_cluster())
        assert t1.cluster is not t2.cluster
        assert task_signature(t1) == task_signature(t2)
        compile_resharding(t1, CompileContext(cache=cache))
        compile_resharding(t2, CompileContext(cache=cache))
        assert cache.stats().hits == 1

    @pytest.mark.parametrize(
        "perturb",
        [
            dict(shape=(64, 64, 32)),
            dict(dst_spec="RS1R"),
            dict(dst_hosts=(3, 2)),  # same hosts, different device grid
            dict(cluster="bw"),  # slower interconnect
            dict(cluster="override"),  # per-host NIC override
        ],
        ids=["shape", "spec", "mesh", "bandwidth", "override"],
    )
    def test_perturbed_key_misses(self, perturb):
        cache = PlanCache()
        compile_resharding(make_task(), CompileContext(cache=cache))
        if perturb.get("cluster") == "bw":
            task = make_task(make_cluster(inter_host_bandwidth=25e9 / 8))
        elif perturb.get("cluster") == "override":
            task = make_task(
                make_cluster(host_bandwidth_overrides=((0, 25e9 / 8),))
            )
        else:
            task = make_task(**perturb)
        compile_resharding(task, CompileContext(cache=cache))
        stats = cache.stats()
        assert stats.hits == 0
        assert stats.misses == 2
        assert stats.size == 2

    def test_fault_scenario_in_signature(self):
        cache = PlanCache()
        task = make_task()
        faults = FaultSchedule(host_failures=(HostFailure(0, 100.0),))
        compile_resharding(task, CompileContext(cache=cache))
        compile_resharding(task, CompileContext(cache=cache, faults=faults))
        compile_resharding(
            task,
            CompileContext(
                cache=cache, faults=faults, retry_policy=RetryPolicy(max_attempts=5)
            ),
        )
        stats = cache.stats()
        assert stats.hits == 0
        assert stats.misses == 3

    def test_strategy_options_in_signature(self):
        cache = PlanCache()
        task = make_task()
        compile_resharding(task, CompileContext("broadcast", cache=cache))
        compile_resharding(
            task,
            CompileContext("broadcast", {"scheduler": "naive"}, cache=cache),
        )
        compile_resharding(task, CompileContext("send_recv", cache=cache))
        assert cache.stats().hits == 0
        assert cache.stats().misses == 3

    def test_fifo_eviction(self):
        cache = PlanCache(max_entries=1)
        compile_resharding(make_task(), CompileContext(cache=cache))
        compile_resharding(
            make_task(shape=(32, 32, 32)), CompileContext(cache=cache)
        )
        assert len(cache) == 1
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)


# ----------------------------------------------------------------------
# Invalidation and epochs
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_invalidate_drops_entries_and_bumps_epoch(self):
        cache = PlanCache()
        ctx = CompileContext(cache=cache)
        compile_resharding(make_task(), ctx)
        assert len(cache) == 1
        cache.invalidate(reason="host 2 failed")
        assert len(cache) == 0
        assert cache.epoch == 1
        assert cache.n_invalidations == 1
        assert cache.last_invalidation_reason == "host 2 failed"
        # The identical request must recompile in the new epoch.
        compile_resharding(make_task(), ctx)
        assert cache.stats().hits == 0
        assert cache.stats().misses == 2

    def test_epoch_is_part_of_the_signature(self):
        task = make_task()
        key = make_strategy("broadcast").cache_key()
        assert plan_signature(task, key, epoch=0) != plan_signature(
            task, key, epoch=1
        )

    def test_host_failure_invalidates_default_cache(self):
        """The recovery runtime drops the cache when a host dies."""
        from repro.models.gpt import GPTConfig, build_gpt
        from repro.recovery.checkpoint import CheckpointConfig
        from repro.recovery.runtime import simulate_training_run

        cluster = Cluster(
            ClusterSpec(n_hosts=3, devices_per_host=4, n_spare_hosts=1)
        )
        config = GPTConfig(
            name="GPT-tiny", n_layers=4, hidden=1024, global_batch=32,
            dp=2, op=2, pp=2,
        )
        spec = build_gpt(config, cluster=cluster)
        reset_default_plan_cache()
        faults = FaultSchedule(host_failures=(HostFailure(1, 0.5),))
        rep = simulate_training_run(
            spec, 6, faults=faults, config=CheckpointConfig(interval=2)
        )
        assert rep.n_restarts == 1
        stats = default_plan_cache().stats()
        assert stats.n_invalidations == 1
        assert stats.epoch == 1
        assert "host 1" in default_plan_cache().last_invalidation_reason


# ----------------------------------------------------------------------
# Semantics: cached plans are the same plans
# ----------------------------------------------------------------------
class TestCachedSemantics:
    def test_apply_plan_identical_cached_vs_fresh(self):
        task = make_task(shape=(16, 16, 8))
        data = np.arange(16 * 16 * 8, dtype=np.float32).reshape(task.shape)

        fresh = compile_resharding(task, CompileContext(cache=None))
        cache = PlanCache()
        compile_resharding(task, CompileContext(cache=cache))
        cached = compile_resharding(task, CompileContext(cache=cache))
        assert cache.stats().hits == 1

        assert [repr(op) for op in cached.plan.ops] == [
            repr(op) for op in fresh.plan.ops
        ]
        src = DistributedTensor.from_global(task.src_mesh, task.src_spec, data)
        out_fresh = apply_plan(fresh.plan, src).to_global()
        out_cached = apply_plan(cached.plan, src).to_global()
        assert out_fresh.tobytes() == out_cached.tobytes()
        assert np.array_equal(out_cached, data)

    def test_hit_reuses_memoized_timing(self):
        cache = PlanCache()
        ctx = CompileContext(cache=cache)
        first = compile_resharding(make_task(), ctx)
        t = first.total_time  # simulate once, memoize
        second = compile_resharding(make_task(), ctx)
        assert second.timing is first.timing
        assert second.total_time == t

    @pytest.mark.parametrize(
        "name", ["send_recv", "allgather", "broadcast", "signal"]
    )
    def test_legacy_plan_api_equivalence(self, name):
        """``strategy.plan()`` and the compiler emit identical plans."""
        task = make_task()
        legacy = make_strategy(name).plan(task)
        compiled = compile_resharding(task, CompileContext(name, cache=None))
        assert [repr(op) for op in legacy.ops] == [
            repr(op) for op in compiled.plan.ops
        ]
        assert legacy.strategy == compiled.plan.strategy

    def test_validate_flag_runs_coverage_check(self):
        compiled = compile_resharding(
            make_task(), CompileContext(cache=None, validate=True)
        )
        assert compiled.validated
        report = compiled.certify(strict=True)
        assert report.certified


# ----------------------------------------------------------------------
# Uncacheable strategies: fresh compiles, never wrong answers
# ----------------------------------------------------------------------
class NoKeyStrategy(SendRecvStrategy):
    """A custom subclass that opts out of caching."""

    def cache_key(self):
        return None


class TestUncacheable:
    def test_custom_strategy_compiles_uncached(self):
        cache = PlanCache()
        strategy = NoKeyStrategy()
        c1 = compile_resharding(
            make_task(), CompileContext(strategy=strategy, cache=cache)
        )
        c2 = compile_resharding(
            make_task(), CompileContext(strategy=strategy, cache=cache)
        )
        assert c1 is not c2
        assert c1.signature is None
        assert cache.stats().requests == 0

    def test_callable_scheduler_is_uncacheable(self):
        from repro.scheduling import SCHEDULERS

        assert BroadcastStrategy(scheduler="ensemble").cache_key() is not None
        custom = BroadcastStrategy(scheduler=SCHEDULERS["naive"])
        # A callable scheduler has no canonical signature: refuse to key it.
        custom.scheduler_name = "custom"
        assert custom.cache_key() is None

    def test_edge_resharding_memoizes_uncacheable(self):
        task_f = make_task()
        task_b = make_task(src_spec="S0RR", dst_spec="RS0R",
                           src_hosts=(2, 3), dst_hosts=(0, 1))
        edge = EdgeResharding(
            task_f, task_b, CompileContext(strategy=NoKeyStrategy(), cache=None)
        )
        assert edge.compiled("fwd") is edge.compiled("fwd")
        assert edge.time("fwd") == simulate_plan(edge.plan("fwd")).total_time
        with pytest.raises(ValueError):
            edge.time("sideways")


# ----------------------------------------------------------------------
# Pass pipeline instrumentation
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_per_pass_timings(self):
        compiled = compile_resharding(make_task(), CompileContext(cache=None))
        diag = compiled.diagnostics
        assert [p.name for p in diag.passes] == PASS_NAMES
        assert all(p.seconds >= 0.0 for p in diag.passes)
        emit = next(p for p in diag.passes if p.name == "emit")
        assert emit.op_delta > 0
        assert emit.ops_before == 0
        assert diag.total_seconds > 0.0
        table = diag.format_table()
        for name in PASS_NAMES:
            assert name in table

    def test_dump_after_hook_fires(self):
        seen = []
        compile_resharding(
            make_task(),
            CompileContext(
                cache=None,
                dump_after=("lower", "emit"),
                on_dump=lambda name, state: seen.append((name, state.n_ops)),
            ),
        )
        assert [name for name, _ in seen] == ["lower", "emit"]
        assert seen[0][1] == 0  # nothing emitted yet after lowering
        assert seen[1][1] > 0

    def test_cache_hit_skips_the_pipeline(self):
        cache = PlanCache()
        ctx = CompileContext(cache=cache)
        compile_resharding(make_task(), ctx)
        hit = compile_resharding(make_task(), ctx)
        # The hit returns the original diagnostics; no passes re-ran.
        assert [p.name for p in hit.diagnostics.passes] == PASS_NAMES

    def test_ctx_kwargs_convenience(self):
        compiled = compile_resharding(make_task(), strategy="send_recv", cache=None)
        assert compiled.plan.strategy == "send_recv"
        with pytest.raises(ValueError):
            compile_resharding(
                make_task(), CompileContext(cache=None), strategy="send_recv"
            )
        with pytest.raises(ValueError):
            CompileContext(
                strategy=BroadcastStrategy(), strategy_kwargs={"n_chunks": 2}
            ).resolved_strategy()


# ----------------------------------------------------------------------
# Auto strategy through the select pass
# ----------------------------------------------------------------------
class TestAutoSelect:
    def test_plan_scored_attaches_timing(self):
        auto = AutoStrategy()
        plan, timing = auto.plan_scored(make_task())
        assert timing is not None
        assert len(auto.last_scores) == 3
        # The winner's attached timing is the score it won with.
        assert timing.total_time == min(t for _, t in auto.last_scores)
        assert plan.strategy in {"send_recv", "allgather", "broadcast"}

    def test_compiled_auto_never_resimulates(self):
        compiled = compile_resharding(
            make_task(), CompileContext(strategy=AutoStrategy(), cache=None)
        )
        assert compiled.timing is not None  # from the select pass
        assert compiled.scores  # strategy-choice scores recorded
        assert compiled.total_time == compiled.timing.total_time

    def test_auto_is_cacheable_with_default_candidates(self):
        cache = PlanCache()
        ctx = CompileContext(strategy=AutoStrategy(), cache=cache)
        compile_resharding(make_task(), ctx)
        compile_resharding(make_task(), ctx)
        assert cache.stats().hits == 1
