"""Tests for the communication strategies' plan structure."""

import numpy as np
import pytest

from repro.core.mesh import DeviceMesh
from repro.core.plan import AllGatherOp, BroadcastOp, ScatterOp, SendOp
from repro.core.task import ReshardingTask
from repro.sim.cluster import Cluster, ClusterSpec
from repro.strategies import (
    AllGatherStrategy,
    BroadcastStrategy,
    SendRecvStrategy,
    SignalStrategy,
    make_strategy,
)
from repro.strategies.broadcast import MAX_CHUNKS, TARGET_CHUNK_BYTES, adaptive_chunks


def make_task(src_spec="S0RR", dst_spec="S0RR", shape=(8, 8, 8), dtype=np.float32):
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=dtype)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_make_strategy_by_name():
    assert isinstance(make_strategy("send_recv"), SendRecvStrategy)
    assert isinstance(make_strategy("allgather"), AllGatherStrategy)
    assert isinstance(make_strategy("alpa"), AllGatherStrategy)
    assert isinstance(make_strategy("broadcast"), BroadcastStrategy)
    assert isinstance(make_strategy("signal"), SignalStrategy)


def test_make_strategy_passthrough_and_errors():
    s = BroadcastStrategy()
    assert make_strategy(s) is s
    with pytest.raises(ValueError):
        make_strategy("nope")
    with pytest.raises(ValueError):
        make_strategy(s, n_chunks=4)


def test_make_strategy_kwargs():
    s = make_strategy("broadcast", scheduler="naive", n_chunks=7)
    assert s.scheduler_name == "naive"
    assert s.n_chunks == 7


# ----------------------------------------------------------------------
# send_recv
# ----------------------------------------------------------------------
def test_send_recv_one_op_per_receiver():
    task = make_task("RRR", "S0RR")
    plan = SendRecvStrategy().plan(task)
    assert all(isinstance(op, SendOp) for op in plan.ops)
    # 2 dst tiles x 4 replicas each
    assert len(plan.ops) == 8
    assert plan.schedule is None
    assert plan.data_complete


def test_send_recv_load_balances_senders():
    task = make_task("RRR", "S0RR")
    plan = SendRecvStrategy().plan(task)
    sender_hosts = [task.cluster.host_of(op.sender) for op in plan.ops]
    assert sender_hosts.count(0) == sender_hosts.count(1) == 4


def test_send_recv_exact_regions():
    task = make_task("S0RR", "RS1R")
    plan = SendRecvStrategy().plan(task)
    for op in plan.ops:
        # receiver's tile fully contains the op's region
        want = task.dst_grid.device_region(op.receiver)
        for (lo, hi), (w0, w1) in zip(op.region, want):
            assert w0 <= lo and hi <= w1


# ----------------------------------------------------------------------
# allgather (Alpa)
# ----------------------------------------------------------------------
def test_allgather_scatter_then_gather():
    task = make_task("RRR", "S0RR")
    plan = AllGatherStrategy().plan(task)
    kinds = [type(op).__name__ for op in plan.ops]
    assert kinds == ["ScatterOp", "AllGatherOp", "ScatterOp", "AllGatherOp"]
    ag = plan.ops[1]
    sc = plan.ops[0]
    assert isinstance(ag, AllGatherOp) and isinstance(sc, ScatterOp)
    assert ag.deps == (sc.op_id,)
    assert ag.devices == sc.receivers


def test_allgather_single_receiver_plain_send():
    task = make_task("RRR", "S0S1R")  # no replication on dst
    plan = AllGatherStrategy().plan(task)
    assert all(isinstance(op, SendOp) for op in plan.ops)


def test_allgather_uneven_fallback():
    """Element count not divisible by receivers -> full-slice sends."""
    task = make_task("R", "R", shape=(9,))  # 9 elements to 8 receivers
    plan = AllGatherStrategy().plan(task)
    assert all(isinstance(op, SendOp) for op in plan.ops)
    assert len(plan.ops) == 8  # one full copy per receiver


def test_allgather_attaches_schedule():
    plan = AllGatherStrategy().plan(make_task())
    assert plan.schedule is not None
    assert plan.schedule.algorithm == "load_balance"


def test_allgather_scheduler_validation():
    with pytest.raises(ValueError):
        AllGatherStrategy(scheduler="bogus")


# ----------------------------------------------------------------------
# broadcast (ours)
# ----------------------------------------------------------------------
def test_broadcast_one_op_per_unit_task():
    task = make_task("RS0R", "S0RR")
    plan = BroadcastStrategy().plan(task)
    assert all(isinstance(op, BroadcastOp) for op in plan.ops)
    assert len(plan.ops) == len(task.unit_tasks())
    assert plan.schedule is not None
    assert plan.schedule.algorithm == "ensemble"


def test_broadcast_sender_matches_schedule():
    task = make_task("RS0R", "S0RR")
    plan = BroadcastStrategy().plan(task)
    for op in plan.ops:
        assert (
            task.cluster.host_of(op.sender)
            == plan.schedule.assignment[op.unit_task_id]
        )


def test_broadcast_receivers_complete():
    task = make_task("RRR", "S0RR")
    plan = BroadcastStrategy().plan(task)
    for op in plan.ops:
        ut = task.unit_tasks()[op.unit_task_id]
        assert tuple(op.receivers) == ut.receivers


def test_broadcast_explicit_chunks():
    plan = BroadcastStrategy(n_chunks=5).plan(make_task())
    assert all(op.n_chunks == 5 for op in plan.ops)


def test_broadcast_gating_disabled():
    plan = BroadcastStrategy(gate_on_schedule=False).plan(make_task())
    assert plan.schedule is None


def test_broadcast_custom_scheduler_callable():
    from repro.scheduling import naive_schedule

    s = BroadcastStrategy(scheduler=naive_schedule)
    plan = s.plan(make_task())
    assert plan.schedule.algorithm == "naive"


def test_broadcast_invalid_args():
    with pytest.raises(ValueError):
        BroadcastStrategy(scheduler="bogus")
    with pytest.raises(ValueError):
        BroadcastStrategy(n_chunks=0)


def test_adaptive_chunks():
    assert adaptive_chunks(0) == 1
    assert adaptive_chunks(TARGET_CHUNK_BYTES - 1) == 1
    assert adaptive_chunks(10 * TARGET_CHUNK_BYTES) == 10
    assert adaptive_chunks(10_000 * TARGET_CHUNK_BYTES) == MAX_CHUNKS


# ----------------------------------------------------------------------
# signal
# ----------------------------------------------------------------------
def test_signal_one_byte_per_pair():
    task = make_task("RRR", "S0RR")
    plan = SignalStrategy().plan(task)
    assert not plan.data_complete
    assert all(op.nbytes == 1.0 for op in plan.ops)
    n_pairs = sum(len(ut.receivers) for ut in task.unit_tasks())
    assert len(plan.ops) == n_pairs


# ----------------------------------------------------------------------
# cross-strategy invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["send_recv", "allgather", "broadcast"])
def test_plans_reference_valid_devices(name):
    task = make_task("RS0R", "RRS0")
    plan = make_strategy(name).plan(task)
    all_devs = set(task.src_mesh.devices) | set(task.dst_mesh.devices)
    for op in plan.ops:
        if isinstance(op, SendOp):
            assert {op.sender, op.receiver} <= all_devs
        elif isinstance(op, (BroadcastOp, ScatterOp)):
            assert op.sender in all_devs
            assert set(op.receivers) <= all_devs
        elif isinstance(op, AllGatherOp):
            assert set(op.devices) <= all_devs


@pytest.mark.parametrize("name", ["send_recv", "allgather", "broadcast", "signal"])
def test_plan_op_ids_sequential(name):
    plan = make_strategy(name).plan(make_task("RS01R", "S01RR"))
    assert [op.op_id for op in plan.ops] == list(range(len(plan.ops)))
    for op in plan.ops:
        assert all(d < op.op_id for d in op.deps)
