"""Unit tests for the cluster topology model."""

import pytest

from repro.sim.cluster import GB, GBPS, Cluster, ClusterSpec


def test_default_spec_matches_paper_testbed():
    spec = ClusterSpec()
    assert spec.devices_per_host == 4  # p3.8xlarge
    assert spec.inter_host_bandwidth == pytest.approx(10 * GBPS)  # 10 Gbps
    assert spec.intra_host_bandwidth > spec.inter_host_bandwidth


def test_gbps_constant():
    assert GBPS == pytest.approx(1.25e8)
    assert GB == 2**30


def test_device_enumeration():
    c = Cluster(ClusterSpec(n_hosts=3, devices_per_host=2))
    assert c.n_devices == 6
    assert c.n_hosts == 3
    assert [d.device_id for d in c.devices] == list(range(6))
    assert [d.host_id for d in c.devices] == [0, 0, 1, 1, 2, 2]
    assert [d.local_id for d in c.devices] == [0, 1, 0, 1, 0, 1]


def test_host_of_and_same_host():
    c = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
    assert c.host_of(0) == 0
    assert c.host_of(5) == 1
    assert c.same_host(0, 3)
    assert not c.same_host(3, 4)


def test_hosts_of_set():
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    assert c.hosts_of([0, 1, 4, 13]) == {0, 1, 3}


def test_unknown_device_raises():
    c = Cluster(ClusterSpec(n_hosts=1, devices_per_host=2))
    with pytest.raises(KeyError):
        c.device(2)
    with pytest.raises(KeyError):
        c.host_of(-1)


def test_link_bandwidth_intra_vs_inter():
    spec = ClusterSpec(n_hosts=2, devices_per_host=2)
    c = Cluster(spec)
    assert c.link_bandwidth(0, 1) == spec.intra_host_bandwidth
    assert c.link_bandwidth(0, 2) == spec.inter_host_bandwidth
    assert c.link_latency(0, 1) == spec.intra_host_latency
    assert c.link_latency(0, 2) == spec.inter_host_latency


def test_self_link_rejected():
    c = Cluster(ClusterSpec())
    with pytest.raises(ValueError):
        c.link_bandwidth(0, 0)
    with pytest.raises(ValueError):
        c.link_latency(3, 3)


@pytest.mark.parametrize(
    "kw",
    [
        {"n_hosts": 0},
        {"devices_per_host": 0},
        {"inter_host_bandwidth": 0},
        {"intra_host_bandwidth": -1},
        {"inter_host_latency": -0.1},
    ],
)
def test_invalid_spec_rejected(kw):
    with pytest.raises(ValueError):
        ClusterSpec(**kw)


def test_spec_n_devices():
    assert ClusterSpec(n_hosts=3, devices_per_host=4).n_devices == 12


def test_host_device_cross_reference():
    c = Cluster(ClusterSpec(n_hosts=2, devices_per_host=3))
    for host in c.hosts:
        for dev in host.devices:
            assert dev.host_id == host.host_id
            assert c.device(dev.device_id) is dev
