"""Tests for permanent host failures and the elastic recovery runtime."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.models.gpt import GPTConfig, build_gpt
from repro.recovery import (
    CheckpointConfig,
    CheckpointStore,
    RecoveryError,
    optimal_interval,
    place_stages,
    replan,
    simulate_training_run,
)
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.faults import (
    FaultReport,
    FaultSchedule,
    FlapWindow,
    HostFailure,
    RetryPolicy,
)
from repro.strategies import BroadcastStrategy


def small_job(n_hosts=3, n_spares=1):
    cluster = Cluster(
        ClusterSpec(n_hosts=n_hosts, devices_per_host=4, n_spare_hosts=n_spares)
    )
    config = GPTConfig(name="GPT-small", n_layers=4, hidden=1024, dp=2, op=2, pp=2)
    return build_gpt(config, cluster=cluster)


# ----------------------------------------------------------------------
# HostFailure semantics
# ----------------------------------------------------------------------
class TestHostFailure:
    def test_dead_is_forever(self):
        fs = FaultSchedule(host_failures=(HostFailure(host=1, time=5.0),))
        assert not fs.host_dead(1, 4.9)
        assert fs.host_dead(1, 5.0)
        assert fs.host_dead(1, 1e9)
        assert not fs.host_dead(0, 1e9)
        assert fs.failed_hosts(4.0) == frozenset()
        assert fs.failed_hosts(6.0) == frozenset({1})

    def test_host_down_includes_dead(self):
        fs = FaultSchedule(host_failures=(HostFailure(host=2, time=1.0),))
        assert fs.host_down(2, 2.0)
        assert fs.host_down_during(2, 0.5, 1.5)
        assert not fs.host_down_during(2, 0.0, 0.5)
        assert fs.nic_factor(2, 3.0) == 0.0

    def test_first_host_failure_ordering(self):
        fs = FaultSchedule(
            host_failures=(HostFailure(1, 7.0), HostFailure(0, 3.0), HostFailure(2, 3.0))
        )
        assert fs.first_host_failure() == HostFailure(0, 3.0)
        assert fs.first_host_failure(after=3.5) == HostFailure(1, 7.0)
        assert fs.first_host_failure(after=8.0) is None

    def test_boundaries_and_horizon_include_failures(self):
        fs = FaultSchedule(host_failures=(HostFailure(0, 4.0),))
        assert 4.0 in fs.boundaries()
        assert fs.horizon() == 4.0

    def test_dead_host_mean_factor_floors(self):
        fs = FaultSchedule(host_failures=(HostFailure(0, 0.0),))
        # horizon is 0 (failure at t=0 has no end): dead host must stay
        # maximally unattractive, healthy hosts stay at 1.
        assert fs.mean_nic_factor(0) == pytest.approx(1e-6)
        assert fs.mean_nic_factor(1) == 1.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            HostFailure(host=0, time=-1.0)

    def test_generate_draws_distinct_hosts(self):
        fs = FaultSchedule.generate(
            seed=5, n_hosts=4, horizon=100.0, n_host_failures=4
        )
        victims = [f.host for f in fs.host_failures]
        assert sorted(victims) == [0, 1, 2, 3]
        assert fs == FaultSchedule.generate(
            seed=5, n_hosts=4, horizon=100.0, n_host_failures=4
        )

    def test_shifted_reanchors_failures(self):
        fs = FaultSchedule(
            seed=9,
            flaps=(FlapWindow(host=0, start=5.0, duration=4.0),),
            host_failures=(HostFailure(1, 2.0), HostFailure(2, 10.0)),
        )
        sh = fs.shifted(6.0)
        assert sh.seed == 9
        # past failure stays dead at t=0, future failure moves earlier
        assert sh.host_failures == (HostFailure(1, 0.0), HostFailure(2, 4.0))
        # straddling flap is clipped to its remaining duration
        assert sh.flaps == (FlapWindow(host=0, start=0.0, duration=3.0),)
        assert fs.shifted(0.0) is fs
        with pytest.raises(ValueError):
            fs.shifted(-1.0)


# ----------------------------------------------------------------------
# spare hosts
# ----------------------------------------------------------------------
class TestSpareHosts:
    def test_spares_are_trailing_hosts(self):
        cluster = Cluster(ClusterSpec(n_hosts=4, devices_per_host=2, n_spare_hosts=1))
        assert cluster.spec.n_active_hosts == 3
        assert cluster.active_host_ids == (0, 1, 2)
        assert cluster.spare_host_ids == (3,)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_hosts=2, n_spare_hosts=2)
        with pytest.raises(ValueError):
            ClusterSpec(n_hosts=2, n_spare_hosts=-1)


# ----------------------------------------------------------------------
# escalate + blocked tasks (executor satellites)
# ----------------------------------------------------------------------
class TestEscalation:
    def test_escalate_records_provenance(self):
        rep = FaultReport(status="recovered", detail="retried ok")
        rep.escalate("ops never delivered")
        assert rep.status == "fatal"
        assert rep.escalations == ["recovered->fatal: ops never delivered"]
        assert "retried ok; ops never delivered" == rep.detail
        rep.escalate("second look")
        assert rep.escalations[-1] == "fatal->fatal: second look"

    def test_escalate_requires_detail(self):
        with pytest.raises(ValueError):
            FaultReport(status="clean").escalate("")

    def test_blocked_tasks_dropped_from_finish(self, cluster4x4):
        src = DeviceMesh.from_hosts(cluster4x4, [0, 1])
        dst = DeviceMesh.from_hosts(cluster4x4, [2, 3])
        task = ReshardingTask((64, 64), src, "S0R", dst, "RS1")
        plan = BroadcastStrategy().plan(task)  # fault-blind plan
        faults = FaultSchedule(
            seed=0, flaps=(FlapWindow(host=0, start=0.0, duration=1e6),)
        )
        res = simulate_plan(
            plan,
            faults=faults,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base=1e-4),
        )
        assert res.failed_ops and res.blocked_tasks
        # blocked tasks have no finish time and all their ops failed
        ops_by_task: dict[int, list[int]] = {}
        for op in plan.ops:
            ops_by_task.setdefault(op.unit_task_id, []).append(op.op_id)
        for tid in res.blocked_tasks:
            assert tid not in res.task_finish
            assert all(o in res.failed_ops for o in ops_by_task[tid])
        assert res.fault_report.fatal
        assert any("blocked behind" in e for e in res.fault_report.escalations)


# ----------------------------------------------------------------------
# checkpointing
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_write_cost_is_max_over_hosts(self):
        cluster = Cluster(ClusterSpec(n_hosts=2, devices_per_host=2))
        meshes = [
            DeviceMesh.from_hosts(cluster, [0]),
            DeviceMesh.from_hosts(cluster, [1]),
        ]
        state = {s: np.zeros(1024, dtype=np.float32) for s in range(2)}
        store = CheckpointStore(
            CheckpointConfig(interval=1, write_bandwidth=1e6, replicate=True)
        )
        cost = store.write(0, 0.0, state, meshes)
        # each host writes its own 4 KiB shard set plus the buddy's
        assert cost == pytest.approx(2 * 4096 / 1e6)
        assert store.latest is not None
        assert store.latest.iteration == 0
        store.latest.arrays[0][:] = -1.0
        assert not np.any(state[0] == -1.0), "checkpoint must be a copy"

    def test_replicas(self):
        cluster = Cluster(ClusterSpec(n_hosts=2, devices_per_host=2))
        meshes = [
            DeviceMesh.from_hosts(cluster, [0]),
            DeviceMesh.from_hosts(cluster, [1]),
        ]
        store = CheckpointStore(CheckpointConfig(interval=1, replicate=True))
        store.write(3, 1.0, {0: np.zeros(8), 1: np.zeros(8)}, meshes)
        ck = store.latest
        assert [m.hosts for m in ck.replicas_of(0)] == [(0,), (1,)]
        assert [m.hosts for m in ck.replicas_of(1)] == [(1,), (0,)]

    def test_interval_zero_disables(self):
        store = CheckpointStore(CheckpointConfig(interval=0))
        assert store.write(0, 0.0, {0: np.zeros(4)}, []) == 0.0
        assert store.latest is None and store.n_writes == 0

    def test_young_daly(self):
        assert optimal_interval(mtbf=100.0, checkpoint_cost=2.0) == pytest.approx(
            20.0
        )
        with pytest.raises(ValueError):
            optimal_interval(0.0, 1.0)


# ----------------------------------------------------------------------
# replanning
# ----------------------------------------------------------------------
class TestReplan:
    def test_place_stages_shrinks_by_splitting(self):
        cluster = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
        meshes = place_stages(cluster, 2, [0])
        assert [m.devices for m in meshes] == [(0, 1), (2, 3)]
        with pytest.raises(RecoveryError):
            place_stages(cluster, 9, [0])
        with pytest.raises(RecoveryError):
            place_stages(cluster, 1, [])

    def test_substitute_preserves_mesh_shape(self):
        spec = small_job()
        faults = FaultSchedule(host_failures=(HostFailure(1, 10.0),))
        rep = simulate_training_run(
            spec, 6, faults=faults, config=CheckpointConfig(interval=2)
        )
        (event,) = rep.events
        assert event.mode == "substitute"
        assert event.promoted_spares == (2,)
        assert event.certified

    def test_unrecoverable_without_replication(self):
        spec = small_job(n_hosts=2, n_spares=0)
        faults = FaultSchedule(host_failures=(HostFailure(1, 10.0),))
        config = CheckpointConfig(interval=2, replicate=False)
        with pytest.raises(RecoveryError, match="unrecoverable"):
            simulate_training_run(spec, 8, faults=faults, config=config)

    def test_failure_without_checkpoint_is_loud(self):
        spec = small_job()
        faults = FaultSchedule(host_failures=(HostFailure(1, 1.0),))
        with pytest.raises(RecoveryError, match="no checkpoint"):
            simulate_training_run(
                spec, 4, faults=faults, config=CheckpointConfig(interval=0)
            )


# ----------------------------------------------------------------------
# the end-to-end acceptance scenario
# ----------------------------------------------------------------------
class TestTrainingRun:
    def test_fault_free_run_has_no_recovery_overhead(self):
        spec = small_job()
        rep = simulate_training_run(spec, 5, config=CheckpointConfig(interval=0))
        assert rep.completed and rep.n_restarts == 0
        assert rep.total_time == pytest.approx(rep.ideal_time)
        assert rep.overhead == pytest.approx(0.0)

    def test_recovers_through_permanent_host_loss(self):
        """A seeded run with a mid-training permanent failure completes
        all iterations via recovery: >= 1 restart, nonzero reshard
        phase, certified delivery, and a final state bit-identical to
        the fault-free run's."""
        spec = small_job()
        baseline = simulate_training_run(spec, 10, config=CheckpointConfig(interval=3))
        faults = FaultSchedule(
            host_failures=(HostFailure(host=1, time=baseline.total_time * 0.45),)
        )
        rep = simulate_training_run(
            spec, 10, faults=faults, config=CheckpointConfig(interval=3)
        )
        assert rep.completed
        assert rep.iterations_completed == 10
        assert rep.n_restarts >= 1
        assert rep.time_reshard > 0.0
        assert all(e.certified for e in rep.events)
        assert rep.events[0].rollback_iterations >= 1
        assert rep.total_time > baseline.total_time
        assert rep.state_digest == baseline.state_digest

    def test_shrink_after_spare_exhaustion(self):
        spec = small_job(n_hosts=3, n_spares=1)
        faults = FaultSchedule(
            host_failures=(HostFailure(1, 20.0), HostFailure(2, 60.0))
        )
        rep = simulate_training_run(
            spec, 12, faults=faults, config=CheckpointConfig(interval=3)
        )
        assert rep.completed
        assert [e.mode for e in rep.events] == ["substitute", "shrink"]
        baseline = simulate_training_run(spec, 12, config=CheckpointConfig(interval=3))
        assert rep.state_digest == baseline.state_digest

    def test_max_restarts_aborts_cleanly(self):
        spec = small_job(n_hosts=3, n_spares=1)
        faults = FaultSchedule(
            host_failures=(HostFailure(1, 20.0), HostFailure(2, 30.0))
        )
        rep = simulate_training_run(
            spec, 50, faults=faults, config=CheckpointConfig(interval=3), max_restarts=1
        )
        assert not rep.completed
        assert rep.n_restarts == 1
        assert "restart" in rep.aborted_reason
        assert rep.iterations_completed < 50

    def test_spare_dying_idle_is_benign(self):
        spec = small_job(n_hosts=3, n_spares=1)
        faults = FaultSchedule(host_failures=(HostFailure(2, 1.0),))
        rep = simulate_training_run(
            spec, 4, faults=faults, config=CheckpointConfig(interval=2)
        )
        assert rep.completed and rep.n_restarts == 0

    def test_byte_determinism_across_processes(self, tmp_path):
        """The acceptance bar: two fresh interpreter processes produce
        identical digests and simulated clocks for the same seed."""
        script = textwrap.dedent(
            """
            import json, sys
            from repro.models.gpt import GPTConfig, build_gpt
            from repro.recovery import CheckpointConfig, simulate_training_run
            from repro.sim.cluster import Cluster, ClusterSpec
            from repro.sim.faults import FaultSchedule, HostFailure

            cluster = Cluster(
                ClusterSpec(n_hosts=3, devices_per_host=4, n_spare_hosts=1)
            )
            cfg = GPTConfig(
                name="GPT-small", n_layers=4, hidden=1024, dp=2, op=2, pp=2
            )
            spec = build_gpt(cfg, cluster=cluster)
            faults = FaultSchedule(host_failures=(HostFailure(1, 10.0),))
            rep = simulate_training_run(
                spec, 8, faults=faults, config=CheckpointConfig(interval=2), seed=11
            )
            print(json.dumps({
                "digest": rep.state_digest,
                "total": rep.total_time,
                "restarts": rep.n_restarts,
            }))
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        outs = []
        for run in range(2):
            env["PYTHONHASHSEED"] = str(run)  # hash seed must not matter
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outs.append(json.loads(proc.stdout.strip().splitlines()[-1]))
        assert outs[0] == outs[1]
        assert outs[0]["restarts"] >= 1
