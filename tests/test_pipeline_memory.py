"""Tests for activation-memory analysis (paper §4, Table 1 argument)."""

import pytest

from repro.pipeline.executor import simulate_pipeline
from repro.pipeline.memory import (
    analytic_peak_inflight,
    eager_memory_increase,
    memory_report,
)
from repro.pipeline.schedules import schedule_job
from repro.pipeline.stage import CommEdge, PipelineJob, StageProfile


def make_job(p=3, m=8, act=100.0):
    stages = [
        StageProfile(s, 1.0, 1.0, 1.0, params_bytes=1000.0, activation_bytes=act)
        for s in range(p)
    ]
    edges = [CommEdge(s, s + 1, 0.0, 0.0) for s in range(p - 1)]
    return PipelineJob(stages, edges, n_microbatches=m)


@pytest.mark.parametrize("sched", ["gpipe", "1f1b", "eager_1f1b"])
def test_analytic_matches_measured(sched):
    p, m = 3, 8
    job = make_job(p, m)
    r = simulate_pipeline(job, schedule_job(sched, p, m))
    for s in range(p):
        assert r.peak_activation_counts[s] == analytic_peak_inflight(sched, s, p, m)


def test_analytic_capped_by_microbatches():
    assert analytic_peak_inflight("gpipe", 0, 4, 3) == 3
    assert analytic_peak_inflight("1f1b", 0, 8, 2) == 2
    assert analytic_peak_inflight("eager_1f1b", 0, 8, 4) == 4


def test_unknown_schedule_rejected():
    with pytest.raises(ValueError):
        analytic_peak_inflight("2f2b", 0, 2, 2)


def test_eager_memory_increase_formula():
    # delta = (2(p-s-1)+1) - (p-s) = p - s - 1
    assert eager_memory_increase(0, 4, 10.0) == pytest.approx(30.0)
    assert eager_memory_increase(3, 4, 10.0) == pytest.approx(0.0)


def test_eager_increase_bounded_by_stages_times_activation():
    """The paper's bound: at most #stages x size_activation."""
    for p in range(1, 10):
        for s in range(p):
            assert eager_memory_increase(s, p, 1.0) <= p


def test_memory_report():
    p, m = 2, 4
    job = make_job(p, m, act=7.0)
    r = simulate_pipeline(job, schedule_job("1f1b", p, m))
    rep = memory_report(job, r)
    assert len(rep) == p
    assert rep[0].stage == 0
    assert rep[0].peak_activation_count == 2
    assert rep[0].activation_total == pytest.approx(14.0)
    assert rep[0].total == pytest.approx(1014.0)
