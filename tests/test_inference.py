"""Tests for pipelined forward-only inference."""

import pytest

from repro.models.gpt import GPTConfig, build_gpt
from repro.models.inference import forward_only_orders, run_inference
from repro.pipeline.executor import simulate_pipeline
from repro.pipeline.schedules import Task
from repro.pipeline.stage import CommEdge, PipelineJob, StageProfile


@pytest.fixture(scope="module")
def spec():
    return build_gpt(GPTConfig(global_batch=64, n_layers=8))


def test_forward_only_orders_shape():
    orders = forward_only_orders(3, 5)
    assert len(orders) == 3
    assert all(o == [Task("F", i) for i in range(5)] for o in orders)


def test_forward_only_executor_accepts():
    stages = [StageProfile(s, 1.0, 1.0, 1.0) for s in range(2)]
    edges = [CommEdge(0, 1, 0.5, 0.5)]
    job = PipelineJob(stages, edges, n_microbatches=4)
    r = simulate_pipeline(job, forward_only_orders(2, 4), overlap=True)
    assert len(r.timeline) == 8
    assert all(e.kind == "F" for e in r.timeline)
    # only forward transfers happen
    assert all(c.direction == "fwd" for c in r.comms)


def test_inference_throughput_and_latency(spec):
    r = run_inference(spec, "ours", n_microbatches=16)
    assert r.total_time > 0
    assert 0 < r.first_batch_latency <= r.total_time
    assert r.throughput_microbatches_per_s == pytest.approx(16 / r.total_time)


def test_inference_overlap_helps(spec):
    blocking = run_inference(spec, "broadcast", n_microbatches=16)
    overlapped = run_inference(spec, "ours", n_microbatches=16)
    assert overlapped.total_time <= blocking.total_time + 1e-12


def test_inference_steady_state_rate(spec):
    """Steady throughput is bound by the slower of compute and the
    boundary transfer (the comm channel serializes per micro-batch)."""
    from repro.models.parallel import resolve_comm_edges

    a = run_inference(spec, "ours", n_microbatches=8)
    b = run_inference(spec, "ours", n_microbatches=16)
    per_mb = (b.total_time - a.total_time) / 8
    stage_fwd = max(p.fwd_time for p in spec.profiles)
    comm_fwd = max(e.fwd_time for e in resolve_comm_edges(spec, "broadcast"))
    assert per_mb == pytest.approx(max(stage_fwd, comm_fwd), rel=0.05)


def test_inference_first_batch_latency_is_pipeline_depth(spec):
    r = run_inference(spec, "signal", n_microbatches=4)
    depth = sum(p.fwd_time for p in spec.profiles)
    assert r.first_batch_latency == pytest.approx(depth, rel=0.05)
