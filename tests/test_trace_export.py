"""Tests for Chrome-trace export."""

import json

import pytest

from repro.core.api import reshard
from repro.core.mesh import DeviceMesh
from repro.pipeline.executor import simulate_pipeline
from repro.pipeline.schedules import schedule_job
from repro.pipeline.stage import CommEdge, PipelineJob, StageProfile
from repro.sim.cluster import Cluster, ClusterSpec
from repro.viz import flow_trace_events, pipeline_trace_events, write_chrome_trace


@pytest.fixture
def pipe_result():
    stages = [StageProfile(s, 1.0, 1.0, 1.0) for s in range(2)]
    edges = [CommEdge(0, 1, 0.3, 0.3, label="act")]
    job = PipelineJob(stages, edges, n_microbatches=3)
    return simulate_pipeline(job, schedule_job("1f1b", 2, 3), overlap=True)


def test_pipeline_trace_events(pipe_result):
    events = pipeline_trace_events(pipe_result)
    compute = [e for e in events if e.get("cat") == "compute"]
    comm = [e for e in events if e.get("cat") == "comm"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(meta) == 2
    # 3 mb x (F + B) x 2 stages
    assert len(compute) == 12
    # 3 mb x 2 directions
    assert len(comm) == 6
    for e in compute + comm:
        assert e["ph"] == "X"
        assert e["dur"] > 0
        assert e["ts"] >= 0


def test_flow_trace_events():
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    r = reshard((64, 64, 8), src, "S0RR", dst, "RS1R", strategy="broadcast")
    events = flow_trace_events(r.timing.network.trace, c)
    flows = [e for e in events if e["ph"] == "X"]
    assert len(flows) == len(r.timing.network.trace)
    cats = {e["cat"] for e in flows}
    assert "cross" in cats
    assert all(0 <= e["pid"] < 4 for e in flows)


def test_write_chrome_trace_roundtrip(tmp_path, pipe_result):
    events = pipeline_trace_events(pipe_result)
    path = tmp_path / "trace.json"
    write_chrome_trace(events, str(path))
    data = json.loads(path.read_text())
    assert data["displayTimeUnit"] == "ms"
    assert len(data["traceEvents"]) == len(events)
