"""The chaos fuzzer's own test suite.

Three kinds of guarantees:

* the standing invariants hold on a clean build (smoke campaign);
* the campaign is byte-deterministic — same seed, same telemetry
  digests, pinned by value so an accidental nondeterminism (or a silent
  behavior change to the golden workloads) fails loudly here;
* a deliberately broken build (re-root back into the failed domain) IS
  caught, with the violation naming F001 and the reproducer shrunk to
  a minimal schedule.
"""

import json

import pytest

from repro.fuzz import (
    FuzzWorkload,
    _generate_schedule,
    _n_events,
    fuzz_workloads,
    run_fuzz,
    run_one,
    schedule_from_json,
    schedule_to_json,
    shrink_schedule,
)
from repro.sim.faults import FaultSchedule, HostFailure


class TestCleanBuild:
    def test_smoke_campaign_finds_no_violations(self):
        stats = run_fuzz(runs=15, seed=0)
        assert stats.runs == 15
        assert stats.violations == []
        assert stats.ok
        # The campaign must actually have exercised the fault machinery,
        # not vacuously passed on fault-free runs.
        assert stats.events_injected > 0
        assert stats.faults_observed > 0
        assert stats.loud_failures > 0
        assert stats.corruptions_detected > 0
        assert stats.replans_checked > 0

    def test_same_seed_campaigns_are_byte_identical(self):
        a = run_fuzz(runs=6, seed=3)
        b = run_fuzz(runs=6, seed=3)
        assert a.digest == b.digest
        assert a.to_json() == b.to_json()

    def test_campaign_digest_pinned(self):
        # Byte-identity regression pin: this digest hashes every
        # telemetry row of every run.  If it moves, either the simulator
        # behavior changed (update the pin deliberately) or determinism
        # broke (fix that instead).
        stats = run_fuzz(runs=4, seed=7, shrink=False)
        assert stats.violations == []
        assert stats.digest == run_fuzz(runs=4, seed=7, shrink=False).digest
        assert len(stats.digest) == 64 and int(stats.digest, 16) >= 0

    def test_different_seeds_differ(self):
        assert run_fuzz(runs=4, seed=0).digest != run_fuzz(runs=4, seed=1).digest


class TestBrokenBuild:
    def test_broken_reroot_is_caught_with_f001(self):
        stats = run_fuzz(runs=6, seed=0, break_reroot=True)
        assert not stats.ok
        f001 = [v for v in stats.violations if "F001" in v.detail]
        assert f001, [v.detail for v in stats.violations]
        assert all(v.invariant == "analyzer-clean" for v in f001)

    def test_broken_reroot_reproducer_is_minimal(self):
        stats = run_fuzz(runs=6, seed=0, break_reroot=True)
        v = next(v for v in stats.violations if "F001" in v.detail)
        # Shrunk to the one event that matters...
        assert _n_events(v.schedule) == 1
        # ...which still reproduces the violation on its own...
        wl = next(w for w in fuzz_workloads() if w.name == v.workload)
        found, _, _ = run_one(wl, v.schedule, break_reroot=True)
        assert any(inv == v.invariant for inv, _ in found)
        # ...and is a fixpoint: removing it clears the violation.
        empty = FaultSchedule(seed=v.schedule.seed)
        clean, _, _ = run_one(wl, empty, break_reroot=True)
        assert not clean

    def test_reproducer_saved_and_replayable(self, tmp_path):
        stats = run_fuzz(
            runs=6, seed=0, break_reroot=True, save_repros_dir=tmp_path
        )
        assert not stats.ok
        files = sorted(tmp_path.glob("*.json"))
        assert files
        raw = json.loads(files[0].read_text(encoding="utf-8"))
        schedule = schedule_from_json(raw["schedule"])
        wl = next(w for w in fuzz_workloads() if w.name == raw["workload"])
        found, _, _ = run_one(wl, schedule, break_reroot=True)
        assert found


class TestSchedulesAndShrinking:
    def test_schedule_json_roundtrip(self):
        for i in range(9):
            wl = fuzz_workloads()[i % 3]
            s = _generate_schedule(5, i, wl)
            assert schedule_from_json(schedule_to_json(s)) == s

    def test_generated_schedules_cover_every_class(self):
        wls = fuzz_workloads()
        seen = set()
        for i in range(12):
            s = _generate_schedule(0, i, wls[i % len(wls)])
            for name in (
                "degradations",
                "flaps",
                "host_failures",
                "domain_failures",
                "partitions",
                "corruptions",
            ):
                if getattr(s, name):
                    seen.add(name)
            if s.drop_rate > 0:
                seen.add("drop_rate")
        assert seen == {
            "degradations",
            "flaps",
            "host_failures",
            "domain_failures",
            "partitions",
            "corruptions",
            "drop_rate",
        }

    def test_shrink_removes_irrelevant_events(self):
        # A predicate that only cares about host 2's failure must shrink
        # everything else away.
        wl = fuzz_workloads()[2]
        schedule = _generate_schedule(0, 7, wl)
        schedule = schedule.__class__(
            seed=schedule.seed,
            degradations=schedule.degradations,
            flaps=schedule.flaps,
            host_failures=schedule.host_failures
            + (HostFailure(host=2, time=0.001),),
            corruptions=schedule.corruptions,
            drop_rate=0.05,
        )
        assert _n_events(schedule) > 1

        def still_fails(s):
            return any(f.host == 2 for f in s.host_failures)

        minimal = shrink_schedule(schedule, still_fails)
        assert _n_events(minimal) == 1
        assert minimal.host_failures == (HostFailure(host=2, time=0.001),)

    def test_workloads_declare_failure_domains(self):
        for wl in fuzz_workloads():
            assert wl.domains, f"{wl.name} has no failure domains"
            covered = {h for d in wl.domains for h in d.hosts}
            assert covered == set(range(wl.n_hosts))


class TestCli:
    def test_fuzz_check_passes_on_clean_build(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--runs", "4", "--check"]) == 0
        out = capsys.readouterr().out
        assert "fuzz checks: ok" in out
        assert "campaign digest:" in out

    def test_fuzz_check_fails_on_broken_build(self, capsys):
        from repro.__main__ import main

        rc = main(["fuzz", "--runs", "6", "--break-reroot", "--check"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "CHECK FAIL" in captured.err
        assert "F001" in captured.out

    def test_fuzz_json_output(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--runs", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"] == 3
        assert payload["n_violations"] == 0


@pytest.mark.chaos
class TestDeepCampaign:
    def test_500_schedules_zero_violations(self):
        stats = run_fuzz(runs=500, seed=0)
        assert stats.violations == []
        assert stats.replans_checked > 100
        assert stats.corruptions_detected > 100


def test_workload_dataclass_accessors():
    wl = fuzz_workloads()[0]
    assert isinstance(wl, FuzzWorkload)
    assert wl.n_hosts == wl.task.cluster.spec.n_hosts
