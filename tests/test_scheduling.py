"""Tests for the load-balancing / scheduling algorithms (paper §3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.scheduling import (
    SchedTask,
    SchedulingProblem,
    brute_force_schedule,
    dfs_schedule,
    ensemble_schedule,
    evaluate,
    load_balance_schedule,
    naive_schedule,
    randomized_greedy_schedule,
    validate_schedule,
)
from repro.sim.cluster import Cluster, ClusterSpec


def T(task_id, options, receivers, dur, n_devices=2):
    return SchedTask(
        task_id=task_id,
        sender_host_options=tuple(options),
        receiver_hosts=frozenset(receivers),
        duration_by_host={h: dur for h in options},
        n_devices=n_devices,
    )


ALGOS = [
    naive_schedule,
    load_balance_schedule,
    dfs_schedule,
    randomized_greedy_schedule,
    ensemble_schedule,
]


# ----------------------------------------------------------------------
# problem / evaluate
# ----------------------------------------------------------------------
def test_problem_validation():
    with pytest.raises(ValueError, match="duplicate"):
        SchedulingProblem([T(0, [0], [1], 1.0), T(0, [0], [1], 1.0)])
    with pytest.raises(ValueError, match="sender"):
        SchedulingProblem([T(0, [], [1], 1.0)])
    with pytest.raises(ValueError, match="duration"):
        SchedulingProblem(
            [SchedTask(0, (0, 1), frozenset({2}), {0: 1.0})]
        )


def test_evaluate_serializes_conflicting_tasks():
    # Two tasks with the same receiver host must not overlap (Eq. 3).
    p = SchedulingProblem([T(0, [0], [2], 1.0), T(1, [1], [2], 1.0)])
    makespan, starts = evaluate(p, {0: 0, 1: 1}, [0, 1])
    assert makespan == pytest.approx(2.0)
    assert starts == {0: 0.0, 1: 1.0}


def test_evaluate_parallelizes_disjoint_tasks():
    p = SchedulingProblem([T(0, [0], [2], 1.0), T(1, [1], [3], 1.0)])
    makespan, starts = evaluate(p, {0: 0, 1: 1}, [0, 1])
    assert makespan == pytest.approx(1.0)
    assert starts[0] == starts[1] == 0.0


def test_evaluate_same_sender_serializes():
    p = SchedulingProblem([T(0, [0], [2], 1.0), T(1, [0], [3], 1.0)])
    makespan, _ = evaluate(p, {0: 0, 1: 0}, [0, 1])
    assert makespan == pytest.approx(2.0)


def test_validate_schedule():
    p = SchedulingProblem([T(0, [0], [2], 1.0), T(1, [1], [3], 1.0)])
    good = naive_schedule(p)
    validate_schedule(p, good)
    bad = naive_schedule(p)
    bad.assignment[0] = 9
    with pytest.raises(ValueError, match="Eq. 2"):
        validate_schedule(p, bad)
    bad2 = naive_schedule(p)
    bad2.order = (0,)
    with pytest.raises(ValueError, match="permutation"):
        validate_schedule(p, bad2)


# ----------------------------------------------------------------------
# individual algorithms
# ----------------------------------------------------------------------
def test_naive_uses_lowest_host():
    p = SchedulingProblem([T(0, [3, 1], [5], 1.0)])
    s = naive_schedule(p)
    assert s.assignment[0] == 1
    assert s.order == (0,)


def test_naive_congests_case2_style():
    """All slices from one host: naive sends everything from host 0."""
    tasks = [T(i, [0, 1], [2 + i % 2], 1.0) for i in range(4)]
    p = SchedulingProblem(tasks)
    naive = naive_schedule(p)
    assert all(h == 0 for h in naive.assignment.values())
    ours = ensemble_schedule(p)
    assert ours.makespan < naive.makespan


def test_load_balance_spreads_load():
    tasks = [T(i, [0, 1], [2 + i], 1.0) for i in range(4)]
    p = SchedulingProblem(tasks)
    s = load_balance_schedule(p)
    hosts = list(s.assignment.values())
    assert hosts.count(0) == hosts.count(1) == 2


def test_load_balance_is_lpt_order():
    tasks = [T(0, [0], [2], 1.0), T(1, [0], [3], 5.0), T(2, [0], [4], 3.0)]
    p = SchedulingProblem(tasks)
    s = load_balance_schedule(p)
    assert s.order == (1, 2, 0)  # descending duration


def test_dfs_finds_optimal_small():
    # case-5 shape: 4 equal tasks, 2 sender options, paired receivers
    tasks = [T(i, [0, 1], [2 + i // 2], 1.0) for i in range(4)]
    p = SchedulingProblem(tasks)
    best = brute_force_schedule(p)
    s = dfs_schedule(p, time_budget=2.0)
    assert s.makespan == pytest.approx(best.makespan)


def test_dfs_respects_budget():
    tasks = [T(i, [0, 1, 2], [3 + i % 3], 1.0 + 0.1 * i) for i in range(10)]
    p = SchedulingProblem(tasks)
    import time

    t0 = time.monotonic()
    s = dfs_schedule(p, time_budget=0.05)
    assert time.monotonic() - t0 < 1.0
    validate_schedule(p, s)


def test_randomized_greedy_valid_and_effective():
    tasks = [T(i, [i % 2], [2 + (i // 2) % 2], 1.0) for i in range(8)]
    p = SchedulingProblem(tasks)
    s = randomized_greedy_schedule(p, seed=1)
    validate_schedule(p, s)
    # 8 tasks, pairs can run 2-at-a-time -> makespan 4 is optimal
    assert s.makespan == pytest.approx(4.0)


def test_randomized_greedy_deterministic_per_seed():
    tasks = [T(i, [0, 1], [2 + i % 2], 1.0 + i * 0.01) for i in range(6)]
    p = SchedulingProblem(tasks)
    a = randomized_greedy_schedule(p, seed=7)
    b = randomized_greedy_schedule(p, seed=7)
    assert a.order == b.order and a.assignment == b.assignment


def test_ensemble_never_worse_than_components():
    tasks = [T(i, [0, 1], [2 + i % 2], 1.0) for i in range(5)]
    p = SchedulingProblem(tasks)
    e = ensemble_schedule(p)
    rg = randomized_greedy_schedule(p)
    df = dfs_schedule(p)
    assert e.makespan <= min(rg.makespan, df.makespan) + 1e-12


def test_ensemble_skips_dfs_on_large_instances():
    tasks = [T(i, [0], [1 + i % 3], 1.0) for i in range(25)]
    p = SchedulingProblem(tasks)
    s = ensemble_schedule(p, dfs_max_tasks=20)
    validate_schedule(p, s)


def test_brute_force_guard():
    tasks = [T(i, [0], [1], 1.0) for i in range(9)]
    with pytest.raises(ValueError):
        brute_force_schedule(SchedulingProblem(tasks))


# ----------------------------------------------------------------------
# optimality comparisons on random small instances
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(st.integers(0, 2), min_size=1, max_size=2, unique=True),
            st.integers(3, 5),
            st.floats(0.5, 3.0),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_property_algorithms_valid_and_bounded(specs):
    tasks = [
        T(i, opts, [recv], dur) for i, (opts, recv, dur) in enumerate(specs)
    ]
    p = SchedulingProblem(tasks)
    best = brute_force_schedule(p)
    for algo in ALGOS:
        s = algo(p)
        validate_schedule(p, s)
        # every algorithm's claimed makespan is reproducible
        m, _ = evaluate(p, s.assignment, s.order)
        assert m == pytest.approx(s.makespan)
        # and at least as large as optimal
        assert s.makespan >= best.makespan - 1e-9
    assert ensemble_schedule(p).makespan <= best.makespan * 1.5 + 1e-9


def test_ensemble_optimal_on_table2_cases():
    """On the paper's microbenchmark shapes the ensemble reaches brute force."""
    cluster = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(cluster, [0, 1])
    dst = DeviceMesh.from_hosts(cluster, [2, 3])
    for src_spec, dst_spec in [("RS0R", "S0RR"), ("S1RR", "S0RR"), ("RRR", "S0RR")]:
        rt = ReshardingTask((16, 16, 16), src, src_spec, dst, dst_spec, dtype=np.float32)
        p = SchedulingProblem.from_resharding(rt)
        if p.n_tasks > 6:
            continue
        assert ensemble_schedule(p).makespan == pytest.approx(
            brute_force_schedule(p).makespan
        )


def test_from_resharding_durations():
    """Cross-host tasks get NIC-bound durations, local ones NVLink-bound."""
    cluster = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(cluster, [0, 1])
    dst = DeviceMesh.from_hosts(cluster, [2, 3])
    rt = ReshardingTask((16, 16, 16), src, "S0RR", dst, "S0RR", dtype=np.float32)
    p = SchedulingProblem.from_resharding(rt)
    for t in p.tasks:
        for h in t.sender_host_options:
            expected = (16 ** 3 // 2) * 4 / cluster.spec.inter_host_bandwidth
            assert t.duration(h) == pytest.approx(expected)
