"""Tests for the static pipeline-schedule analyzer.

Pins the static in-flight bound to the paper's analytic warm-up depths
(:func:`repro.pipeline.memory.analytic_peak_inflight`), and exercises
the memory (S001), structure (S002), and deadlock (D002) rules.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    analyze_pipeline_schedule,
    check_stage_orders,
    check_stage_orders_deadlock,
    static_peak_inflight,
)
from repro.pipeline.memory import analytic_peak_inflight
from repro.pipeline.schedules import SCHEDULE_NAMES, Task, schedule_job
from repro.pipeline.stage import CommEdge, PipelineJob, StageProfile


def make_job(n_stages, activation_bytes=10.0, params_bytes=100.0, capacity=0.0):
    stages = [
        StageProfile(
            stage_id=s,
            fwd_time=1.0,
            bwd_x_time=1.0,
            bwd_w_time=1.0,
            params_bytes=params_bytes,
            activation_bytes=activation_bytes,
            memory_capacity=capacity,
        )
        for s in range(n_stages)
    ]
    edges = [
        CommEdge(src_stage=s, dst_stage=s + 1, fwd_time=0.0, bwd_time=0.0)
        for s in range(n_stages - 1)
    ]
    return PipelineJob(stages=stages, edges=edges, n_microbatches=8)


# ----------------------------------------------------------------------
# The static bound equals the analytic warm-up depth (paper §4, Table 1)
# ----------------------------------------------------------------------
class TestStaticPeakMatchesAnalytic:
    @pytest.mark.parametrize("schedule", SCHEDULE_NAMES)
    @pytest.mark.parametrize("n_stages,n_microbatches",
                             [(2, 4), (4, 8), (4, 16), (8, 8)])
    def test_matches_analytic(self, schedule, n_stages, n_microbatches):
        orders = schedule_job(schedule, n_stages, n_microbatches)
        for stage, order in enumerate(orders):
            assert static_peak_inflight(order) == analytic_peak_inflight(
                schedule, stage, n_stages, n_microbatches
            ), f"{schedule} stage {stage}"

    @pytest.mark.parametrize("schedule", ["1f1b", "eager_1f1b"])
    def test_backward_weight_delay_does_not_change_peak(self, schedule):
        plain = schedule_job(schedule, 4, 8)
        delayed = schedule_job(schedule, 4, 8, delay_bw_weight=True)
        for order_a, order_b in zip(plain, delayed):
            assert static_peak_inflight(order_a) == static_peak_inflight(order_b)

    def test_gpipe_holds_everything(self):
        orders = schedule_job("gpipe", 4, 8)
        assert all(static_peak_inflight(o) == 8 for o in orders)


# ----------------------------------------------------------------------
# S001: memory capacity
# ----------------------------------------------------------------------
class TestMemoryBound:
    def test_over_capacity_flagged(self):
        # Stage 0 of 2-stage 1F1B holds 2 activations: 100 + 2*10 = 120.
        job = make_job(2, capacity=110.0)
        report = analyze_pipeline_schedule("1f1b", 2, 8, job=job)
        assert "S001" in report.codes
        flagged = {d.task_ids[0] for d in report.diagnostics if d.code == "S001"}
        assert 0 in flagged

    def test_fitting_capacity_is_clean(self):
        job = make_job(2, capacity=200.0)
        report = analyze_pipeline_schedule("1f1b", 2, 8, job=job)
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)

    def test_zero_capacity_means_unbounded(self):
        job = make_job(2, capacity=0.0)
        report = analyze_pipeline_schedule("gpipe", 2, 8, job=job)
        assert "S001" not in report.codes

    def test_eager_needs_more_than_1f1b(self):
        # Capacity sized so 1F1B stage 0 (2 in-flight) fits but
        # eager-1F1B stage 0 (3 in-flight) does not.
        job = make_job(2, capacity=125.0)
        assert analyze_pipeline_schedule("1f1b", 2, 8, job=job).ok
        report = analyze_pipeline_schedule("eager_1f1b", 2, 8, job=job)
        assert "S001" in report.codes

    def test_negative_capacity_rejected_at_construction(self):
        with pytest.raises(ValueError):
            StageProfile(stage_id=0, fwd_time=1.0, bwd_x_time=1.0,
                         bwd_w_time=1.0, memory_capacity=-1.0)


# ----------------------------------------------------------------------
# S002: structural checks on explicit orders
# ----------------------------------------------------------------------
def T(kind, mb):
    return Task(kind, mb)


class TestStructure:
    def test_duplicate_forward(self):
        orders = [[T("F", 0), T("F", 0), T("B", 0)]]
        report = check_stage_orders(orders, 1)
        assert "S002" in report.codes

    def test_missing_backward(self):
        orders = [[T("F", 0), T("F", 1), T("B", 0)]]
        report = check_stage_orders(orders, 2)
        assert "S002" in report.codes

    def test_backward_before_forward(self):
        orders = [[T("B", 0), T("F", 0)]]
        report = check_stage_orders(orders, 1)
        assert "S002" in report.codes

    def test_bw_before_bx(self):
        orders = [[T("F", 0), T("Bw", 0), T("Bx", 0)]]
        report = check_stage_orders(orders, 1)
        assert "S002" in report.codes

    def test_unknown_kind(self):
        orders = [[T("F", 0), T("Z", 0), T("B", 0)]]
        report = check_stage_orders(orders, 1)
        assert "S002" in report.codes

    def test_well_formed_split_backward_is_clean(self):
        orders = [[T("F", 0), T("Bx", 0), T("Bw", 0)]]
        report = check_stage_orders(orders, 1)
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)


# ----------------------------------------------------------------------
# D002: cross-stage deadlock
# ----------------------------------------------------------------------
class TestDeadlock:
    def test_inverted_stage_order_deadlocks(self):
        # Stage 0 runs its backward first; it waits on stage 1's
        # backward, which waits on stage 1's forward, which waits on
        # stage 0's forward — queued behind stage 0's backward. Hang.
        orders = [[T("B", 0), T("F", 0)], [T("F", 0), T("B", 0)]]
        report = check_stage_orders_deadlock(orders)
        assert "D002" in report.codes
        (diag,) = report.diagnostics
        assert diag.witness
        assert diag.witness[0] == diag.witness[-1]

    @pytest.mark.parametrize("schedule", SCHEDULE_NAMES)
    def test_named_schedules_never_deadlock(self, schedule):
        orders = schedule_job(schedule, 4, 8)
        assert check_stage_orders_deadlock(orders).ok

    def test_skip_connection_edges_are_honoured(self):
        # A 3-stage job with a skip edge 0 -> 2; the named schedules must
        # still come out clean under the richer wait-for graph.
        stages = [
            StageProfile(stage_id=s, fwd_time=1.0, bwd_x_time=1.0, bwd_w_time=1.0)
            for s in range(3)
        ]
        edges = [
            CommEdge(src_stage=0, dst_stage=1, fwd_time=0.0, bwd_time=0.0),
            CommEdge(src_stage=1, dst_stage=2, fwd_time=0.0, bwd_time=0.0),
            CommEdge(src_stage=0, dst_stage=2, fwd_time=0.0, bwd_time=0.0,
                     label="skip"),
        ]
        job = PipelineJob(stages=stages, edges=edges, n_microbatches=4)
        for schedule in SCHEDULE_NAMES:
            report = analyze_pipeline_schedule(schedule, 3, 4, job=job)
            assert report.ok, (
                schedule + ": "
                + "\n".join(d.format() for d in report.diagnostics)
            )


# ----------------------------------------------------------------------
# End-to-end: named schedules are clean
# ----------------------------------------------------------------------
class TestNamedSchedules:
    @pytest.mark.parametrize("schedule", SCHEDULE_NAMES)
    @pytest.mark.parametrize("delay", [False, True])
    def test_analyzer_accepts(self, schedule, delay):
        report = analyze_pipeline_schedule(
            schedule, 4, 8, delay_bw_weight=delay
        )
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)
        assert report.subject == f"pipeline-schedule[{schedule}]"
