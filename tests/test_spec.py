"""Unit and property tests for ShardingSpec (the paper's §2.2 notation)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.mesh import DeviceMesh
from repro.core.spec import REPLICATED, ShardingSpec, parse_spec
from repro.sim.cluster import Cluster, ClusterSpec


@pytest.fixture
def mesh24():
    c = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
    return DeviceMesh.from_hosts(c, [0, 1])


# ----------------------------------------------------------------------
# Parsing / formatting
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "text,dims",
    [
        ("R", ((),)),
        ("S0R", ((0,), ())),
        ("RS1", ((), (1,))),
        ("S01RR", ((0, 1), (), ())),
        ("RS0R", ((), (0,), ())),
        ("RRS0", ((), (), (0,))),
        ("S1S0", ((1,), (0,))),
        ("S10R", ((1, 0), ())),
    ],
)
def test_parse(text, dims):
    assert ShardingSpec.parse(text).dims == dims


@pytest.mark.parametrize("text", ["R", "S0R", "S01RR", "RS0R", "S1S0", "S10R"])
def test_roundtrip(text):
    assert str(ShardingSpec.parse(text)) == text


@pytest.mark.parametrize("text", ["", "X", "S", "SR0", "rr", "S2R", "0R"])
def test_parse_rejects_garbage(text):
    with pytest.raises(ValueError):
        ShardingSpec.parse(text)


def test_parse_spec_passthrough():
    s = ShardingSpec.parse("S0R")
    assert parse_spec(s) is s
    assert parse_spec("S0R") == s


def test_mesh_axis_used_twice_rejected():
    with pytest.raises(ValueError):
        ShardingSpec.parse("S0S0")
    with pytest.raises(ValueError):
        ShardingSpec.parse("S01S1")
    with pytest.raises(ValueError):
        ShardingSpec([(0, 0)])


def test_immutable():
    s = ShardingSpec.parse("S0R")
    with pytest.raises(AttributeError):
        s.dims = ()


# ----------------------------------------------------------------------
# Semantics over a mesh
# ----------------------------------------------------------------------
def test_shards_per_dim(mesh24):
    assert ShardingSpec.parse("S0RR").shards_per_dim(mesh24) == (2, 1, 1)
    assert ShardingSpec.parse("RS1R").shards_per_dim(mesh24) == (1, 4, 1)
    assert ShardingSpec.parse("S01RR").shards_per_dim(mesh24) == (8, 1, 1)
    assert ShardingSpec.parse("S10RR").shards_per_dim(mesh24) == (8, 1, 1)


def test_replication_factor(mesh24):
    assert ShardingSpec.parse("S0RR").replication_factor(mesh24) == 4
    assert ShardingSpec.parse("S0S1R").replication_factor(mesh24) == 1
    assert ShardingSpec.parse("RRR").replication_factor(mesh24) == 8


def test_replica_axes():
    assert ShardingSpec.parse("RRR").replica_mesh_axes() == (0, 1)
    assert ShardingSpec.parse("S0RR").replica_mesh_axes() == (1,)
    assert ShardingSpec.parse("S01RR").replica_mesh_axes() == ()


def test_validate_rank_mismatch(mesh24):
    with pytest.raises(ValueError, match="dims"):
        ShardingSpec.parse("S0R").validate((4, 4, 4), mesh24)


def test_validate_too_small_dim(mesh24):
    with pytest.raises(ValueError, match="split"):
        ShardingSpec.parse("S01RR").validate((4, 8, 8), mesh24)  # 4 < 8 shards


def test_is_even(mesh24):
    assert ShardingSpec.parse("S0RR").is_even((8, 3, 3), mesh24)
    assert not ShardingSpec.parse("S0RR").is_even((9, 3, 3), mesh24)
    assert ShardingSpec.parse("S01RR").is_even((16, 1, 1), mesh24)


def test_equality_hash():
    a = ShardingSpec.parse("S0R")
    b = ShardingSpec(((0,), REPLICATED))
    assert a == b and hash(a) == hash(b)
    assert a != ShardingSpec.parse("RS0")


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------
def spec_strings(ndim: int):
    """Strategy generating valid spec strings for an ndim tensor."""

    def build(assignment):
        # assignment: for each of mesh axes 0,1: which dim (or None)
        dims = [[] for _ in range(ndim)]
        for axis, dim in enumerate(assignment):
            if dim is not None:
                dims[dim].append(axis)
        return "".join(
            "R" if not axes else "S" + "".join(map(str, sorted(axes)))
            for axes in dims
        )

    return st.tuples(
        st.one_of(st.none(), st.integers(0, ndim - 1)),
        st.one_of(st.none(), st.integers(0, ndim - 1)),
    ).map(build)


@given(st.integers(1, 4).flatmap(lambda n: spec_strings(n)))
def test_property_roundtrip(text):
    spec = ShardingSpec.parse(text)
    assert ShardingSpec.parse(str(spec)) == spec


@given(st.integers(1, 3).flatmap(lambda n: spec_strings(n)))
def test_property_shard_count_times_replicas_is_mesh_size(text):
    c = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
    mesh = DeviceMesh.from_hosts(c, [0, 1])
    spec = ShardingSpec.parse(text)
    total_tiles = 1
    for n in spec.shards_per_dim(mesh):
        total_tiles *= n
    assert total_tiles * spec.replication_factor(mesh) == mesh.n_devices
