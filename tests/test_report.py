"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.experiments.report import EXPECTATIONS, run_all, write_report


@pytest.mark.slow
def test_write_report_contains_all_sections(tmp_path):
    path = tmp_path / "EXPERIMENTS.md"
    text = write_report(str(path), verbose=False)
    assert path.read_text() == text
    for eid in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "A0", "S1", "S2", "S3"):
        assert f"### {eid}" in text, eid
    for claim in EXPECTATIONS.values():
        assert claim.split(".")[0] in text
    assert "Known divergences" in text


@pytest.mark.slow
def test_run_all_returns_tables():
    tables = run_all(verbose=False)
    assert len(tables) == 11
    for t in tables:
        assert t.rows, t.experiment_id
