"""Shape tests for the experiment reproductions (paper claims as asserts).

These run the real experiment code (sometimes on reduced sizes) and
assert the qualitative claims of each paper table/figure.
"""

import pytest

from repro.experiments import fig3, fig5, fig6, fig8, table1
from repro.experiments.common import (
    ExperimentTable,
    fmt_bytes,
    fmt_seconds,
    format_markdown,
    make_microbench_meshes,
)
from repro.experiments.fig6 import TABLE2_CASES
from repro.sim.analysis import t_cross_host
from repro.sim.cluster import GB, ClusterSpec


# ----------------------------------------------------------------------
# common helpers
# ----------------------------------------------------------------------
def test_experiment_table_add_and_column():
    t = ExperimentTable("E0", "t", ["a", "b"])
    t.add(a=1, b=2.5)
    assert t.column("a") == [1]
    with pytest.raises(ValueError, match="missing"):
        t.add(a=1)


def test_format_markdown():
    t = ExperimentTable("E0", "demo", ["a"], notes="note")
    t.add(a=1.23456)
    md = format_markdown(t)
    assert "### E0: demo" in md
    assert "| 1.235 |" in md
    assert "note" in md


def test_make_microbench_meshes_disjoint():
    cluster, src, dst = make_microbench_meshes((2, 4), (3, 2))
    assert src.shape == (2, 4)
    assert dst.shape == (3, 2)
    assert src.disjoint_from(dst)
    assert cluster.n_hosts == 5


def test_formatters():
    assert fmt_seconds(2.0) == "2.000 s"
    assert fmt_seconds(0.002) == "2.00 ms"
    assert fmt_bytes(2 * 1024) == "2.00 KiB"
    assert fmt_bytes(3 * (1 << 30)) == "3.00 GiB"
    assert fmt_bytes(10) == "10 B"


# ----------------------------------------------------------------------
# E1 / Fig. 5
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_fig5_shapes():
    t = fig5.run()
    g1 = [r for r in t.rows if r["group"].startswith("1 node")]
    g2 = [r for r in t.rows if r["group"].startswith("2 GPUs")]
    # Send/Recv linear in #GPUs
    sr = [r["send_recv (s)"] for r in g1]
    assert sr[3] == pytest.approx(4 * sr[0], rel=0.02)
    # Broadcast flat (within 5%)
    bc = [r["broadcast (s)"] for r in g1] + [r["broadcast (s)"] for r in g2]
    assert max(bc) / min(bc) < 1.05
    # Alpa collapse at 3 GPUs and 3 nodes (uneven partition)
    ag1 = [r["allgather/Alpa (s)"] for r in g1]
    assert ag1[2] > 2 * ag1[1]
    ag2 = [r["allgather/Alpa (s)"] for r in g2]
    assert ag2[2] > 2 * ag2[1]
    # Alpa degrades across nodes but stays below Send/Recv
    assert ag2[3] > ag2[0]
    sr2 = [r["send_recv (s)"] for r in g2]
    assert ag2[3] < sr2[3]


# ----------------------------------------------------------------------
# E2 / Table 2 + Fig. 6  (reduced tensor for speed)
# ----------------------------------------------------------------------
def small_latency(case, strategy, **kw):
    _c, src, dst = make_microbench_meshes(case.send_mesh, case.recv_mesh)
    from repro.core.api import reshard

    r = reshard((256, 64, 32), src, case.send_spec, dst, case.recv_spec,
                strategy=strategy, **kw)
    return r.latency


def test_fig6_case_table_definition():
    assert len(TABLE2_CASES) == 9
    assert TABLE2_CASES[3].send_spec == "RS01R"
    assert TABLE2_CASES[7].send_mesh == (2, 3)


@pytest.mark.slow
def test_fig6_headline_cases():
    t = fig6.run()
    by_case = {r["case"]: r for r in t.rows}
    # parity cases
    for c in ("case1", "case2"):
        assert by_case[c]["ours/Alpa speedup"] == pytest.approx(1.0, abs=0.1)
    # congestion cases: ours clearly faster
    for c in ("case3", "case4", "case9"):
        assert by_case[c]["ours/Alpa speedup"] > 1.3
    # cross-node all-gather cases
    for c in ("case7", "case8"):
        assert by_case[c]["ours/Alpa speedup"] > 1.5
    # send/recv never beats ours
    for r in t.rows:
        assert r["send_recv (s)"] >= r["broadcast (s)"] * 0.98


# ----------------------------------------------------------------------
# E3 / Table 1
# ----------------------------------------------------------------------
def test_table1_matches_paper_exactly():
    t = table1.run()
    for row in t.rows:
        assert row["measured"] == row["paper"], row


# ----------------------------------------------------------------------
# E5 / Fig. 8 (reduced tensor)
# ----------------------------------------------------------------------
def test_fig8_naive_congestion_small():
    case2 = TABLE2_CASES[1]
    naive = small_latency(case2, "broadcast", scheduler="naive")
    ours = small_latency(case2, "broadcast", scheduler="ensemble")
    assert naive > 1.5 * ours  # naive sends everything from host 0


def test_fig8_ties_on_case1_and_8():
    for case in (TABLE2_CASES[0], TABLE2_CASES[7]):
        lats = [
            small_latency(case, "broadcast", scheduler=s)
            for s in ("naive", "load_balance", "ensemble")
        ]
        assert max(lats) / min(lats) < 1.05


def test_fig8_ensemble_never_worse():
    for case in TABLE2_CASES[:5]:
        ours = small_latency(case, "broadcast", scheduler="ensemble")
        for s in ("naive", "load_balance"):
            assert small_latency(case, "broadcast", scheduler=s) >= ours * 0.98


# ----------------------------------------------------------------------
# E7 / Fig. 3
# ----------------------------------------------------------------------
def test_fig3_simulation_tracks_analysis():
    t = fig3.run(nbytes=GB / 4, n_chunks=32, max_hosts=3)
    for row in t.rows:
        sim, analytic = row["simulated (s)"], row["analytic (s)"]
        if row["strategy"] == "global_allgather":
            # 2t is an upper bound; ring all-gather is slightly better
            assert sim <= analytic * 1.05
        else:
            assert sim == pytest.approx(analytic, rel=0.08)


def test_fig3_broadcast_is_best_beyond_one_host():
    for a in (2, 3):
        lats = {
            s: fig3.simulate_strategy(s, a, 2, nbytes=GB / 4)
            for s in ("send_recv", "local_allgather", "global_allgather", "broadcast")
        }
        assert lats["broadcast"] == min(lats.values())
        t = t_cross_host(GB / 4, ClusterSpec().inter_host_bandwidth)
        assert lats["broadcast"] <= t * 1.1  # near the lower bound
