"""Tests for the MoE workload extension."""

import numpy as np
import pytest

from repro.core.task import ReshardingTask
from repro.models.moe import MoEConfig, build_moe, dispatch_all_to_all_time, moe_params
from repro.models.parallel import run_iteration
from repro.sim.cluster import Cluster, ClusterSpec


@pytest.fixture(scope="module")
def small_spec():
    return build_moe(MoEConfig(global_batch=128))


def test_config_validation():
    with pytest.raises(ValueError, match="layer"):
        MoEConfig(n_layers=10, pp=4)
    with pytest.raises(ValueError, match="expert"):
        MoEConfig(n_experts=6, ep=4)
    with pytest.raises(ValueError, match="batch"):
        MoEConfig(global_batch=100)


def test_params_formula():
    cfg = MoEConfig()
    p = moe_params(cfg)
    # 8 dense layers (12 H^2) + 8 MoE layers (4 H^2 + 8 experts x 8 H^2)
    h2 = cfg.hidden**2
    expect = 8 * 12 * h2 + 8 * (4 + 64) * h2 + cfg.vocab * cfg.hidden
    assert p == pytest.approx(expect)


def test_build_structure(small_spec):
    assert len(small_spec.stage_meshes) == 2
    assert small_spec.stage_meshes[0].shape == (2, 2)
    assert small_spec.stage_meshes[1].shape == (4, 1)
    b = small_spec.boundaries[0]
    assert b.src_spec == "S01RR" and b.dst_spec == "RS0R"


def test_boundary_is_orthogonal_retiling(small_spec):
    """Batch->sequence resharding produces a case-4-like task grid."""
    b = small_spec.boundaries[0]
    rt = ReshardingTask(
        b.shape,
        small_spec.stage_meshes[0],
        b.src_spec,
        small_spec.stage_meshes[1],
        b.dst_spec,
        dtype=np.float16,
    )
    units = rt.unit_tasks()
    assert len(units) == 16  # 4 src tiles x 4 dst tiles
    for ut in units:
        assert len(ut.senders) == 1 and len(ut.receivers) == 1


def test_all_to_all_time_positive():
    cfg = MoEConfig()
    spec = build_moe(cfg)
    t0 = dispatch_all_to_all_time(cfg, spec.stage_meshes[0])
    t1 = dispatch_all_to_all_time(cfg, spec.stage_meshes[1])
    assert t0 > 0 and t1 > 0


def test_e2e_method_ordering(small_spec):
    r = {
        m: run_iteration(small_spec, m).throughput_tflops
        for m in ("alpa", "broadcast", "overlap", "ours", "signal")
    }
    assert r["signal"] >= r["ours"] - 1e-9
    assert r["ours"] > r["overlap"] > r["broadcast"]
    assert r["ours"] / r["alpa"] > 1.2
    assert r["ours"] >= 0.95 * r["signal"]


def test_cluster_too_small():
    tiny = Cluster(ClusterSpec(n_hosts=1, devices_per_host=4))
    with pytest.raises(ValueError, match="cluster"):
        build_moe(MoEConfig(), cluster=tiny)
