"""Functional correctness of resharding: plans must move real bytes.

The strongest guarantee in the library: for every strategy and layout
pair, executing the compiled plan on NumPy shards reconstructs exactly
the destination layout.  (The paper's system gets this from NCCL; we
prove our plans are semantically correct.)
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.data import DataPlaneError, apply_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.core.tensor import DistributedTensor
from repro.sim.cluster import Cluster, ClusterSpec
from repro.strategies import make_strategy

STRATEGIES = ["send_recv", "allgather", "broadcast"]
SPECS_3D = ["RRR", "S0RR", "RS1R", "S01RR", "S0S1R", "RS10R", "RRS0", "S1RS0"]


def build(src_spec, dst_spec, shape=(8, 8, 8), src_hosts=2, dst_hosts=2, dph=4):
    c = Cluster(ClusterSpec(n_hosts=src_hosts + dst_hosts, devices_per_host=dph))
    src = DeviceMesh.from_hosts(c, range(src_hosts))
    dst = DeviceMesh.from_hosts(c, range(src_hosts, src_hosts + dst_hosts))
    arr = np.arange(np.prod(shape), dtype=np.float32).reshape(shape)
    task = ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=arr.dtype)
    src_tensor = DistributedTensor.from_global(src, task.src_spec, arr)
    return task, src_tensor, arr


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("src_spec", SPECS_3D)
@pytest.mark.parametrize("dst_spec", SPECS_3D)
def test_reshard_reconstructs_tensor(strategy, src_spec, dst_spec):
    task, src_tensor, arr = build(src_spec, dst_spec)
    plan = make_strategy(strategy).plan(task)
    out = apply_plan(plan, src_tensor)
    assert out.spec == task.dst_spec
    assert np.array_equal(out.to_global(), arr)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_uneven_shapes(strategy):
    """Shapes that do not divide evenly by the shard counts."""
    task, src_tensor, arr = build("S0RR", "S0RR", shape=(9, 7, 5),
                                  src_hosts=2, dst_hosts=3)
    plan = make_strategy(strategy).plan(task)
    out = apply_plan(plan, src_tensor)
    assert np.array_equal(out.to_global(), arr)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_different_mesh_shapes(strategy):
    task, src_tensor, arr = build("RRR", "RRR", src_hosts=2, dst_hosts=3, dph=2)
    plan = make_strategy(strategy).plan(task)
    out = apply_plan(plan, src_tensor)
    assert np.array_equal(out.to_global(), arr)


def test_signal_plan_refuses_data():
    task, src_tensor, _ = build("RRR", "RRR")
    plan = make_strategy("signal").plan(task)
    with pytest.raises(DataPlaneError, match="data_complete"):
        apply_plan(plan, src_tensor)


def test_wrong_source_layout_rejected():
    task, _, arr = build("S0RR", "RRR")
    wrong = DistributedTensor.from_global(task.src_mesh, "RS1R", arr)
    plan = make_strategy("broadcast").plan(task)
    with pytest.raises(DataPlaneError, match="layout"):
        apply_plan(plan, wrong)


def test_missing_op_detected():
    """Dropping an op must surface as incomplete coverage."""
    task, src_tensor, _ = build("S0RR", "S0RR")
    plan = make_strategy("broadcast").plan(task)
    plan.ops.pop()
    with pytest.raises(DataPlaneError, match="missing"):
        apply_plan(plan, src_tensor)


def test_fp16_dtype_roundtrip():
    shape = (8, 8, 8)
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    arr = np.arange(np.prod(shape), dtype=np.float16).reshape(shape)
    task = ReshardingTask(shape, src, "S0RR", dst, "RS1R", dtype=np.float16)
    out = apply_plan(
        make_strategy("broadcast").plan(task),
        DistributedTensor.from_global(src, task.src_spec, arr),
    )
    assert out.dtype == np.float16
    assert np.array_equal(out.to_global(), arr)


def test_slice_granularity_broadcast_also_correct():
    task, src_tensor, arr = build("S0RR", "S01RR")
    plan = make_strategy("broadcast", granularity="slice").plan(task)
    out = apply_plan(plan, src_tensor)
    assert np.array_equal(out.to_global(), arr)


@settings(max_examples=30, deadline=None)
@given(
    src_spec=st.sampled_from(SPECS_3D),
    dst_spec=st.sampled_from(SPECS_3D),
    strategy=st.sampled_from(STRATEGIES),
    d0=st.integers(8, 13),
    d1=st.integers(8, 13),
    d2=st.integers(8, 13),
)
def test_property_any_layout_pair_roundtrips(src_spec, dst_spec, strategy, d0, d1, d2):
    task, src_tensor, arr = build(src_spec, dst_spec, shape=(d0, d1, d2))
    plan = make_strategy(strategy).plan(task)
    out = apply_plan(plan, src_tensor)
    assert np.array_equal(out.to_global(), arr)


# ----------------------------------------------------------------------
# DistributedTensor itself
# ----------------------------------------------------------------------
def test_distributed_tensor_from_global_shards():
    c = Cluster(ClusterSpec(n_hosts=1, devices_per_host=4))
    mesh = DeviceMesh.from_hosts(c, [0])
    arr = np.arange(16.0).reshape(4, 4)
    dt = DistributedTensor.from_global(mesh, "RS1", arr)
    assert dt.shard_of(0).shape == (4, 1)
    assert np.array_equal(dt.shard_of(2)[:, 0], arr[:, 2])
    assert np.array_equal(dt.to_global(), arr)


def test_distributed_tensor_replica_mismatch_detected():
    c = Cluster(ClusterSpec(n_hosts=1, devices_per_host=2))
    mesh = DeviceMesh.from_hosts(c, [0])
    arr = np.ones((4, 4), dtype=np.float32)
    dt = DistributedTensor.from_global(mesh, "RR", arr)
    dt.shards[1][0, 0] = 42.0
    with pytest.raises(ValueError, match="replica"):
        dt.to_global()


def test_distributed_tensor_shape_validation():
    c = Cluster(ClusterSpec(n_hosts=1, devices_per_host=2))
    mesh = DeviceMesh.from_hosts(c, [0])
    with pytest.raises(ValueError, match="shard shape"):
        DistributedTensor(mesh, "S1R", (4, 4), {0: np.ones((4, 4)), 1: np.ones((2, 4))})


def test_distributed_tensor_missing_shard():
    c = Cluster(ClusterSpec(n_hosts=1, devices_per_host=2))
    mesh = DeviceMesh.from_hosts(c, [0])
    with pytest.raises(ValueError, match="missing"):
        DistributedTensor(mesh, "RR", (4, 4), {0: np.ones((4, 4))})


def test_distributed_tensor_allclose():
    c = Cluster(ClusterSpec(n_hosts=1, devices_per_host=2))
    mesh = DeviceMesh.from_hosts(c, [0])
    arr = np.arange(16.0).reshape(4, 4)
    a = DistributedTensor.from_global(mesh, "S0R", arr)
    b = DistributedTensor.from_global(mesh, "RS1", arr)
    assert a.allclose(b)
    assert a.allclose(arr)
    assert not a.allclose(arr + 1)
