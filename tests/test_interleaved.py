"""Tests for interleaved 1F1B with virtual pipeline stages."""

import pytest

from repro.pipeline.interleaved import (
    ChunkTask,
    InterleavedJob,
    interleaved_order,
    simulate_interleaved,
)


def make_job(p=4, v=2, m=8, fwd=1.0, comm=0.0):
    return InterleavedJob(
        n_stages=p,
        n_virtual=v,
        n_microbatches=m,
        fwd_time=fwd,
        bwd_time=2 * fwd,
        comm_fwd=comm,
        comm_bwd=comm,
    )


# ----------------------------------------------------------------------
# schedule generation
# ----------------------------------------------------------------------
def test_job_validation():
    with pytest.raises(ValueError, match="divisible"):
        make_job(p=4, m=6)
    with pytest.raises(ValueError, match="stage"):
        InterleavedJob(0, 1, 4, 1, 1, 0, 0)
    with pytest.raises(ValueError, match="micro"):
        InterleavedJob(2, 1, 0, 1, 1, 0, 0)
    with pytest.raises(ValueError, match="non-negative"):
        InterleavedJob(2, 1, 4, -1, 1, 0, 0)


def test_order_covers_all_chunk_microbatch_pairs():
    job = make_job()
    for rank in range(job.n_stages):
        order = interleaved_order(job, rank)
        fwd = {(t.chunk, t.microbatch) for t in order if t.kind == "F"}
        bwd = {(t.chunk, t.microbatch) for t in order if t.kind == "B"}
        chunks = {c for c in range(job.n_chunks) if job.stage_of(c) == rank}
        expect = {(c, mb) for c in chunks for mb in range(job.n_microbatches)}
        assert fwd == expect and bwd == expect
        assert len(order) == 2 * len(expect)


def test_order_forward_precedes_backward():
    job = make_job()
    for rank in range(job.n_stages):
        order = interleaved_order(job, rank)
        for t in order:
            if t.kind == "B":
                f = ChunkTask("F", t.microbatch, t.chunk)
                assert order.index(f) < order.index(t)


def test_order_rank_bounds():
    job = make_job()
    with pytest.raises(ValueError):
        interleaved_order(job, 4)


def test_warmup_depth_matches_megatron_formula():
    job = make_job(p=4, v=2, m=8)
    for rank in range(4):
        order = interleaved_order(job, rank)
        warmup = 0
        for t in order:
            if t.kind != "F":
                break
            warmup += 1
        # the steady loop leads with a forward, so the leading-F run is
        # one longer than Megatron's num_warmup_microbatches
        assert warmup == (4 - rank - 1) * 2 + (2 - 1) * 4 + 1


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def test_single_stage_single_chunk_serial():
    job = make_job(p=1, v=1, m=3, fwd=1.0)
    r = simulate_interleaved(job)
    assert r.iteration_time == pytest.approx(3 * 3.0)


def test_interleaving_shrinks_bubble():
    p, m = 4, 8
    results = {}
    for v in (1, 2, 4):
        job = InterleavedJob(p, v, m, fwd_time=1.0 / v, bwd_time=2.0 / v,
                             comm_fwd=0.0, comm_bwd=0.0)
        results[v] = simulate_interleaved(job)
    assert results[2].iteration_time < results[1].iteration_time
    assert results[4].iteration_time <= results[2].iteration_time
    assert results[2].bubble_fraction() < results[1].bubble_fraction()


def test_interleaving_costs_memory():
    p, m = 4, 8
    peaks = {}
    for v in (1, 2):
        job = InterleavedJob(p, v, m, fwd_time=1.0 / v, bwd_time=2.0 / v,
                             comm_fwd=0.0, comm_bwd=0.0)
        peaks[v] = simulate_interleaved(job).peak_activation_counts[0]
    assert peaks[2] > peaks[1]


def test_causality_across_chunks():
    job = make_job(p=2, v=2, m=4, comm=0.3)
    r = simulate_interleaved(job)
    ends = {(t.kind, t.chunk, t.microbatch): t.end for t in r.timeline}
    starts = {(t.kind, t.chunk, t.microbatch): t.start for t in r.timeline}
    for mb in range(4):
        for c in range(1, job.n_chunks):
            assert starts[("F", c, mb)] >= ends[("F", c - 1, mb)] + 0.3 - 1e-9
        for c in range(job.n_chunks - 1):
            assert starts[("B", c, mb)] >= ends[("B", c + 1, mb)] + 0.3 - 1e-9
        # last chunk's backward after its own forward
        V = job.n_chunks
        assert starts[("B", V - 1, mb)] >= ends[("F", V - 1, mb)] - 1e-9


def test_stage_exclusivity():
    job = make_job(p=3, v=2, m=6, comm=0.2)
    r = simulate_interleaved(job)
    for s in range(3):
        entries = sorted(
            [(t.start, t.end) for t in r.timeline if t.stage == s]
        )
        for (a1, e1), (a2, _e2) in zip(entries, entries[1:]):
            assert e1 <= a2 + 1e-9


def test_total_compute_conserved():
    job = make_job(p=2, v=2, m=4, fwd=1.0, comm=0.1)
    r = simulate_interleaved(job)
    for s in range(2):
        busy = sum(t.end - t.start for t in r.timeline if t.stage == s)
        # per stage: v chunks x m microbatches x (fwd + bwd)
        assert busy == pytest.approx(2 * 4 * 3.0)


def test_more_virtual_stages_tolerate_more_comm():
    """Interleaving creates overlap room: with heavy comm, v=2 beats v=1
    by more than its bubble advantage alone."""
    p, m = 4, 8
    def run(v, comm):
        job = InterleavedJob(p, v, m, fwd_time=1.0 / v, bwd_time=2.0 / v,
                             comm_fwd=comm, comm_bwd=comm)
        return simulate_interleaved(job).iteration_time

    gain_nocomm = run(1, 0.0) / run(2, 0.0)
    gain_comm = run(1, 0.4) / run(2, 0.4)
    assert gain_comm > 1.0
    assert gain_nocomm > 1.0
