"""Tests for static plan-coverage validation."""

import numpy as np
import pytest

from repro.core.intra import plan_intra_mesh
from repro.core.mesh import DeviceMesh
from repro.core.plan import SendOp
from repro.core.task import ReshardingTask
from repro.core.validate import PlanValidationError, verify_plan_coverage
from repro.sim.cluster import Cluster, ClusterSpec
from repro.strategies import make_strategy


def make_task(src_spec="S0RR", dst_spec="RS1R", shape=(8, 8, 8)):
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=np.float32)


SPECS = ["RRR", "S0RR", "RS1R", "S01RR", "S0S1R", "RRS0"]


@pytest.mark.parametrize("strategy", ["send_recv", "allgather", "broadcast"])
@pytest.mark.parametrize("src_spec", SPECS)
@pytest.mark.parametrize("dst_spec", SPECS)
def test_all_strategy_plans_validate(strategy, src_spec, dst_spec):
    task = make_task(src_spec, dst_spec)
    plan = make_strategy(strategy).plan(task)
    report = verify_plan_coverage(plan)
    assert report.n_ops == len(plan.ops)


def test_signal_plan_rejected():
    plan = make_strategy("signal").plan(make_task())
    with pytest.raises(PlanValidationError, match="no data"):
        verify_plan_coverage(plan)


def test_dropped_op_detected():
    plan = make_strategy("broadcast").plan(make_task())
    plan.ops.pop()
    with pytest.raises(PlanValidationError, match="never delivered"):
        verify_plan_coverage(plan)


def test_wrong_sender_detected():
    task = make_task("S0RR", "S0RR")
    plan = make_strategy("send_recv").plan(task)
    bad = plan.ops[0]
    # replace with a sender from the wrong half of the source mesh
    wrong_sender = (
        task.src_mesh.devices[-1]
        if bad.sender != task.src_mesh.devices[-1]
        else task.src_mesh.devices[0]
    )
    plan.ops[0] = SendOp(
        op_id=bad.op_id,
        unit_task_id=bad.unit_task_id,
        region=bad.region,
        nbytes=bad.nbytes,
        sender=wrong_sender,
        receiver=bad.receiver,
    )
    with pytest.raises(PlanValidationError, match="holds"):
        verify_plan_coverage(plan)


def test_foreign_sender_detected():
    task = make_task("RRR", "RRR")
    plan = make_strategy("broadcast").plan(task)
    op = plan.ops[0]
    plan.ops[0] = type(op)(
        op_id=op.op_id,
        unit_task_id=op.unit_task_id,
        region=op.region,
        nbytes=op.nbytes,
        sender=task.dst_mesh.devices[0],  # not a source device
        receivers=op.receivers,
        n_chunks=op.n_chunks,
    )
    with pytest.raises(PlanValidationError, match="not a source-mesh"):
        verify_plan_coverage(plan)


def test_allgather_without_scatter_detected():
    task = make_task("RRR", "S0RR")
    plan = make_strategy("allgather").plan(task)
    # drop the scatters, keep the all-gathers
    plan.ops = [op for op in plan.ops if type(op).__name__ == "AllGatherOp"]
    with pytest.raises(PlanValidationError, match="all-gather"):
        verify_plan_coverage(plan)


def test_intra_mesh_plan_validates_with_local_reuse():
    c = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
    mesh = DeviceMesh.from_hosts(c, [0, 1])
    plan = plan_intra_mesh((8, 8, 8), mesh, "S0RR", "RS1R")
    report = verify_plan_coverage(plan)
    assert report.n_receivers == 8
