"""Tests for the workload cost models (GPT, U-Transformer)."""

import pytest

from repro.models.costs import (
    DeviceModel,
    conv2d_flops_fwd,
    conv2d_params,
    ring_allreduce_time,
    transformer_layer_flops_fwd,
    transformer_layer_params,
)
from repro.models.gpt import GPT_CASES, GPTConfig, build_gpt, gpt_layer_memory_table
from repro.models.utransformer import (
    UTransformerConfig,
    balanced_split,
    build_utransformer,
    utransformer_modules,
    utransformer_params,
)
from repro.sim.cluster import Cluster, ClusterSpec


# ----------------------------------------------------------------------
# costs
# ----------------------------------------------------------------------
def test_device_model_precisions():
    d = DeviceModel(fp16_flops=10.0, fp32_flops=5.0)
    assert d.flops("fp16") == 10.0
    assert d.flops("fp32") == 5.0
    with pytest.raises(ValueError):
        d.flops("int8")


def test_transformer_flops_formula():
    assert transformer_layer_flops_fwd(2, 4, 8) == pytest.approx(
        24 * 2 * 4 * 64 + 4 * 2 * 16 * 8
    )


def test_transformer_params_formula():
    assert transformer_layer_params(10) == 1200


def test_conv_formulas():
    assert conv2d_flops_fwd(2, 3, 8, 16, kernel=3) == 2 * 9 * 3 * 8 * 16 * 2
    assert conv2d_params(3, 8) == 9 * 3 * 8
    assert conv2d_params(3, 8, kernel=2) == 4 * 3 * 8


def test_allreduce_time():
    assert ring_allreduce_time(100.0, 1, 10.0) == 0.0
    assert ring_allreduce_time(100.0, 4, 10.0) == pytest.approx(15.0)
    with pytest.raises(ValueError):
        ring_allreduce_time(1.0, 2, 0.0)


# ----------------------------------------------------------------------
# GPT
# ----------------------------------------------------------------------
def test_gpt_default_is_2_6b():
    cfg = GPTConfig()
    assert cfg.n_params == pytest.approx(2.6e9, rel=0.05)


def test_gpt_table3_cases():
    assert GPT_CASES["GPT case1"].parallel_config == (2, 2, 2)
    assert GPT_CASES["GPT case2"].parallel_config == (4, 1, 2)
    for cfg in GPT_CASES.values():
        assert cfg.n_devices == 8
        assert cfg.global_batch == 1024


def test_gpt_microbatch_count():
    cfg = GPTConfig(dp=2, micro_batch_per_dp=2)
    assert cfg.n_microbatches == 1024 // 4


def test_gpt_config_validation():
    with pytest.raises(ValueError, match="divisible"):
        GPTConfig(n_layers=31, pp=2)
    with pytest.raises(ValueError, match="batch"):
        GPTConfig(global_batch=1000, dp=3)


def test_build_gpt_structure():
    spec = build_gpt(GPTConfig())
    assert len(spec.stage_meshes) == 2
    assert len(spec.profiles) == 2
    assert len(spec.boundaries) == 1
    assert spec.n_devices == 8
    b = spec.boundaries[0]
    assert b.src_spec == "S0RR" and b.dst_spec == "S0RR"
    assert b.shape == (4, 1024, 2560)
    # meshes are disjoint and host-aligned on the 2-node testbed
    assert set(spec.stage_meshes[0].devices).isdisjoint(spec.stage_meshes[1].devices)


def test_build_gpt_stage_times_scale_with_op():
    t1 = build_gpt(GPTConfig(dp=2, op=2, pp=2)).profiles[0].fwd_time
    t2 = build_gpt(GPTConfig(dp=2, op=1, pp=2, micro_batch_per_dp=2)).profiles[0].fwd_time
    # GEMMs halve with op=2; the NVLink op all-reduce adds a few percent
    assert t2 == pytest.approx(2 * t1, rel=0.1)
    assert t2 < 2 * t1  # op=1 pays no all-reduce


def test_build_gpt_op_allreduce_charged():
    """Operator parallelism across hosts is penalized heavily."""
    fast = build_gpt(GPTConfig(dp=2, op=2, pp=2)).profiles[0]
    wide = build_gpt(GPTConfig(dp=1, op=8, pp=1, micro_batch_per_dp=2,
                               n_layers=32)).profiles[0]
    # (1,8,1) spans two hosts -> Ethernet all-reduces dominate
    assert wide.fwd_time > fast.fwd_time
    assert wide.bwd_w_time < wide.fwd_time  # wgrad skips the all-reduce


def test_build_gpt_cluster_too_small():
    tiny = Cluster(ClusterSpec(n_hosts=1, devices_per_host=4))
    with pytest.raises(ValueError, match="cluster"):
        build_gpt(GPTConfig(), cluster=tiny)


def test_gpt_epilogue_allreduce_positive():
    spec = build_gpt(GPTConfig(dp=2, op=2, pp=2))
    assert spec.epilogue_time > 0
    nodp = build_gpt(GPTConfig(dp=1, op=4, pp=2, global_batch=1024,
                               micro_batch_per_dp=4))
    assert nodp.epilogue_time == 0.0


def test_gpt_table1_exact_paper_values():
    row = gpt_layer_memory_table()
    mi, gi = float(1 << 20), float(1 << 30)
    assert row.n_parameters / mi == pytest.approx(216.0)
    assert row.n_optimizer_params / mi == pytest.approx(432.0)
    assert row.n_activation_elements / mi == pytest.approx(24.0)
    assert row.weights_and_optimizer_bytes / gi == pytest.approx(2.95, abs=0.01)
    assert row.activation_bytes / mi == pytest.approx(48.0)


# ----------------------------------------------------------------------
# U-Transformer
# ----------------------------------------------------------------------
def test_utransformer_params_near_2_1b():
    assert utransformer_params(UTransformerConfig()) == pytest.approx(2.1e9, rel=0.05)


def test_utransformer_modules_sequence():
    mods = utransformer_modules(UTransformerConfig())
    names = [m.name for m in mods]
    assert names[0] == "enc0"
    assert "bottleneck_conv" in names
    assert names[-1].startswith("dec0")
    # every encoder level has a matching decoder consumer
    produced = {m.skip_out for m in mods if m.skip_out is not None}
    consumed = {m.skip_in for m in mods if m.skip_in is not None}
    assert produced == consumed


def test_utransformer_config_validation():
    with pytest.raises(ValueError, match="divisible"):
        UTransformerConfig(image_size=30)
    with pytest.raises(ValueError, match="dp"):
        UTransformerConfig(micro_batch=6, dp=4)
    with pytest.raises(ValueError, match="batch"):
        UTransformerConfig(global_batch=100, micro_batch=8)


def test_balanced_split_minimizes_gap():
    mods = utransformer_modules(UTransformerConfig())
    k = balanced_split(mods)
    total = sum(m.flops_fwd for m in mods)
    front = sum(m.flops_fwd for m in mods[:k])
    gap = abs(2 * front - total)
    for other in range(1, len(mods)):
        f = sum(m.flops_fwd for m in mods[:other])
        assert gap <= abs(2 * f - total) + 1e-6


def test_build_utransformer_structure():
    spec = build_utransformer(UTransformerConfig())
    assert len(spec.stage_meshes) == 2
    assert spec.n_devices == 8
    # at least one cross-mesh skip plus the sequential boundary
    assert len(spec.boundaries) >= 2
    labels = [b.label for b in spec.boundaries]
    assert any(lbl.startswith("seq") for lbl in labels)
    assert any(lbl.startswith("skip") for lbl in labels)


def test_build_utransformer_stage_balance():
    spec = build_utransformer(UTransformerConfig())
    f0, f1 = spec.profiles[0].fwd_time, spec.profiles[1].fwd_time
    assert max(f0, f1) / min(f0, f1) < 1.6


def test_utransformer_flops_positive_and_consistent():
    cfg = UTransformerConfig()
    spec = build_utransformer(cfg)
    per_mb_fwd = sum(p.fwd_time for p in spec.profiles)
    assert per_mb_fwd > 0
    assert spec.model_flops_per_iteration > 0
    assert spec.n_microbatches == cfg.global_batch // cfg.micro_batch
