"""Tests for the model-parallel job glue (methods table, comm edges, e2e)."""

import pytest

from repro.models.gpt import GPTConfig, build_gpt
from repro.models.parallel import (
    Boundary,
    METHODS,
    resolve_comm_edges,
    run_iteration,
)
from repro.models.utransformer import UTransformerConfig, build_utransformer


@pytest.fixture(scope="module")
def small_gpt():
    """A scaled-down GPT so e2e tests stay fast (16 micro-batches)."""
    return build_gpt(GPTConfig(global_batch=64, n_layers=8))


@pytest.fixture(scope="module")
def small_ut():
    return build_utransformer(UTransformerConfig(global_batch=128))


def test_methods_table_covers_paper_systems():
    assert set(METHODS) >= {"send_recv", "alpa", "broadcast", "overlap",
                            "ours", "signal"}
    assert METHODS["ours"].schedule == "eager_1f1b"
    assert METHODS["ours"].overlap
    assert not METHODS["broadcast"].overlap
    assert METHODS["alpa"].strategy == "allgather"


def test_boundary_nbytes():
    b = Boundary("x", 0, 1, (4, 8), "S0R", "S0R", dtype="fp16")
    assert b.nbytes() == 64
    assert Boundary("x", 0, 1, (4, 8), "S0R", "S0R", dtype="fp32").nbytes() == 128


def test_resolve_comm_edges_both_directions(small_gpt):
    edges = resolve_comm_edges(small_gpt, "broadcast")
    assert len(edges) == len(small_gpt.boundaries)
    for e in edges:
        assert e.fwd_time > 0 and e.bwd_time > 0
        # symmetric layout -> symmetric cost
        assert e.fwd_time == pytest.approx(e.bwd_time, rel=0.05)


def test_signal_edges_are_cheap(small_gpt):
    signal = resolve_comm_edges(small_gpt, "signal")
    real = resolve_comm_edges(small_gpt, "broadcast")
    assert signal[0].fwd_time < real[0].fwd_time / 50


def test_run_iteration_returns_consistent_result(small_gpt):
    r = run_iteration(small_gpt, "ours")
    assert r.method == "ours"
    assert r.iteration_time > 0
    expect = (
        small_gpt.model_flops_per_iteration
        / r.iteration_time
        / small_gpt.n_devices
        / 1e12
    )
    assert r.throughput_tflops == pytest.approx(expect)


def test_unknown_method_rejected(small_gpt):
    with pytest.raises(KeyError):
        run_iteration(small_gpt, "warp_drive")


def test_gpt_method_ordering(small_gpt):
    """signal >= ours >= alpa ~ broadcast >= send_recv in throughput."""
    r = {m: run_iteration(small_gpt, m).throughput_tflops
         for m in ("send_recv", "alpa", "broadcast", "ours", "signal")}
    assert r["signal"] >= r["ours"] - 1e-9
    assert r["ours"] > r["alpa"]
    assert r["alpa"] == pytest.approx(r["broadcast"], rel=0.1)
    assert r["alpa"] >= r["send_recv"] - 1e-9


def test_utransformer_ours_approaches_signal(small_ut):
    ours = run_iteration(small_ut, "ours")
    signal = run_iteration(small_ut, "signal")
    assert ours.throughput_tflops >= 0.95 * signal.throughput_tflops


def test_utransformer_overlap_between_broadcast_and_ours(small_ut):
    bc = run_iteration(small_ut, "broadcast").iteration_time
    ov = run_iteration(small_ut, "overlap").iteration_time
    ours = run_iteration(small_ut, "ours").iteration_time
    assert bc > ov > ours


def test_utransformer_alpa_gap_direction(small_ut):
    """The headline: ours beats Alpa substantially on U-Transformer."""
    alpa = run_iteration(small_ut, "alpa")
    ours = run_iteration(small_ut, "ours")
    assert ours.throughput_tflops / alpa.throughput_tflops > 1.3
