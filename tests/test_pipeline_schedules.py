"""Tests for pipeline schedule generation (GPipe, 1F1B, eager-1F1B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.schedules import (
    Task,
    eager_warmup,
    fifo_warmup,
    gpipe_order,
    one_f_one_b_order,
    schedule_job,
    split_backward,
    stage_order,
)


# ----------------------------------------------------------------------
# warm-up depths (paper §4)
# ----------------------------------------------------------------------
def test_fifo_warmup_formula():
    # 0-indexed: p - s
    assert [fifo_warmup(s, 4) for s in range(4)] == [4, 3, 2, 1]


def test_eager_warmup_formula():
    # 0-indexed: 2 (p - s - 1) + 1
    assert [eager_warmup(s, 4) for s in range(4)] == [7, 5, 3, 1]


def test_warmups_last_stage_is_one():
    for p in range(1, 6):
        assert fifo_warmup(p - 1, p) == 1
        assert eager_warmup(p - 1, p) == 1


def test_eager_deeper_than_fifo_except_last():
    for p in range(2, 6):
        for s in range(p - 1):
            assert eager_warmup(s, p) > fifo_warmup(s, p)


def test_warmup_bounds_checked():
    with pytest.raises(ValueError):
        fifo_warmup(4, 4)
    with pytest.raises(ValueError):
        eager_warmup(-1, 4)


def test_eager_extra_memory_bound():
    """Eager stores at most #stages more activations (paper's bound)."""
    for p in range(2, 8):
        for s in range(p):
            assert eager_warmup(s, p) - fifo_warmup(s, p) <= p


# ----------------------------------------------------------------------
# orders
# ----------------------------------------------------------------------
def test_gpipe_order():
    order = gpipe_order(3)
    assert order == [Task("F", 0), Task("F", 1), Task("F", 2),
                     Task("B", 0), Task("B", 1), Task("B", 2)]


def test_one_f_one_b_steady_pattern():
    order = one_f_one_b_order(6, warmup=2)
    kinds = "".join(t.kind for t in order)
    assert kinds == "FFBFBFBFBFBB"
    # backwards in micro-batch order
    assert [t.microbatch for t in order if t.kind == "B"] == list(range(6))


def test_one_f_one_b_warmup_larger_than_microbatches():
    order = one_f_one_b_order(2, warmup=5)
    kinds = "".join(t.kind for t in order)
    assert kinds == "FFBB"


def test_one_f_one_b_invalid_warmup():
    with pytest.raises(ValueError):
        one_f_one_b_order(4, warmup=0)


@pytest.mark.parametrize("sched", ["gpipe", "1f1b", "eager_1f1b"])
@pytest.mark.parametrize("p,m", [(1, 4), (2, 8), (4, 4), (4, 16)])
def test_orders_complete_and_causal(sched, p, m):
    for s in range(p):
        order = stage_order(sched, s, p, m)
        fwd = [t.microbatch for t in order if t.kind == "F"]
        bwd = [t.microbatch for t in order if t.kind == "B"]
        assert sorted(fwd) == list(range(m))
        assert sorted(bwd) == list(range(m))
        # F before its own B
        for mb in range(m):
            assert order.index(Task("F", mb)) < order.index(Task("B", mb))


def test_unknown_schedule():
    with pytest.raises(ValueError, match="unknown schedule"):
        stage_order("2f2b", 0, 2, 4)


# ----------------------------------------------------------------------
# backward split / weight delaying
# ----------------------------------------------------------------------
def test_split_backward_basic():
    order = [Task("F", 0), Task("F", 1), Task("B", 0), Task("F", 2), Task("B", 1)]
    out = split_backward(order, delay_slots=1)
    assert out == [
        Task("F", 0), Task("F", 1), Task("Bx", 0), Task("F", 2), Task("Bw", 0),
        Task("Bx", 1), Task("Bw", 1),
    ]


def test_split_backward_zero_delay():
    order = [Task("F", 0), Task("B", 0)]
    assert split_backward(order, delay_slots=0) == [
        Task("F", 0), Task("Bx", 0), Task("Bw", 0)
    ]


def test_split_backward_adjacent_backwards():
    order = [Task("F", 0), Task("F", 1), Task("B", 0), Task("B", 1)]
    out = split_backward(order, delay_slots=1)
    assert out == [Task("F", 0), Task("F", 1), Task("Bx", 0), Task("Bx", 1),
                   Task("Bw", 0), Task("Bw", 1)]


def test_split_backward_flushes_at_end():
    out = split_backward([Task("F", 0), Task("B", 0)], delay_slots=5)
    assert out == [Task("F", 0), Task("Bx", 0), Task("Bw", 0)]


def test_split_backward_negative_rejected():
    with pytest.raises(ValueError):
        split_backward([], delay_slots=-1)


@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 12), warmup=st.integers(1, 6), delay=st.integers(0, 3))
def test_property_split_preserves_multiset(m, warmup, delay):
    order = one_f_one_b_order(m, warmup)
    out = split_backward(order, delay_slots=delay)
    assert [t for t in out if t.kind == "F"] == [t for t in order if t.kind == "F"]
    assert sorted(t.microbatch for t in out if t.kind == "Bx") == list(range(m))
    assert sorted(t.microbatch for t in out if t.kind == "Bw") == list(range(m))
    # Bx before its Bw; Bw within delay slots of its Bx
    for mb in range(m):
        assert out.index(Task("Bx", mb)) < out.index(Task("Bw", mb))


# ----------------------------------------------------------------------
# schedule_job
# ----------------------------------------------------------------------
def test_schedule_job_shapes():
    orders = schedule_job("1f1b", n_stages=3, n_microbatches=5)
    assert len(orders) == 3
    assert all(len(o) == 10 for o in orders)


def test_schedule_job_with_delay():
    orders = schedule_job("eager_1f1b", 2, 4, delay_bw_weight=True)
    kinds = {t.kind for o in orders for t in o}
    assert kinds == {"F", "Bx", "Bw"}
