"""Tests for the telemetry bus: nesting, monotonicity, sinks, parity."""

import pytest

from repro.runtime.telemetry import (
    CounterSample,
    MarkRecord,
    SpanRecord,
    TelemetryBus,
)
from repro.runtime.trace import (
    chrome_trace_events,
    dicts_to_records,
    records_to_jsonl_dicts,
)


def make_bus(t=0.0):
    clock = {"t": t}
    bus = TelemetryBus(clock=lambda: clock["t"])
    return bus, clock


# ----------------------------------------------------------------------
# Span nesting
# ----------------------------------------------------------------------
def test_begin_end_nesting_sets_depth_and_parent():
    bus, clock = make_bus()
    bus.begin("outer", cat="phase", track="sup")
    clock["t"] = 1.0
    bus.begin("inner", cat="phase", track="sup")
    clock["t"] = 2.0
    inner = bus.end("sup")
    clock["t"] = 3.0
    outer = bus.end("sup")
    assert (inner.depth, inner.parent) == (1, "outer")
    assert (outer.depth, outer.parent) == (0, "")
    assert (inner.start, inner.end) == (1.0, 2.0)
    assert (outer.start, outer.end) == (0.0, 3.0)


def test_emit_span_inside_open_span_nests():
    bus, clock = make_bus()
    bus.begin("recovery", cat="recovery", track="sup")
    child = bus.emit_span("load", cat="recovery.load", track="sup",
                          start=0.5, end=1.5)
    assert (child.depth, child.parent) == (1, "recovery")
    clock["t"] = 2.0
    bus.end("sup")
    assert bus.open_depth("sup") == 0


def test_nesting_is_per_track():
    bus, _clock = make_bus()
    bus.begin("a", cat="c", track="t1")
    span = bus.emit_span("b", cat="c", track="t2", start=0.0, end=1.0)
    assert span.depth == 0
    assert bus.open_depth("t1") == 1 and bus.open_depth("t2") == 0


def test_end_without_begin_raises():
    bus, _clock = make_bus()
    with pytest.raises(RuntimeError, match="no open span"):
        bus.end("nowhere")


# ----------------------------------------------------------------------
# Counter monotonicity
# ----------------------------------------------------------------------
def test_counter_rejects_negative_delta():
    bus, _clock = make_bus()
    c = bus.counter("bytes", track="net")
    c.add(10.0)
    with pytest.raises(ValueError, match="monotonic"):
        c.add(-1.0)
    assert c.value == 10.0


def test_counter_samples_are_cumulative_and_timestamped():
    bus, clock = make_bus()
    c = bus.counter("bytes", track="net")
    c.add(5.0)
    clock["t"] = 2.0
    c.add(7.0)
    assert [(s.time, s.value) for s in bus.counters] == [(0.0, 5.0), (2.0, 12.0)]


def test_gauge_moves_both_ways_and_counter_is_separate_series():
    bus, _clock = make_bus()
    g = bus.gauge("acts", track="stage:0")
    g.add(2.0)
    g.add(-1.0)
    assert g.value == 1.0
    assert bus.counter("acts", track="stage:0") is not g  # distinct keyspace
    assert bus.gauge("acts", track="stage:0") is g


# ----------------------------------------------------------------------
# Sink fan-out
# ----------------------------------------------------------------------
class _Probe:
    def __init__(self):
        self.spans, self.counters, self.marks = [], [], []

    def on_span(self, span):
        self.spans.append(span)

    def on_counter(self, sample):
        self.counters.append(sample)

    def on_mark(self, mark):
        self.marks.append(mark)


def test_sinks_fan_out_every_record_kind():
    bus, _clock = make_bus()
    probe = _Probe()
    bus.add_sink(probe)
    bus.emit_span("s", cat="c", track="t", start=0.0, end=1.0)
    bus.counter("n", track="t").add(1.0)
    bus.mark("m", track="t")
    assert [s.name for s in probe.spans] == ["s"]
    assert [c.name for c in probe.counters] == ["n"]
    assert [m.name for m in probe.marks] == ["m"]
    # the built-in memory sink observed the same stream
    assert len(bus.spans) == 1 and len(bus.counters) == 1 and len(bus.marks) == 1


def test_late_sink_only_sees_later_records():
    bus, _clock = make_bus()
    bus.emit_span("before", cat="c", track="t", start=0.0, end=1.0)
    probe = _Probe()
    bus.add_sink(probe)
    bus.emit_span("after", cat="c", track="t", start=1.0, end=2.0)
    assert [s.name for s in probe.spans] == ["after"]


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def test_jsonl_dicts_round_trip_to_records():
    bus, clock = make_bus()
    bus.emit_span("s", cat="c", track="t", start=0.0, end=1.0, k=3)
    bus.counter("n", track="t").add(2.0)
    clock["t"] = 1.0
    bus.mark("m", track="t", why="x")
    recs = dicts_to_records(records_to_jsonl_dicts(bus, run="r"))
    span = next(r for r in recs if isinstance(r, SpanRecord))
    counter = next(r for r in recs if isinstance(r, CounterSample))
    mark = next(r for r in recs if isinstance(r, MarkRecord))
    assert (span.name, span.cat, span.attrs["k"]) == ("s", "c", 3)
    assert (counter.name, counter.value) == ("n", 2.0)
    assert (mark.name, mark.attrs["why"], mark.time) == ("m", "x", 1.0)


def test_chrome_trace_groups_tracks_by_prefix():
    bus, _clock = make_bus()
    bus.emit_span("a", cat="c", track="stage:0", start=0.0, end=1.0)
    bus.emit_span("b", cat="c", track="stage:1", start=0.0, end=1.0)
    bus.emit_span("f", cat="flow", track="dev:0", start=0.0, end=1.0)
    events = chrome_trace_events(bus)
    xs = [e for e in events if e.get("ph") == "X"]
    stage_pids = {e["pid"] for e in xs if e["name"] in ("a", "b")}
    dev_pids = {e["pid"] for e in xs if e["name"] == "f"}
    assert len(stage_pids) == 1  # one process per track group
    assert stage_pids.isdisjoint(dev_pids)
    tids = {(e["pid"], e["tid"]) for e in xs}
    assert len(tids) == 3  # one thread per track


# ----------------------------------------------------------------------
# Parity: bus-derived Chrome trace == legacy FlowRecord-derived trace
# ----------------------------------------------------------------------
def test_fig6_flow_trace_parity():
    """On a fixed Fig. 6 (Table 2) case the trace built straight from
    the telemetry spans must equal the one built from the derived
    FlowRecord view — same events, same order."""
    from repro.core.api import reshard
    from repro.experiments.common import make_microbench_meshes
    from repro.experiments.fig6 import TABLE2_CASES
    from repro.viz import bus_flow_trace_events, flow_trace_events

    case = TABLE2_CASES[2]  # case3: RS0R -> S0RR on (2,4) meshes
    cluster, src, dst = make_microbench_meshes(case.send_mesh, case.recv_mesh)
    r = reshard((256, 256, 64), src, case.send_spec, dst, case.recv_spec,
                strategy="broadcast", cache=None)
    legacy = flow_trace_events(r.timing.network.trace, cluster)
    from_bus = bus_flow_trace_events(r.timing.telemetry, cluster)
    assert from_bus == legacy
    assert any(e.get("ph") == "X" for e in legacy)
