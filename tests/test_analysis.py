"""Tests for the static plan verifier (``repro.analysis``).

Three fronts:

* every hand-built known-bad plan under ``tests/fixtures/bad_plans/`` is
  rejected with (at least) the stable diagnostic codes its ``expect``
  field documents;
* every plan the compiler emits for real reshardings — all strategies,
  several spec pairs — is accepted clean, so the analyzer cannot drift
  into rejecting valid plans;
* the individual rules (race ordering, dep direction, schedule
  consistency, re-rooting) behave correctly on minimal inline plans,
  including the ``reroot_schedule`` edge cases (all senders down, a
  single survivor, single-receiver plans).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    CATALOG,
    check_plan,
    check_plan_deadlock,
    load_plan_fixture,
    plan_from_dict,
)
from repro.compiler import CompileContext, compile_resharding
from repro.compiler.passes import reroot_schedule
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.scheduling.problem import SchedulingProblem
from repro.scheduling.algorithms import load_balance_schedule
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.faults import FaultSchedule, HostFailure

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "bad_plans"
FIXTURES = sorted(FIXTURE_DIR.glob("*.json"))


def make_cluster(n_hosts=4, devices_per_host=4) -> Cluster:
    return Cluster(ClusterSpec(n_hosts=n_hosts, devices_per_host=devices_per_host))


def make_task(cluster=None, shape=(64, 64, 64), src_spec="RS0R",
              dst_spec="S0RR", src_hosts=(0, 1), dst_hosts=(2, 3)):
    c = cluster if cluster is not None else make_cluster()
    src = DeviceMesh.from_hosts(c, src_hosts)
    dst = DeviceMesh.from_hosts(c, dst_hosts)
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=np.float32)


# ----------------------------------------------------------------------
# Known-bad fixtures must be rejected with their documented codes
# ----------------------------------------------------------------------
class TestBadPlanFixtures:
    def test_fixture_directory_is_populated(self):
        assert len(FIXTURES) >= 7

    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_fixture_rejected_with_expected_codes(self, path):
        fixture = load_plan_fixture(path)
        assert fixture.expect, f"{path.name} declares no expected codes"
        report = check_plan(fixture.plan)
        assert not report.ok, f"{path.name} was accepted: {fixture.description}"
        missing = set(fixture.expect) - set(report.codes)
        assert not missing, (
            f"{path.name} expected {sorted(fixture.expect)}, analyzer said "
            f"{sorted(report.codes)}"
        )

    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_expected_codes_fire_as_errors(self, path):
        fixture = load_plan_fixture(path)
        report = check_plan(fixture.plan)
        error_codes = {d.code for d in report.errors}
        assert set(fixture.expect) <= error_codes

    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_every_emitted_code_is_documented(self, path):
        report = check_plan(load_plan_fixture(path).plan)
        for diag in report.diagnostics:
            assert diag.code in CATALOG, f"undocumented code {diag.code}"

    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_expected_codes_are_documented(self, path):
        raw = json.loads(path.read_text(encoding="utf-8"))
        for code in raw["expect"]:
            assert code in CATALOG


# ----------------------------------------------------------------------
# Every real compiled plan must be accepted (no false positives)
# ----------------------------------------------------------------------
SPEC_PAIRS = [
    ("RS0R", "S0RR"),
    ("S0RR", "RS0R"),
    ("RRR", "S0RR"),
    ("RS1R", "RRR"),
]


class TestGoldenPlansAccepted:
    @pytest.mark.parametrize("strategy", ["send_recv", "broadcast", "allgather"])
    @pytest.mark.parametrize("src_spec,dst_spec", SPEC_PAIRS)
    def test_compiled_plan_is_clean(self, strategy, src_spec, dst_spec):
        task = make_task(shape=(32, 32, 32), src_spec=src_spec, dst_spec=dst_spec)
        compiled = compile_resharding(
            task, CompileContext(strategy=strategy, cache=None)
        )
        report = check_plan(compiled.plan)
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)

    def test_validate_pass_accepts_golden_plans(self):
        task = make_task(shape=(32, 32, 32))
        compiled = compile_resharding(
            task, CompileContext(strategy="broadcast", cache=None, validate=True)
        )
        assert compiled.plan.ops

    def test_uneven_shard_plan_is_clean(self):
        # 3-way split of 10 rows: unequal tiles exercise coverage math.
        c = make_cluster(n_hosts=4, devices_per_host=1)
        src = DeviceMesh.from_hosts(c, (0,))
        dst = DeviceMesh.from_hosts(c, (1, 2, 3))
        task = ReshardingTask((10, 4), src, "RR", dst, "S0R", dtype=np.float32)
        compiled = compile_resharding(
            task, CompileContext(strategy="broadcast", cache=None)
        )
        report = check_plan(compiled.plan)
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)


# ----------------------------------------------------------------------
# Rule units on minimal inline plans
# ----------------------------------------------------------------------
def inline_plan(ops, schedule=None, fallbacks=None, src=None, dst=None):
    raw = {
        "cluster": {"n_hosts": 4, "devices_per_host": 2},
        "shape": [8, 8],
        "src": src or {"hosts": [0], "spec": "RR"},
        "dst": dst or {"hosts": [1], "spec": "RR"},
        "ops": ops,
    }
    if schedule is not None:
        raw["schedule"] = schedule
    if fallbacks is not None:
        raw["fallbacks"] = fallbacks
    return plan_from_dict(raw)


FULL = [[0, 8], [0, 8]]


class TestRuleUnits:
    def test_dep_orders_same_receiver_writes(self):
        # Same two writes as overlapping_writes.json, but op 1 depends on
        # op 0: ordered, so no race.
        plan = inline_plan([
            {"kind": "send", "id": 0, "task": 0, "region": FULL,
             "sender": 0, "receiver": 2},
            {"kind": "send", "id": 1, "task": 0, "region": FULL,
             "sender": 1, "receiver": 2, "deps": [0]},
            {"kind": "send", "id": 2, "task": 0, "region": FULL,
             "sender": 0, "receiver": 3},
        ])
        report = check_plan(plan)
        assert "P001" not in report.codes
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)

    def test_disjoint_writes_do_not_race(self):
        plan = inline_plan([
            {"kind": "send", "id": 0, "task": 0, "region": [[0, 4], [0, 8]],
             "sender": 0, "receiver": 2},
            {"kind": "send", "id": 1, "task": 0, "region": [[4, 8], [0, 8]],
             "sender": 1, "receiver": 2},
            {"kind": "send", "id": 2, "task": 0, "region": FULL,
             "sender": 0, "receiver": 3},
        ])
        assert "P001" not in check_plan(plan).codes

    def test_forward_dep_is_rejected(self):
        plan = inline_plan([
            {"kind": "send", "id": 0, "task": 0, "region": FULL,
             "sender": 0, "receiver": 2, "deps": [1]},
            {"kind": "send", "id": 1, "task": 0, "region": FULL,
             "sender": 0, "receiver": 3},
        ])
        assert "P004" in check_plan(plan).codes

    def test_duplicate_op_id_is_malformed(self):
        plan = inline_plan([
            {"kind": "send", "id": 0, "task": 0, "region": FULL,
             "sender": 0, "receiver": 2},
            {"kind": "send", "id": 0, "task": 0, "region": FULL,
             "sender": 0, "receiver": 3},
        ])
        assert "P008" in check_plan(plan).codes

    def test_region_rank_mismatch_is_malformed(self):
        plan = inline_plan([
            {"kind": "send", "id": 0, "task": 0, "region": [[0, 8]],
             "sender": 0, "receiver": 2},
            {"kind": "send", "id": 1, "task": 0, "region": FULL,
             "sender": 0, "receiver": 2},
            {"kind": "send", "id": 2, "task": 0, "region": FULL,
             "sender": 0, "receiver": 3},
        ])
        assert "P008" in check_plan(plan).codes

    def test_schedule_missing_task_is_inconsistent(self):
        plan = inline_plan(
            [
                {"kind": "send", "id": 0, "task": 0, "region": FULL,
                 "sender": 0, "receiver": 2},
                {"kind": "send", "id": 1, "task": 0, "region": FULL,
                 "sender": 0, "receiver": 3},
            ],
            schedule={"assignment": {}, "order": []},
        )
        assert "P007" in check_plan(plan).codes

    def test_fallback_consistent_reroot_is_clean(self):
        # Re-rooted off host 0 onto host 1 — and the op really does send
        # from host 1 (device 2). The analyzer must accept this.
        plan = inline_plan(
            [
                {"kind": "broadcast", "id": 0, "task": 0, "region": FULL,
                 "sender": 2, "receivers": [4, 5]},
            ],
            src={"hosts": [0, 1], "spec": "RR"},
            dst={"hosts": [2], "spec": "RR"},
            schedule={"assignment": {"0": 1}, "order": [0]},
            fallbacks=[{"task": 0, "from_host": 0, "to_host": 1,
                        "reason": "sender-host-down"}],
        )
        report = check_plan(plan)
        assert "P006" not in report.codes
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)

    def test_deadlock_checker_clean_on_consistent_gating(self):
        # Dep agrees with the gating order: no cycle.
        plan = inline_plan(
            [
                {"kind": "broadcast", "id": 0, "task": 0,
                 "region": [[0, 4], [0, 8]], "sender": 0, "receivers": [2, 3]},
                {"kind": "broadcast", "id": 1, "task": 1,
                 "region": [[4, 8], [0, 8]], "sender": 0, "receivers": [4, 5],
                 "deps": [0]},
            ],
            src={"hosts": [0], "spec": "RR"},
            dst={"hosts": [1, 2], "spec": "S0R"},
            schedule={"assignment": {"0": 0, "1": 0}, "order": [0, 1]},
        )
        assert check_plan_deadlock(plan).ok
        assert check_plan(plan).ok

    def test_deadlock_witness_names_the_cycle(self):
        fixture = load_plan_fixture(FIXTURE_DIR / "gated_dep_deadlock.json")
        report = check_plan(fixture.plan)
        (diag,) = [d for d in report.diagnostics if d.code == "D001"]
        assert diag.witness
        assert diag.witness[0] == diag.witness[-1]


# ----------------------------------------------------------------------
# reroot_schedule edge cases
# ----------------------------------------------------------------------
def dead_hosts(*hosts):
    return FaultSchedule(
        host_failures=tuple(HostFailure(host=h, time=0.0) for h in hosts)
    )


class TestRerootEdgeCases:
    def make_schedule(self, task, granularity="intersection"):
        unit_tasks = task.unit_tasks(granularity)
        problem = SchedulingProblem.from_resharding(task, granularity=granularity)
        return unit_tasks, load_balance_schedule(problem)

    def test_all_senders_down_keeps_assignment(self):
        task = make_task(shape=(32, 32, 32), src_spec="RRR", dst_spec="S0RR")
        unit_tasks, schedule = self.make_schedule(task)
        before = dict(schedule.assignment)
        fallbacks = []
        n = reroot_schedule(task, unit_tasks, schedule, dead_hosts(0, 1), fallbacks)
        assert n == 0
        assert fallbacks == []
        assert schedule.assignment == before

    def test_single_survivor_takes_over(self):
        task = make_task(shape=(32, 32, 32), src_spec="RRR", dst_spec="S0RR")
        unit_tasks, schedule = self.make_schedule(task)
        doomed = [t for t, h in schedule.assignment.items() if h == 0]
        fallbacks = []
        n = reroot_schedule(task, unit_tasks, schedule, dead_hosts(0), fallbacks)
        assert n == len(doomed)
        assert len(fallbacks) == n
        for fb in fallbacks:
            assert fb.from_host == 0
            assert fb.to_host == 1
            assert schedule.assignment[fb.unit_task_id] == 1

    def test_faulty_compile_avoids_dead_host_and_passes_analyzer(self):
        # The fault-aware scheduler steers assignments off the dead host
        # (so FaultRewritePass may have nothing left to re-root); either
        # way no op may send from it and the plan must validate clean.
        task = make_task(shape=(32, 32, 32), src_spec="RRR", dst_spec="S0RR")
        compiled = compile_resharding(
            task,
            CompileContext(strategy="broadcast", cache=None,
                           faults=dead_hosts(0), validate=True),
        )
        cluster = compiled.plan.task.cluster
        for op in compiled.plan.ops:
            sender = getattr(op, "sender", None)
            if sender is not None:
                assert cluster.host_of(sender) != 0
        report = check_plan(compiled.plan)
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)

    def test_single_receiver_plan_reroot_and_analyze(self):
        c = make_cluster(n_hosts=3, devices_per_host=1)
        src = DeviceMesh.from_hosts(c, (0, 1))
        dst = DeviceMesh.from_hosts(c, (2,))
        task = ReshardingTask((16, 16), src, "RR", dst, "RR", dtype=np.float32)
        compiled = compile_resharding(
            task,
            CompileContext(strategy="broadcast", cache=None,
                           faults=dead_hosts(0), validate=True),
        )
        report = check_plan(compiled.plan)
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)

    def test_unreplicated_source_never_reroots(self):
        # Sharded source: each unit task has exactly one sender host, so
        # a dead host has no survivor to re-root onto.
        task = make_task(shape=(32, 32, 32), src_spec="S0RR", dst_spec="RS0R")
        unit_tasks, schedule = self.make_schedule(task)
        fallbacks = []
        n = reroot_schedule(task, unit_tasks, schedule, dead_hosts(0), fallbacks)
        assert n == 0
        assert fallbacks == []
