"""Correlated failure domains, gray failures, and domain-aware recovery.

Covers the failure-domain tentpole end to end:

* :class:`~repro.sim.cluster.FailureDomain` topology on ``ClusterSpec``;
* the correlated/gray event classes — :class:`DomainFailure` (a rack
  dies together), :class:`Partition` (asymmetric reachability), and
  :class:`CorruptionWindow` (flows complete on time, deliver bad bytes);
* their network semantics, including causal fault attribution;
* detection: per-slice checksums catching corruption as a first-class
  category, and the never-silent guarantee (checksum-less corruption is
  *unverifiable* and refuses certification loudly);
* domain-aware recovery placement: F001/F003 plan diagnostics, F002
  buddy-checkpoint checks, ``buddy_assignment``, and replan spare
  preference.
"""

import json
import pathlib

import pytest

from repro.analysis import (
    check_checkpoint_domains,
    check_plan,
    load_plan_fixture,
    meshes_share_domain,
)
from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.core.verify_data import IntegrityError, verify_delivery
from repro.compiler import CompileContext, compile_resharding
from repro.recovery import buddy_assignment
from repro.sim import Cluster, ClusterSpec, GB, Network
from repro.sim.cluster import FailureDomain
from repro.sim.faults import (
    CorruptionWindow,
    DomainFailure,
    FaultSchedule,
    Partition,
    RetryPolicy,
)
from repro.strategies import BroadcastStrategy

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "bad_plans"


def domain_cluster(n_hosts=4, devices_per_host=2, **kw):
    if "failure_domains" in kw:
        domains = kw.pop("failure_domains")
    else:
        domains = (
            FailureDomain("rack0", (0, 1)),
            FailureDomain("rack1", tuple(range(2, n_hosts))),
        )
    return Cluster(
        ClusterSpec(
            n_hosts=n_hosts,
            devices_per_host=devices_per_host,
            failure_domains=domains,
            inter_host_latency=0.0,
            intra_host_latency=0.0,
            **kw,
        )
    )


def make_net(faults=None, policy=None, **kw) -> Network:
    return Network(domain_cluster(**kw), faults=faults, retry_policy=policy)


# ----------------------------------------------------------------------
# FailureDomain topology on ClusterSpec
# ----------------------------------------------------------------------
class TestFailureDomainTopology:
    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            FailureDomain("", (0,))
        with pytest.raises(ValueError, match="member hosts"):
            FailureDomain("rack0", ())
        with pytest.raises(ValueError, match="twice"):
            FailureDomain("rack0", (0, 0))

    def test_spec_lookup_helpers(self):
        spec = domain_cluster().spec
        assert spec.domain("rack0").hosts == (0, 1)
        with pytest.raises(KeyError):
            spec.domain("rack9")
        assert [d.name for d in spec.domains_of_host(1)] == ["rack0"]
        assert spec.shares_domain(0, 1)
        assert not spec.shares_domain(1, 2)
        # A host is trivially in every domain it is in ("shares" with self).
        assert spec.shares_domain(2, 2)

    def test_overlapping_kinds(self):
        # One host can sit in a rack domain AND a pdu domain; sharing
        # either one counts.
        spec = domain_cluster(
            failure_domains=(
                FailureDomain("rack0", (0, 1), kind="rack"),
                FailureDomain("pdu-a", (1, 2), kind="pdu"),
            )
        ).spec
        assert spec.shares_domain(0, 1) and spec.shares_domain(1, 2)
        assert not spec.shares_domain(0, 2)
        assert {d.name for d in spec.domains_of_host(1)} == {"rack0", "pdu-a"}

    def test_no_domains_shares_nothing(self):
        spec = Cluster(ClusterSpec(n_hosts=4, devices_per_host=2)).spec
        assert not spec.shares_domain(0, 1)
        assert spec.domains_of_host(0) == ()


# ----------------------------------------------------------------------
# DomainFailure schedule semantics
# ----------------------------------------------------------------------
class TestDomainFailureSchedule:
    def test_permanent_downs_all_members_forever(self):
        fs = FaultSchedule(
            domain_failures=(DomainFailure("rack0", (0, 1), 2.0, None),)
        )
        for h in (0, 1):
            assert not fs.host_down(h, 1.9)
            assert fs.host_down(h, 2.0) and fs.host_down(h, 1e9)
        assert not fs.host_down(2, 1e9)
        assert fs.failed_hosts(3.0) == frozenset({0, 1})
        assert fs.failed_domain_of(1, 3.0) == "rack0"
        assert fs.failed_domain_of(1, 1.0) is None
        assert fs.failed_domain_of(2, 3.0) is None

    def test_window_outage_recovers(self):
        fs = FaultSchedule(
            domain_failures=(DomainFailure("rack0", (0, 1), 2.0, 3.0),)
        )
        assert fs.host_down(0, 3.0) and fs.host_down(1, 4.9)
        assert not fs.host_down(0, 5.0)  # switch rebooted
        assert 2.0 in fs.boundaries() and 5.0 in fs.boundaries()

    def test_permanent_domain_counts_as_first_host_failure(self):
        fs = FaultSchedule(
            domain_failures=(DomainFailure("rack0", (3, 1), 2.0, None),)
        )
        strike = fs.first_host_failure()
        # Reported as the lowest member host so the recovery runtime
        # reacts to a rack loss like a lone host death.
        assert strike is not None
        assert (strike.host, strike.time) == (1, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="downs no hosts"):
            DomainFailure("rack0", (), 0.0, None)
        with pytest.raises(ValueError, match="duration"):
            DomainFailure("rack0", (0,), 0.0, 0.0)
        with pytest.raises(ValueError, match="time"):
            DomainFailure("rack0", (0,), -1.0, None)


# ----------------------------------------------------------------------
# Network semantics of the three new event classes
# ----------------------------------------------------------------------
class TestNetworkDomainFailure:
    def test_correlated_outage_kills_member_flows_with_domain_kind(self):
        fs = FaultSchedule(
            domain_failures=(DomainFailure("rack0", (0, 1), 0.0, None),)
        )
        net = make_net(faults=fs, policy=RetryPolicy(max_attempts=2,
                                                     backoff_base=1e-3,
                                                     jitter=0.0))
        # host 1 (devices 2-3) is in the failed domain; host 2/3 are not.
        f_dead = net.start_flow(2, 6, GB)
        f_ok = net.start_flow(4, 6, GB)
        net.run()
        assert f_dead.abandoned and not f_ok.abandoned
        rep = net.fault_report()
        assert rep.fatal
        assert any(i.kind == "domain-down" for i in rep.incidents)
        assert rep.categories()["domain"] >= 1

    def test_domain_down_outranks_flap_in_attribution(self):
        # Causal attribution: when a whole rack is down, a member's
        # flap window must not claim the incident.
        from repro.sim.faults import FlapWindow

        fs = FaultSchedule(
            domain_failures=(DomainFailure("rack0", (0, 1), 0.0, 10.0),),
            flaps=(FlapWindow(host=1, start=0.0, duration=10.0),),
        )
        net = make_net(faults=fs, policy=RetryPolicy(max_attempts=2,
                                                     backoff_base=1e-3,
                                                     jitter=0.0))
        net.start_flow(2, 6, GB)
        net.run()
        kinds = {i.kind for i in net.fault_report().incidents}
        assert "domain-down" in kinds and "nic-flap" not in kinds


class TestNetworkPartition:
    def test_partition_is_directional(self):
        fs = FaultSchedule(
            partitions=(Partition((0,), (1,), 0.0, 1e9),)
        )
        net = make_net(faults=fs, policy=RetryPolicy(max_attempts=2,
                                                     backoff_base=1e-3,
                                                     jitter=0.0))
        blocked = net.start_flow(0, 2, GB)   # host 0 -> host 1: blocked
        reverse = net.start_flow(2, 0, GB)   # host 1 -> host 0: fine
        bystander = net.start_flow(0, 4, GB)  # host 0 -> host 2: fine
        net.run()
        assert blocked.abandoned
        assert not reverse.abandoned and not bystander.abandoned
        rep = net.fault_report()
        assert any(i.kind == "partition" for i in rep.incidents)
        assert rep.categories()["partition"] >= 1

    def test_partition_window_heals(self):
        fs = FaultSchedule(partitions=(Partition((0,), (1,), 0.0, 0.05),))
        T = GB / make_net().cluster.spec.inter_host_bandwidth
        net = make_net(
            faults=fs,
            policy=RetryPolicy(max_attempts=20, backoff_base=0.03, jitter=0.0),
        )
        f = net.start_flow(0, 2, GB)
        net.run()
        assert not f.abandoned
        assert f.finish_time >= 0.05  # had to wait out the partition
        assert net.fault_report().recovered

    def test_partitioned_predicate(self):
        fs = FaultSchedule(partitions=(Partition((0, 1), (2,), 1.0, 2.0),))
        assert fs.partitioned(0, 2, 1.5) and fs.partitioned(1, 2, 1.5)
        assert not fs.partitioned(2, 0, 1.5)  # reverse path fine
        assert not fs.partitioned(0, 2, 0.5)  # before the window
        assert not fs.partitioned(0, 2, 3.0)  # after it


class TestNetworkCorruption:
    def test_gray_corruption_completes_on_time(self):
        fs = FaultSchedule(
            corruptions=(CorruptionWindow(host=1, start=0.0, duration=1e9,
                                          rate=1.0 - 1e-12),)
        )
        clean = make_net()
        g = clean.start_flow(0, 2, GB)
        clean.run()
        net = make_net(faults=fs)
        f = net.start_flow(0, 2, GB)
        net.run()
        # The point of a gray failure: timing is indistinguishable.
        assert f.finish_time == g.finish_time
        assert not f.abandoned and f.attempts == 1
        assert net.corrupted_flows and net.n_corrupted == 1
        trace = [r for r in net.trace if r.flow_id == f.flow_id]
        assert trace[-1].status == "corrupted"
        rep = net.fault_report()
        # Flow-level status stays healthy-looking; only the incident
        # list (and downstream checksums) reveal the corruption.
        assert rep.status == "clean"
        assert any(i.kind == "corruption" for i in rep.incidents)
        assert rep.categories()["corruption"] == 1

    def test_corruption_rate_is_seeded_and_partial(self):
        fs = FaultSchedule(
            seed=5,
            corruptions=(CorruptionWindow(host=1, start=0.0, duration=1e9,
                                          rate=0.5),),
        )
        draws = [fs.should_corrupt((0, 1), 0.0, i) for i in range(2000)]
        assert draws == [fs.should_corrupt((0, 1), 0.0, i) for i in range(2000)]
        rate = sum(draws) / len(draws)
        assert 0.42 < rate < 0.58
        # Outside the window nothing corrupts.
        assert not any(fs.should_corrupt((0, 1), -1.0, i) for i in range(50))

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            CorruptionWindow(host=0, start=0.0, duration=1.0, rate=0.0)
        with pytest.raises(ValueError, match="rate"):
            CorruptionWindow(host=0, start=0.0, duration=1.0, rate=1.5)


# ----------------------------------------------------------------------
# Detection: checksums and the never-silent guarantee
# ----------------------------------------------------------------------
def corrupting_schedule(dst_hosts):
    return FaultSchedule(
        seed=0,
        corruptions=tuple(
            CorruptionWindow(host=h, start=0.0, duration=1e9, rate=1.0 - 1e-12)
            for h in dst_hosts
        ),
    )


def broadcast_task():
    cluster = domain_cluster()
    src = DeviceMesh.from_hosts(cluster, [0, 1])
    dst = DeviceMesh.from_hosts(cluster, [2, 3])
    return ReshardingTask((64, 64), src, "S0R", dst, "RS0")


class TestCorruptionDetection:
    def test_compiled_plan_detects_corruption_via_checksums(self):
        task = broadcast_task()
        faults = corrupting_schedule([2, 3])
        compiled = compile_resharding(
            task, CompileContext(strategy=BroadcastStrategy(), faults=faults,
                                 cache=None)
        )
        plan = compiled.plan
        assert all(op.checksum for op in plan.ops)  # EmitPass stamped them
        timing = simulate_plan(plan, faults=faults, retry_policy=RetryPolicy())
        assert timing.corrupted_ops and not timing.unverified_corruption
        # Checksummed detection escalates the report: loud, never gray.
        assert timing.fault_report.fatal
        assert timing.fault_report.escalations
        # Detected corruption earns no delivery credit -> gaps -> raises.
        with pytest.raises(IntegrityError, match="missing data"):
            verify_delivery(plan, timing)
        report = verify_delivery(plan, timing, raise_on_error=False)
        assert not report.certified
        assert report.corrupted_ops == timing.corrupted_ops

    def test_checksum_less_plan_is_never_silently_certified(self):
        # A hand-built plan (no compiler emit pass) has no checksums:
        # corruption through it is undetectable in-band, so the verifier
        # must refuse certification *loudly* — this is the one outcome
        # the integrity layer exists to make impossible.
        task = broadcast_task()
        faults = corrupting_schedule([2, 3])
        from dataclasses import replace

        compiled = BroadcastStrategy().plan(task)
        plan = replace(
            compiled,
            ops=tuple(replace(op, checksum="") for op in compiled.ops),
        )
        assert all(not op.checksum for op in plan.ops)
        timing = simulate_plan(plan, faults=faults, retry_policy=RetryPolicy())
        assert timing.unverified_corruption and not timing.corrupted_ops
        # The unverifiable-corruption error outranks every other finding.
        with pytest.raises(IntegrityError, match="silent corruption possible"):
            verify_delivery(plan, timing)
        report = verify_delivery(plan, timing, raise_on_error=False)
        assert not report.certified
        assert report.unverifiable_ops == timing.unverified_corruption

    def test_clean_run_certifies_with_checksums_present(self):
        task = broadcast_task()
        compiled = compile_resharding(
            task, CompileContext(strategy=BroadcastStrategy(), cache=None)
        )
        timing = simulate_plan(compiled.plan)
        assert timing.corrupted_ops == () and timing.unverified_corruption == ()
        assert verify_delivery(compiled.plan, timing).certified


# ----------------------------------------------------------------------
# Domain-aware placement: F001 / F002 / F003
# ----------------------------------------------------------------------
class TestDomainDiagnostics:
    def test_f001_fixture_rejected(self):
        fixture = load_plan_fixture(FIXTURES / "f001_reroot_same_domain.json")
        report = check_plan(fixture.plan)
        assert "F001" in report.codes
        assert any(d.code == "F001" for d in report.errors)

    def test_f003_scheduled_sender_in_failed_domain(self):
        fixture = load_plan_fixture(FIXTURES / "f001_reroot_same_domain.json")
        faults = FaultSchedule(
            domain_failures=(DomainFailure("rack0", (0, 1), 0.0, None),)
        )
        report = check_plan(fixture.plan, faults=faults)
        # The schedule assigns the op to host 1, inside the failed
        # rack0, while live out-of-domain sender host 2 exists.
        assert "F003" in report.codes
        assert any(d.code == "F003" for d in report.errors)

    def test_f003_quiet_without_faults_or_without_failed_domains(self):
        fixture = load_plan_fixture(FIXTURES / "f001_reroot_same_domain.json")
        assert "F003" not in check_plan(fixture.plan).codes
        healthy = FaultSchedule(
            domain_failures=(DomainFailure("rack1", (2, 3), 50.0, 1.0),)
        )
        # rack1 fails long after t=0 scheduling; nothing to flag.
        assert "F003" not in check_plan(fixture.plan, faults=healthy).codes

    def test_f002_buddy_in_same_domain(self):
        cluster = domain_cluster(n_hosts=4)
        m = [DeviceMesh.from_hosts(cluster, [h]) for h in range(4)]
        # Stage 0 on host 0, buddy on host 1: both in rack0, while the
        # rack1 meshes prove a safe alternative exists -> ERROR.
        report = check_checkpoint_domains([m[0], m[2], m[3]],
                                          [m[1], m[3], m[2]],
                                          cluster.spec)
        assert "F002" in report.codes
        assert any(d.code == "F002" for d in report.errors)

    def test_f002_clean_when_buddies_cross_domains(self):
        cluster = domain_cluster(n_hosts=4)
        m = [DeviceMesh.from_hosts(cluster, [h]) for h in range(4)]
        report = check_checkpoint_domains([m[0], m[2]], [m[2], m[0]],
                                          cluster.spec)
        assert report.codes == set()

    def test_f002_demotes_to_warning_when_unavoidable(self):
        # Every host shares the single domain: no placement can escape,
        # so the finding is advisory, not a build-breaker.
        cluster = domain_cluster(
            n_hosts=2,
            failure_domains=(FailureDomain("rack0", (0, 1)),),
        )
        m = [DeviceMesh.from_hosts(cluster, [h]) for h in range(2)]
        report = check_checkpoint_domains([m[0]], [m[1]], cluster.spec)
        assert "F002" in report.codes
        assert not report.errors

    def test_f002_mismatched_stage_lists_rejected(self):
        cluster = domain_cluster(n_hosts=4)
        m = [DeviceMesh.from_hosts(cluster, [h]) for h in range(4)]
        with pytest.raises(ValueError):
            check_checkpoint_domains([m[0]], [m[1], m[2]], cluster.spec)

    def test_meshes_share_domain(self):
        cluster = domain_cluster(n_hosts=4)
        m = [DeviceMesh.from_hosts(cluster, [h]) for h in range(4)]
        assert meshes_share_domain(m[0], m[1], cluster.spec)
        assert not meshes_share_domain(m[0], m[2], cluster.spec)


class TestBuddyAssignment:
    def test_ring_buddy_without_domains(self):
        cluster = Cluster(ClusterSpec(n_hosts=3, devices_per_host=2))
        meshes = [DeviceMesh.from_hosts(cluster, [h]) for h in range(3)]
        assert buddy_assignment(meshes) == [1, 2, 0]

    def test_skips_same_domain_ring_neighbor(self):
        cluster = domain_cluster(
            n_hosts=3,
            failure_domains=(FailureDomain("rack01", (0, 1)),),
        )
        meshes = [DeviceMesh.from_hosts(cluster, [h]) for h in range(3)]
        # Stage 0's ring buddy (stage 1) shares rack01 -> skip to stage 2.
        assert buddy_assignment(meshes) == [2, 2, 0]

    def test_falls_back_to_ring_when_every_peer_shares(self):
        cluster = domain_cluster(
            n_hosts=2,
            failure_domains=(FailureDomain("rack0", (0, 1)),),
        )
        meshes = [DeviceMesh.from_hosts(cluster, [h]) for h in range(2)]
        assert buddy_assignment(meshes) == [1, 0]


# ----------------------------------------------------------------------
# Domain-aware replan: spares outside the blast radius win
# ----------------------------------------------------------------------
class TestDomainAwareReplan:
    def job(self, failure_domains):
        from repro.models.gpt import GPTConfig, build_gpt

        cluster = Cluster(
            ClusterSpec(
                n_hosts=4,
                devices_per_host=4,
                n_spare_hosts=2,
                failure_domains=failure_domains,
            )
        )
        config = GPTConfig(name="GPT-small", n_layers=4, hidden=1024,
                           dp=2, op=2, pp=2)
        return build_gpt(config, cluster=cluster)

    def test_prefers_out_of_domain_spare(self):
        from repro.recovery import CheckpointConfig, simulate_training_run
        from repro.sim.faults import HostFailure

        # Worker host 1 shares rackA with spare 2; spare 3 is clear.
        spec = self.job((
            FailureDomain("rack0", (0,)),
            FailureDomain("rackA", (1, 2)),
            FailureDomain("rackB", (3,)),
        ))
        faults = FaultSchedule(host_failures=(HostFailure(1, 10.0),))
        rep = simulate_training_run(
            spec, 6, faults=faults, config=CheckpointConfig(interval=2)
        )
        (event,) = rep.events
        assert event.mode == "substitute"
        assert event.promoted_spares == (3,)
        assert event.certified

    def test_lowest_spare_wins_without_domains(self):
        from repro.recovery import CheckpointConfig, simulate_training_run
        from repro.sim.faults import HostFailure

        spec = self.job(())
        faults = FaultSchedule(host_failures=(HostFailure(1, 10.0),))
        rep = simulate_training_run(
            spec, 6, faults=faults, config=CheckpointConfig(interval=2)
        )
        (event,) = rep.events
        assert event.promoted_spares == (2,)
        assert event.certified


# ----------------------------------------------------------------------
# Loader round-trips failure domains
# ----------------------------------------------------------------------
def test_fixture_loader_parses_failure_domains():
    raw = json.loads(
        (FIXTURES / "f001_reroot_same_domain.json").read_text(encoding="utf-8")
    )
    fixture = load_plan_fixture(FIXTURES / "f001_reroot_same_domain.json")
    spec = fixture.plan.task.cluster.spec
    assert [d["name"] for d in raw["cluster"]["failure_domains"]] == [
        d.name for d in spec.failure_domains
    ]
    assert spec.shares_domain(0, 1) and not spec.shares_domain(1, 2)
