"""Unit tests for the timed collective primitives (paper §3.1 strategies)."""

import pytest

from repro.sim.analysis import (
    latency_broadcast,
    latency_local_allgather,
    latency_send_recv,
)
from repro.sim.cluster import GB, Cluster, ClusterSpec
from repro.sim.network import Network
from repro.sim.primitives import (
    p2p,
    ring_allgather,
    ring_broadcast,
    ring_order,
    scatter,
    split_chunks,
)


def make_net(n_hosts=5, dph=4) -> Network:
    return Network(
        Cluster(
            ClusterSpec(
                n_hosts=n_hosts,
                devices_per_host=dph,
                inter_host_latency=0.0,
                intra_host_latency=0.0,
            )
        )
    )


def t_of(net, nbytes=GB):
    return nbytes / net.cluster.spec.inter_host_bandwidth


# ----------------------------------------------------------------------
# ring_order
# ----------------------------------------------------------------------
def test_ring_order_groups_by_host():
    net = make_net()
    c = net.cluster
    order = ring_order(c, 0, [17, 5, 4, 1, 16])
    # root host (0) first, then host 1, then host 4
    assert order == [1, 4, 5, 16, 17]


def test_ring_order_visits_each_host_once():
    net = make_net()
    c = net.cluster
    order = ring_order(c, 8, [0, 1, 12, 13, 4, 5])
    hosts = [c.host_of(d) for d in order]
    # consecutive duplicates collapse to one visit per host
    visits = [h for i, h in enumerate(hosts) if i == 0 or hosts[i - 1] != h]
    assert len(visits) == len(set(visits))


def test_split_chunks_sums_to_total():
    chunks = split_chunks(1000.0, 7)
    assert len(chunks) == 7
    assert sum(chunks) == pytest.approx(1000.0)


def test_split_chunks_invalid():
    with pytest.raises(ValueError):
        split_chunks(100.0, 0)


# ----------------------------------------------------------------------
# p2p / scatter
# ----------------------------------------------------------------------
def test_p2p_latency():
    net = make_net()
    h = p2p(net, 0, 4, GB)
    net.run()
    assert h.done
    assert h.finish_time == pytest.approx(t_of(net))


def test_scatter_splits_evenly():
    net = make_net()
    h = scatter(net, 0, [4, 5, 8, 9], GB)
    net.run()
    # total GB out of one NIC
    assert h.finish_time == pytest.approx(t_of(net))
    assert net.bytes_cross_host == pytest.approx(GB)


def test_scatter_excludes_root():
    net = make_net()
    h = scatter(net, 0, [0, 4], GB)
    net.run()
    # only the non-root receiver gets a part (half the payload)
    assert net.bytes_cross_host == pytest.approx(GB / 2)
    assert h.done


def test_scatter_empty_receivers_is_noop():
    net = make_net()
    h = scatter(net, 0, [0], GB)
    assert h.done
    assert h.finish_time == pytest.approx(0.0)


# ----------------------------------------------------------------------
# ring all-gather
# ----------------------------------------------------------------------
def test_local_allgather_time():
    net = make_net()
    shard = GB / 4
    h = ring_allgather(net, [0, 1, 2, 3], shard)
    net.run()
    expect = 3 * shard / net.cluster.spec.intra_host_bandwidth
    assert h.finish_time == pytest.approx(expect)


def test_global_allgather_crosses_hosts():
    net = make_net()
    devs = ring_order(net.cluster, 0, [0, 1, 4, 5])
    shard = GB / 4
    h = ring_allgather(net, devs, shard)
    net.run()
    # 3 rounds, each bounded by one cross-host shard transfer
    assert h.finish_time == pytest.approx(3 * shard / net.cluster.spec.inter_host_bandwidth)


def test_allgather_single_device_noop():
    net = make_net()
    h = ring_allgather(net, [3], GB)
    assert h.done and h.finish_time == pytest.approx(0.0)


def test_allgather_flow_count():
    net = make_net()
    h = ring_allgather(net, [0, 1, 2], 100.0)
    net.run()
    # N * (N-1) flows
    assert len(net.trace) == 6
    assert h.n_done == 6


# ----------------------------------------------------------------------
# ring broadcast
# ----------------------------------------------------------------------
def test_broadcast_single_receiver_equals_p2p():
    net = make_net()
    h = ring_broadcast(net, 0, [4], GB, n_chunks=16)
    net.run()
    assert h.finish_time == pytest.approx(t_of(net), rel=1e-6)


def test_broadcast_pipelining_beats_sequential():
    """t + A t/K for A receiving hosts, not A t."""
    net = make_net()
    recv = [4, 8, 12, 16]  # 4 hosts, 1 device each
    k = 32
    h = ring_broadcast(net, 0, recv, GB, n_chunks=k)
    net.run()
    t = t_of(net)
    analytic = latency_broadcast(4, 1, t, k)
    assert h.finish_time == pytest.approx(analytic, rel=0.05)
    assert h.finish_time < latency_local_allgather(4, 1, t)


def test_broadcast_cross_traffic_is_one_copy_per_host():
    net = make_net()
    recv = [4, 5, 8, 9]  # two receiving hosts, 2 devices each
    h = ring_broadcast(net, 0, recv, GB, n_chunks=8)
    net.run()
    assert h.done
    # each receiving host pulls exactly one copy across the network
    assert net.bytes_cross_host == pytest.approx(2 * GB)


def test_broadcast_empty_receivers_noop():
    net = make_net()
    h = ring_broadcast(net, 0, [], GB)
    assert h.done and h.finish_time == pytest.approx(0.0)


def test_broadcast_dedups_root_in_receivers():
    net = make_net()
    ring_broadcast(net, 0, [0, 4], GB, n_chunks=4)
    net.run()
    assert net.bytes_cross_host == pytest.approx(GB)


def test_broadcast_more_chunks_lower_latency():
    lat = {}
    for k in (1, 4, 64):
        net = make_net()
        h = ring_broadcast(net, 0, [4, 8, 12], GB, n_chunks=k)
        net.run()
        lat[k] = h.finish_time
    assert lat[64] < lat[4] < lat[1]


def test_send_recv_analysis_match():
    """A x B independent p2p sends cost A*B*t out of one NIC."""
    net = make_net()
    recv = [4, 5, 8, 9, 12, 13]
    handles = [p2p(net, 0, d, GB) for d in recv]
    net.run()
    t = t_of(net)
    assert max(h.finish_time for h in handles) == pytest.approx(
        latency_send_recv(3, 2, t)
    )


def test_collective_handle_callback_fires_once():
    net = make_net()
    calls = []
    h = p2p(net, 0, 4, 100.0)
    h.add_done_callback(lambda x: calls.append(x))
    net.run()
    assert calls == [h]
    # late registration fires immediately
    h.add_done_callback(lambda x: calls.append("late"))
    assert calls == [h, "late"]
