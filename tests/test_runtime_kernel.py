"""Tests for the runtime kernel: event loop migration, resources, channels."""

import pytest

from repro.runtime.kernel import Event, EventLoop, Kernel
from repro.runtime.resources import Resource, SerialChannel


# ----------------------------------------------------------------------
# EventLoop tie-breaking (regression: FIFO at equal timestamps)
# ----------------------------------------------------------------------
def test_equal_timestamps_pop_in_insertion_order():
    """The heap key carries a monotonic seq so ties never reorder."""
    loop = EventLoop()
    order = []
    for i in range(50):
        loop.call_at(1.0, lambda i=i: order.append(i))
    loop.run()
    assert order == list(range(50))


def test_tie_breaking_survives_interleaved_times_and_cancels():
    loop = EventLoop()
    order = []
    evs = []
    for i in range(10):
        evs.append(loop.call_at(2.0, lambda i=i: order.append(("late", i))))
        loop.call_at(1.0, lambda i=i: order.append(("early", i)))
    evs[3].cancel()
    evs[7].cancel()
    loop.run()
    assert order[:10] == [("early", i) for i in range(10)]
    assert order[10:] == [("late", i) for i in range(10) if i not in (3, 7)]


def test_events_scheduled_at_now_during_callback_run_same_time():
    loop = EventLoop()
    seen = []

    def first():
        seen.append("first")
        loop.call_after(0.0, lambda: seen.append("nested"))

    loop.call_at(1.0, first)
    loop.call_at(1.0, lambda: seen.append("second"))
    loop.run()
    # nested zero-delay event lands after already-queued ties
    assert seen == ["first", "second", "nested"]
    assert loop.now == 1.0


def test_shim_module_still_exports_the_loop():
    from repro.sim import events

    assert events.EventLoop is EventLoop
    assert events.Event is Event
    assert events.Kernel is Kernel


# ----------------------------------------------------------------------
# Kernel: bus clock + named resources
# ----------------------------------------------------------------------
def test_kernel_bus_clock_tracks_now():
    k = Kernel()
    times = []
    k.call_at(2.5, lambda: times.append(k.bus.now))
    k.run()
    assert times == [2.5]


def test_kernel_resource_get_or_create():
    k = Kernel()
    r1 = k.resource("nic:0", capacity=2)
    assert k.resource("nic:0", capacity=2) is r1
    assert isinstance(r1, Resource)
    with pytest.raises(ValueError, match="capacity"):
        k.resource("nic:0", capacity=3)
    assert set(k.resources) == {"nic:0"}


def test_kernel_channel_get_or_create():
    k = Kernel()
    c1 = k.channel("0->1:fwd")
    assert k.channel("0->1:fwd") is c1
    assert isinstance(c1, SerialChannel)
    assert set(k.channels) == {"0->1:fwd"}


# ----------------------------------------------------------------------
# Resource semantics
# ----------------------------------------------------------------------
def test_resource_try_acquire_and_release():
    k = Kernel()
    r = k.resource("dev", capacity=2)
    assert r.try_acquire() and r.try_acquire()
    assert not r.try_acquire()
    assert r.in_use == 2
    r.release()
    assert r.available == 1
    assert r.try_acquire()


def test_resource_release_without_acquire_raises():
    k = Kernel()
    r = k.resource("dev")
    with pytest.raises(RuntimeError, match="release without acquire"):
        r.release()


def test_resource_queued_waiters_grant_fifo():
    k = Kernel()
    r = k.resource("dev")
    got = []
    r.acquire(lambda: got.append("a"))  # synchronous grant
    r.acquire(lambda: got.append("b"))  # queued
    r.acquire(lambda: got.append("c"))  # queued
    assert got == ["a"]
    k.call_at(1.0, r.release)  # grants b via zero-delay event at t=1
    k.call_at(2.0, r.release)  # grants c at t=2
    k.run()
    assert got == ["a", "b", "c"]
    assert r.waiting == 0 and r.in_use == 1


def test_resource_capacity_validation():
    k = Kernel()
    with pytest.raises(ValueError, match="capacity"):
        k.resource("bad", capacity=0)


# ----------------------------------------------------------------------
# SerialChannel reservation ledger
# ----------------------------------------------------------------------
def test_serial_channel_fifo_reservations():
    k = Kernel()
    ch = k.channel("0->1:fwd")
    assert ch.reserve(0.0, 2.0) == 0.0
    assert ch.reserve(1.0, 1.0) == 2.0  # queued behind the first
    assert ch.reserve(5.0, 1.0) == 5.0  # channel idle again
    assert ch.free_at == 6.0
    assert ch.n_reservations == 3
    assert ch.busy_time == pytest.approx(4.0)


def test_serial_channel_matches_max_rule():
    """reserve() must equal the executors' max(ready, free_at) rule."""
    k = Kernel()
    ch = k.channel("x")
    free = 0.0
    for ready, dur in [(0.0, 1.5), (0.5, 0.25), (10.0, 2.0), (9.0, 1.0)]:
        expect = max(ready, free)
        assert ch.reserve(ready, dur) == expect
        free = expect + dur
    assert ch.free_at == free


def test_serial_channel_rejects_negative_duration():
    k = Kernel()
    with pytest.raises(ValueError, match="negative duration"):
        k.channel("x").reserve(0.0, -1.0)
