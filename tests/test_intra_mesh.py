"""Tests for intra-mesh resharding (layout conversion on one mesh)."""

import numpy as np
import pytest

from repro.core.intra import intra_mesh_reshard, plan_intra_mesh
from repro.core.mesh import DeviceMesh
from repro.sim.cluster import Cluster, ClusterSpec


@pytest.fixture
def mesh24():
    c = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
    return DeviceMesh.from_hosts(c, [0, 1])


SPECS = ["RRR", "S0RR", "RS1R", "S01RR", "S0S1R", "RRS0"]


@pytest.mark.parametrize("src", SPECS)
@pytest.mark.parametrize("dst", SPECS)
def test_intra_mesh_data_correct(mesh24, src, dst):
    arr = np.arange(8 * 8 * 8, dtype=np.float32).reshape(8, 8, 8)
    r = intra_mesh_reshard(arr, mesh24, src, dst)
    assert r.dst_tensor is not None
    assert np.array_equal(r.dst_tensor.to_global(), arr)
    assert r.dst_tensor.spec == r.task.dst_spec


def test_identity_conversion_is_free(mesh24):
    r = intra_mesh_reshard((8, 8, 8), mesh24, "S0RR", "S0RR")
    assert r.is_free
    assert r.latency == 0.0


def test_replicated_to_sharded_is_free(mesh24):
    """R -> S: every device already holds a superset of its new tile."""
    r = intra_mesh_reshard((8, 8, 8), mesh24, "RRR", "S0S1R")
    assert r.is_free


def test_sharded_to_replicated_costs_allgather_like(mesh24):
    """S0 -> R moves the other half to each host once (broadcast)."""
    arr_shape = (1 << 20, 2)  # 8 MiB fp32
    r = intra_mesh_reshard(arr_shape, mesh24, "S0R", "RR")
    assert not r.is_free
    # each host must receive the half it does not hold: tensor/2 x 2 dirs
    assert r.timing.bytes_cross_host == pytest.approx(
        (1 << 20) * 2 * 4, rel=0.01
    )


def test_axis_swap_cheaper_than_replication(mesh24):
    shape = (1 << 12, 1 << 10)
    swap = intra_mesh_reshard(shape, mesh24, "S0R", "RS1")
    repl = intra_mesh_reshard(shape, mesh24, "S0R", "RR")
    assert swap.latency <= repl.latency + 1e-12


def test_intra_host_conversion_uses_nvlink(mesh24):
    """S1 -> R along the intra-host axis never crosses the network."""
    r = intra_mesh_reshard((8, 1 << 16), mesh24, "RS1", "RR")
    assert not r.is_free
    assert r.timing.bytes_cross_host == 0.0
    assert r.timing.bytes_intra_host > 0.0


def test_plan_reuses_local_tiles(mesh24):
    """Receivers that hold their region locally are excluded from ops."""
    plan = plan_intra_mesh((8, 8), mesh24, "S0R", "S1R")
    for op in plan.ops:
        receivers = (
            (op.receiver,) if hasattr(op, "receiver") else tuple(op.receivers)
        )
        for d in receivers:
            holder = plan.task.src_grid.device_region(d)
            from repro.core.slices import region_intersection

            assert region_intersection(holder, op.region) != op.region


def test_uneven_intra_mesh(mesh24):
    arr = np.arange(9 * 7 * 5, dtype=np.float32).reshape(9, 7, 5)
    r = intra_mesh_reshard(arr, mesh24, "S0RR", "RS1R")
    assert np.array_equal(r.dst_tensor.to_global(), arr)
