"""Incremental re-simulation: byte-identity, reuse, and fallbacks.

:func:`~repro.compiler.resim.resimulate` must be a *drop-in* for
:func:`~repro.core.executor.simulate_plan`: identical
:class:`TimingResult` fields and an identical telemetry digest (every
span row hashed) whether it ran cold, stored checkpoints, or resumed
from one — on real scheduled plans, which are load-balanced across
hosts and therefore not chain-serial.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import CompileContext, compile_resharding
from repro.compiler.resim import (
    ResimCache,
    default_resim_cache,
    prefix_digests,
    reset_default_resim_cache,
    resimulate,
    schedule_order,
)
from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.faults import FaultSchedule, HostFailure, RetryPolicy
from repro.sim.network import Network


def make_task(n_hosts=4, shape=(64, 64, 64), src_spec="RS0R", dst_spec="S0RR"):
    c = Cluster(ClusterSpec(n_hosts=n_hosts, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, tuple(range(n_hosts // 2)))
    dst = DeviceMesh.from_hosts(c, tuple(range(n_hosts // 2, n_hosts)))
    return ReshardingTask(
        shape, src, src_spec, dst, dst_spec, dtype=np.float32
    )


def compiled_plan(task, strategy="broadcast"):
    ctx = CompileContext(strategy=strategy, cache=None, resim_cache=None)
    return compile_resharding(task, ctx).plan


def assert_identical(a, b) -> None:
    assert a.total_time == b.total_time
    assert repr(a.op_finish) == repr(b.op_finish)
    assert repr(a.task_finish) == repr(b.task_finish)
    assert a.bytes_cross_host == b.bytes_cross_host
    assert a.bytes_intra_host == b.bytes_intra_host
    assert a.network.bus.digest() == b.network.bus.digest()


class TestByteIdentity:
    def test_cold_pass_matches_simulate_plan(self):
        plan = compiled_plan(make_task())
        cold = simulate_plan(plan)
        cache = ResimCache()
        warm = resimulate(plan, cache=cache)
        assert_identical(warm, cold)
        s = cache.stats()
        assert s.requests == 1 and s.misses == 1 and s.hits == 0
        assert s.checkpoints_stored >= 1

    def test_warm_resume_byte_identical(self):
        plan = compiled_plan(make_task())
        cold = simulate_plan(plan)
        cache = ResimCache()
        resimulate(plan, cache=cache)
        warm = resimulate(plan, cache=cache)
        assert_identical(warm, cold)
        s = cache.stats()
        assert s.hits == 1
        assert s.tasks_skipped >= 1
        assert 0.0 < s.task_reuse_rate < 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_hosts=6),
            dict(shape=(128, 32, 16), src_spec="S0RR", dst_spec="RRS0"),
            dict(n_hosts=8, shape=(96, 64, 32)),
        ],
    )
    def test_warm_resume_across_shapes(self, kwargs):
        plan = compiled_plan(make_task(**kwargs))
        cold = simulate_plan(plan)
        cache = ResimCache()
        resimulate(plan, cache=cache)
        warm = resimulate(plan, cache=cache)
        assert_identical(warm, cold)

    def test_checkpoints_at_quiescent_barriers_only(self):
        """Real schedules overlap tasks; cuts appear only between waves."""
        plan = compiled_plan(make_task())
        order = schedule_order(plan)
        assert order is not None and len(order) >= 2
        cache = ResimCache()
        resimulate(plan, cache=cache)
        # Checkpoints exist, but never one per task: concurrent waves
        # cannot all be quiescent boundaries.
        assert 1 <= cache.stats().checkpoints_stored < len(order)


class TestSelectPassIntegration:
    def test_auto_scoring_unchanged_and_reuses(self):
        task = make_task()
        cold = compile_resharding(
            task, CompileContext(strategy="auto", cache=None, resim_cache=None)
        )
        cache = reset_default_resim_cache()
        warm = compile_resharding(task, CompileContext(strategy="auto", cache=None))
        assert warm.scores == cold.scores
        assert warm.plan.strategy == cold.plan.strategy
        assert repr(warm.ensure_timing().op_finish) == repr(
            cold.ensure_timing().op_finish
        )
        # Scoring seeded the checkpoint store for later compiles.
        assert cache.stats().checkpoints_stored >= 1
        reset_default_resim_cache()

    def test_recompile_hits_checkpoints(self):
        task = make_task()
        cache = reset_default_resim_cache()
        compile_resharding(task, CompileContext(strategy="auto", cache=None))
        first = cache.stats()
        compile_resharding(task, CompileContext(strategy="auto", cache=None))
        second = cache.stats()
        # The second compile's scoring loop resumes from the first's
        # checkpoints instead of simulating candidates from time zero.
        assert second.hits > first.hits
        assert second.tasks_skipped > first.tasks_skipped
        reset_default_resim_cache()


class TestEligibilityFallbacks:
    def test_faults_fall_back_cold(self):
        task = make_task()
        plan = compiled_plan(task)
        faults = FaultSchedule(host_failures=(HostFailure(host=1, time=1e-5),))
        cache = ResimCache()
        warm = resimulate(
            plan, cache=cache, faults=faults, retry_policy=RetryPolicy()
        )
        cold = simulate_plan(
            plan, faults=faults, retry_policy=RetryPolicy()
        )
        assert cache.stats().ineligible == 1
        assert cache.stats().requests == 0
        assert warm.total_time == cold.total_time
        assert warm.failed_ops == cold.failed_ops

    def test_caller_network_falls_back_cold(self):
        plan = compiled_plan(make_task())
        cache = ResimCache()
        net = Network(plan.task.cluster)
        warm = resimulate(plan, cache=cache, network=net)
        assert cache.stats().ineligible == 1
        assert warm.network is net

    def test_unscheduled_falls_back_cold(self):
        plan = compiled_plan(make_task())
        cache = ResimCache()
        warm = resimulate(plan, cache=cache, respect_schedule=False)
        cold = simulate_plan(plan, respect_schedule=False)
        assert cache.stats().ineligible == 1
        assert warm.total_time == cold.total_time

    def test_schedule_order_none_for_unscheduled(self):
        plan = compiled_plan(make_task())
        stripped = plan.replace(schedule=None) if hasattr(plan, "replace") else None
        if stripped is not None:
            assert schedule_order(stripped) is None


class TestCacheMechanics:
    def test_digest_chain_is_prefix_stable(self):
        plan = compiled_plan(make_task())
        order = schedule_order(plan)
        d1 = prefix_digests(plan, order)
        d2 = prefix_digests(plan, order)
        assert d1 == d2
        assert len(d1) == len(order)
        assert len(set(d1)) == len(d1)  # rolling: every prefix distinct

    def test_different_tasks_never_share_digests(self):
        p1 = compiled_plan(make_task())
        p2 = compiled_plan(make_task(shape=(32, 64, 64)))
        d1 = prefix_digests(p1, schedule_order(p1))
        d2 = prefix_digests(p2, schedule_order(p2))
        assert not (set(d1) & set(d2))

    def test_lru_eviction(self):
        cache = ResimCache(max_entries=1)
        plan = compiled_plan(make_task())
        resimulate(plan, cache=cache)
        assert len(cache) == 1
        p2 = compiled_plan(make_task(shape=(32, 64, 64)))
        resimulate(p2, cache=cache)
        assert len(cache) == 1
        assert cache.stats().evictions >= 1

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ValueError):
            ResimCache(max_entries=0)

    def test_default_cache_reset(self):
        a = default_resim_cache()
        b = reset_default_resim_cache()
        assert a is not b
        assert default_resim_cache() is b
