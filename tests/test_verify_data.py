"""Tests for the execution-aware data-plane integrity verifier."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.data import apply_plan
from repro.core.executor import simulate_plan
from repro.core.intra import plan_intra_mesh
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.core.tensor import DistributedTensor
from repro.core.verify_data import IntegrityError, verify_delivery
from repro.sim.faults import DegradedWindow, FaultSchedule, FlapWindow, RetryPolicy
from repro.strategies import STRATEGIES, BroadcastStrategy


def make_task(cluster4x4, shape=(64, 64), src_spec="S0R", dst_spec="RS1"):
    src = DeviceMesh.from_hosts(cluster4x4, [0, 1])
    dst = DeviceMesh.from_hosts(cluster4x4, [2, 3])
    return ReshardingTask(shape, src, src_spec, dst, dst_spec)


# ----------------------------------------------------------------------
# exact-once certification on healthy runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(set(STRATEGIES) - {"signal"}))
def test_every_strategy_certifies_exact_once(cluster4x4, name):
    task = make_task(cluster4x4)
    plan = STRATEGIES[name]().plan(task)
    timing = simulate_plan(plan)
    report = verify_delivery(plan, timing, strict=False)
    assert report.certified
    assert not report.gaps and not report.duplicates
    assert report.n_ops_failed == 0


def test_static_check_without_timing(cluster4x4):
    plan = BroadcastStrategy().plan(make_task(cluster4x4))
    report = verify_delivery(plan)
    assert report.certified
    assert report.n_retried_flows == 0


def test_intra_mesh_plans_certify(cluster4x4):
    mesh = DeviceMesh.from_hosts(cluster4x4, [0, 1])
    for src, dst in [("S0R", "RS1"), ("S0S1", "RR"), ("RR", "S0S1")]:
        plan = plan_intra_mesh((64, 64), mesh, src, dst)
        timing = simulate_plan(plan) if plan.ops else None
        assert verify_delivery(plan, timing).certified


# ----------------------------------------------------------------------
# gap and duplicate detection
# ----------------------------------------------------------------------
def test_dropped_op_is_a_gap(cluster4x4):
    task = make_task(cluster4x4)
    plan = BroadcastStrategy().plan(task)
    crippled = dataclasses.replace(plan, ops=plan.ops[1:])
    with pytest.raises(IntegrityError, match="missing data"):
        verify_delivery(crippled)
    report = verify_delivery(crippled, raise_on_error=False)
    assert report.gaps and not report.certified


def test_failed_op_credits_no_delivery(cluster4x4):
    """Ops in timing.failed_ops must count as undelivered."""
    task = make_task(cluster4x4)
    plan = BroadcastStrategy().plan(task)
    timing = simulate_plan(plan)
    fake = dataclasses.replace(timing, failed_ops=(plan.ops[0].op_id,))
    report = verify_delivery(plan, fake, raise_on_error=False)
    assert report.gaps
    assert report.n_ops_failed == 1


def test_duplicated_delivery_detected(cluster4x4):
    task = make_task(cluster4x4)
    plan = BroadcastStrategy().plan(task)
    doubled = dataclasses.replace(
        plan,
        ops=plan.ops
        + [dataclasses.replace(plan.ops[0], op_id=len(plan.ops))],
    )
    with pytest.raises(IntegrityError, match="duplicated"):
        verify_delivery(doubled)
    # non-strict mode reports but does not raise
    report = verify_delivery(doubled, strict=False)
    assert report.duplicates and not report.certified


def test_unauthoritative_sender_discredited(cluster4x4):
    """An op claiming a sender that does not hold the region is void."""
    task = make_task(cluster4x4)
    plan = BroadcastStrategy().plan(task)
    # Device of host 1 does not hold host 0's shard under S0R.
    wrong_sender = task.src_mesh.device_at(1, 0)
    op0 = plan.ops[0]
    holder = task.src_grid.device_region(op0.sender)
    if task.src_grid.device_region(wrong_sender) == holder:
        pytest.skip("grids coincide; cannot construct a non-holder")
    forged = dataclasses.replace(
        plan, ops=[dataclasses.replace(op0, sender=wrong_sender)] + plan.ops[1:]
    )
    report = verify_delivery(forged, raise_on_error=False)
    assert op0.op_id in report.discredited_ops
    assert report.gaps


# ----------------------------------------------------------------------
# retries under drops still certify
# ----------------------------------------------------------------------
def test_retried_flows_still_certify(cluster4x4):
    task = make_task(cluster4x4)
    faults = FaultSchedule(seed=3, drop_rate=0.15)
    plan = BroadcastStrategy(faults=faults).plan(task)
    timing = simulate_plan(
        plan, faults=faults, retry_policy=RetryPolicy(max_attempts=12)
    )
    assert timing.completed, "retry policy should recover every drop"
    report = verify_delivery(plan, timing)
    assert report.certified
    assert report.n_retried_flows > 0


# ----------------------------------------------------------------------
# satellite: broadcast re-rooting produces byte-identical deliveries
# ----------------------------------------------------------------------
def test_reroot_fallback_delivers_identical_bytes(cluster4x4, rng):
    """Down the scheduled sender host at plan time: the strategy must
    re-root onto a surviving replica (CommPlan.fallbacks non-empty) and
    the delivered slices must be byte-identical to the healthy run."""
    src = DeviceMesh.from_hosts(cluster4x4, [0, 1])
    dst = DeviceMesh.from_hosts(cluster4x4, [2, 3])
    # R along dim 0: every source host holds a full replica of each
    # region, so a re-root always has a surviving sender.
    task = ReshardingTask((32, 32), src, "RS1", dst, "S0R")
    healthy_plan = BroadcastStrategy().plan(task)
    victim = task.cluster.host_of(healthy_plan.ops[0].sender)

    # A short flap covering plan time (t=0) plus a long mild degradation
    # elsewhere: the victim's *mean* NIC factor stays high, so the
    # scheduler still assigns it work — which plan() must then re-root.
    faults = FaultSchedule(
        seed=1,
        flaps=(FlapWindow(host=victim, start=0.0, duration=0.05),),
        degradations=(
            DegradedWindow(host=dst.hosts[0], start=0.0, duration=10.0, factor=0.9),
        ),
    )
    plan = BroadcastStrategy(faults=faults).plan(task)
    assert plan.fallbacks, "downing the scheduled sender must re-root"
    assert all(f.to_host != victim for f in plan.fallbacks)
    assert all(
        task.cluster.host_of(op.sender) != victim for op in plan.ops
    )

    array = rng.standard_normal((32, 32)).astype(np.float32)
    src_tensor = DistributedTensor.from_global(src, "RS1", array)
    healthy = apply_plan(healthy_plan, src_tensor)
    rerooted = apply_plan(plan, src_tensor)
    for dev in dst.devices:
        np.testing.assert_array_equal(
            healthy.shards[dev], rerooted.shards[dev]
        )

    timing = simulate_plan(plan, faults=faults, retry_policy=RetryPolicy())
    assert timing.completed
    report = verify_delivery(plan, timing)
    assert report.certified
    assert report.n_fallbacks == len(plan.fallbacks)
