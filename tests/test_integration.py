"""Cross-module integration tests and executor-level property tests.

These check that the independent layers agree with each other:
analytic schedule makespans vs event-simulated latencies, plan-level
traffic accounting vs network-level accounting, and pipeline-executor
resource invariants on randomized jobs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import reshard
from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.pipeline.executor import simulate_pipeline
from repro.pipeline.schedules import schedule_job
from repro.pipeline.stage import CommEdge, PipelineJob, StageProfile
from repro.sim.cluster import Cluster, ClusterSpec
from repro.strategies import BroadcastStrategy


def make_task(src_spec, dst_spec, shape=(256, 128, 32)):
    c = Cluster(
        ClusterSpec(
            n_hosts=4,
            devices_per_host=4,
            inter_host_latency=0.0,
            intra_host_latency=0.0,
        )
    )
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=np.float32)


# ----------------------------------------------------------------------
# analytic schedule vs event simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "src_spec,dst_spec",
    [("S0RR", "S0RR"), ("RS0R", "S0RR"), ("RRR", "S0RR"), ("RS01R", "S01RR")],
)
def test_schedule_makespan_predicts_simulation(src_spec, dst_spec):
    """The Eq. 1-3 analytic makespan matches the flow simulation within
    the pipelining slack (chunked broadcast finishes slightly early or
    pays per-chunk overhead)."""
    task = make_task(src_spec, dst_spec)
    plan = BroadcastStrategy(n_chunks=64).plan(task)
    sim = simulate_plan(plan).total_time
    analytic = plan.schedule.makespan
    assert sim == pytest.approx(analytic, rel=0.15)


def test_determinism_same_inputs_same_latency():
    task_args = dict(src_spec="RS0R", dst_spec="RRS0")
    a = simulate_plan(BroadcastStrategy().plan(make_task(**task_args))).total_time
    b = simulate_plan(BroadcastStrategy().plan(make_task(**task_args))).total_time
    assert a == b


def test_traffic_lower_bound_invariant():
    """Inter-mesh traffic is never below the tensor size (§2.2)."""
    for src_spec, dst_spec in [("S0RR", "S0RR"), ("RRR", "RS1R"), ("RS0R", "RRS0")]:
        task = make_task(src_spec, dst_spec)
        for strat in ("send_recv", "allgather", "broadcast"):
            r = reshard(
                task.shape, task.src_mesh, src_spec, task.dst_mesh, dst_spec,
                strategy=strat,
            )
            # all src hosts differ from dst hosts here, so every byte of
            # D crosses at least once
            assert r.cross_host_bytes >= task.total_nbytes * 0.999


def test_broadcast_latency_near_theoretical_floor():
    """Ours finishes within 10% of (bytes each host must egress)/bw."""
    task = make_task("S0RR", "S0RR")
    plan = BroadcastStrategy().plan(task)
    r = simulate_plan(plan)
    per_host = task.total_nbytes / 2  # two sender hosts, balanced
    floor = per_host / task.cluster.spec.inter_host_bandwidth
    assert r.total_time >= floor * 0.999
    assert r.total_time <= floor * 1.15


# ----------------------------------------------------------------------
# pipeline executor invariants on randomized jobs
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    n_stages=st.integers(1, 4),
    m=st.integers(1, 10),
    sched=st.sampled_from(["gpipe", "1f1b", "eager_1f1b"]),
    overlap=st.booleans(),
    comm=st.floats(0.0, 2.0),
    fwd=st.floats(0.1, 2.0),
)
def test_property_pipeline_invariants(n_stages, m, sched, overlap, comm, fwd):
    stages = [
        StageProfile(s, fwd_time=fwd, bwd_x_time=fwd, bwd_w_time=fwd,
                     activation_bytes=1.0)
        for s in range(n_stages)
    ]
    edges = [CommEdge(s, s + 1, comm, comm) for s in range(n_stages - 1)]
    job = PipelineJob(stages, edges, n_microbatches=m)
    r = simulate_pipeline(job, schedule_job(sched, n_stages, m), overlap=overlap)

    # 1. lower bound: the busiest stage's serial compute
    assert r.iteration_time >= m * 3 * fwd - 1e-9

    # 2. stage exclusivity: compute entries on one stage never overlap
    for s in range(n_stages):
        entries = sorted(
            [e for e in r.timeline if e.stage == s], key=lambda e: e.start
        )
        for a, b in zip(entries, entries[1:]):
            assert a.end <= b.start + 1e-9

    # 3. all tasks executed exactly once
    assert len([e for e in r.timeline if e.kind == "F"]) == n_stages * m
    assert len([e for e in r.timeline if e.kind == "B"]) == n_stages * m

    # 4. comm count: every edge, every mb, both directions
    assert len(r.comms) == 2 * m * len(edges)

    # 5. activation accounting closes (peak within [1, m])
    for s in range(n_stages):
        assert 1 <= r.peak_activation_counts[s] <= m

    # 6. busy time == sum of task durations (+ sends when blocking)
    for s in range(n_stages):
        compute = sum(e.end - e.start for e in r.timeline if e.stage == s)
        assert compute == pytest.approx(m * 3 * fwd, rel=1e-6)


@settings(max_examples=15, deadline=None)
@given(
    m=st.integers(1, 8),
    comm=st.floats(0.0, 1.5),
)
def test_property_overlap_never_slower_than_blocking(m, comm):
    stages = [StageProfile(s, 1.0, 1.0, 1.0) for s in range(3)]
    edges = [CommEdge(s, s + 1, comm, comm) for s in range(2)]
    job = PipelineJob(stages, edges, n_microbatches=m)
    orders = schedule_job("1f1b", 3, m)
    blocking = simulate_pipeline(job, orders, overlap=False).iteration_time
    overlapped = simulate_pipeline(job, orders, overlap=True).iteration_time
    assert overlapped <= blocking + 1e-9


@settings(max_examples=15, deadline=None)
@given(m=st.integers(2, 10), comm=st.floats(0.0, 1.5))
def test_property_eager_never_slower_than_1f1b_overlapped(m, comm):
    stages = [StageProfile(s, 1.0, 1.0, 1.0) for s in range(2)]
    edges = [CommEdge(0, 1, comm, comm)]
    job = PipelineJob(stages, edges, n_microbatches=m)
    f = simulate_pipeline(job, schedule_job("1f1b", 2, m), overlap=True)
    e = simulate_pipeline(job, schedule_job("eager_1f1b", 2, m), overlap=True)
    assert e.iteration_time <= f.iteration_time + 1e-9


# ----------------------------------------------------------------------
# network conservation
# ----------------------------------------------------------------------
def test_network_accounting_matches_plan_bytes():
    task = make_task("S0RR", "RS1R")
    plan = BroadcastStrategy().plan(task)
    r = simulate_plan(plan)
    trace_bytes = sum(rec.nbytes for rec in r.network.trace)
    assert trace_bytes == pytest.approx(
        r.bytes_cross_host + r.network.bytes_intra_host
    )
    # every flow in the trace has consistent times
    for rec in r.network.trace:
        assert rec.submit_time <= rec.start_time <= rec.finish_time
