"""Cross-validation: independent checkers must agree with each other."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.data import DataPlaneError, apply_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.core.tensor import DistributedTensor
from repro.core.validate import PlanValidationError, verify_plan_coverage
from repro.experiments.fig7 import workloads
from repro.sim.cluster import Cluster, ClusterSpec
from repro.strategies import make_strategy

SPECS = ["RRR", "S0RR", "RS1R", "S01RR", "S0S1R", "RRS0"]


def build(src_spec, dst_spec, shape=(9, 8, 7)):
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=np.float32)


@settings(max_examples=40, deadline=None)
@given(
    src_spec=st.sampled_from(SPECS),
    dst_spec=st.sampled_from(SPECS),
    strategy=st.sampled_from(["send_recv", "allgather", "broadcast"]),
    drop=st.integers(0, 3),
)
def test_validator_agrees_with_data_plane(src_spec, dst_spec, strategy, drop):
    """Static coverage validation and the NumPy data plane accept and
    reject exactly the same plans (for op-dropping mutations)."""
    task = build(src_spec, dst_spec)
    plan = make_strategy(strategy).plan(task)
    for _ in range(min(drop, len(plan.ops))):
        plan.ops.pop()

    static_ok = True
    try:
        verify_plan_coverage(plan)
    except PlanValidationError:
        static_ok = False

    arr = np.arange(np.prod(task.shape), dtype=np.float32).reshape(task.shape)
    src_tensor = DistributedTensor.from_global(task.src_mesh, task.src_spec, arr)
    dynamic_ok = True
    try:
        out = apply_plan(plan, src_tensor)
        assert np.array_equal(out.to_global(), arr)
    except DataPlaneError:
        dynamic_ok = False

    assert static_ok == dynamic_ok


def test_fig7_workloads_cover_table3():
    w = workloads()
    assert set(w) == {"GPT case1", "GPT case2", "U-Transformer"}
    for spec in w.values():
        assert spec.n_devices == 8
        assert spec.n_microbatches > 0
        assert spec.model_flops_per_iteration > 0


def test_joint_planning_on_heterogeneous_cluster():
    """The joint scheduler respects per-host NIC overrides."""
    from repro.core.joint import reshard_boundary
    from repro.sim.cluster import GBPS

    c = Cluster(
        ClusterSpec(
            n_hosts=4,
            devices_per_host=4,
            host_bandwidth_overrides=((0, 1 * GBPS),),  # host 0 is slow
        )
    )
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    tasks = [
        ReshardingTask((1 << 20, 2), src, "RR", dst, "S0R", dtype=np.float32),
        ReshardingTask((1 << 20, 2), src, "RR", dst, "S1R", dtype=np.float32),
    ]
    r = reshard_boundary(tasks)
    # everything should be routed via the fast sender host 1
    cross_from_slow = sum(
        rec.nbytes
        for rec in r.network.trace
        if c.host_of(rec.src) == 0 and not c.same_host(rec.src, rec.dst)
    )
    assert cross_from_slow == 0.0
    assert r.total_time > 0


def test_timing_and_data_planes_share_one_plan():
    """The exact plan object that was simulated is the one verified."""
    from repro.core.executor import simulate_plan

    task = build("S0RR", "RS1R", shape=(8, 8, 8))
    plan = make_strategy("broadcast").plan(task)
    timing = simulate_plan(plan)
    arr = np.arange(512, dtype=np.float32).reshape(8, 8, 8)
    out = apply_plan(plan, DistributedTensor.from_global(task.src_mesh, task.src_spec, arr))
    assert timing.total_time > 0
    assert np.array_equal(out.to_global(), arr)
    report = verify_plan_coverage(plan)
    assert report.n_ops == len(plan.ops)
