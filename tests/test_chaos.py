"""Fault tolerance end to end: determinism, correctness, and recovery.

Three guarantees under chaos:

1. *Determinism* — a fault schedule is pure data; replaying the same
   seed yields byte-identical flow traces and makespans (satellite of
   the fault-injection tentpole, and the property every debugging
   session depends on).
2. *Correctness* — plans compiled under a fault schedule still deliver
   exactly the destination slices (static coverage proof + NumPy data
   plane), including re-rooted broadcasts.
3. *Recovery* — recoverable faults end in a ``recovered`` FaultReport
   with the run complete; unrecoverable ones end ``fatal`` instead of
   hanging.
"""

import numpy as np
import pytest

from repro.core.data import apply_plan
from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.core.tensor import DistributedTensor
from repro.core.validate import verify_plan_coverage
from repro.pipeline.executor import simulate_pipeline
from repro.pipeline.schedules import schedule_job
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.faults import (
    DegradedWindow,
    FaultSchedule,
    FlapWindow,
    RetryPolicy,
    StragglerWindow,
)
from repro.strategies import (
    AllGatherStrategy,
    AutoStrategy,
    BroadcastStrategy,
    SendRecvStrategy,
)


def build(src_spec="S0RR", dst_spec="RS1R", shape=(8, 8, 8)):
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    arr = np.arange(np.prod(shape), dtype=np.float32).reshape(shape)
    task = ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=arr.dtype)
    return task, DistributedTensor.from_global(src, task.src_spec, arr), arr


def trace_tuple(network):
    return [
        (r.flow_id, r.src, r.dst, r.nbytes, r.submit_time, r.start_time,
         r.finish_time, r.status, r.attempts, r.tag)
        for r in network.trace
    ]


RECOVERABLE = FaultSchedule(
    seed=7,
    degradations=(DegradedWindow(host=2, start=0.0, duration=5.0, factor=0.5),),
    flaps=(FlapWindow(host=1, start=0.005, duration=0.01),),
    drop_rate=0.02,
)
PATIENT = RetryPolicy(max_attempts=12, backoff_base=2e-3, jitter=0.25)


# ----------------------------------------------------------------------
# determinism under chaos
# ----------------------------------------------------------------------
def test_reshard_replay_is_byte_identical():
    task, _, _ = build("RRR", "S0RR")
    runs = []
    for _ in range(2):
        plan = BroadcastStrategy(faults=RECOVERABLE).plan(task)
        res = simulate_plan(plan, faults=RECOVERABLE, retry_policy=PATIENT)
        runs.append((res.total_time, trace_tuple(res.network)))
    assert runs[0][0] == runs[1][0]  # identical makespans, not approx
    assert runs[0][1] == runs[1][1]  # byte-identical flow traces

    other = FaultSchedule(
        seed=8,
        degradations=RECOVERABLE.degradations,
        flaps=RECOVERABLE.flaps,
        drop_rate=RECOVERABLE.drop_rate,
    )
    plan = BroadcastStrategy(faults=other).plan(task)
    res = simulate_plan(plan, faults=other, retry_policy=PATIENT)
    # Different seed -> different drop draws somewhere in the trace.
    assert trace_tuple(res.network) != runs[0][1]


def test_pipeline_replay_is_byte_identical():
    from tests.test_pipeline_executor import make_job

    job = make_job(n_stages=4, m=8, fwd=1.0, comm=0.3)
    fs = FaultSchedule(
        seed=11,
        flaps=(FlapWindow(host=2, start=4.0, duration=1.5),),
        stragglers=(StragglerWindow(stage=1, start=2.0, duration=4.0, slowdown=1.5),),
        drop_rate=0.05,
    )
    orders = schedule_job("1f1b", 4, 8)
    kw = dict(
        faults=fs,
        retry_policy=RetryPolicy(max_attempts=10, backoff_base=0.1),
        stage_hosts=[0, 1, 2, 3],
    )
    a = simulate_pipeline(job, orders, **kw)
    b = simulate_pipeline(job, orders, **kw)
    assert a.iteration_time == b.iteration_time
    assert a.comms == b.comms
    assert [e.__dict__ for e in a.timeline] == [e.__dict__ for e in b.timeline]


# ----------------------------------------------------------------------
# correctness under faults
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "strategy",
    [
        SendRecvStrategy(faults=RECOVERABLE),
        AllGatherStrategy(),
        BroadcastStrategy(faults=RECOVERABLE),
        AutoStrategy(faults=RECOVERABLE, retry_policy=PATIENT),
    ],
    ids=["send_recv", "allgather", "broadcast", "auto"],
)
@pytest.mark.parametrize("specs", [("RRR", "S0RR"), ("S0RR", "RS1R")])
def test_strategies_deliver_exact_slices_under_faults(strategy, specs):
    task, src_tensor, arr = build(*specs)
    plan = strategy.plan(task)
    verify_plan_coverage(plan)
    out = apply_plan(plan, src_tensor)
    assert np.array_equal(out.to_global(), arr)
    res = simulate_plan(plan, faults=RECOVERABLE, retry_policy=PATIENT)
    assert res.completed
    assert res.fault_report.status in ("clean", "recovered")


def test_broadcast_reroots_around_down_sender_host():
    # Host 0 is down at plan time, but only briefly: the long window on
    # a receiver host keeps host 0's *mean* factor high, so the
    # scheduler still assigns it work — which plan() must then re-root.
    fs = FaultSchedule(
        seed=0,
        flaps=(FlapWindow(host=0, start=0.0, duration=0.05),),
        degradations=(DegradedWindow(host=2, start=0.0, duration=10.0, factor=0.9),),
    )
    task, src_tensor, arr = build("RRR", "S0RR")
    strat = BroadcastStrategy(faults=fs)
    plan = strat.plan(task)
    assert plan.fallbacks, "expected at least one re-rooted unit task"
    for fb in plan.fallbacks:
        assert fb.reason == "sender-host-down"
        assert fb.from_host == 0 and fb.to_host == 1
    # No op may send from the downed host, and the schedule must agree
    # with the ops actually emitted (Eq. 3 gating stays consistent).
    for op in plan.ops:
        assert task.cluster.host_of(op.sender) != 0
        assert plan.schedule.assignment[op.unit_task_id] == task.cluster.host_of(
            op.sender
        )
    # Re-rooted plan is still a correct resharding.
    verify_plan_coverage(plan)
    assert np.array_equal(apply_plan(plan, src_tensor).to_global(), arr)
    res = simulate_plan(plan, faults=fs, retry_policy=PATIENT)
    assert res.completed and not res.fault_report.fatal


def test_no_reroot_without_faults():
    task, _, _ = build("RRR", "S0RR")
    plan = BroadcastStrategy().plan(task)
    assert plan.fallbacks == []


def test_load_tracker_shifts_work_off_degraded_host():
    # Host 0 at 10% NIC speed: bandwidth-normalized load balancing must
    # push most sends to host 1 (equal split without faults).
    fs = FaultSchedule(
        seed=0,
        degradations=(DegradedWindow(host=0, start=0.0, duration=100.0, factor=0.1),),
    )
    task, _, _ = build("RRR", "S0RR")
    fair = SendRecvStrategy().plan(task)
    hosts = [task.cluster.host_of(op.sender) for op in fair.ops]
    assert hosts.count(0) == hosts.count(1)
    skewed = SendRecvStrategy(faults=fs).plan(task)
    hosts = [task.cluster.host_of(op.sender) for op in skewed.ops]
    assert hosts.count(1) > hosts.count(0)


def test_auto_strategy_avoids_fatal_candidate():
    # Under a harsh schedule a strategy can go fatal; auto must prefer a
    # surviving candidate even when the doomed one is nominally faster.
    fs = FaultSchedule(seed=5, flaps=(FlapWindow(host=1, start=0.0, duration=1e9),))
    brief = RetryPolicy(max_attempts=2, backoff_base=1e-4)
    task, _, _ = build("S0RR", "S0RR")
    auto = AutoStrategy(faults=fs, retry_policy=brief)
    plan = auto.plan(task)
    res = simulate_plan(plan, faults=fs, retry_policy=brief)
    best_is_fatal = res.fault_report is not None and res.fault_report.fatal
    others_all_fatal = True
    for strat in auto.candidates:
        r = simulate_plan(strat.plan(task), faults=fs, retry_policy=brief)
        if r.fault_report is None or not r.fault_report.fatal:
            others_all_fatal = False
    if best_is_fatal:
        assert others_all_fatal


# ----------------------------------------------------------------------
# recovery / graceful failure
# ----------------------------------------------------------------------
def test_simulate_plan_fatal_report_instead_of_hang():
    fs = FaultSchedule(seed=0, flaps=(FlapWindow(host=2, start=0.0, duration=1e9),))
    brief = RetryPolicy(max_attempts=2, backoff_base=1e-4)
    task, _, _ = build("RRR", "S0RR")
    plan = BroadcastStrategy().plan(task)
    res = simulate_plan(plan, faults=fs, retry_policy=brief)  # must return
    assert res.fault_report.fatal
    assert not res.completed and res.failed_ops
    assert res.fault_report.n_abandoned >= 1


def test_without_faults_missing_ops_still_raise():
    """The strict fault-free contract is unchanged: a plan that cannot
    finish is a bug, not a report."""
    task, _, _ = build("RRR", "S0RR")
    plan = BroadcastStrategy().plan(task)
    res = simulate_plan(plan)
    assert res.fault_report is None and res.completed


# ----------------------------------------------------------------------
# acceptance: GPT-2.6B-style pipeline survives a NIC flap
# ----------------------------------------------------------------------
def test_gpt_pipeline_recovers_from_nic_flap():
    from repro.models.gpt import GPTConfig, build_gpt
    from repro.models.parallel import resolve_comm_edges
    from repro.pipeline.stage import PipelineJob

    cfg = GPTConfig(global_batch=64)  # 2.6B shape, fewer microbatches
    spec = build_gpt(cfg)
    edges = resolve_comm_edges(spec, "broadcast")
    job = PipelineJob(
        stages=spec.profiles, edges=edges, n_microbatches=spec.n_microbatches
    )
    orders = schedule_job("1f1b", cfg.pp, spec.n_microbatches)
    stage_hosts = [
        min(spec.cluster.hosts_of(m.devices)) for m in spec.stage_meshes
    ]

    base = simulate_pipeline(job, orders, overlap=True)
    assert base.fault_report is None

    flap = FaultSchedule(
        seed=1,
        flaps=(
            FlapWindow(
                host=stage_hosts[-1],
                start=base.iteration_time * 0.3,
                duration=base.iteration_time * 0.05,
            ),
        ),
    )
    res = simulate_pipeline(
        job,
        orders,
        overlap=True,
        faults=flap,
        retry_policy=RetryPolicy(
            max_attempts=10, backoff_base=job.edges[0].fwd_time
        ),
        stage_hosts=stage_hosts,
    )
    rep = res.fault_report
    assert rep is not None and rep.recovered, rep
    assert rep.n_retries >= 1 and rep.added_latency > 0
    assert any(i.kind == "message-lost" for i in rep.incidents)
    # The iteration completed: same work, merely delayed by the outage.
    assert len(res.timeline) == len(base.timeline)
    assert res.iteration_time > base.iteration_time
    retried = [c for c in res.comms if "~retry" in c.label]
    assert retried


def test_pipeline_fatal_when_retries_exhausted():
    from tests.test_pipeline_executor import make_job

    job = make_job(n_stages=2, m=4, fwd=1.0, comm=0.5)
    fs = FaultSchedule(seed=0, flaps=(FlapWindow(host=1, start=0.0, duration=1e9),))
    res = simulate_pipeline(
        job,
        schedule_job("1f1b", 2, 4),
        overlap=True,
        faults=fs,
        retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.1),
        stage_hosts=[0, 1],
    )
    assert res.fault_report.fatal
    assert "stage" in res.fault_report.detail


def test_pipeline_straggler_slows_stage():
    from tests.test_pipeline_executor import make_job

    job = make_job(n_stages=2, m=4, fwd=1.0, comm=0.0)
    base = simulate_pipeline(job, schedule_job("1f1b", 2, 4), overlap=True)
    fs = FaultSchedule(
        seed=0,
        stragglers=(StragglerWindow(stage=0, start=0.0, duration=3.0, slowdown=2.0),),
    )
    res = simulate_pipeline(
        job, schedule_job("1f1b", 2, 4), overlap=True, faults=fs
    )
    assert res.iteration_time > base.iteration_time
    assert res.fault_report.recovered
    assert any(i.kind == "straggler" for i in res.fault_report.incidents)


# ----------------------------------------------------------------------
# randomized sweep (opt in: pytest -m chaos)
# ----------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(20))
def test_chaos_sweep_never_hangs_or_corrupts(seed):
    fs = FaultSchedule.generate(
        seed=seed,
        n_hosts=4,
        horizon=2.0,
        n_degradations=2,
        n_flaps=1,
        drop_rate=0.05,
    )
    task, src_tensor, arr = build("RRR", "S0RR")
    plan = BroadcastStrategy(faults=fs).plan(task)
    verify_plan_coverage(plan)
    assert np.array_equal(apply_plan(plan, src_tensor).to_global(), arr)
    res = simulate_plan(plan, faults=fs, retry_policy=PATIENT)
    rep = res.fault_report
    assert rep.status in ("clean", "recovered", "fatal")
    assert res.completed == (not rep.fatal)
    # Replay: chaos is a pure function of the seed.
    plan2 = BroadcastStrategy(faults=fs).plan(task)
    res2 = simulate_plan(plan2, faults=fs, retry_policy=PATIENT)
    assert res2.total_time == res.total_time
    assert trace_tuple(res2.network) == trace_tuple(res.network)
