"""Tests for the CommPlan IR and the timing interpreter."""

import numpy as np
import pytest

from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.plan import BroadcastOp, CommPlan, SendOp
from repro.core.task import ReshardingTask
from repro.scheduling import Schedule
from repro.sim.cluster import GB, Cluster, ClusterSpec
from repro.sim.network import Network
from repro.strategies import make_strategy


def make_task(src_spec="S0RR", dst_spec="S0RR", shape=(8, 8, 8), latency=False):
    kw = {} if latency else dict(inter_host_latency=0.0, intra_host_latency=0.0)
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4, **kw))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=np.float32)


# ----------------------------------------------------------------------
# CommPlan structure
# ----------------------------------------------------------------------
def test_plan_add_sequencing():
    task = make_task()
    plan = CommPlan(task=task, strategy="x")
    op = SendOp(op_id=0, unit_task_id=0, region=((0, 1),), nbytes=4, sender=0, receiver=8)
    plan.add(op)
    with pytest.raises(ValueError, match="sequence"):
        plan.add(SendOp(op_id=5, unit_task_id=0, region=((0, 1),), nbytes=4,
                        sender=0, receiver=8))
    with pytest.raises(ValueError, match="dep"):
        plan.add(SendOp(op_id=1, unit_task_id=0, region=((0, 1),), nbytes=4,
                        deps=(7,), sender=0, receiver=8))


def test_plan_queries():
    task = make_task()
    plan = make_strategy("broadcast").plan(task)
    assert plan.total_bytes() == pytest.approx(task.total_nbytes)
    first = plan.ops_of_task(0)
    assert all(op.unit_task_id == 0 for op in first)


# ----------------------------------------------------------------------
# timing interpreter
# ----------------------------------------------------------------------
def test_simulate_simple_send():
    task = make_task()
    plan = CommPlan(task=task, strategy="x")
    plan.add(SendOp(op_id=0, unit_task_id=-1, region=((0, 8), (0, 8), (0, 8)),
                    nbytes=GB, sender=0, receiver=8))
    r = simulate_plan(plan)
    assert r.total_time == pytest.approx(GB / task.cluster.spec.inter_host_bandwidth)
    assert r.bytes_cross_host == pytest.approx(GB)


def test_dependencies_serialize():
    task = make_task()
    plan = CommPlan(task=task, strategy="x")
    plan.add(SendOp(op_id=0, unit_task_id=-1, region=((0, 8), (0, 8), (0, 8)),
                    nbytes=GB, sender=0, receiver=8))
    plan.add(SendOp(op_id=1, unit_task_id=-1, region=((0, 8), (0, 8), (0, 8)),
                    nbytes=GB, deps=(0,), sender=4, receiver=12))
    r = simulate_plan(plan)
    t = GB / task.cluster.spec.inter_host_bandwidth
    assert r.total_time == pytest.approx(2 * t)
    assert r.op_finish[0] == pytest.approx(t)


def test_schedule_gating_enforces_host_order():
    """Two broadcasts sharing a receiver host must not overlap."""
    task = make_task("RRR", "RRR")  # single unit task, but we fake two
    ut = task.unit_tasks()
    plan = CommPlan(task=task, strategy="x")
    region = ut[0].region
    plan.add(BroadcastOp(op_id=0, unit_task_id=0, region=region, nbytes=GB,
                         sender=0, receivers=(8, 9), n_chunks=4))
    # both tasks use receiver host 2 -> serialized by the schedule
    task._unit_tasks["intersection"] = [ut[0], ut[0].__class__(
        task_id=1, src_tile=ut[0].src_tile, region=region,
        senders=(4,), receivers=(8, 9), nbytes=GB)]
    plan.add(BroadcastOp(op_id=1, unit_task_id=1, region=region, nbytes=GB,
                         sender=4, receivers=(8, 9), n_chunks=4))
    plan.schedule = Schedule(assignment={0: 0, 1: 1}, order=(0, 1))
    r = simulate_plan(plan)
    t = GB / task.cluster.spec.inter_host_bandwidth
    # serialized: roughly 2x a single broadcast
    assert r.total_time >= 2 * t
    assert r.task_finish[0] <= r.total_time - t * 0.9


def test_gating_disabled_runs_concurrently():
    task = make_task("S0RR", "S0RR")
    plan = make_strategy("broadcast").plan(task)
    gated = simulate_plan(plan, respect_schedule=True)
    free = simulate_plan(plan, respect_schedule=False)
    # the two unit tasks are host-disjoint here, so both modes match
    assert free.total_time == pytest.approx(gated.total_time, rel=0.01)


def test_reuse_network_accumulates():
    task = make_task()
    net = Network(task.cluster)
    plan = make_strategy("send_recv").plan(task)
    r1 = simulate_plan(plan, network=net)
    r2 = simulate_plan(plan, network=net)
    assert r2.bytes_cross_host == pytest.approx(r1.bytes_cross_host)
    assert net.bytes_cross_host == pytest.approx(2 * r1.bytes_cross_host)


@pytest.mark.parametrize("strategy", ["send_recv", "allgather", "broadcast", "signal"])
def test_all_strategies_complete(strategy):
    task = make_task("RS0R", "RRS0")
    plan = make_strategy(strategy).plan(task)
    r = simulate_plan(plan)
    assert r.total_time > 0
    assert len(r.op_finish) == len(plan.ops)
    assert set(r.task_finish) == {op.unit_task_id for op in plan.ops}


def test_broadcast_cross_bytes_at_lower_bound():
    """Ours moves each byte across hosts exactly once when receivers
    live on single hosts (the §2.2 lower-bound argument)."""
    task = make_task("S0RR", "S0RR", shape=(64, 64, 64))
    plan = make_strategy("broadcast").plan(task)
    r = simulate_plan(plan)
    assert r.bytes_cross_host == pytest.approx(task.total_nbytes)


def test_send_recv_cross_bytes_scale_with_replication():
    task = make_task("S0RR", "S0RR", shape=(64, 64, 64))
    plan = make_strategy("send_recv").plan(task)
    r = simulate_plan(plan)
    # 4 replicas per destination tile -> 4x the tensor over the wire
    assert r.bytes_cross_host == pytest.approx(4 * task.total_nbytes)


def test_timing_result_makespan_alias():
    task = make_task()
    r = simulate_plan(make_strategy("signal").plan(task))
    assert r.makespan == r.total_time
