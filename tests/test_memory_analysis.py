"""Static peak-memory analysis (M-codes) and per-host buffer accounting.

The contract under test, end to end:

* :func:`repro.core.buffers.op_host_buffers` attributes every op's
  transient bytes receiver-side, per host — the one attribution both
  the static analyzer and the runtime accountant consume;
* :func:`repro.analysis.static_host_bounds` is a **sound** upper bound:
  on every workload, strategy, topology, and fault schedule we can
  simulate, ``bound[h] >= TimingResult.host_peak_buffers[h]``;
* ``memory_budget`` threads from :class:`ClusterSpec`/``CompileContext``
  into validation (M001), auto-strategy selection (M003), and the cache
  signature — and ``memory_budget=None`` leaves every signature and
  telemetry digest byte-identical to a world without budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import check_plan, plan_from_dict, static_host_bounds
from repro.analysis.memory_analysis import SOUNDNESS_SLACK_BYTES
from repro.compiler import CompileContext, compile_resharding
from repro.compiler.cache import plan_signature, task_signature
from repro.core.buffers import op_host_buffers
from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.plan import BroadcastOp, ScatterOp, SendOp
from repro.core.task import ReshardingTask
from repro.core.validate import PlanValidationError
from repro.fuzz import LeakyBufferRunner, fuzz_workloads, run_one
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.faults import FaultSchedule, HostFailure, RetryPolicy

STRATEGIES = ("send_recv", "allgather", "broadcast")


def make_task(n_hosts=4, devices_per_host=2, shape=(64, 64),
              src_spec="S0R", dst_spec="RS1", memory_budget=None):
    c = Cluster(ClusterSpec(
        n_hosts=n_hosts,
        devices_per_host=devices_per_host,
        memory_budget=memory_budget,
    ))
    src = DeviceMesh.from_hosts(c, tuple(range(n_hosts // 2)))
    dst = DeviceMesh.from_hosts(c, tuple(range(n_hosts // 2, n_hosts)))
    return ReshardingTask(shape, src, src_spec, dst, dst_spec,
                          dtype=np.float32)


# ----------------------------------------------------------------------
# Attribution: op_host_buffers
# ----------------------------------------------------------------------
class TestOpHostBuffers:
    def setup_method(self):
        self.cluster = Cluster(ClusterSpec(n_hosts=3, devices_per_host=2))

    def test_send_charges_receiver_host(self):
        op = SendOp(op_id=0, unit_task_id=0, region=((0, 4),),
                    nbytes=100.0, sender=0, receiver=4)
        assert op_host_buffers(self.cluster, op) == {2: 100.0}

    def test_broadcast_charges_per_receiver_on_host(self):
        op = BroadcastOp(op_id=0, unit_task_id=0, region=((0, 4),),
                         nbytes=100.0, sender=0, receivers=(2, 3, 4))
        # two receivers on host 1, one on host 2
        assert op_host_buffers(self.cluster, op) == {1: 200.0, 2: 100.0}

    def test_scatter_splits_evenly_across_receivers(self):
        op = ScatterOp(op_id=0, unit_task_id=0, region=((0, 4),),
                       nbytes=100.0, sender=0, receivers=(2, 3, 4, 5))
        assert op_host_buffers(self.cluster, op) == {1: 50.0, 2: 50.0}

    def test_devices_outside_cluster_are_skipped(self):
        op = SendOp(op_id=0, unit_task_id=0, region=((0, 4),),
                    nbytes=100.0, sender=0, receiver=99)
        assert op_host_buffers(self.cluster, op) == {}


# ----------------------------------------------------------------------
# static_host_bounds: chain decomposition and schedule gating
# ----------------------------------------------------------------------
def fixture_plan(ops, n_hosts=3, devices_per_host=2, schedule=None,
                 memory_budget=None, shape=(8, 8), dst_spec="RR"):
    raw = {
        "cluster": {"n_hosts": n_hosts, "devices_per_host": devices_per_host},
        "shape": list(shape),
        "src": {"hosts": [0], "spec": "RR"},
        "dst": {"hosts": list(range(1, n_hosts)), "spec": dst_spec},
        "ops": ops,
    }
    if memory_budget is not None:
        raw["cluster"]["memory_budget"] = memory_budget
    if schedule is not None:
        raw["schedule"] = schedule
    return plan_from_dict(raw)


FULL = [[0, 8], [0, 8]]


class TestStaticHostBounds:
    def test_independent_ops_sum_ungated(self):
        plan = fixture_plan([
            {"kind": "send", "id": 0, "task": 0, "region": FULL,
             "sender": 0, "receiver": 2, "nbytes": 100},
            {"kind": "send", "id": 1, "task": 0, "region": FULL,
             "sender": 0, "receiver": 3, "nbytes": 40},
        ])
        mem = static_host_bounds(plan)
        assert not mem.gated
        assert mem.per_host[1] == 140.0

    def test_dependent_ops_serialize_into_a_chain_max(self):
        plan = fixture_plan([
            {"kind": "send", "id": 0, "task": 0, "region": FULL,
             "sender": 0, "receiver": 2, "nbytes": 100},
            {"kind": "send", "id": 1, "task": 0, "region": FULL,
             "sender": 0, "receiver": 3, "nbytes": 40, "deps": [0]},
        ])
        mem = static_host_bounds(plan)
        # one chain: its per-host max, not the sum
        assert mem.per_host[1] == 100.0

    def test_schedule_gating_takes_the_max_over_tasks(self):
        # dst "RS1": unit tasks 0 and 1 both deliver to host 1, so the
        # schedule chains them there and the gated bound is the max.
        ops = [
            {"kind": "send", "id": 0, "task": 0, "region": [[0, 8], [0, 4]],
             "sender": 0, "receiver": 2, "nbytes": 100},
            {"kind": "send", "id": 1, "task": 1, "region": [[0, 8], [4, 8]],
             "sender": 0, "receiver": 3, "nbytes": 60},
        ]
        ungated = static_host_bounds(fixture_plan(ops, dst_spec="RS1"))
        gated = static_host_bounds(fixture_plan(
            ops, dst_spec="RS1",
            schedule={"assignment": {"0": 0, "1": 0}, "order": [0, 1]},
        ))
        assert ungated.per_host[1] == 160.0
        assert gated.gated
        assert not gated.uncovered_ops
        assert gated.per_host[1] == 100.0

    def test_nonfinite_op_is_reported_and_bound_is_inf(self):
        plan = fixture_plan([
            {"kind": "send", "id": 0, "task": 0, "region": FULL,
             "sender": 0, "receiver": 2, "nbytes": 1e400},
        ])
        mem = static_host_bounds(plan)
        assert mem.nonfinite_ops == (0,)
        assert mem.per_host[1] == float("inf")

    def test_empty_plan_has_zero_peak(self):
        mem = static_host_bounds(fixture_plan([]))
        assert mem.peak == 0.0
        assert mem.peak_host is None

    def test_dominates_allows_float_residue(self):
        mem = static_host_bounds(fixture_plan([
            {"kind": "send", "id": 0, "task": 0, "region": FULL,
             "sender": 0, "receiver": 2, "nbytes": 100},
        ]))
        assert mem.dominates({1: 100.0 + SOUNDNESS_SLACK_BYTES / 2})
        assert not mem.dominates({1: 200.0})


# ----------------------------------------------------------------------
# Soundness: static bound >= simulated high-water mark
# ----------------------------------------------------------------------
class TestSoundness:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize(
        "workload", fuzz_workloads(), ids=lambda w: w.name
    )
    def test_bound_dominates_simulation(self, workload, strategy):
        compiled = compile_resharding(
            workload.task, CompileContext(strategy=strategy, cache=None)
        )
        timing = simulate_plan(compiled.plan)
        mem = static_host_bounds(compiled.plan)
        assert timing.host_peak_buffers, "accounting must always run"
        assert mem.dominates(timing.host_peak_buffers), (
            f"{workload.name}/{strategy}: observed "
            f"{timing.host_peak_buffers} > bound {mem.per_host}"
        )

    @pytest.mark.parametrize(
        "workload", fuzz_workloads(), ids=lambda w: w.name
    )
    def test_bound_dominates_under_faults(self, workload):
        faults = FaultSchedule(
            seed=7, host_failures=(HostFailure(host=1, time=1e-5),)
        )
        compiled = compile_resharding(
            workload.task,
            CompileContext(strategy=workload.strategy, faults=faults,
                           retry_policy=RetryPolicy(), cache=None),
        )
        timing = simulate_plan(
            compiled.plan, faults=faults, retry_policy=RetryPolicy()
        )
        mem = static_host_bounds(compiled.plan)
        assert mem.dominates(timing.host_peak_buffers)

    def test_leaky_accountant_breaks_the_invariant(self):
        # The self-test sabotage must actually cross the bound somewhere,
        # or the fuzzer's memory-sound invariant proves nothing.
        broken = []
        for workload in fuzz_workloads():
            compiled = compile_resharding(
                workload.task,
                CompileContext(strategy=workload.strategy, cache=None),
            )
            timing = LeakyBufferRunner(compiled.plan).run()
            mem = static_host_bounds(compiled.plan)
            if not mem.dominates(timing.host_peak_buffers):
                broken.append(workload.name)
        assert broken, "LeakyBufferRunner never exceeded the static bound"

    def test_fuzzer_memory_invariant_fires_on_leak(self):
        workload = fuzz_workloads()[1]  # fig6-crossmesh: multi-task
        found, _, _ = run_one(
            workload, FaultSchedule(seed=0), break_memory=True
        )
        assert any(inv == "memory-sound" for inv, _ in found)


# ----------------------------------------------------------------------
# Runtime accounting: gauges opt-in, digests stable
# ----------------------------------------------------------------------
class TestRuntimeAccounting:
    def test_peaks_recorded_without_gauges(self):
        task = make_task()
        compiled = compile_resharding(task, CompileContext(cache=None))
        timing = simulate_plan(compiled.plan)
        assert timing.host_peak_buffers
        assert all(v > 0 for v in timing.host_peak_buffers.values())
        rows = timing.telemetry.counter_rows
        assert not any("buffer_bytes" in repr(r) for r in rows)

    def test_gauges_only_with_track_buffers(self):
        task = make_task()
        compiled = compile_resharding(task, CompileContext(cache=None))
        base = simulate_plan(compiled.plan)
        tracked = simulate_plan(compiled.plan, track_buffers=True)
        assert tracked.host_peak_buffers == base.host_peak_buffers
        assert any(
            "buffer_bytes" in repr(r) for r in tracked.telemetry.counter_rows
        )
        # the gauge stream is the only difference, and it is opt-in
        assert base.telemetry.digest() != tracked.telemetry.digest()

    def test_default_digest_is_deterministic(self):
        task = make_task()
        digests = set()
        for _ in range(2):
            compiled = compile_resharding(task, CompileContext(cache=None))
            digests.add(simulate_plan(compiled.plan).telemetry.digest())
        assert len(digests) == 1


# ----------------------------------------------------------------------
# memory_budget threading: spec, context, select, cache signature
# ----------------------------------------------------------------------
class TestBudgetThreading:
    def test_spec_rejects_nonpositive_and_nonfinite_budgets(self):
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                ClusterSpec(n_hosts=2, memory_budget=bad)

    def test_spec_budget_fires_m001_through_check_plan(self):
        task = make_task(memory_budget=64.0)
        compiled = compile_resharding(
            task, CompileContext(strategy="send_recv", cache=None)
        )
        report = check_plan(compiled.plan)
        assert "M001" in report.codes

    def test_validate_pass_rejects_over_budget_compiles(self):
        task = make_task()
        with pytest.raises(PlanValidationError, match="M001"):
            compile_resharding(
                task,
                CompileContext(strategy="send_recv", cache=None,
                               validate=True, memory_budget=64.0),
            )

    def test_generous_budget_is_feasible(self):
        task = make_task()
        compiled = compile_resharding(
            task,
            CompileContext(strategy="send_recv", cache=None, validate=True,
                           memory_budget=1e12),
        )
        assert compiled.validated

    def test_auto_select_raises_m003_when_every_candidate_exceeds(self):
        task = make_task()
        with pytest.raises(PlanValidationError, match="M003"):
            compile_resharding(
                task,
                CompileContext(strategy="auto", cache=None,
                               memory_budget=1.0),
            )

    def test_auto_select_prefers_feasible_candidates(self):
        task = make_task()
        unconstrained = compile_resharding(
            task, CompileContext(strategy="auto", cache=None)
        )
        # A budget below the winner's peak but above the best feasible
        # candidate's must flip the choice, not fail the compile.
        peaks = {}
        for name in STRATEGIES:
            sub = compile_resharding(
                task, CompileContext(strategy=name, cache=None)
            )
            peaks[name] = static_host_bounds(sub.plan).peak
        budget = min(peaks.values()) * 1.5
        if all(p > budget for p in peaks.values()):
            pytest.skip("no strategy separation on this workload")
        constrained = compile_resharding(
            task,
            CompileContext(strategy="auto", cache=None, memory_budget=budget),
        )
        assert static_host_bounds(constrained.plan).peak <= budget
        assert unconstrained.plan is not constrained.plan

    def test_budget_none_keeps_signatures_byte_identical(self):
        spec = ClusterSpec(n_hosts=4, devices_per_host=2)
        task = make_task()
        assert "memory_budget" not in repr(task_signature(task))
        sig_plain = plan_signature(task, ("broadcast",))
        # a second budget-free task hashes identically
        assert plan_signature(make_task(), ("broadcast",)) == sig_plain
        budgeted = make_task(memory_budget=1024.0)
        assert plan_signature(budgeted, ("broadcast",)) != sig_plain
        assert spec.memory_budget is None

    def test_context_budget_folds_into_cache_signature(self):
        task = make_task()
        plain = compile_resharding(task, CompileContext(strategy="broadcast"))
        budgeted = compile_resharding(
            task,
            CompileContext(strategy="broadcast", memory_budget=1e12),
        )
        assert plain.signature != budgeted.signature


# ----------------------------------------------------------------------
# Incremental re-simulation carries the accounting state
# ----------------------------------------------------------------------
class TestResimAccounting:
    def test_resimulate_matches_cold_peaks(self):
        from repro.compiler.resim import ResimCache, resimulate

        task = make_task(shape=(64, 64))
        compiled = compile_resharding(
            task, CompileContext(strategy="broadcast", cache=None)
        )
        cold = simulate_plan(compiled.plan)
        cache = ResimCache()
        first = resimulate(compiled.plan, cache=cache)
        resumed = resimulate(compiled.plan, cache=cache)
        assert first.host_peak_buffers == cold.host_peak_buffers
        assert resumed.host_peak_buffers == cold.host_peak_buffers
