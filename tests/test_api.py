"""Tests for the top-level reshard() API."""

import numpy as np
import pytest

from repro import (
    Cluster,
    ClusterSpec,
    DeviceMesh,
    plan_resharding,
    reshard,
)


@pytest.fixture
def meshes():
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    return (
        DeviceMesh.from_hosts(c, [0, 1]),
        DeviceMesh.from_hosts(c, [2, 3]),
    )


def test_reshard_with_array_moves_data(meshes):
    src, dst = meshes
    arr = np.arange(8 * 8 * 8, dtype=np.float32).reshape(8, 8, 8)
    r = reshard(arr, src, "S0RR", dst, "RS1R")
    assert r.dst_tensor is not None
    assert r.dst_tensor.allclose(arr)
    assert r.latency > 0
    assert r.cross_host_bytes > 0


def test_reshard_with_shape_is_timing_only(meshes):
    src, dst = meshes
    r = reshard((64, 64), src, "S0R", dst, "RS1")
    assert r.dst_tensor is None
    assert r.latency > 0


def test_reshard_move_data_forced_without_array_fails(meshes):
    src, dst = meshes
    with pytest.raises(ValueError, match="array"):
        reshard((8, 8), src, "RR", dst, "RR", move_data=True)


def test_reshard_move_data_disabled(meshes):
    src, dst = meshes
    arr = np.ones((8, 8), dtype=np.float32)
    r = reshard(arr, src, "RR", dst, "RR", move_data=False)
    assert r.dst_tensor is None


def test_reshard_signal_strategy_skips_data(meshes):
    src, dst = meshes
    arr = np.ones((8, 8), dtype=np.float32)
    r = reshard(arr, src, "RR", dst, "RR", strategy="signal")
    assert r.dst_tensor is None
    assert not r.plan.data_complete


def test_reshard_strategy_kwargs(meshes):
    src, dst = meshes
    r = reshard((8, 8), src, "S0R", dst, "S0R", strategy="broadcast",
                scheduler="naive", n_chunks=3)
    assert all(op.n_chunks == 3 for op in r.plan.ops)
    assert r.plan.schedule.algorithm == "naive"


def test_plan_resharding_compile_only(meshes):
    src, dst = meshes
    plan = plan_resharding((8, 8), src, "S0R", dst, "RS1")
    assert plan.strategy == "broadcast"
    assert plan.ops


def test_reshard_dtype_from_array(meshes):
    src, dst = meshes
    arr = np.ones((8, 8), dtype=np.float16)
    r = reshard(arr, src, "RR", dst, "RR")
    assert r.task.dtype == np.float16
    assert r.dst_tensor.dtype == np.float16


def test_faster_strategy_is_faster(meshes):
    """The headline claim, via the public API: broadcast beats send/recv."""
    src, dst = meshes
    slow = reshard((1 << 22,), src, "R", dst, "R", strategy="send_recv")
    fast = reshard((1 << 22,), src, "R", dst, "R", strategy="broadcast")
    assert fast.latency < slow.latency
