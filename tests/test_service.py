"""Unit tests for the resharding service: clock, cache, admission,
breaker, coalescing, fairness, deadlines, and degraded mode."""

import asyncio

import pytest

from repro.compiler import (
    CompileContext,
    CompileTimeout,
    PlanCache,
    compile_resharding,
    plan_signature,
)
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    BreakerConfig,
    CircuitBreaker,
    CompileRequest,
    FairQueue,
    ReshardingService,
    ServiceConfig,
    TokenBucket,
    VirtualTimeStall,
    build_task_pool,
    run_virtual,
)
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.faults import RetryPolicy, seeded_uniform


def make_task(shape=(64, 64), src_spec="S0R", dst_spec="RS0"):
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=2))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    return ReshardingTask(shape, src, src_spec, dst, dst_spec)


# ----------------------------------------------------------------------
# Virtual-time loop
# ----------------------------------------------------------------------
def test_virtual_clock_advances_without_wall_time():
    async def main():
        loop = asyncio.get_event_loop()
        t0 = loop.time()
        await asyncio.sleep(123.5)
        return loop.time() - t0

    assert run_virtual(main()) == pytest.approx(123.5)


def test_virtual_clock_interleaves_timers_deterministically():
    async def main():
        loop = asyncio.get_event_loop()
        order = []

        async def tick(name, delay):
            await asyncio.sleep(delay)
            order.append((name, loop.time()))

        await asyncio.gather(tick("b", 0.2), tick("a", 0.1), tick("c", 0.3))
        return order

    assert run_virtual(main()) == [("a", 0.1), ("b", 0.2), ("c", 0.3)]


def test_virtual_clock_stall_raises_instead_of_hanging():
    async def main():
        await asyncio.get_event_loop().create_future()  # never resolves

    with pytest.raises(VirtualTimeStall):
        run_virtual(main())


# ----------------------------------------------------------------------
# Sharded LRU plan cache (satellite 1)
# ----------------------------------------------------------------------
def test_cache_lru_evicts_least_recently_used():
    cache = PlanCache(max_entries=2)
    task = make_task()
    sigs = []
    for shape in [(32, 32), (48, 48), (64, 64)]:
        t = make_task(shape=shape)
        ctx = CompileContext(strategy="send_recv", cache=cache)
        compiled = compile_resharding(t, ctx)
        sigs.append(compiled.signature)
    del task
    # the first signature was least recently used and must be gone
    assert cache.lookup(sigs[0]) is None
    assert cache.lookup(sigs[2]) is not None
    assert cache.stats().evictions == 1


def test_cache_lru_touch_on_hit_protects_entry():
    cache = PlanCache(max_entries=2)
    a = compile_resharding(make_task(shape=(32, 32)),
                           CompileContext(strategy="send_recv", cache=cache))
    compile_resharding(make_task(shape=(48, 48)),
                       CompileContext(strategy="send_recv", cache=cache))
    assert cache.lookup(a.signature) is not None  # touch: a is now MRU
    compile_resharding(make_task(shape=(64, 64)),
                       CompileContext(strategy="send_recv", cache=cache))
    assert cache.lookup(a.signature) is not None  # survived the eviction


def test_cache_shard_stats_sum_to_totals():
    cache = PlanCache(max_entries=64, n_shards=4)
    for shape in [(32, 32), (48, 48), (64, 64)]:
        compile_resharding(make_task(shape=shape),
                           CompileContext(strategy="send_recv", cache=cache))
        compile_resharding(make_task(shape=shape),
                           CompileContext(strategy="send_recv", cache=cache))
    stats = cache.stats()
    assert len(stats.shards) == 4
    assert sum(s.hits for s in stats.shards) == stats.hits == 3
    assert sum(s.misses for s in stats.shards) == stats.misses == 3
    assert sum(s.size for s in stats.shards) == 3


def test_cache_invalidate_drops_in_flight_epoch_stores():
    """A store computed against a pre-invalidation epoch never lands."""
    cache = PlanCache()
    task = make_task()
    ctx = CompileContext(strategy="send_recv", cache=cache)
    compiled = compile_resharding(task, ctx)
    old_epoch = cache.epoch
    old_sig = compiled.signature
    cache.invalidate("config deploy")
    # simulate a worker finishing a compile it started before invalidate
    assert cache.store(old_sig, compiled, epoch=old_epoch) is False
    assert cache.lookup(old_sig) is None
    assert cache.stats().stale_stores == 1
    # a fresh-epoch store works
    new_sig = plan_signature(task, "send_recv", None, None, epoch=cache.epoch)
    assert cache.store(new_sig, compiled, epoch=cache.epoch) is True
    assert cache.lookup(new_sig) is compiled


# ----------------------------------------------------------------------
# Compile deadline (satellite 2)
# ----------------------------------------------------------------------
def test_compile_deadline_times_out_deterministically():
    task = make_task()
    with pytest.raises(CompileTimeout) as exc1:
        compile_resharding(task, CompileContext(
            strategy="broadcast", cache=None, deadline=1e-4))
    with pytest.raises(CompileTimeout) as exc2:
        compile_resharding(task, CompileContext(
            strategy="broadcast", cache=None, deadline=1e-4))
    # identical inputs -> identical spend and phase, on any machine
    assert exc1.value.spent == exc2.value.spent
    assert exc1.value.phase == exc2.value.phase
    assert "deadline" in str(exc1.value)


def test_compile_deadline_generous_budget_completes():
    compiled = compile_resharding(make_task(), CompileContext(
        strategy="broadcast", cache=None, deadline=5.0))
    assert compiled.plan.ops


def test_compile_deadline_not_part_of_signature():
    task = make_task()
    a = compile_resharding(task, CompileContext(
        strategy="send_recv", cache=None, deadline=5.0))
    b = compile_resharding(task, CompileContext(strategy="send_recv", cache=None))
    assert a.signature == b.signature is None  # uncached: no signature
    cache = PlanCache()
    c = compile_resharding(task, CompileContext(
        strategy="send_recv", cache=cache, deadline=5.0))
    d = compile_resharding(task, CompileContext(strategy="send_recv", cache=cache))
    assert c.signature == d.signature
    assert d is c  # second call was a cache hit


# ----------------------------------------------------------------------
# Admission primitives
# ----------------------------------------------------------------------
def test_token_bucket_refills_at_rate():
    bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
    assert bucket.take(0.0) and bucket.take(0.0)
    assert not bucket.take(0.0)
    assert bucket.time_until_token(0.0) == pytest.approx(0.1)
    assert bucket.take(0.1)


def test_fair_queue_round_robin_across_tenants():
    q = FairQueue()
    for i in range(3):
        q.push("a", f"a{i}")
    q.push("b", "b0")
    q.push("c", "c0")
    order = []
    while True:
        popped = q.pop()
        if popped is None:
            break
        order.append(popped[1])
    # one per tenant per cycle: a, b, c, then a's backlog drains
    assert order == ["a0", "b0", "c0", "a1", "a2"]


def test_admission_controller_reasons():
    config = AdmissionConfig(max_queue_depth=4, per_tenant_depth=2,
                             rate=10.0, burst=1.0)
    ctrl = AdmissionController(config)
    q = FairQueue()
    # rate limit: burst of 1, second request inside the same instant
    assert ctrl.decide("t1", 0.0, q, drain_rate=100.0) is None
    over = ctrl.decide("t1", 0.0, q, drain_rate=100.0)
    assert over is not None and over.reason == "rate-limited"
    assert over.retry_after > 0
    # per-tenant bound
    q.push("t2", 1)
    q.push("t2", 2)
    over = ctrl.decide("t2", 10.0, q, drain_rate=100.0)
    assert over is not None and over.reason == "tenant-queue-full"
    # global bound
    q.push("t3", 3)
    q.push("t4", 4)
    over = ctrl.decide("t5", 20.0, q, drain_rate=100.0)
    assert over is not None and over.reason == "queue-full"
    assert over.queue_depth == 4


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
def test_breaker_full_cycle_open_half_open_closed():
    b = CircuitBreaker(BreakerConfig(failure_threshold=3, cooldown=1.0,
                                     half_open_probes=2))
    for _ in range(2):
        b.record_failure(0.0)
    assert b.state == "closed"
    b.record_failure(0.0)
    assert b.state == "open"
    assert b.allow(0.5) == "reject"
    assert b.retry_after(0.5) == pytest.approx(0.5)
    # cooldown elapsed -> half-open, limited probes
    assert b.allow(1.0) == "probe"
    assert b.allow(1.0) == "probe"
    assert b.allow(1.0) == "reject"  # probe slots exhausted
    b.record_success(1.1)
    b.record_success(1.2)
    assert b.state == "closed"
    assert [(f, t) for _, f, t in b.transitions] == [
        ("closed", "open"), ("open", "half_open"), ("half_open", "closed")]


def test_breaker_probe_failure_reopens():
    b = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown=1.0,
                                     half_open_probes=1))
    b.record_failure(0.0)
    assert b.allow(1.5) == "probe"
    b.record_failure(1.6)
    assert b.state == "open"
    assert b.allow(2.0) == "reject"  # cooldown restarted at 1.6
    assert b.allow(2.7) == "probe"
    b.record_success(2.8)
    assert b.state == "closed"


# ----------------------------------------------------------------------
# Service behavior
# ----------------------------------------------------------------------
def service_config(**kw):
    defaults = dict(
        n_workers=1,
        base_service_time=0.05,
        admission=AdmissionConfig(max_queue_depth=8, per_tenant_depth=4),
    )
    defaults.update(kw)
    return ServiceConfig(**defaults)


def test_single_flight_coalesces_identical_requests():
    task = make_task()

    async def main():
        service = ReshardingService(service_config())
        await service.start()
        requests = [
            CompileRequest(request_id=f"r{i}", tenant="t", task=task)
            for i in range(4)
        ]
        responses = await asyncio.gather(*(service.submit(r) for r in requests))
        await service.shutdown()
        return service, responses

    service, responses = run_virtual(main())
    assert all(r.ok for r in responses)
    assert sum(r.coalesced for r in responses) == 3
    assert service.cache.stats().size == 1  # exactly one physical compile
    totals = service.bus.counter_totals()
    assert totals["service/service.coalesced"] == 3
    assert totals["service/service.completed"] == 1


def test_identical_request_after_completion_hits_cache():
    task = make_task()

    async def main():
        service = ReshardingService(service_config())
        await service.start()
        first = await service.submit(
            CompileRequest(request_id="r0", tenant="t", task=task))
        second = await service.submit(
            CompileRequest(request_id="r1", tenant="t", task=task))
        await service.shutdown()
        return first, second

    first, second = run_virtual(main())
    assert first.ok and second.ok
    assert not second.coalesced
    assert second.latency == 0.0  # answered at admission from the cache
    assert second.plan_signature == first.plan_signature


def test_fairness_bursty_tenant_cannot_starve_others():
    tasks = build_task_pool(12)

    async def main():
        service = ReshardingService(service_config(
            admission=AdmissionConfig(max_queue_depth=32, per_tenant_depth=16)))
        await service.start()
        flood = [
            CompileRequest(request_id=f"flood-{i}", tenant="bursty",
                           task=tasks[i % 6])
            for i in range(10)
        ]
        polite = [
            CompileRequest(request_id=f"polite-{i}", tenant="polite",
                           task=tasks[6 + i])
            for i in range(2)
        ]

        async def run_flood():
            return await asyncio.gather(*(service.submit(r) for r in flood))

        async def run_polite():
            await asyncio.sleep(0.001)  # arrive just after the flood
            return await asyncio.gather(*(service.submit(r) for r in polite))

        flood_rs, polite_rs = await asyncio.gather(run_flood(), run_polite())
        await service.shutdown()
        return flood_rs, polite_rs

    flood_rs, polite_rs = run_virtual(main())
    assert all(r.ok for r in polite_rs)
    # round-robin dequeue: each polite request waits at most ~one compile
    # per tenant cycle, not behind the whole 10-deep flood
    flood_ok = [r for r in flood_rs if r.ok]
    assert max(r.latency for r in polite_rs) < max(r.latency for r in flood_ok)
    assert max(r.latency for r in polite_rs) < 4 * 0.05 + 0.01


def test_overload_sheds_with_structured_response():
    tasks = build_task_pool(12)

    async def main():
        service = ReshardingService(service_config(
            admission=AdmissionConfig(max_queue_depth=3, per_tenant_depth=3)))
        await service.start()
        requests = [
            CompileRequest(request_id=f"r{i}", tenant="t", task=tasks[i])
            for i in range(8)
        ]
        responses = await asyncio.gather(*(service.submit(r) for r in requests))
        await service.shutdown()
        return responses

    responses = run_virtual(main())
    shed = [r for r in responses if r.status == "shed"]
    assert shed, "tight queue bound must shed some of the burst"
    for r in shed:
        assert r.overloaded is not None
        assert r.overloaded.reason in ("queue-full", "tenant-queue-full")
        assert r.overloaded.retry_after > 0
        assert r.overloaded.queue_depth >= 3
    assert all(r.ok for r in responses if r.status == "ok")


def test_request_timeout_expires_in_queue():
    tasks = build_task_pool(3)

    async def main():
        service = ReshardingService(service_config(base_service_time=0.1))
        await service.start()
        slow = service.try_submit(
            CompileRequest(request_id="slow", tenant="t", task=tasks[0]))
        hasty = service.try_submit(
            CompileRequest(request_id="hasty", tenant="t", task=tasks[1],
                           timeout=0.05))
        responses = await asyncio.gather(slow.wait(), hasty.wait())
        await service.shutdown()
        return responses

    slow_r, hasty_r = run_virtual(main())
    assert slow_r.ok
    assert hasty_r.status == "expired"
    assert hasty_r.completed_at > 0.05


def test_client_cancellation_resolves_only_that_waiter():
    task = make_task()

    async def main():
        service = ReshardingService(service_config())
        await service.start()
        keep = service.try_submit(
            CompileRequest(request_id="keep", tenant="t", task=task))
        drop = service.try_submit(
            CompileRequest(request_id="drop", tenant="t", task=task))
        assert not isinstance(drop, type(None))
        drop.cancel()
        responses = await asyncio.gather(keep.wait(), drop.wait())
        await service.shutdown()
        return responses

    keep_r, drop_r = run_virtual(main())
    assert drop_r.status == "cancelled"
    assert keep_r.ok  # the coalesced compile still served the survivor


def test_breaker_open_serves_stale_plan_degraded():
    task = make_task()
    other = make_task(shape=(80, 80))

    async def main():
        service = ReshardingService(service_config(
            breaker=BreakerConfig(failure_threshold=2, cooldown=100.0)))
        await service.start()
        fresh = await service.submit(
            CompileRequest(request_id="warm", tenant="t", task=task))
        # a config deploy invalidates the cache; the stale store survives
        service.cache.invalidate("config deploy")
        # the compiler starts failing hard and the breaker trips
        service.breaker.record_failure(service._now())
        service.breaker.record_failure(service._now())
        assert service.breaker.is_open
        degraded = await service.submit(
            CompileRequest(request_id="stale-ok", tenant="t", task=task))
        shed = await service.submit(
            CompileRequest(request_id="no-stale", tenant="t", task=other))
        await service.shutdown()
        return fresh, degraded, shed

    fresh, degraded, shed = run_virtual(main())
    assert fresh.ok and not fresh.degraded
    assert degraded.ok and degraded.degraded
    assert "stale" in degraded.detail
    assert shed.status == "shed"
    assert shed.overloaded is not None
    assert shed.overloaded.reason == "breaker-open"
    assert shed.overloaded.retry_after > 0


def test_transient_faults_retried_with_deterministic_backoff():
    task = make_task()
    from repro.service import ServiceChaos

    # fault on attempt 1 for this request id, succeed later (verified by
    # the seeded hash below, so the test can't rot silently)
    chaos = None
    for seed in range(100):
        candidate = ServiceChaos(seed=seed, fault_rate=0.5)
        if candidate.attempt_faults("r0", 1) and not candidate.attempt_faults("r0", 2):
            chaos = candidate
            break
    assert chaos is not None

    async def main():
        service = ReshardingService(
            service_config(retry=RetryPolicy(max_attempts=3, backoff_base=0.01)),
            chaos=chaos,
        )
        await service.start()
        response = await service.submit(
            CompileRequest(request_id="r0", tenant="t", task=task))
        await service.shutdown()
        return service, response

    service, response = run_virtual(main())
    assert response.ok
    assert response.attempts == 2
    totals = service.bus.counter_totals()
    assert totals["service/service.retries"] == 1
    assert totals["service/service.transient_fault"] == 1
    assert service.breaker.state == "closed"


def test_seeded_uniform_is_deterministic():
    assert seeded_uniform(1, "x", 2) == seeded_uniform(1, "x", 2)
    assert seeded_uniform(1, "x", 2) != seeded_uniform(1, "x", 3)
    assert 0.0 <= seeded_uniform("anything") < 1.0


# ----------------------------------------------------------------------
# Partition-induced faults vs. compile overload (failure-domain PR)
# ----------------------------------------------------------------------
def test_breaker_partition_failures_never_trip():
    b = CircuitBreaker(BreakerConfig(failure_threshold=2, cooldown=1.0,
                                     half_open_probes=1))
    for i in range(10):
        b.record_failure(float(i), kind="partition")
    # A network partition says nothing about compiler health: the
    # breaker stays closed no matter how many timeouts it explains.
    assert b.state == "closed"
    assert b.partition_failures == 10
    # Genuine compile failures still trip at the configured threshold.
    b.record_failure(20.0)
    b.record_failure(20.1)
    assert b.state == "open"


def test_breaker_partition_failure_during_probe_keeps_half_open():
    b = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown=1.0,
                                     half_open_probes=1))
    b.record_failure(0.0)
    assert b.allow(1.5) == "probe"
    # The probe's failure is attributed to a partition: don't re-open —
    # release the probe slot so the next request can probe again.
    b.record_failure(1.6, kind="partition")
    assert b.state == "half_open"
    assert b.allow(1.7) == "probe"
    b.record_success(1.8)
    assert b.state == "closed"


def test_breaker_rejects_unknown_failure_kind():
    b = CircuitBreaker(BreakerConfig(failure_threshold=2, cooldown=1.0,
                                     half_open_probes=1))
    with pytest.raises(ValueError, match="kind"):
        b.record_failure(0.0, kind="gremlins")


def test_partition_faults_retried_and_counted_separately():
    task = make_task()
    from repro.service import ServiceChaos

    chaos = None
    for seed in range(200):
        candidate = ServiceChaos(seed=seed, partition_rate=0.5)
        if candidate.attempt_partitioned("r0", 1) and not (
            candidate.attempt_partitioned("r0", 2)
        ):
            chaos = candidate
            break
    assert chaos is not None
    assert chaos.attempt_partitioned("r0", 1)  # seeded -> replayable

    async def main():
        service = ReshardingService(
            service_config(retry=RetryPolicy(max_attempts=3, backoff_base=0.01)),
            chaos=chaos,
        )
        await service.start()
        response = await service.submit(
            CompileRequest(request_id="r0", tenant="t", task=task))
        await service.shutdown()
        return service, response

    service, response = run_virtual(main())
    assert response.ok
    assert response.attempts == 2
    totals = service.bus.counter_totals()
    assert totals["service/service.partition_fault"] == 1
    assert "service/service.transient_fault" not in totals
    # Partition-induced retries must not push the breaker toward open.
    assert service.breaker.state == "closed"


def test_service_chaos_validates_partition_rate():
    from repro.service import ServiceChaos

    with pytest.raises(ValueError, match="partition_rate"):
        ServiceChaos(partition_rate=-0.1)
    with pytest.raises(ValueError, match="partition_rate"):
        ServiceChaos(partition_rate=1.0)
    assert not ServiceChaos(partition_rate=0.0).attempt_partitioned("r", 1)
