"""Tests for the pluggable topology layer.

Covers the refactor's contract from the outside in:

* the two-tier default is *byte-identical* to an explicit
  :class:`TwoTierTopology` (no behaviour smuggled into the refactor);
* per-pair ``link_overrides`` are validated at spec construction and
  priced by the flow simulator's max-min fixpoint exactly as
  hand-computed for small two-link cases;
* the fat-tree prices oversubscribed uplinks, the torus prices
  multi-hop dimension-ordered routes, islands refuse routes;
* switch multicast is correct on the data plane, faster than the ring
  broadcast on switched fabrics, and honestly unsupported elsewhere
  (SelectPass skips it; T-codes reject ill-formed multicast plans);
* switches double as failure domains (``switch_outage``).
"""

import numpy as np
import pytest

from repro.analysis import check_plan
from repro.analysis.loader import plan_from_dict
from repro.compiler.edge import EdgeResharding
from repro.core.data import apply_plan
from repro.core.mesh import DeviceMesh
from repro.core.plan import BroadcastOp, MulticastOp
from repro.core.executor import simulate_plan
from repro.core.task import ReshardingTask
from repro.core.tensor import DistributedTensor
from repro.sim.cluster import GB, GBPS, Cluster, ClusterSpec, LinkOverride
from repro.sim.faults import switch_outage
from repro.sim.network import Network
from repro.sim.topology import (
    FatTreeTopology,
    IslandTopology,
    TorusTopology,
    TwoTierTopology,
    make_topology,
)
from repro.strategies import make_strategy
from repro.strategies.auto import AutoStrategy
from repro.strategies.broadcast import BroadcastStrategy
from repro.strategies.multicast import MulticastStrategy

NIC = 10 * GBPS  # ClusterSpec default inter_host_bandwidth


def make_task(cluster, src_hosts, dst_hosts, src_spec="S0R", dst_spec="RR",
              shape=(64, 64)):
    src = DeviceMesh.from_hosts(cluster, src_hosts)
    dst = DeviceMesh.from_hosts(cluster, dst_hosts)
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=np.float32)


# ----------------------------------------------------------------------
# Two-tier baseline: the refactor must be invisible
# ----------------------------------------------------------------------
class TestTwoTierIdentity:
    def test_default_spec_binds_two_tier(self):
        spec = ClusterSpec(n_hosts=4, devices_per_host=2)
        assert Cluster(spec).topo.topology.name == "two_tier"

    def test_two_tier_contributes_no_transit_ports(self):
        # the pre-refactor port set (devices + endpoint NICs) is intact
        topo = Cluster(ClusterSpec(n_hosts=4, devices_per_host=2)).topo
        assert topo.transit_ports(0, 3) == ()

    @pytest.mark.parametrize("strategy", ["broadcast", "allgather", "send_recv"])
    def test_explicit_two_tier_is_byte_identical(self, strategy):
        times = []
        for topology in (None, TwoTierTopology()):
            c = Cluster(
                ClusterSpec(n_hosts=4, devices_per_host=2, topology=topology)
            )
            plan = make_strategy(strategy).plan(
                make_task(c, [0, 1], [2, 3], shape=(96, 64))
            )
            times.append(simulate_plan(plan).total_time)
        assert times[0] == times[1]  # exact equality, not approx

    def test_group_bandwidth_matches_scalars(self):
        c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=2))
        assert c.topo.group_bandwidth([1]) == c.spec.intra_host_bandwidth
        assert c.topo.group_bandwidth([0, 2, 3]) == c.spec.inter_host_bandwidth


# ----------------------------------------------------------------------
# LinkOverride validation at construction
# ----------------------------------------------------------------------
class TestLinkOverrideValidation:
    def test_unknown_host_rejected(self):
        with pytest.raises(ValueError, match="unknown host"):
            ClusterSpec(
                n_hosts=2,
                link_overrides=(LinkOverride(0, 7, bandwidth=GBPS),),
            )

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            LinkOverride(1, 1, bandwidth=GBPS)

    def test_empty_override_rejected(self):
        with pytest.raises(ValueError):
            LinkOverride(0, 1)  # neither bandwidth nor latency

    def test_duplicate_pair_rejected(self):
        with pytest.raises(ValueError, match="[Dd]uplicate"):
            ClusterSpec(
                n_hosts=3,
                link_overrides=(
                    LinkOverride(0, 1, bandwidth=GBPS),
                    LinkOverride(1, 0, bandwidth=2 * GBPS),
                ),
            )


# ----------------------------------------------------------------------
# Heterogeneous links: hand-computed max-min fair-share rates
# ----------------------------------------------------------------------
def hetero_net(**spec_kw):
    defaults = dict(
        n_hosts=3,
        devices_per_host=2,
        inter_host_latency=0.0,
        intra_host_latency=0.0,
        link_overrides=(LinkOverride(0, 1, bandwidth=2 * GBPS),),
    )
    defaults.update(spec_kw)
    return Network(Cluster(ClusterSpec(**defaults)))


class TestHeterogeneousLinks:
    def test_single_flow_bottlenecked_by_override(self):
        net = hetero_net()
        f = net.start_flow(0, 2, GB)  # host 0 -> host 1 over the 2 GBPS pipe
        net.run()
        assert f.finish_time == pytest.approx(GB / (2 * GBPS))

    def test_unrelated_pair_keeps_nominal_rate(self):
        net = hetero_net()
        f = net.start_flow(2, 4, GB)  # host 1 -> host 2: no override
        net.run()
        assert f.finish_time == pytest.approx(GB / NIC)

    def test_two_flows_share_override_port(self):
        net = hetero_net()
        a = net.start_flow(0, 2, GB)
        b = net.start_flow(1, 3, GB)  # same host pair, second device pair
        net.run()
        # the 2 GBPS pipe is the shared bottleneck: 1 GBPS each
        assert a.finish_time == pytest.approx(GB / GBPS)
        assert b.finish_time == pytest.approx(GB / GBPS)

    def test_override_is_full_duplex(self):
        net = hetero_net()
        fwd = net.start_flow(0, 2, GB)
        rev = net.start_flow(2, 0, GB)
        net.run()
        # directional ov ports: both directions run at the full 2 GBPS
        assert fwd.finish_time == pytest.approx(GB / (2 * GBPS))
        assert rev.finish_time == pytest.approx(GB / (2 * GBPS))

    def test_max_min_across_slow_and_fast_path(self):
        net = hetero_net()
        slow = net.start_flow(0, 2, GB)  # host 0 -> 1: capped at 2 GBPS
        fast = net.start_flow(1, 4, GB)  # host 0 -> 2: fabric path
        net.run()
        # max-min on the shared 10 GBPS sender NIC: the slow flow can
        # only use 2, so the fast flow takes the remaining 8.
        assert slow.finish_time == pytest.approx(GB / (2 * GBPS))
        assert fast.finish_time == pytest.approx(GB / (8 * GBPS))

    def test_latency_only_override_keeps_bandwidth(self):
        net = hetero_net(
            link_overrides=(LinkOverride(0, 1, latency=0.5),),
        )
        f = net.start_flow(0, 2, GB)
        net.run()
        assert f.finish_time == pytest.approx(0.5 + GB / NIC)


# ----------------------------------------------------------------------
# Fat-tree: oversubscription is priced, not asserted
# ----------------------------------------------------------------------
def fat_tree_net(oversubscription, n_hosts=4):
    return Network(
        Cluster(
            ClusterSpec(
                n_hosts=n_hosts,
                devices_per_host=2,
                inter_host_latency=0.0,
                intra_host_latency=0.0,
                topology=FatTreeTopology(
                    hosts_per_leaf=2, oversubscription=oversubscription
                ),
            )
        )
    )


class TestFatTree:
    def test_cross_leaf_flow_capped_by_uplink(self):
        net = fat_tree_net(oversubscription=4.0)
        f = net.start_flow(0, 4, GB)  # host 0 (leaf0) -> host 2 (leaf1)
        net.run()
        # uplink capacity = 2 hosts * 10 GBPS / 4 = 5 GBPS < NIC
        assert f.finish_time == pytest.approx(GB / (5 * GBPS))

    def test_same_leaf_flow_nonblocking(self):
        net = fat_tree_net(oversubscription=4.0)
        f = net.start_flow(0, 2, GB)  # host 0 -> host 1, both on leaf0
        net.run()
        assert f.finish_time == pytest.approx(GB / NIC)

    def test_nonblocking_uplinks_never_bottleneck(self):
        net = fat_tree_net(oversubscription=1.0)
        f = net.start_flow(0, 4, GB)
        net.run()
        assert f.finish_time == pytest.approx(GB / NIC)

    def test_leaves_become_failure_domains(self):
        spec = ClusterSpec(
            n_hosts=4,
            devices_per_host=2,
            topology=FatTreeTopology(hosts_per_leaf=2),
        )
        names = {d.name: tuple(d.hosts) for d in spec.effective_failure_domains}
        assert names["leaf0"] == (0, 1)
        assert names["leaf1"] == (2, 3)
        assert "spine" not in names  # the spine spans everything

    def test_bisection_bandwidth(self):
        spec4 = ClusterSpec(
            n_hosts=4,
            devices_per_host=2,
            topology=FatTreeTopology(hosts_per_leaf=2, oversubscription=4.0),
        )
        assert Cluster(spec4).topo.bisection_bandwidth() == pytest.approx(5 * GBPS)
        assert Cluster(
            ClusterSpec(n_hosts=4, devices_per_host=2)
        ).topo.bisection_bandwidth() == pytest.approx(2 * NIC)


# ----------------------------------------------------------------------
# Torus: multi-hop routes hold every edge, hops add latency
# ----------------------------------------------------------------------
def torus_net(latency=0.0, n_hosts=4):
    return Network(
        Cluster(
            ClusterSpec(
                n_hosts=n_hosts,
                devices_per_host=2,
                inter_host_latency=latency,
                intra_host_latency=0.0,
                topology=TorusTopology(rows=1, cols=n_hosts),
            )
        )
    )


class TestTorus:
    def test_hop_count_adds_latency(self):
        lat = 0.01
        net = torus_net(latency=lat)
        two_hop = net.start_flow(0, 4, GB)  # host 0 -> host 2: 2 hops
        net.run()
        assert two_hop.finish_time == pytest.approx(2 * lat + GB / NIC)

    def test_wraparound_is_one_hop(self):
        lat = 0.01
        net = torus_net(latency=lat)
        f = net.start_flow(0, 6, GB)  # host 0 -> host 3 wraps: 1 hop
        net.run()
        assert f.finish_time == pytest.approx(lat + GB / NIC)

    def test_shared_edge_is_contended(self):
        net = torus_net()
        a = net.start_flow(0, 4, GB)  # host 0 -> 2 via edge 1->2
        b = net.start_flow(2, 4, GB)  # host 1 -> 2 via edge 1->2
        net.run()
        assert a.finish_time == pytest.approx(GB / (5 * GBPS))
        assert b.finish_time == pytest.approx(GB / (5 * GBPS))

    def test_shape_must_match_host_count(self):
        with pytest.raises(ValueError, match="torus"):
            ClusterSpec(
                n_hosts=6, devices_per_host=2, topology=TorusTopology(rows=2, cols=2)
            )


# ----------------------------------------------------------------------
# Switch multicast: data plane, timing, and honest unsupport
# ----------------------------------------------------------------------
def fat_tree_cluster(oversubscription=4.0, n_hosts=4):
    return Cluster(
        ClusterSpec(
            n_hosts=n_hosts,
            devices_per_host=2,
            topology=FatTreeTopology(
                hosts_per_leaf=2, oversubscription=oversubscription
            ),
        )
    )


class TestMulticast:
    def test_emits_multicast_ops_on_switched_fabric(self):
        task = make_task(fat_tree_cluster(), [0, 1], [2, 3])
        plan = make_strategy("multicast").plan(task)
        kinds = {type(op) for op in plan.ops}
        assert MulticastOp in kinds
        for op in plan.ops:
            if isinstance(op, MulticastOp):
                # the only switch spanning leaf0 senders and leaf1
                # receivers is the spine
                assert op.switch == "spine"

    def test_data_plane_reconstructs_tensor(self):
        task = make_task(fat_tree_cluster(), [0, 1], [2, 3], shape=(16, 8))
        arr = np.arange(16 * 8, dtype=np.float32).reshape(16, 8)
        src_tensor = DistributedTensor.from_global(task.src_mesh, task.src_spec, arr)
        plan = make_strategy("multicast").plan(task)
        out = apply_plan(plan, src_tensor)
        assert np.array_equal(out.to_global(), arr)

    def test_analyzer_accepts_multicast_plan(self):
        plan = make_strategy("multicast").plan(
            make_task(fat_tree_cluster(), [0, 1], [2, 3])
        )
        assert check_plan(plan).ok

    def test_beats_broadcast_on_oversubscribed_fabric(self):
        c = fat_tree_cluster(oversubscription=4.0, n_hosts=8)
        task = make_task(c, [0, 1], [2, 3, 4, 5, 6, 7], shape=(512, 512))
        t_mc = simulate_plan(make_strategy("multicast").plan(task)).total_time
        t_bc = simulate_plan(make_strategy("broadcast").plan(task)).total_time
        assert t_mc < t_bc

    def test_unsupported_on_switchless_torus(self):
        c = Cluster(
            ClusterSpec(
                n_hosts=4, devices_per_host=2, topology=TorusTopology(rows=1, cols=4)
            )
        )
        task = make_task(c, [0, 1], [2, 3])
        assert not MulticastStrategy().supports(task)

    def test_falls_back_to_broadcast_beyond_switch_span(self):
        # islands have switches, but none spans both meshes: the
        # strategy supports the fabric yet must emit ring broadcasts.
        c = Cluster(
            ClusterSpec(
                n_hosts=4,
                devices_per_host=2,
                topology=IslandTopology(island_size=4),
            )
        )
        plan = MulticastStrategy().plan(make_task(c, [0, 1], [2, 3]))
        assert any(isinstance(op, MulticastOp) for op in plan.ops)
        c2 = fat_tree_cluster()
        # shrink the claim: no common switch -> BroadcastOp fallback is
        # exercised via a mesh pair no single leaf spans when the spine
        # is the only candidate; spine always spans, so fall back only
        # happens on topologies whose switches are partial. Simulate by
        # checking the op mix stays executable either way.
        plan2 = MulticastStrategy().plan(make_task(c2, [0, 1], [2, 3]))
        assert all(
            isinstance(op, (MulticastOp, BroadcastOp)) for op in plan2.ops
        )


class TestSelectPassSkip:
    def test_auto_skips_unsupported_candidate(self):
        c = Cluster(
            ClusterSpec(
                n_hosts=4, devices_per_host=2, topology=TorusTopology(rows=1, cols=4)
            )
        )
        task = make_task(c, [0, 1], [2, 3])
        auto = AutoStrategy(
            candidates=[BroadcastStrategy(), MulticastStrategy()]
        )
        plan = auto.plan(task)
        assert plan.ops
        scores = dict(auto.last_scores)
        assert scores["multicast"] == float("inf")
        assert scores["broadcast"] < float("inf")

    def test_no_supported_candidate_is_an_error(self):
        c = Cluster(
            ClusterSpec(
                n_hosts=4, devices_per_host=2, topology=TorusTopology(rows=1, cols=4)
            )
        )
        task = make_task(c, [0, 1], [2, 3])
        auto = AutoStrategy(candidates=[MulticastStrategy()])
        with pytest.raises(ValueError, match="torus"):
            auto.plan(task)


# ----------------------------------------------------------------------
# T-codes and fail-fast routing
# ----------------------------------------------------------------------
class TestTopologyDiagnostics:
    def test_t003_fires_for_cross_island_op(self):
        plan = plan_from_dict(
            {
                "cluster": {
                    "n_hosts": 4,
                    "devices_per_host": 2,
                    "topology": {"name": "island", "island_size": 2},
                },
                "shape": [8, 8],
                "src": {"hosts": [0], "spec": "RR"},
                "dst": {"hosts": [2], "spec": "RR"},
                "ops": [
                    {
                        "kind": "send",
                        "id": 0,
                        "task": 0,
                        "region": [[0, 8], [0, 8]],
                        "sender": 0,
                        "receiver": 4,
                    }
                ],
            }
        )
        report = check_plan(plan)
        assert not report.ok
        assert "T003" in report.codes

    def test_edge_rejects_unroutable_stage_pair(self):
        c = Cluster(
            ClusterSpec(
                n_hosts=4,
                devices_per_host=2,
                topology=IslandTopology(island_size=2),
            )
        )
        fwd = make_task(c, [0], [2], src_spec="RR", dst_spec="RR")
        bwd = make_task(c, [2], [0], src_spec="RR", dst_spec="RR")
        with pytest.raises(ValueError, match="no route"):
            EdgeResharding(fwd, bwd)


# ----------------------------------------------------------------------
# Switches as failure domains
# ----------------------------------------------------------------------
class TestSwitchOutage:
    def test_outage_downs_the_leaf_hosts(self):
        spec = ClusterSpec(
            n_hosts=4,
            devices_per_host=2,
            topology=FatTreeTopology(hosts_per_leaf=2),
        )
        failure = switch_outage(spec, "leaf1", time=1.0, duration=2.0)
        assert failure.domain == "leaf1"
        assert tuple(failure.hosts) == (2, 3)
        assert failure.time == 1.0

    def test_unknown_switch_is_an_error(self):
        spec = ClusterSpec(n_hosts=4, devices_per_host=2)
        with pytest.raises(KeyError, match="nope"):
            switch_outage(spec, "nope", time=0.0)


# ----------------------------------------------------------------------
# Factory / misc
# ----------------------------------------------------------------------
class TestFactory:
    def test_make_topology_round_trip(self):
        topo = make_topology("fat_tree", hosts_per_leaf=2, oversubscription=2.0)
        assert isinstance(topo, FatTreeTopology)
        assert topo.oversubscription == 2.0

    def test_unknown_name_lists_options(self):
        with pytest.raises(ValueError, match="two_tier"):
            make_topology("moebius_strip")

    def test_common_switch_prefers_most_specific(self):
        topo = fat_tree_cluster().topo
        assert topo.common_switch(0, [1]).name == "leaf0"
        assert topo.common_switch(0, [2]).name == "spine"
