"""Tests for ReshardingTask decomposition (paper §2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mesh import DeviceMesh
from repro.core.slices import region_intersection, region_size
from repro.core.task import ReshardingTask
from repro.sim.cluster import Cluster, ClusterSpec


def make_task(src_spec, dst_spec, shape=(8, 8, 8), dtype=np.float32,
              src_shape=(2, 4), dst_shape=(2, 4)):
    c = Cluster(ClusterSpec(n_hosts=src_shape[0] + dst_shape[0],
                            devices_per_host=max(src_shape[1], dst_shape[1])))
    src = DeviceMesh.from_hosts(c, range(src_shape[0]), src_shape[1])
    dst = DeviceMesh.from_hosts(
        c, range(src_shape[0], src_shape[0] + dst_shape[0]), dst_shape[1]
    )
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=dtype)


def test_overlapping_meshes_rejected():
    c = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
    a = DeviceMesh.from_hosts(c, [0, 1])
    b = DeviceMesh.from_hosts(c, [1])
    with pytest.raises(ValueError, match="disjoint"):
        ReshardingTask((8,), a, "S0", b, "R")


def test_total_nbytes():
    t = make_task("RRR", "RRR", shape=(4, 4, 4), dtype=np.float16)
    assert t.total_nbytes == 64 * 2


def test_figure2_task1():
    """Fig. 2 Task 1: S^{01}R on (2,2) -> S^0R on (2,2): 4 slices."""
    t = make_task("S01R", "S0R", shape=(4, 4), src_shape=(2, 2), dst_shape=(2, 2))
    slices = t.unit_tasks("slice")
    assert len(slices) == 4
    # first slice (rows 0) goes to the dst devices holding row-block 0,
    # which are replicated across the dst mesh's second axis
    first = slices[0]
    assert len(first.senders) == 1
    assert len(first.receivers) == 2


def test_figure2_task2_slice_granularity():
    """Fig. 2 Task 2: S^0R on (2,2) -> S^0S^1 on (2,2): 2 unit tasks."""
    t = make_task("S0R", "S0S1", shape=(4, 4), src_shape=(2, 2), dst_shape=(2, 2))
    slices = t.unit_tasks("slice")
    assert len(slices) == 2
    # each source slice is needed (in part) by 2 destination devices
    assert all(len(ut.receivers) == 2 for ut in slices)
    # and held by 2 replicas on the source mesh
    assert all(len(ut.senders) == 2 for ut in slices)


def test_case4_intersection_count():
    """Table 2 case 4 has 64 unit communication tasks (§5.1.2)."""
    t = make_task("RS01R", "S01RR", shape=(1024, 1024, 8))
    assert len(t.unit_tasks("intersection")) == 64
    assert len(t.unit_tasks("slice")) == 8


def test_case8_single_unit_task():
    """Table 2 case 8: replicated -> replicated is one broadcast."""
    t = make_task("RRR", "RRR", src_shape=(2, 3), dst_shape=(3, 2))
    tasks = t.unit_tasks("intersection")
    assert len(tasks) == 1
    assert set(tasks[0].senders) == set(t.src_mesh.devices)
    assert set(tasks[0].receivers) == set(t.dst_mesh.devices)


def test_unknown_granularity():
    t = make_task("RRR", "RRR")
    with pytest.raises(ValueError, match="granularity"):
        t.unit_tasks("bogus")


def test_unit_tasks_cached():
    t = make_task("S0RR", "S0RR")
    assert t.unit_tasks() is t.unit_tasks()
    assert t.unit_tasks("slice") is t.unit_tasks("slice")


def test_host_level_views():
    t = make_task("S0RR", "S0RR")
    ut = t.unit_tasks()[0]
    assert t.sender_hosts(ut) == frozenset({0})
    assert t.receiver_hosts(ut) == frozenset({2})
    assert t.senders_on_host(ut, 0) == ut.senders
    assert t.senders_on_host(ut, 1) == ()


def test_intersections_match_unit_tasks():
    t = make_task("RS0R", "S0RR")
    inter = t.intersections()
    units = t.unit_tasks("intersection")
    assert len(inter) == len(units)
    for tr, ut in zip(inter, units):
        assert tr.region == ut.region
        assert tr.senders == ut.senders
        assert tr.receivers == ut.receivers


SPEC_PAIRS = [
    ("S0RR", "S0RR"),
    ("RRR", "S0RR"),
    ("RS0R", "S0RR"),
    ("RS01R", "S01RR"),
    ("S1RR", "S0RR"),
    ("S1RR", "RRR"),
    ("RS0R", "RRS0"),
    ("S0S1R", "RS10R"),
]


@pytest.mark.parametrize("granularity", ["intersection", "slice"])
@pytest.mark.parametrize("src_spec,dst_spec", SPEC_PAIRS)
def test_unit_tasks_cover_every_destination_need(src_spec, dst_spec, granularity):
    """Every byte a destination device needs is promised by some task."""
    t = make_task(src_spec, dst_spec)
    tasks = t.unit_tasks(granularity)
    for d in t.dst_mesh.devices:
        want = t.dst_grid.device_region(d)
        covered = np.zeros(tuple(hi - lo for lo, hi in want), dtype=int)
        for ut in tasks:
            if d not in ut.receivers:
                continue
            inter = region_intersection(ut.region, want)
            if inter is None:
                continue
            sl = tuple(
                slice(i0 - w0, i1 - w0) for (i0, i1), (w0, _) in zip(inter, want)
            )
            covered[sl] += 1
        assert (covered >= 1).all(), f"device {d} missing data"


@pytest.mark.parametrize("src_spec,dst_spec", SPEC_PAIRS)
def test_intersection_tasks_total_bytes_equals_tensor(src_spec, dst_spec):
    """At intersection granularity the unit task regions tile D exactly."""
    t = make_task(src_spec, dst_spec)
    total = sum(region_size(ut.region) for ut in t.unit_tasks("intersection"))
    # each dst tile is disjoint; summing over them covers D once per dst
    # replica *group* (not per device), i.e. exactly once
    assert total == 8 * 8 * 8


@pytest.mark.parametrize("src_spec,dst_spec", SPEC_PAIRS)
def test_senders_hold_their_region(src_spec, dst_spec):
    t = make_task(src_spec, dst_spec)
    for ut in t.unit_tasks("intersection"):
        for s in ut.senders:
            holder = t.src_grid.device_region(s)
            assert region_intersection(holder, ut.region) == ut.region


@settings(max_examples=25, deadline=None)
@given(
    src_spec=st.sampled_from(["RRR", "S0RR", "RS1R", "S01RR", "S0S1R", "RRS0"]),
    dst_spec=st.sampled_from(["RRR", "S0RR", "RS1R", "S01RR", "S0S1R", "RRS0"]),
    d0=st.integers(8, 17),
    d1=st.integers(8, 17),
)
def test_property_decomposition_invariants(src_spec, dst_spec, d0, d1):
    t = make_task(src_spec, dst_spec, shape=(d0, d1, 8))
    tasks = t.unit_tasks("intersection")
    # total region bytes = tensor bytes (lower bound argument of §2.2)
    assert sum(region_size(u.region) for u in tasks) == d0 * d1 * 8
    for u in tasks:
        assert u.senders and u.receivers
        assert set(u.senders) <= set(t.src_mesh.devices)
        assert set(u.receivers) <= set(t.dst_mesh.devices)
        assert u.nbytes == region_size(u.region) * 4
