"""Unit tests for the flow-level network simulator."""

import pytest

from repro.sim.cluster import GB, Cluster, ClusterSpec
from repro.sim.network import Network


def make_net(**kw) -> Network:
    defaults = dict(
        n_hosts=4,
        devices_per_host=4,
        inter_host_latency=0.0,
        intra_host_latency=0.0,
    )
    defaults.update(kw)
    return Network(Cluster(ClusterSpec(**defaults)))


def cross_t(net: Network, nbytes: float) -> float:
    return nbytes / net.cluster.spec.inter_host_bandwidth


def test_single_cross_host_flow_latency():
    net = make_net()
    done = []
    net.start_flow(0, 4, GB, lambda f: done.append(f))
    net.run()
    assert len(done) == 1
    assert done[0].finish_time == pytest.approx(cross_t(net, GB))


def test_intra_host_flow_uses_nvlink():
    net = make_net()
    f = net.start_flow(0, 1, GB)
    net.run()
    assert f.finish_time == pytest.approx(GB / net.cluster.spec.intra_host_bandwidth)


def test_startup_latency_added():
    net = make_net(inter_host_latency=0.01)
    f = net.start_flow(0, 4, GB)
    net.run()
    assert f.finish_time == pytest.approx(0.01 + cross_t(net, GB))


def test_two_flows_share_sender_nic():
    net = make_net()
    flows = [net.start_flow(0, 4, GB), net.start_flow(1, 8, GB)]
    # distinct sender devices, same host -> shared nic_send(0)
    net.run()
    for f in flows:
        assert f.finish_time == pytest.approx(2 * cross_t(net, GB))


def test_two_flows_distinct_hosts_full_rate():
    net = make_net()
    f1 = net.start_flow(0, 8, GB)
    f2 = net.start_flow(4, 12, GB)
    net.run()
    t = cross_t(net, GB)
    assert f1.finish_time == pytest.approx(t)
    assert f2.finish_time == pytest.approx(t)


def test_full_duplex_send_and_receive_concurrently():
    """A host can send at full rate while receiving at full rate."""
    net = make_net()
    f1 = net.start_flow(0, 4, GB)  # host0 sends
    f2 = net.start_flow(8, 1, GB)  # host0 receives
    net.run()
    t = cross_t(net, GB)
    assert f1.finish_time == pytest.approx(t)
    assert f2.finish_time == pytest.approx(t)


def test_receiver_nic_contention():
    net = make_net()
    f1 = net.start_flow(0, 8, GB)
    f2 = net.start_flow(4, 9, GB)  # both into host 2
    net.run()
    assert f1.finish_time == pytest.approx(2 * cross_t(net, GB))
    assert f2.finish_time == pytest.approx(2 * cross_t(net, GB))


def test_maxmin_reallocation_on_completion():
    """When a competing flow finishes, the survivor speeds up."""
    net = make_net()
    small = net.start_flow(0, 4, GB / 2)
    big = net.start_flow(1, 5, GB)
    net.run()
    t = cross_t(net, GB)
    # Shared sender NIC: both at half rate until small finishes at t
    # (0.5 GB at bw/2), then big runs at full rate for its remaining 0.5 GB.
    assert small.finish_time == pytest.approx(t)
    assert big.finish_time == pytest.approx(1.5 * t)


def test_zero_byte_flow_completes_after_latency():
    net = make_net(inter_host_latency=0.25)
    f = net.start_flow(0, 4, 0.0)
    net.run()
    assert f.finish_time == pytest.approx(0.25)


def test_flow_to_self_rejected():
    net = make_net()
    with pytest.raises(ValueError):
        net.start_flow(2, 2, 100)


def test_negative_bytes_rejected():
    net = make_net()
    with pytest.raises(ValueError):
        net.start_flow(0, 1, -5)


def test_traffic_accounting():
    net = make_net()
    net.start_flow(0, 4, 1000)
    net.start_flow(0, 1, 500)
    net.run()
    assert net.bytes_cross_host == pytest.approx(1000)
    assert net.bytes_intra_host == pytest.approx(500)


def test_trace_records():
    net = make_net()
    net.start_flow(0, 4, GB, tag="x")
    net.run()
    assert len(net.trace) == 1
    rec = net.trace[0]
    assert rec.tag == "x"
    assert rec.src == 0 and rec.dst == 4
    assert rec.duration == pytest.approx(cross_t(net, GB))


def test_callback_chaining_flows():
    """Completion callbacks can submit follow-up flows."""
    net = make_net()
    finish = []

    def second(_f):
        net.start_flow(4, 8, GB, lambda f: finish.append(f.finish_time))

    net.start_flow(0, 4, GB, second)
    net.run()
    assert finish == [pytest.approx(2 * cross_t(net, GB))]


def test_many_concurrent_flows_deterministic():
    def run_once():
        net = make_net()
        flows = [
            net.start_flow(s, d, GB / 8)
            for s in range(4)
            for d in range(8, 12)
        ]
        net.run()
        return [f.finish_time for f in flows]

    assert run_once() == run_once()


def test_intra_host_flows_dont_touch_nic():
    """Intra-host traffic should not slow cross-host traffic."""
    net = make_net()
    cross = net.start_flow(0, 4, GB)
    intra = net.start_flow(1, 2, GB)
    net.run()
    assert cross.finish_time == pytest.approx(cross_t(net, GB))
    assert intra.finish_time == pytest.approx(
        GB / net.cluster.spec.intra_host_bandwidth
    )
