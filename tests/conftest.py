"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mesh import DeviceMesh
from repro.sim.cluster import Cluster, ClusterSpec


@pytest.fixture
def cluster4x4() -> Cluster:
    """The paper's testbed shape: 4 hosts x 4 GPUs, 10 Gbps / NVLink."""
    return Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))


@pytest.fixture
def cluster_nolat() -> Cluster:
    """4x4 cluster with zero link latencies (clean timing arithmetic)."""
    return Cluster(
        ClusterSpec(
            n_hosts=4,
            devices_per_host=4,
            inter_host_latency=0.0,
            intra_host_latency=0.0,
        )
    )


@pytest.fixture
def two_meshes(cluster4x4):
    """Disjoint (2,4) source and destination meshes."""
    src = DeviceMesh.from_hosts(cluster4x4, [0, 1])
    dst = DeviceMesh.from_hosts(cluster4x4, [2, 3])
    return src, dst


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
