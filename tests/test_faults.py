"""Fault model + fault-tolerant network: unit tests.

Covers the FaultSchedule data model (windows, seeded generation,
deterministic per-flow draws), the RetryPolicy, and the Network's
failure semantics: degradation, flaps (mid-flight kill and fast-fail),
drop-at-delivery, timeouts, retries with backoff, abandonment, and the
trace statuses.
"""

import pytest

from repro.sim import GB, Cluster, ClusterSpec, Network
from repro.sim.faults import (
    DegradedWindow,
    FaultReport,
    FaultSchedule,
    FlapWindow,
    RetryPolicy,
    StragglerWindow,
)


def make_net(faults=None, policy=None, **kw) -> Network:
    defaults = dict(
        n_hosts=4,
        devices_per_host=4,
        inter_host_latency=0.0,
        intra_host_latency=0.0,
    )
    defaults.update(kw)
    return Network(
        Cluster(ClusterSpec(**defaults)), faults=faults, retry_policy=policy
    )


def cross_t(net: Network, nbytes: float) -> float:
    return nbytes / net.cluster.spec.inter_host_bandwidth


# ----------------------------------------------------------------------
# FaultSchedule data model
# ----------------------------------------------------------------------
def test_window_validation():
    with pytest.raises(ValueError, match="duration"):
        FlapWindow(host=0, start=0.0, duration=0.0)
    with pytest.raises(ValueError, match="factor"):
        DegradedWindow(host=0, start=0.0, duration=1.0, factor=1.5)
    with pytest.raises(ValueError, match="slowdown"):
        StragglerWindow(stage=0, start=0.0, duration=1.0, slowdown=0.5)
    with pytest.raises(ValueError, match="drop_rate"):
        FaultSchedule(drop_rate=1.0)


def test_nic_factor_and_host_down():
    fs = FaultSchedule(
        seed=0,
        degradations=(
            DegradedWindow(host=1, start=1.0, duration=2.0, factor=0.5),
            DegradedWindow(host=1, start=2.0, duration=2.0, factor=0.5),
        ),
        flaps=(FlapWindow(host=2, start=5.0, duration=1.0),),
    )
    assert fs.nic_factor(1, 0.5) == 1.0
    assert fs.nic_factor(1, 1.5) == 0.5
    assert fs.nic_factor(1, 2.5) == 0.25  # overlapping windows compound
    assert fs.nic_factor(1, 3.5) == 0.5
    assert fs.nic_factor(1, 4.5) == 1.0
    assert fs.host_down(2, 5.5) and not fs.host_down(2, 6.0)
    assert fs.nic_factor(2, 5.5) == 0.0
    assert fs.host_down_during(2, 4.0, 5.5)
    assert not fs.host_down_during(2, 6.0, 7.0)
    assert fs.boundaries() == (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
    assert fs.horizon() == 6.0


def test_mean_nic_factor_time_average():
    fs = FaultSchedule(
        seed=0,
        degradations=(DegradedWindow(host=0, start=0.0, duration=5.0, factor=0.5),),
    )
    # Half speed for half of a 10s horizon -> 0.75 average.
    assert fs.mean_nic_factor(0, horizon=10.0) == pytest.approx(0.75)
    assert fs.mean_nic_factor(1, horizon=10.0) == 1.0
    # Default horizon = end of last window.
    assert fs.mean_nic_factor(0) == pytest.approx(0.5)


def test_generate_is_replayable():
    a = FaultSchedule.generate(seed=42, n_hosts=8, horizon=10.0, drop_rate=0.1)
    b = FaultSchedule.generate(seed=42, n_hosts=8, horizon=10.0, drop_rate=0.1)
    assert a == b
    c = FaultSchedule.generate(seed=43, n_hosts=8, horizon=10.0, drop_rate=0.1)
    assert a != c
    for w in a.degradations + a.flaps:
        assert 0 <= w.host < 8
        assert 0.0 <= w.start <= 10.0


def test_should_drop_deterministic_and_rate():
    fs = FaultSchedule(seed=3, drop_rate=0.3)
    draws = [fs.should_drop(i, 1) for i in range(2000)]
    assert draws == [fs.should_drop(i, 1) for i in range(2000)]
    rate = sum(draws) / len(draws)
    assert 0.25 < rate < 0.35
    assert not FaultSchedule(seed=3, drop_rate=0.0).should_drop(0, 1)


def test_retry_policy_backoff():
    p = RetryPolicy(max_attempts=3, backoff_base=1.0, backoff_factor=2.0, jitter=0.0)
    assert p.backoff(1, "k") == 1.0
    assert p.backoff(2, "k") == 2.0
    assert p.backoff(3, "k") == 4.0
    assert not p.exhausted(2) and p.exhausted(3)
    j = RetryPolicy(jitter=0.5, backoff_base=1.0, backoff_factor=1.0)
    d1, d2 = j.backoff(1, "a"), j.backoff(1, "b")
    assert d1 != d2  # different keys de-synchronize
    assert j.backoff(1, "a") == d1  # but deterministically
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)


def test_fault_report_status():
    with pytest.raises(ValueError, match="status"):
        FaultReport(status="weird")
    r = FaultReport(status="recovered", n_faults=2, n_retries=2)
    assert r.recovered and not r.fatal


# ----------------------------------------------------------------------
# Network under faults
# ----------------------------------------------------------------------
def test_degraded_link_slows_flow():
    fs = FaultSchedule(
        seed=0,
        degradations=(DegradedWindow(host=0, start=0.0, duration=100.0, factor=0.5),),
    )
    net = make_net(faults=fs)
    f = net.start_flow(0, 4, GB)
    net.run()
    assert f.finish_time == pytest.approx(2 * cross_t(net, GB))
    assert net.fault_report().status == "clean"  # degradation is not a fault event


def test_degradation_window_boundary_mid_flight():
    # First half at full speed, then the NIC halves: t = 0.5*T + 0.5*T*2.
    T = cross_t(make_net(), GB)
    fs = FaultSchedule(
        seed=0,
        degradations=(
            DegradedWindow(host=0, start=T / 2, duration=100.0, factor=0.5),
        ),
    )
    net = make_net(faults=fs)
    f = net.start_flow(0, 4, GB)
    net.run()
    assert f.finish_time == pytest.approx(T / 2 + T)


def test_flap_kills_mid_flight_and_retries():
    T = cross_t(make_net(), GB)
    fs = FaultSchedule(seed=0, flaps=(FlapWindow(host=1, start=T / 2, duration=T),))
    net = make_net(
        faults=fs, policy=RetryPolicy(max_attempts=20, backoff_base=T / 4, jitter=0.0)
    )
    done = []
    f = net.start_flow(0, 4, GB, on_complete=lambda fl: done.append(fl))
    net.run()
    assert done and f.attempts > 1 and not f.abandoned
    assert f.finish_time > 1.5 * T  # flap + full re-transfer
    statuses = [r.status for r in net.trace if r.flow_id == f.flow_id]
    assert statuses[0] == "failed" and statuses[-1] == "retried"
    rep = net.fault_report()
    assert rep.recovered and rep.n_retries >= 1 and rep.added_latency > 0
    assert any(i.kind == "nic-flap" for i in rep.incidents)


def test_fast_fail_while_nic_down():
    fs = FaultSchedule(seed=0, flaps=(FlapWindow(host=1, start=0.0, duration=0.5),))
    net = make_net(
        faults=fs, policy=RetryPolicy(max_attempts=20, backoff_base=0.05, jitter=0.0)
    )
    f = net.start_flow(0, 4, GB)
    net.run()
    assert not f.abandoned
    failed = [r for r in net.trace if r.status == "failed"]
    assert failed and all(r.start_time == -1.0 for r in failed)
    # Satellite: never-active records report queue-inclusive durations.
    assert all(r.duration >= 0.0 for r in failed)
    assert all(r.queued_time == r.duration for r in failed)
    ok = [r for r in net.trace if r.status == "retried"]
    assert len(ok) == 1 and ok[0].queued_time == pytest.approx(
        ok[0].start_time - ok[0].submit_time
    )


def test_abandonment_fires_on_abandon_not_on_complete():
    fs = FaultSchedule(seed=0, flaps=(FlapWindow(host=1, start=0.0, duration=1e9),))
    net = make_net(
        faults=fs, policy=RetryPolicy(max_attempts=3, backoff_base=1e-3, jitter=0.0)
    )
    completed, abandoned = [], []
    f = net.start_flow(
        0, 4, GB, on_complete=lambda fl: completed.append(fl),
        on_abandon=lambda fl: abandoned.append(fl),
    )
    net.run()
    assert f.abandoned and abandoned == [f] and not completed
    assert f.attempts == 3
    rep = net.fault_report()
    assert rep.fatal and rep.n_abandoned == 1
    assert [r.status for r in net.trace] == ["failed", "failed", "abandoned"]
    assert not any(i.resolved for i in rep.incidents if i.attempt == 3)


def test_drop_at_delivery_consumes_bandwidth_then_retries():
    # Find a seed whose first attempt drops (deterministic search).
    seed = next(
        s for s in range(100) if FaultSchedule(seed=s, drop_rate=0.5).should_drop(0, 1)
    )
    fs = FaultSchedule(seed=seed, drop_rate=0.5)
    T = cross_t(make_net(), GB)
    net = make_net(
        faults=fs, policy=RetryPolicy(max_attempts=30, backoff_base=T / 8, jitter=0.0)
    )
    f = net.start_flow(0, 4, GB)
    net.run()
    assert f.attempts > 1 and not f.abandoned
    assert f.finish_time > 2 * T  # at least one wasted full transfer
    assert net.wasted_bytes >= GB
    # Delivered bytes counted once despite the wasted attempt.
    assert net.bytes_cross_host == GB


def test_flow_timeout_cuts_stuck_transfer():
    # Degrade to 1% speed for 3T: without a timeout the flow crawls for
    # ~100T.  A 2T deadline (double the healthy transfer time) kills the
    # stuck attempt; the retry after the window runs at full speed.
    T = cross_t(make_net(), GB)
    fs = FaultSchedule(
        seed=0,
        degradations=(DegradedWindow(host=0, start=0.0, duration=3 * T, factor=0.01),),
    )
    net = make_net(
        faults=fs,
        policy=RetryPolicy(
            max_attempts=10, backoff_base=T, jitter=0.0, flow_timeout=2 * T
        ),
    )
    f = net.start_flow(0, 4, GB)
    net.run()
    rep = net.fault_report()
    assert any(i.kind == "timeout" for i in rep.incidents)
    assert not f.abandoned and f.finish_time < 10 * T


def test_healthy_network_unaffected_by_fault_plumbing():
    """faults=None must leave the simulation byte-identical to seed."""
    plain = make_net()
    f1 = plain.start_flow(0, 4, GB)
    f2 = plain.start_flow(1, 8, GB)
    plain.run()
    nofault = make_net(faults=FaultSchedule(seed=0))
    g1 = nofault.start_flow(0, 4, GB)
    g2 = nofault.start_flow(1, 8, GB)
    nofault.run()
    assert (f1.finish_time, f2.finish_time) == (g1.finish_time, g2.finish_time)
    assert plain.fault_report() is None
    assert nofault.fault_report().status == "clean"
    rec = [
        (r.flow_id, r.src, r.dst, r.submit_time, r.start_time, r.finish_time,
         r.status, r.attempts)
        for r in plain.trace
    ]
    rec2 = [
        (r.flow_id, r.src, r.dst, r.submit_time, r.start_time, r.finish_time,
         r.status, r.attempts)
        for r in nofault.trace
    ]
    assert rec == rec2


# ----------------------------------------------------------------------
# Satellites: mean_nic_factor coverage, categories(), shifted() clipping
# ----------------------------------------------------------------------
def test_mean_nic_factor_overlapping_windows():
    from repro.sim.faults import DegradedWindow

    fs = FaultSchedule(
        seed=0,
        degradations=(
            DegradedWindow(host=0, start=0.0, duration=4.0, factor=0.5),
            DegradedWindow(host=0, start=2.0, duration=4.0, factor=0.5),
        ),
    )
    # [0,2): 0.5, [2,4): 0.25 (windows compound), [4,6): 0.5, [6,8): 1.0
    expected = (2 * 0.5 + 2 * 0.25 + 2 * 0.5 + 2 * 1.0) / 8.0
    assert fs.mean_nic_factor(0, horizon=8.0) == pytest.approx(expected)


def test_mean_nic_factor_explicit_short_horizon():
    from repro.sim.faults import DegradedWindow

    fs = FaultSchedule(
        seed=0,
        degradations=(DegradedWindow(host=0, start=1.0, duration=9.0, factor=0.5),),
    )
    # A horizon shorter than the window's end only averages the part of
    # the window actually inside [0, horizon).
    assert fs.mean_nic_factor(0, horizon=2.0) == pytest.approx(
        (1.0 * 1.0 + 1.0 * 0.5) / 2.0
    )
    # Horizon entirely before the window: nothing degraded yet.
    assert fs.mean_nic_factor(0, horizon=1.0) == pytest.approx(1.0)


def test_fault_report_categories_zero_filled_and_stable():
    from repro.sim.faults import FAULT_CATEGORIES, FaultIncident

    empty = FaultReport(status="clean")
    assert tuple(empty.categories()) == FAULT_CATEGORIES
    assert all(v == 0 for v in empty.categories().values())

    rep = FaultReport(
        status="fatal",
        incidents=[
            FaultIncident(kind="nic-flap", where="flow 0", time=0.1),
            FaultIncident(kind="nic-down", where="flow 1", time=0.2),
            FaultIncident(kind="domain-down", where="flow 2", time=0.3),
            FaultIncident(kind="partition", where="flow 3", time=0.4),
            FaultIncident(kind="corruption", where="flow 4", time=0.5),
            FaultIncident(kind="host-down", where="flow 5", time=0.6),
            FaultIncident(kind="timeout", where="flow 6", time=0.7),
            FaultIncident(kind="dropped", where="flow 7", time=0.8),
            # Unknown kinds must not crash the summary; they land in "drop".
            FaultIncident(kind="haunted", where="flow 8", time=0.9),
        ],
    )
    cats = rep.categories()
    assert tuple(cats) == FAULT_CATEGORIES  # fixed key order
    assert cats["flap"] == 2
    assert cats["domain"] == 1
    assert cats["partition"] == 1
    assert cats["corruption"] == 1
    assert cats["host"] == 1
    assert cats["degraded"] == 1  # timeout = an attempt stretched past bound
    assert cats["drop"] == 2  # dropped + unknown kind
    assert cats["straggler"] == 0
    assert sum(cats.values()) == len(rep.incidents)


def test_shifted_clips_pre_origin_host_failures_to_one_event():
    from repro.sim.faults import HostFailure

    # Regression (satellite 1): a host that failed repeatedly before the
    # new origin used to re-emit one synthetic t=0 failure per past
    # event; the replan view then saw phantom duplicate strikes.
    fs = FaultSchedule(
        seed=0,
        host_failures=(
            HostFailure(1, 1.0),
            HostFailure(1, 2.0),
            HostFailure(2, 3.0),
            HostFailure(3, 9.0),
        ),
    )
    sh = fs.shifted(5.0)
    assert sh.host_failures == (
        HostFailure(1, 0.0),
        HostFailure(2, 0.0),
        HostFailure(3, 4.0),
    )
    # Idempotent on the already-shifted view.
    assert sh.shifted(0.0) is sh


def test_shifted_clips_domain_partition_and_corruption_windows():
    from repro.sim.faults import CorruptionWindow, DomainFailure, Partition

    fs = FaultSchedule(
        seed=0,
        domain_failures=(
            DomainFailure("rack0", (0, 1), 1.0, None),
            DomainFailure("rack0", (0, 1), 2.0, None),  # dup pre-origin strike
            DomainFailure("rack1", (2, 3), 4.0, 4.0),
        ),
        partitions=(
            Partition((0,), (2,), 1.0, 2.0),  # fully past -> dropped
            Partition((1,), (3,), 4.0, 4.0),  # straddles -> clipped
        ),
        corruptions=(CorruptionWindow(host=2, start=6.0, duration=2.0, rate=0.5),),
    )
    sh = fs.shifted(5.0)
    # Permanent domain failures collapse to one t=0 event per domain.
    assert sh.domain_failures == (
        DomainFailure("rack0", (0, 1), 0.0, None),
        DomainFailure("rack1", (2, 3), 0.0, 3.0),
    )
    assert sh.partitions == (Partition((1,), (3,), 0.0, 3.0),)
    assert sh.corruptions == (CorruptionWindow(host=2, start=1.0, duration=2.0, rate=0.5),)
