"""Unit tests for DeviceMesh."""

import pytest

from repro.core.mesh import DeviceMesh
from repro.sim.cluster import Cluster, ClusterSpec


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))


def test_from_hosts_default_shape(cluster):
    m = DeviceMesh.from_hosts(cluster, [0, 1])
    assert m.shape == (2, 4)
    assert m.devices == (0, 1, 2, 3, 4, 5, 6, 7)
    assert m.hosts == (0, 1)


def test_from_hosts_partial_devices(cluster):
    m = DeviceMesh.from_hosts(cluster, [2, 3], devices_per_host=2)
    assert m.shape == (2, 2)
    assert m.devices == (8, 9, 12, 13)


def test_explicit_grid(cluster):
    m = DeviceMesh(cluster, [[0, 1], [2, 3]])
    assert m.shape == (2, 2)
    assert m.device_at(1, 0) == 2
    assert m.coords_of(3) == (1, 1)


def test_reshape_row_major(cluster):
    m = DeviceMesh.from_hosts(cluster, [0]).reshaped(2, 2)
    assert m.grid == ((0, 1), (2, 3))
    assert m.shape == (2, 2)


def test_reshape_bad_size(cluster):
    m = DeviceMesh.from_hosts(cluster, [0])
    with pytest.raises(ValueError):
        m.reshaped(3, 2)


def test_duplicate_devices_rejected(cluster):
    with pytest.raises(ValueError, match="duplicate"):
        DeviceMesh(cluster, [[0, 1], [1, 2]])


def test_ragged_grid_rejected(cluster):
    with pytest.raises(ValueError, match="equal length"):
        DeviceMesh(cluster, [[0, 1], [2]])


def test_empty_grid_rejected(cluster):
    with pytest.raises(ValueError):
        DeviceMesh(cluster, [])
    with pytest.raises(ValueError):
        DeviceMesh(cluster, [[]])


def test_unknown_device_rejected(cluster):
    with pytest.raises(KeyError):
        DeviceMesh(cluster, [[0, 99]])


def test_coords_unknown_device(cluster):
    m = DeviceMesh(cluster, [[0, 1]])
    with pytest.raises(KeyError):
        m.coords_of(5)


def test_host_of(cluster):
    m = DeviceMesh.from_hosts(cluster, [1, 2])
    assert m.host_of(4) == 1
    assert m.host_of(8) == 2
    with pytest.raises(KeyError):
        m.host_of(0)  # not in mesh, even though it exists in the cluster


def test_disjoint_from(cluster):
    a = DeviceMesh.from_hosts(cluster, [0, 1])
    b = DeviceMesh.from_hosts(cluster, [2, 3])
    c = DeviceMesh.from_hosts(cluster, [1, 2])
    assert a.disjoint_from(b)
    assert not a.disjoint_from(c)


def test_mesh_spanning_hosts_partially(cluster):
    """A mesh row need not align with a host (2,2 on one host)."""
    m = DeviceMesh(cluster, [[0, 1], [2, 3]])
    assert m.hosts == (0,)


def test_equality_and_hash(cluster):
    a = DeviceMesh(cluster, [[0, 1]])
    b = DeviceMesh(cluster, [[0, 1]])
    c = DeviceMesh(cluster, [[1, 0]])
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_n_devices(cluster):
    assert DeviceMesh.from_hosts(cluster, [0, 1, 2]).n_devices == 12


def test_from_hosts_validation(cluster):
    with pytest.raises(ValueError):
        DeviceMesh.from_hosts(cluster, [])
    with pytest.raises(ValueError):
        DeviceMesh.from_hosts(cluster, [0], devices_per_host=5)
    with pytest.raises(ValueError):
        DeviceMesh.from_hosts(cluster, [0], devices_per_host=0)
