"""Tests for ``repro-lint`` (``repro.analysis.lint``).

Each rule is exercised on minimal snippets (positive and negative), the
waiver pragma is pinned down, and — the point of the whole exercise —
``src/repro`` itself must lint clean.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source

REPO_SRC = Path(__file__).parents[1] / "src" / "repro"


def codes(source: str, **kwargs) -> list[str]:
    return [d.code for d in lint_source(source, **kwargs)]


# ----------------------------------------------------------------------
# L001: wall clock
# ----------------------------------------------------------------------
class TestWallClock:
    def test_time_time(self):
        assert codes("import time\nt = time.time()\n") == ["L001"]

    def test_perf_counter(self):
        assert codes("import time\nt = time.perf_counter()\n") == ["L001"]

    def test_from_import_alias(self):
        src = "from time import monotonic as now\nt = now()\n"
        assert codes(src) == ["L001"]

    def test_datetime_now(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert codes(src) == ["L001"]

    def test_time_sleep_is_fine(self):
        assert codes("import time\ntime.sleep(0)\n") == []

    def test_unrelated_now_is_fine(self):
        assert codes("def now():\n    return 0\n\nt = now()\n") == []


# ----------------------------------------------------------------------
# L002: unseeded randomness
# ----------------------------------------------------------------------
class TestRandomness:
    def test_global_random_draw(self):
        assert codes("import random\nx = random.random()\n") == ["L002"]

    def test_unseeded_random_instance(self):
        assert codes("import random\nr = random.Random()\n") == ["L002"]

    def test_seeded_random_instance_ok(self):
        assert codes("import random\nr = random.Random(42)\n") == []

    def test_unseeded_numpy_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(src) == ["L002"]

    def test_seeded_numpy_rng_ok(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert codes(src) == []

    def test_global_numpy_draw(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert codes(src) == ["L002"]

    def test_seeding_helpers_ok(self):
        assert codes("import random\nrandom.seed(0)\n") == []


# ----------------------------------------------------------------------
# L003: set iteration
# ----------------------------------------------------------------------
class TestSetIteration:
    def test_for_over_set_literal(self):
        assert codes("for x in {1, 2}:\n    print(x)\n") == ["L003"]

    def test_for_over_set_call(self):
        assert codes("for x in set([1, 2]):\n    pass\n") == ["L003"]

    def test_for_over_tracked_set_name(self):
        src = "s = {1, 2}\nfor x in s:\n    pass\n"
        assert codes(src) == ["L003"]

    def test_comprehension_over_set(self):
        src = "s = set()\nout = [x for x in s]\n"
        assert codes(src) == ["L003"]

    def test_set_union_still_a_set(self):
        src = "a = {1}\nb = {2}\nfor x in a | b:\n    pass\n"
        assert codes(src) == ["L003"]

    def test_sorted_set_is_fine(self):
        src = "s = {1, 2}\nfor x in sorted(s):\n    pass\n"
        assert codes(src) == []

    def test_reassigned_to_list_is_fine(self):
        src = "s = {1, 2}\ns = sorted(s)\nfor x in s:\n    pass\n"
        assert codes(src) == []

    def test_list_iteration_is_fine(self):
        assert codes("for x in [1, 2]:\n    pass\n") == []

    def test_set_comprehension_rebuilds_a_set(self):
        # Order cannot leak out of a set comprehension: not flagged.
        src = "s = {1, 2}\nt = {x + 1 for x in s}\n"
        assert codes(src) == []

    def test_function_scope_is_tracked_separately(self):
        src = (
            "s = {1}\n"
            "def f():\n"
            "    s = [1]\n"
            "    for x in s:\n"
            "        pass\n"
        )
        assert codes(src) == []


# ----------------------------------------------------------------------
# Waivers and filtering
# ----------------------------------------------------------------------
class TestWaiversAndFilters:
    def test_same_line_waiver(self):
        src = (
            "import time\n"
            "t = time.perf_counter()  # repro-lint: allow[L001] telemetry\n"
        )
        assert codes(src) == []

    def test_preceding_line_waiver(self):
        src = (
            "import time\n"
            "# repro-lint: allow[L001] telemetry\n"
            "t = time.perf_counter()\n"
        )
        assert codes(src) == []

    def test_waiver_is_code_specific(self):
        src = (
            "import time\n"
            "t = time.time()  # repro-lint: allow[L002] wrong code\n"
        )
        assert codes(src) == ["L001"]

    def test_multi_code_waiver(self):
        src = (
            "import time, random\n"
            "t = time.time() + random.random()  "
            "# repro-lint: allow[L001, L002] fixture\n"
        )
        assert codes(src) == []

    def test_codes_filter(self):
        src = "import time, random\nt = time.time()\nx = random.random()\n"
        assert codes(src, codes=["L001"]) == ["L001"]

    def test_findings_carry_location(self):
        (diag,) = lint_source("import time\nt = time.time()\n", path="mod.py")
        assert diag.file == "mod.py"
        assert diag.line == 2

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n")


# ----------------------------------------------------------------------
# The repository's own source must be clean
# ----------------------------------------------------------------------
class TestRepoClean:
    def test_src_repro_lints_clean(self):
        report = lint_paths([REPO_SRC])
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)
