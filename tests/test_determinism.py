"""Determinism pins: identical inputs must yield identical artifacts.

The repo promises byte-identical plans and traces for identical inputs
(that is what makes golden-number tests meaningful); ``repro-lint``
bans the usual leaks statically, and these tests pin the dynamic side:
compiling twice from scratch, simulating twice, and the DFS scheduler's
node-expansion budget (which replaced a wall-clock deadline precisely
so results cannot depend on CPU speed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import CompileContext, compile_resharding
from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.scheduling.algorithms import dfs_schedule, load_balance_schedule
from repro.scheduling.problem import SchedulingProblem
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.faults import FaultSchedule


def make_task(shape=(32, 32, 32), src_spec="RS0R", dst_spec="S0RR"):
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, (0, 1))
    dst = DeviceMesh.from_hosts(c, (2, 3))
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=np.float32)


def compile_fresh(strategy="broadcast", faults=None):
    return compile_resharding(
        make_task(),
        CompileContext(strategy=strategy, cache=None, faults=faults),
    )


def op_fingerprint(plan):
    return [repr(op) for op in plan.ops]


class TestCompileDeterminism:
    @pytest.mark.parametrize("strategy", ["send_recv", "broadcast", "allgather"])
    def test_two_fresh_compiles_emit_identical_plans(self, strategy):
        a = compile_fresh(strategy).plan
        b = compile_fresh(strategy).plan
        assert op_fingerprint(a) == op_fingerprint(b)
        if a.schedule is not None:
            assert a.schedule.assignment == b.schedule.assignment
            assert a.schedule.order == b.schedule.order

    def test_auto_strategy_scores_identically(self):
        a = compile_fresh("auto")
        b = compile_fresh("auto")
        assert a.plan.strategy == b.plan.strategy
        assert op_fingerprint(a.plan) == op_fingerprint(b.plan)

    def test_compile_under_faults_is_deterministic(self):
        faults = FaultSchedule.generate(seed=3, n_hosts=4, horizon=1.0)
        a = compile_fresh("broadcast", faults=faults).plan
        b = compile_fresh("broadcast", faults=faults).plan
        assert op_fingerprint(a) == op_fingerprint(b)
        assert [repr(f) for f in a.fallbacks] == [repr(f) for f in b.fallbacks]


class TestSimulationDeterminism:
    def test_two_simulations_agree_exactly(self):
        ra = simulate_plan(compile_fresh().plan)
        rb = simulate_plan(compile_fresh().plan)
        assert ra.total_time == rb.total_time
        assert ra.op_finish == rb.op_finish
        assert ra.task_finish == rb.task_finish
        assert ra.bytes_cross_host == rb.bytes_cross_host

    def test_simulation_under_faults_agrees_exactly(self):
        faults = FaultSchedule.generate(seed=11, n_hosts=4, horizon=2.0)
        ra = simulate_plan(compile_fresh().plan, faults=faults)
        rb = simulate_plan(compile_fresh().plan, faults=faults)
        assert ra.total_time == rb.total_time
        assert ra.op_finish == rb.op_finish
        assert ra.failed_ops == rb.failed_ops


class TestDfsNodeBudget:
    def make_problem(self):
        return SchedulingProblem.from_resharding(make_task())

    def test_same_budget_same_schedule(self):
        p = self.make_problem()
        a = dfs_schedule(p, time_budget=0.05)
        b = dfs_schedule(p, time_budget=0.05)
        assert a.assignment == b.assignment
        assert a.order == b.order
        assert a.makespan == b.makespan

    def test_tiny_budget_still_returns_valid_schedule(self):
        p = self.make_problem()
        s = dfs_schedule(p, time_budget=1e-9)
        task_ids = {t.task_id for t in p.tasks}
        assert set(s.assignment) == task_ids
        assert set(s.order) == task_ids

    def test_budget_never_worse_than_load_balance(self):
        p = self.make_problem()
        baseline = load_balance_schedule(p)
        s = dfs_schedule(p, time_budget=0.05)
        assert s.makespan <= baseline.makespan + 1e-12
