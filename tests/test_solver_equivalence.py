"""Scalar vs vector rate-solver bit-equality, property-based.

The refactor's core promise: :class:`~repro.sim.solver.VectorSolver`
(and the adaptive default that switches to it) computes *bit-identical*
rates to the original progressive-filling loop now preserved in
:class:`~repro.sim.solver.ScalarSolver` — same IEEE-754 divisions, same
port tie-breaking, same subtraction order — so swapping the default
causes zero drift anywhere (goldens, determinism digests, traces).

These tests drive seeded random flow programs over every fabric in the
topology zoo and compare full telemetry digests (which hash every flow
span, rate-dependent finish time included) across backends.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.network import Network
from repro.sim.solver import (
    VECTOR_THRESHOLD,
    AdaptiveSolver,
    ScalarSolver,
    VectorSolver,
    make_solver,
)
from repro.sim.topology import (
    FatTreeTopology,
    IslandTopology,
    RailOptimizedTopology,
    TorusTopology,
    TwoTierTopology,
)

# Every fabric in the zoo, shaped for a 6-host x 2-device cluster.  The
# island fabric is one island so every device pair stays routable.
FABRICS = {
    "default": None,
    "two_tier": TwoTierTopology(),
    "fat_tree": FatTreeTopology(hosts_per_leaf=2, oversubscription=2.0),
    "torus": TorusTopology(rows=2, cols=3),
    "rail": RailOptimizedTopology(),
    "island": IslandTopology(island_size=6),
}


def make_cluster(topology) -> Cluster:
    return Cluster(
        ClusterSpec(n_hosts=6, devices_per_host=2, topology=topology)
    )


def run_program(cluster: Cluster, solver, seed: int, n_flows: int = 48) -> str:
    """Run one seeded random flow program; return the telemetry digest.

    The program deliberately includes duplicate sizes (rate ties), tiny
    and large payloads (completion reordering), and staggered starts
    (add/remove churn between allocations) — the cases where a subtly
    different solver would diverge.
    """
    rng = random.Random(seed)
    net = Network(cluster, solver=solver)
    n_dev = len(cluster.devices)
    sizes = [1e3, 1e3, 5e4, 1e6, 1e6, 3e7]
    for _ in range(n_flows):
        src = rng.randrange(n_dev)
        dst = rng.randrange(n_dev)
        if src == dst:
            dst = (dst + 1) % n_dev
        net.start_flow(
            src,
            dst,
            rng.choice(sizes),
            extra_latency=rng.choice([0.0, 0.0, 1e-4, 2.5e-4]),
            tag=f"f{net._next_id}",
        )
    net.run()
    assert not net._active
    return net.bus.digest()


@pytest.mark.parametrize("fabric", sorted(FABRICS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_scalar_vector_bit_equal(fabric: str, seed: int) -> None:
    cluster = make_cluster(FABRICS[fabric])
    digests = {
        name: run_program(cluster, name, seed)
        for name in ("scalar", "vector", "adaptive")
    }
    assert digests["vector"] == digests["scalar"], fabric
    assert digests["adaptive"] == digests["scalar"], fabric


def test_adaptive_crossover_bit_equal() -> None:
    """Equality must hold when adaptive crosses to vector mid-run."""
    cluster = make_cluster(None)
    n_flows = VECTOR_THRESHOLD + 64
    scalar = run_program(cluster, "scalar", seed=7, n_flows=n_flows)
    vector = run_program(cluster, "vector", seed=7, n_flows=n_flows)
    adaptive = run_program(cluster, "adaptive", seed=7, n_flows=n_flows)
    assert vector == scalar
    assert adaptive == scalar


def test_default_solver_is_adaptive() -> None:
    net = Network(make_cluster(None))
    assert isinstance(net.solver, AdaptiveSolver)
    assert make_solver(None).name == "adaptive"


def test_make_solver_spellings() -> None:
    assert isinstance(make_solver("scalar"), ScalarSolver)
    assert isinstance(make_solver("vector"), VectorSolver)
    assert isinstance(make_solver("adaptive"), AdaptiveSolver)
    inst = VectorSolver()
    assert make_solver(inst) is inst
    with pytest.raises(ValueError):
        make_solver("quantum")


def test_solver_instance_not_shared() -> None:
    """Each Network gets its own solver state (attach binds, not copies)."""
    cluster = make_cluster(None)
    a = Network(cluster, solver="vector")
    b = Network(cluster, solver="vector")
    assert a.solver is not b.solver
