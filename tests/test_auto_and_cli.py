"""Tests for the auto strategy and the command-line interface."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.sim.cluster import Cluster, ClusterSpec
from repro.strategies import AutoStrategy, BroadcastStrategy, make_strategy


def make_task(src_spec="RS0R", dst_spec="S0RR", shape=(64, 64, 64)):
    c = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(c, [0, 1])
    dst = DeviceMesh.from_hosts(c, [2, 3])
    return ReshardingTask(shape, src, src_spec, dst, dst_spec, dtype=np.float32)


# ----------------------------------------------------------------------
# AutoStrategy
# ----------------------------------------------------------------------
def test_auto_picks_fastest_candidate():
    task = make_task()
    auto = AutoStrategy()
    plan = auto.plan(task)
    t_auto = simulate_plan(plan).total_time
    for name in ("send_recv", "allgather", "broadcast"):
        t = simulate_plan(make_strategy(name).plan(task)).total_time
        assert t_auto <= t + 1e-12
    assert len(auto.last_scores) == 3


def test_auto_registered_in_registry():
    assert isinstance(make_strategy("auto"), AutoStrategy)


def test_auto_custom_candidates():
    auto = AutoStrategy(candidates=[BroadcastStrategy(scheduler="naive")])
    plan = auto.plan(make_task())
    assert plan.strategy == "broadcast"
    with pytest.raises(ValueError):
        AutoStrategy(candidates=[])


def test_auto_prefers_broadcast_on_replication_heavy_case():
    """For large replicated messages the §3.1-optimal broadcast wins."""
    task = make_task("RRR", "RRR", shape=(1 << 26, 1, 1))  # 256 MiB
    auto = AutoStrategy()
    plan = auto.plan(task)
    assert plan.strategy == "broadcast"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_reshard(capsys):
    rc = main([
        "reshard", "--shape", "64,64,16", "--src-spec", "RS0R",
        "--dst-spec", "S0RR", "--strategy", "broadcast",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "broadcast" in out and "latency" in out


def test_cli_reshard_all_with_verify(capsys):
    rc = main([
        "reshard", "--shape", "32,32,8", "--src-spec", "S0RR",
        "--dst-spec", "RS1R", "--strategy", "all", "--verify",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "verified=True" in out
    # signal carries no data, so it must not print a verification flag
    for line in out.splitlines():
        if line.strip().startswith("signal"):
            assert "verified" not in line


def test_cli_reshard_bad_mesh(capsys):
    rc = main([
        "reshard", "--shape", "8,8", "--src-spec", "S0R", "--dst-spec", "RR",
        "--src-mesh", "2", "--dst-mesh", "2,2",
    ])
    assert rc == 2


def test_cli_e2e_small(capsys):
    rc = main(["e2e", "--model", "gpt1", "--method", "signal"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "TFLOPS/GPU" in out


def test_cli_experiment_table1(capsys):
    rc = main(["experiment", "E3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "216M" in out


def test_cli_bad_shape():
    with pytest.raises(SystemExit):
        main(["reshard", "--shape", "abc", "--src-spec", "R", "--dst-spec", "R"])


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])
