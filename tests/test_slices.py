"""Unit and property tests for the slice algebra (tile grids, regions)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.mesh import DeviceMesh
from repro.core.slices import (
    TileGrid,
    region_intersection,
    region_shape,
    region_size,
    relative_region,
    split_offsets,
)
from repro.core.spec import ShardingSpec
from repro.sim.cluster import Cluster, ClusterSpec


@pytest.fixture
def mesh24():
    c = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
    return DeviceMesh.from_hosts(c, [0, 1])


# ----------------------------------------------------------------------
# split_offsets
# ----------------------------------------------------------------------
def test_split_even():
    assert split_offsets(8, 4) == (0, 2, 4, 6, 8)


def test_split_uneven_matches_numpy_array_split():
    offs = split_offsets(10, 3)
    assert offs == (0, 4, 7, 10)
    parts = np.array_split(np.arange(10), 3)
    assert [len(p) for p in parts] == [offs[i + 1] - offs[i] for i in range(3)]


def test_split_single():
    assert split_offsets(5, 1) == (0, 5)


def test_split_invalid():
    with pytest.raises(ValueError):
        split_offsets(2, 3)
    with pytest.raises(ValueError):
        split_offsets(2, 0)


@given(st.integers(1, 100), st.integers(1, 10))
def test_split_property(size, n):
    if n > size:
        n = size
    offs = split_offsets(size, n)
    assert len(offs) == n + 1
    assert offs[0] == 0 and offs[-1] == size
    widths = [offs[i + 1] - offs[i] for i in range(n)]
    assert all(w > 0 for w in widths)
    assert max(widths) - min(widths) <= 1
    assert sorted(widths, reverse=True) == widths  # big parts first


# ----------------------------------------------------------------------
# regions
# ----------------------------------------------------------------------
def test_region_intersection_basic():
    a = ((0, 4), (0, 4))
    b = ((2, 6), (1, 3))
    assert region_intersection(a, b) == ((2, 4), (1, 3))


def test_region_intersection_empty():
    assert region_intersection(((0, 2),), ((2, 4),)) is None
    assert region_intersection(((0, 2), (0, 9)), ((0, 2), (9, 10))) is None


def test_region_intersection_rank_mismatch():
    with pytest.raises(ValueError):
        region_intersection(((0, 1),), ((0, 1), (0, 1)))


def test_region_size_and_shape():
    r = ((1, 4), (0, 2), (5, 6))
    assert region_shape(r) == (3, 2, 1)
    assert region_size(r) == 6


def test_relative_region():
    outer = ((10, 20), (0, 8))
    inner = ((12, 15), (4, 8))
    assert relative_region(outer, inner) == ((2, 5), (4, 8))


def test_relative_region_not_contained():
    with pytest.raises(ValueError):
        relative_region(((0, 4),), ((2, 6),))


# ----------------------------------------------------------------------
# TileGrid
# ----------------------------------------------------------------------
def test_tile_grid_s0(mesh24):
    g = TileGrid((8, 6), ShardingSpec.parse("S0R"), mesh24)
    assert g.shards == (2, 1)
    assert g.tile_region((0, 0)) == ((0, 4), (0, 6))
    assert g.tile_region((1, 0)) == ((4, 8), (0, 6))


def test_tile_grid_device_mapping(mesh24):
    g = TileGrid((8, 8), ShardingSpec.parse("S0S1"), mesh24)
    # device (i, j) holds row-block i, col-block j
    assert g.device_tile_index(0) == (0, 0)
    assert g.device_tile_index(5) == (1, 1)  # device 5 = coords (1,1)
    assert g.device_region(5) == ((4, 8), (2, 4))


def test_tile_grid_s01_mixed_radix(mesh24):
    g = TileGrid((16,), ShardingSpec.parse("S01"), mesh24)
    # S^{01}: index = i * m2 + j
    assert g.device_tile_index(mesh24.device_at(0, 3)) == (3,)
    assert g.device_tile_index(mesh24.device_at(1, 0)) == (4,)


def test_tile_grid_s10_reversed_axes(mesh24):
    g = TileGrid((16,), ShardingSpec.parse("S10"), mesh24)
    # S^{10}: index = j * m1 + i
    assert g.device_tile_index(mesh24.device_at(1, 0)) == (1,)
    assert g.device_tile_index(mesh24.device_at(0, 3)) == (6,)


def test_tile_replicas(mesh24):
    g = TileGrid((8,), ShardingSpec.parse("S0"), mesh24)
    assert g.tile_replicas((0,)) == (0, 1, 2, 3)
    assert g.tile_replicas((1,)) == (4, 5, 6, 7)


def test_tile_replicas_full_replication(mesh24):
    g = TileGrid((8,), ShardingSpec.parse("R"), mesh24)
    assert g.tile_replicas((0,)) == tuple(range(8))


def test_tile_replicas_unknown_tile(mesh24):
    g = TileGrid((8,), ShardingSpec.parse("S0"), mesh24)
    with pytest.raises(IndexError):
        g.tile_region((2,))


def test_all_tile_indices(mesh24):
    g = TileGrid((8, 8), ShardingSpec.parse("S0S1"), mesh24)
    assert list(g.all_tile_indices()) == [
        (0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1), (1, 2), (1, 3)
    ]


def test_uneven_grid(mesh24):
    g = TileGrid((10,), ShardingSpec.parse("S1"), mesh24)
    widths = [
        g.tile_region((k,))[0][1] - g.tile_region((k,))[0][0] for k in range(4)
    ]
    assert widths == [3, 3, 2, 2]


# ----------------------------------------------------------------------
# Properties: tiles partition the tensor; replicas partition the mesh
# ----------------------------------------------------------------------
SPECS_3D = ["RRR", "S0RR", "RS1R", "S01RR", "S0S1R", "RS10R", "RRS0", "S1RS0"]


@pytest.mark.parametrize("spec", SPECS_3D)
def test_tiles_partition_tensor(mesh24, spec):
    shape = (8, 8, 8)
    g = TileGrid(shape, ShardingSpec.parse(spec), mesh24)
    covered = np.zeros(shape, dtype=int)
    for idx in g.all_tile_indices():
        r = g.tile_region(idx)
        covered[tuple(slice(lo, hi) for lo, hi in r)] += 1
    assert (covered == 1).all()


@pytest.mark.parametrize("spec", SPECS_3D)
def test_replica_sets_partition_devices(mesh24, spec):
    g = TileGrid((8, 8, 8), ShardingSpec.parse(spec), mesh24)
    seen = []
    for idx in g.all_tile_indices():
        seen.extend(g.tile_replicas(idx))
    assert sorted(seen) == sorted(mesh24.devices)


@pytest.mark.parametrize("spec", SPECS_3D)
def test_device_tile_consistency(mesh24, spec):
    """Every device's tile index lists the device among its replicas."""
    g = TileGrid((8, 8, 8), ShardingSpec.parse(spec), mesh24)
    for d in mesh24.devices:
        assert d in g.tile_replicas(g.device_tile_index(d))
