"""Legacy setup shim: lets `pip install -e .` work without the `wheel`
package (the metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
