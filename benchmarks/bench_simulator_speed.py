"""Simulator hot-path speed gates: solver, kernel, and re-simulation.

Three layers of the refactored hot path, each with an acceptance gate:

* **Solver** — the vectorized max-min backend must be >=5x faster than
  the preserved scalar loop on the 10k-flow churn benchmark while
  producing *bit-identical* rates (fingerprints compared, and persisted
  so drift is a CI failure).
* **Kernel + network end-to-end** — a seeded windowed flow program runs
  through the batched event loop on every backend; all three must
  produce one telemetry digest (persisted).
* **Re-simulation** — warm :func:`~repro.compiler.resim.resimulate`
  must cut >=30% of wall time off a cold ``simulate_plan`` on the
  fig5-style fan-out, and a warm resim cache must cut >=30% off the
  auto strategy's select pass.

Wall-clock numbers are printed (run with ``-s``) but never persisted:
``BENCH_simulator.json`` holds only deterministic payloads — flow
counts, simulated makespans, rate fingerprints, checkpoint/skip counts,
and the (asserted) gate booleans — so regenerating it on any machine
must reproduce the committed bytes.
"""

from __future__ import annotations

import gc
import hashlib
import random
import time
from typing import Any, Optional

import numpy as np
import pytest

from persist import persist_bench
from repro.compiler import CompileContext, compile_resharding
from repro.compiler.resim import ResimCache, reset_default_resim_cache, resimulate
from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.network import Flow, Network

FLOW_COUNTS = (1_000, 10_000, 100_000)
CHURN_ITERS = {1_000: 50, 10_000: 25, 100_000: 0}  # 100k: fingerprint only
N_DEV = 32  # 8 hosts x 4 devices


def _cluster() -> Cluster:
    return Cluster(ClusterSpec(n_hosts=8, devices_per_host=4))


def _inject(net: Network, rng: random.Random, nbytes: float = 1e6) -> None:
    """Register one random active flow directly with the solver."""
    src = rng.randrange(N_DEV)
    dst = rng.randrange(N_DEV)
    if src == dst:
        dst = (dst + 1) % N_DEV
    flow = Flow(
        flow_id=net._next_id,
        src=src,
        dst=dst,
        nbytes=nbytes,
        remaining=nbytes,
        ports=net._ports_for(src, dst),
        on_complete=None,
        tag="",
        submit_time=0.0,
        on_abandon=None,
        base_latency=0.0,
    )
    net._next_id += 1
    net._active[flow.flow_id] = flow
    net.solver.flow_added(flow)


def solver_churn(n_flows: int, solver: str, iters: int) -> tuple[str, float]:
    """(rate fingerprint, wall seconds) for the add/remove/solve hot loop.

    Mimics what completion events do: drop a handful of finished flows,
    admit replacements, re-solve.  The fingerprint hashes every
    (flow_id, rate) pair after the final solve — bit-equality across
    backends, machine-independent.
    """
    rng = random.Random(42)
    net = Network(_cluster(), solver=solver)
    for _ in range(n_flows):
        _inject(net, rng)
    t0 = time.perf_counter()
    net.solver.solve()
    for _ in range(iters):
        for _ in range(8):
            fid = next(iter(net._active))
            flow = net._active.pop(fid)
            net.solver.flow_removed(flow)
        for _ in range(8):
            _inject(net, rng)
        net.solver.solve()
    wall = time.perf_counter() - t0
    fp = hashlib.sha256(
        repr([(fid, f.rate) for fid, f in sorted(net._active.items())]).encode()
    ).hexdigest()
    return fp, wall


def windowed_program(solver: str, n_flows: int = 1_000) -> tuple[str, float, int, float]:
    """Run a staggered end-to-end program; return (digest, makespan, events, wall)."""
    rng = random.Random(7)
    net = Network(_cluster(), solver=solver)
    sizes = [1e4, 1e4, 2e5, 1e6]
    t0 = time.perf_counter()
    for i in range(n_flows):
        src = rng.randrange(N_DEV)
        dst = rng.randrange(N_DEV)
        if src == dst:
            dst = (dst + 1) % N_DEV
        net.start_flow(
            src,
            dst,
            rng.choice(sizes),
            extra_latency=(i // 64) * 2e-4,  # ~64-flow admission waves
            tag=f"f{i}",
        )
    makespan = net.run()
    wall = time.perf_counter() - t0
    assert not net._active
    return net.bus.digest(), makespan, net.loop.processed, wall


def fig5_task() -> ReshardingTask:
    c = _cluster()
    src = DeviceMesh.from_hosts(c, (0,))
    dst = DeviceMesh.from_hosts(c, tuple(range(1, 8)))
    return ReshardingTask((256, 128, 64), src, "RS0R", dst, "S0RR", dtype=np.float32)


def resim_workload() -> tuple[Any, ResimCache, dict[str, Any], float, float]:
    """Warm-vs-cold resim on the fig5 fan-out (best-of-3 wall times)."""
    plan = compile_resharding(
        fig5_task(), CompileContext(strategy="broadcast", cache=None, resim_cache=None)
    ).plan
    cold = simulate_plan(plan)
    cache = ResimCache()
    seeded = resimulate(plan, cache=cache)
    assert seeded.network.bus.digest() == cold.network.bus.digest()
    t_cold = min(_timed(lambda: simulate_plan(plan)) for _ in range(3))
    t_warm = min(_timed(lambda: resimulate(plan, cache=cache)) for _ in range(3))
    warm = resimulate(plan, cache=cache)
    stats = cache.stats()
    payload = {
        "n_tasks": len(plan.ops_by_task()),
        "checkpoints_stored": stats.checkpoints_stored,
        "warm_hits": stats.hits,
        "byte_identical": warm.network.bus.digest() == cold.network.bus.digest(),
        "makespan": cold.total_time,
    }
    return plan, cache, payload, t_cold, t_warm


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def select_pass_seconds(resim_cache: Optional[Any], reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        compiled = compile_resharding(
            fig5_task(),
            CompileContext(strategy="auto", cache=None, resim_cache=resim_cache),
        )
        secs = next(p.seconds for p in compiled.diagnostics.passes if p.name == "select")
        best = min(best, secs)
    return best


def payload(quick: bool = True) -> dict[str, Any]:
    """The full gate run; returns the deterministic artifact payload.

    The cyclic collector is paused for the timed sections: GC sweeps
    trigger on allocation count, so the executor that allocates more
    would otherwise be billed for collecting whatever heap earlier
    tests left behind — noise that scales with test order, not with
    the code under test.  Nothing wall-clock-derived is persisted
    either way.
    """
    gc.collect()
    gc.disable()
    try:
        return _payload_inner(quick)
    finally:
        gc.enable()
        gc.collect()


def _payload_inner(quick: bool) -> dict[str, Any]:
    out: dict[str, Any] = {"solver": {}, "end_to_end": {}, "resim": {}, "gates": {}}

    # ---- solver layer -------------------------------------------------
    walls: dict[tuple[int, str], float] = {}
    for n in FLOW_COUNTS:
        iters = CHURN_ITERS[n]
        fps = {}
        # Two interleaved repetitions where the speedup gate applies:
        # a CPU-frequency phase then hits both backends instead of
        # landing entirely on the (long) scalar run.
        for _rep in range(2 if iters else 1):
            for backend in ("scalar", "vector"):
                fp, wall = solver_churn(n, backend, iters)
                assert fps.setdefault(backend, fp) == fp, f"nondeterministic {backend}"
                key = (n, backend)
                walls[key] = min(walls.get(key, float("inf")), wall)
        for backend in ("scalar", "vector"):
            wall = walls[(n, backend)]
            updates = n * max(1, iters) / wall
            print(
                f"[solver] n={n:>6} {backend:<6} {wall * 1e3:8.1f}ms "
                f"{updates:12,.0f} flow-updates/s"
            )
        assert fps["vector"] == fps["scalar"], f"rate drift at {n} flows"
        out["solver"][str(n)] = {
            "fingerprint": fps["scalar"],
            "churn_iters": iters,
            "bit_identical": True,
        }
    speedup_10k = walls[(10_000, "scalar")] / walls[(10_000, "vector")]
    print(f"[solver] 10k-flow churn speedup: {speedup_10k:.1f}x (gate: >=5x)")

    # ---- kernel + network end-to-end ---------------------------------
    digests = {}
    for backend in ("scalar", "vector", "adaptive"):
        digest, makespan, events, wall = windowed_program(backend)
        digests[backend] = digest
        print(
            f"[e2e]    {backend:<8} {wall * 1e3:8.1f}ms wall, "
            f"{events / wall:10,.0f} events/s, makespan {makespan:.6f}s"
        )
    assert len(set(digests.values())) == 1, f"backend digests diverged: {digests}"
    out["end_to_end"] = {
        "n_flows": 1_000,
        "digest": digests["adaptive"],
        "makespan": makespan,
        "events": events,
        "backends_identical": True,
    }

    # ---- incremental re-simulation -----------------------------------
    _, _, resim_payload, t_cold, t_warm = resim_workload()
    reduction = 1.0 - t_warm / t_cold
    print(
        f"[resim]  fig5 fan-out: cold {t_cold * 1e3:.2f}ms warm "
        f"{t_warm * 1e3:.2f}ms ({reduction:.0%} reduction, gate: >=30%)"
    )
    out["resim"]["fig5_fanout"] = resim_payload

    t_off = select_pass_seconds(resim_cache=None)
    cache = reset_default_resim_cache()
    compile_resharding(fig5_task(), CompileContext(strategy="auto", cache=None))
    t_on = select_pass_seconds(resim_cache=cache)
    select_reduction = 1.0 - t_on / t_off
    reset_default_resim_cache()
    print(
        f"[resim]  select pass: off {t_off * 1e3:.2f}ms warm {t_on * 1e3:.2f}ms "
        f"({select_reduction:.0%} reduction, gate: >=30%)"
    )
    out["resim"]["select_pass"] = {
        "resim_hits": cache.stats().hits,
        "tasks_skipped": cache.stats().tasks_skipped,
    }

    # ---- gates (asserted; persisted as constants once they hold) -----
    assert speedup_10k >= 5.0, f"vector solver only {speedup_10k:.1f}x at 10k flows"
    assert reduction >= 0.30, f"resim reduction only {reduction:.0%}"
    assert select_reduction >= 0.30, f"select reduction only {select_reduction:.0%}"
    out["gates"] = {
        "vector_10k_speedup_min_5x": True,
        "resim_fig5_reduction_min_30pct": True,
        "select_pass_reduction_min_30pct": True,
    }
    return out


def test_persist_simulator_bench() -> None:
    """Regenerate and persist the committed BENCH_simulator.json artifact."""
    data = payload(quick=True)
    for n in FLOW_COUNTS:
        assert data["solver"][str(n)]["bit_identical"]
    assert data["end_to_end"]["backends_identical"]
    assert data["resim"]["fig5_fanout"]["byte_identical"]
    assert data["resim"]["fig5_fanout"]["checkpoints_stored"] >= 1
    persist_bench("simulator", data)


@pytest.mark.benchmark(group="simulator")
def test_solver_churn_10k(benchmark) -> None:
    """Wall time of the 10k-flow churn loop on the default-bound backend."""
    fp, _ = benchmark.pedantic(
        lambda: solver_churn(10_000, "vector", CHURN_ITERS[10_000]),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    import json
    import sys

    quick = "--quick" in sys.argv
    print(json.dumps(payload(quick=quick), indent=2, sort_keys=True))
