"""Wall-time gate: the unified runtime kernel stays within 5% of the
pre-refactor pipeline executor.

``_legacy_simulate_pipeline`` below is a frozen, fault-free copy of the
pipeline executor as it stood before the runtime-kernel refactor:
timelines and comm entries accumulated in executor-private lists, stage
occupancy in plain booleans, channels in a ``channel_free`` dict — no
kernel resources, no telemetry spans.  Both executors run the same
Fig.-7 workload (GPT case1 under the "ours" method) over the *same*
resolved communication edges, so every message is priced through the
same plan cache and any measured difference is pure kernel + telemetry
overhead.

``test_quick_runtime_overhead_gate`` is the CI bench-smoke entry: it
first proves the two executors produce the identical schedule (same
iteration time, timeline, comms, busy time, activation peaks), then
gates the kernel path's median paired-round wall-time ratio at
<= 1.05x the frozen baseline (see ``_overhead_stats`` for why paired
ratios rather than a ratio of per-side minima).
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Union

import pytest

from repro.models.gpt import GPT_CASES, build_gpt
from repro.models.parallel import METHODS, resolve_comm_edges
from repro.pipeline.executor import _validate_orders, simulate_pipeline
from repro.pipeline.schedules import Task, schedule_job
from repro.pipeline.stage import PipelineJob
from repro.sim.events import EventLoop


# ----------------------------------------------------------------------
# Frozen pre-refactor executor (fault-free paths only)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TimelineEntry:
    stage: int
    kind: str
    microbatch: int
    start: float
    end: float


@dataclass(frozen=True)
class _CommEntry:
    src_stage: int
    dst_stage: int
    direction: str
    microbatch: int
    label: str
    start: float
    end: float


@dataclass(frozen=True)
class _Recv:
    edge_idx: int
    microbatch: int
    direction: str

    @property
    def key(self) -> tuple[int, int, str]:
        return (self.edge_idx, self.microbatch, self.direction)


_Item = Union[Task, _Recv]


def _insert_recvs(job: PipelineJob, orders: list[list[Task]]) -> list[list[_Item]]:
    edge_idx = {id(e): i for i, e in enumerate(job.edges)}
    out: list[list[_Item]] = []
    for s, order in enumerate(orders):
        items: list[_Item] = []
        for t in order:
            if t.kind == "F":
                for e in sorted(job.in_edges(s), key=lambda e: edge_idx[id(e)]):
                    items.append(_Recv(edge_idx[id(e)], t.microbatch, "fwd"))
            elif t.kind in ("B", "Bx"):
                for e in sorted(job.out_edges(s), key=lambda e: edge_idx[id(e)]):
                    items.append(_Recv(edge_idx[id(e)], t.microbatch, "bwd"))
            items.append(t)
        out.append(items)
    return out


def _legacy_simulate_pipeline(
    job: PipelineJob, orders: list[list[Task]], overlap: bool = True
):
    """The pre-refactor executor, verbatim minus fault injection."""
    _validate_orders(job, orders)  # the pre-refactor executor ran this too
    loop = EventLoop()
    n_stages = job.n_stages
    items: list[list[_Item]] = (
        [list(o) for o in orders] if overlap else _insert_recvs(job, orders)
    )
    idx = [0] * n_stages
    running = [False] * n_stages
    stage_free_at = [0.0] * n_stages
    timeline: list[_TimelineEntry] = []
    comms: list[_CommEntry] = []
    busy = dict.fromkeys(range(n_stages), 0.0)
    arrived: dict[tuple[str, int, int], int] = {}
    need_fwd = [len(job.in_edges(s)) for s in range(n_stages)]
    need_bwd = [len(job.out_edges(s)) for s in range(n_stages)]
    act_count = dict.fromkeys(range(n_stages), 0)
    peak_act = dict.fromkeys(range(n_stages), 0)
    channel_free: dict[tuple[int, int, str], float] = {}
    send_started: dict[tuple[int, int, str], float] = {}

    def deps_met(stage: int, t: Task) -> bool:
        if t.kind == "F":
            return arrived.get(("F", stage, t.microbatch), 0) >= need_fwd[stage]
        if t.kind in ("B", "Bx"):
            return arrived.get(("B", stage, t.microbatch), 0) >= need_bwd[stage]
        return True

    def duration(stage: int, t: Task) -> float:
        prof = job.stages[stage]
        if t.kind == "F":
            return prof.fwd_time
        if t.kind == "B":
            return prof.bwd_x_time + prof.bwd_w_time
        if t.kind == "Bx":
            return prof.bwd_x_time
        return prof.bwd_w_time

    def arrival(kind: str, stage: int, mb: int) -> None:
        key = (kind, stage, mb)
        arrived[key] = arrived.get(key, 0) + 1
        try_start(stage)

    def send_message(e, dur: float, direction: str, target: int, mb: int,
                     earliest: float) -> None:
        key = (e.src_stage, e.dst_stage, direction)
        cstart = max(earliest, channel_free.get(key, 0.0))
        cend = cstart + dur
        channel_free[key] = cend
        comms.append(
            _CommEntry(e.src_stage, e.dst_stage, direction, mb, e.label, cstart, cend)
        )
        dep_kind = "F" if direction == "fwd" else "B"
        loop.call_at(cend, lambda: arrival(dep_kind, target, mb))

    def produced_edges(stage: int, t: Task):
        if t.kind == "F":
            return [(e, i, e.comm_time("fwd"), "fwd", e.dst_stage)
                    for i, e in enumerate(job.edges) if e.src_stage == stage]
        if t.kind in ("B", "Bx"):
            return [(e, i, e.comm_time("bwd"), "bwd", e.src_stage)
                    for i, e in enumerate(job.edges) if e.dst_stage == stage]
        return []

    def on_compute_done(stage: int, t: Task, start: float) -> None:
        finish = loop.now
        timeline.append(_TimelineEntry(stage, t.kind, t.microbatch, start, finish))
        busy[stage] += finish - start
        if t.kind == "F":
            act_count[stage] += 1
            peak_act[stage] = max(peak_act[stage], act_count[stage])
        elif t.kind in ("B", "Bw"):
            act_count[stage] -= 1
        running[stage] = False
        idx[stage] += 1
        if overlap:
            for e, _i, dur, direction, target in produced_edges(stage, t):
                send_message(e, dur, direction, target, t.microbatch, finish)
            try_start(stage)
        else:
            block_until = finish
            for _e, edge_i, dur, direction, target in produced_edges(stage, t):
                send_started[(edge_i, t.microbatch, direction)] = block_until
                block_until += dur
                try_start(target)
            if block_until > finish:
                busy[stage] += block_until - finish
                stage_free_at[stage] = block_until
                loop.call_at(block_until, lambda s=stage: try_start(s))
            else:
                try_start(stage)

    def on_recv_done(stage: int, r: _Recv, start: float) -> None:
        e = job.edges[r.edge_idx]
        end = loop.now
        comms.append(
            _CommEntry(e.src_stage, e.dst_stage, r.direction, r.microbatch, e.label,
                       start, end)
        )
        busy[stage] += end - start
        running[stage] = False
        idx[stage] += 1
        dep_kind = "F" if r.direction == "fwd" else "B"
        arrival(dep_kind, stage, r.microbatch)
        try_start(stage)

    def try_start(stage: int) -> None:
        if running[stage] or idx[stage] >= len(items[stage]):
            return
        if loop.now < stage_free_at[stage] - 1e-15:
            return
        item = items[stage][idx[stage]]
        if isinstance(item, _Recv):
            sent_at = send_started.get(item.key)
            if sent_at is None:
                return
            e = job.edges[item.edge_idx]
            dur = e.comm_time(item.direction)
            end = max(loop.now, sent_at) + dur
            running[stage] = True
            start = loop.now
            loop.call_at(end, lambda s=stage, r=item: on_recv_done(s, r, start))
            return
        if not deps_met(stage, item):
            return
        running[stage] = True
        start = loop.now
        loop.call_after(
            duration(stage, item), lambda s=stage, t=item: on_compute_done(s, t, start)
        )

    for s in range(n_stages):
        try_start(s)
    loop.run()

    if any(idx[s] < len(items[s]) for s in range(n_stages)):
        raise RuntimeError("legacy pipeline deadlocked")
    iteration_time = max(
        [t.end for t in timeline] + [c.end for c in comms], default=0.0
    )
    return iteration_time, timeline, comms, busy, peak_act


# ----------------------------------------------------------------------
# The Fig.-7 workload: GPT case1 under "ours" (eager-1F1B + overlap)
# ----------------------------------------------------------------------
def _fig7_workload():
    spec = build_gpt(GPT_CASES["GPT case1"])
    ms = METHODS["ours"]
    edges = resolve_comm_edges(spec, ms.strategy)
    job = PipelineJob(
        stages=spec.profiles, edges=edges, n_microbatches=spec.n_microbatches
    )
    orders = schedule_job(
        ms.schedule,
        n_stages=len(spec.profiles),
        n_microbatches=spec.n_microbatches,
        delay_bw_weight=ms.delay_bw_weight,
    )
    return job, orders, ms.overlap


def _overhead_stats(fn_a, fn_b, repeats: int = 25) -> tuple[float, float, float]:
    """(best_a, best_b, median per-round b/a ratio) over paired rounds.

    Each round times both executors back-to-back, so a slow machine
    phase (cron, GC, a noisy CI neighbour, a frequency-scaling dip)
    lands on *both* sides of that round's ratio and cancels out —
    unlike a ratio of per-side minima, where one side's minimum can
    come from a fast phase the other side never saw.  The in-round
    order alternates (A/B, then B/A) so a monotone drift across a
    round cannot systematically favour whichever side runs first, and
    the median across rounds discards outlier rounds entirely.
    ``repeats`` is odd so the median is a single observed round.

    The collector is paused for the timed region: cyclic-GC sweeps
    trigger on *allocation count*, so whichever executor allocates
    more would otherwise also be billed for collecting every earlier
    test's surviving heap — a cost that scales with what ran before
    this gate, not with the executor under test.
    """
    fn_a()  # warm plan cache + allocator before timing
    fn_b()
    best_a = best_b = float("inf")
    ratios: list[float] = []
    gc.collect()
    gc.disable()
    try:
        for r in range(repeats):
            walls: dict[int, float] = {}
            for fn in ((fn_a, fn_b) if r % 2 == 0 else (fn_b, fn_a)):
                t0 = time.perf_counter()
                fn()
                walls[id(fn)] = time.perf_counter() - t0
            wall_a, wall_b = walls[id(fn_a)], walls[id(fn_b)]
            best_a = min(best_a, wall_a)
            best_b = min(best_b, wall_b)
            ratios.append(wall_b / wall_a)
    finally:
        gc.enable()
        gc.collect()
    ratios.sort()
    return best_a, best_b, ratios[len(ratios) // 2]


def test_quick_runtime_overhead_gate():
    """Quick mode for the CI bench-smoke job: identical schedule, <5%
    wall-time overhead from the kernel + telemetry path."""
    job, orders, overlap = _fig7_workload()

    it_legacy, timeline, comms, busy, peak = _legacy_simulate_pipeline(
        job, orders, overlap=overlap
    )
    r = simulate_pipeline(job, orders, overlap=overlap)
    assert r.iteration_time == it_legacy
    assert [
        (t.stage, t.kind, t.microbatch, t.start, t.end) for t in r.timeline
    ] == [(t.stage, t.kind, t.microbatch, t.start, t.end) for t in timeline]
    assert [
        (c.src_stage, c.dst_stage, c.direction, c.microbatch, c.label,
         c.start, c.end)
        for c in r.comms
    ] == [
        (c.src_stage, c.dst_stage, c.direction, c.microbatch, c.label,
         c.start, c.end)
        for c in comms
    ]
    assert r.stage_busy_time == busy
    assert r.peak_activation_counts == peak

    t_legacy, t_kernel, ratio = _overhead_stats(
        lambda: _legacy_simulate_pipeline(job, orders, overlap=overlap),
        lambda: simulate_pipeline(job, orders, overlap=overlap),
    )
    overhead = ratio - 1.0
    print(
        f"\nruntime-kernel overhead on {job.n_stages}-stage x "
        f"{job.n_microbatches}-microbatch Fig.7 workload: "
        f"legacy best {t_legacy * 1e3:.2f} ms, kernel best {t_kernel * 1e3:.2f} ms, "
        f"median paired ratio {overhead:+.1%}"
    )
    assert ratio <= 1.05, (
        f"kernel executor is {overhead:.1%} slower than the pre-refactor "
        f"baseline (gate: +5%)"
    )


@pytest.mark.parametrize("executor", ["legacy", "kernel"])
def test_bench_pipeline_executor(benchmark, executor):
    job, orders, overlap = _fig7_workload()
    fn = _legacy_simulate_pipeline if executor == "legacy" else simulate_pipeline
    fn(job, orders, overlap)  # warm the plan cache outside the timed region
    benchmark.pedantic(fn, args=(job, orders, overlap), rounds=3, iterations=1)
