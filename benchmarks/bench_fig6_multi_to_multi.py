"""E2 — regenerate Table 2 + Figure 6 (multi -> multi microbenchmark)."""

import pytest
from conftest import save_table

from repro.experiments import fig6
from repro.experiments.fig6 import TABLE2_CASES


def test_regenerate_fig6(benchmark, results_dir):
    table = benchmark.pedantic(fig6.run, rounds=1, iterations=1)
    save_table(results_dir, "fig6_multi_to_multi", table)
    by_case = {r["case"]: r for r in table.rows}
    assert by_case["case1"]["ours/Alpa speedup"] == pytest.approx(1.0, abs=0.1)
    for c in ("case3", "case4", "case9"):
        assert by_case[c]["ours/Alpa speedup"] > 1.3
    assert by_case["case8"]["ours/Alpa speedup"] > 2.0


@pytest.mark.parametrize("case", TABLE2_CASES, ids=[c.name for c in TABLE2_CASES])
def test_bench_case_broadcast(benchmark, case):
    benchmark.pedantic(
        fig6.case_latency, args=(case, "broadcast"), rounds=1, iterations=1
    )
