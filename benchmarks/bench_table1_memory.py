"""E3 — regenerate Table 1 (GPT-3 layer per-GPU memory) and the
transient-buffer soundness sweep.

``test_persist_memory_bench`` is the acceptance gate for the static
peak-memory analyzer: on every fig5/6/7-shaped golden workload, on
every topology-zoo fabric, with and without compile-time fault
rewrites, the static per-host bound must dominate the simulated
high-water mark.  The static/simulated/budget rows are persisted to
``benchmarks/results/BENCH_memory.json`` — deterministic byte counts,
so CI's ``memory-smoke`` job regenerates the artifact and fails on
drift.
"""

import numpy as np

from conftest import save_table
from persist import persist_bench

from repro.analysis import static_host_bounds
from repro.compiler import CompileContext, compile_resharding
from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.experiments import table1
from repro.experiments.topology_zoo import zoo_specs
from repro.sim.cluster import Cluster
from repro.sim.faults import FaultSchedule, HostFailure, RetryPolicy
from repro.strategies import make_strategy


def test_regenerate_table1(benchmark, results_dir):
    table = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    save_table(results_dir, "table1_memory", table)
    for row in table.rows:
        assert row["measured"] == row["paper"], row


def test_bench_memory_formula(benchmark):
    from repro.models.gpt import gpt_layer_memory_table

    benchmark(gpt_layer_memory_table)


# ----------------------------------------------------------------------
# Static peak-buffer soundness sweep
# ----------------------------------------------------------------------
#: the fig5/6/7-shaped golden workloads, instantiated per zoo fabric;
#: ``kill`` is the host failed at plan time in the fault-rewrite leg
#: (a sender where re-rooting has real choices, a receiver for fig5)
GOLDEN_WORKLOADS = {
    "fig5-bcast": dict(
        shape=(16384,), src_hosts=(0,), src_spec="R",
        dst_hosts=(1, 2, 3, 4), dst_spec="R", kill=4,
    ),
    "fig6-crossmesh": dict(
        shape=(128, 128), src_hosts=(0, 1), src_spec="S0R",
        dst_hosts=(2, 3), dst_spec="RS1", kill=1,
    ),
    "fig7-replicated": dict(
        shape=(128, 128), src_hosts=(0, 1, 2, 3), src_spec="RS1",
        dst_hosts=(4, 5), dst_spec="S0R", kill=0,
    ),
}

#: fixed reference budget for the artifact's budget column (bytes/host)
REFERENCE_BUDGET = 262144.0


def _sweep_one(cluster, workload, faulted):
    task = ReshardingTask(
        workload["shape"],
        DeviceMesh.from_hosts(cluster, workload["src_hosts"]),
        workload["src_spec"],
        DeviceMesh.from_hosts(cluster, workload["dst_hosts"]),
        workload["dst_spec"],
        dtype=np.float32,
    )
    faults = retry = None
    strategy = "broadcast"
    if faulted:
        faults = FaultSchedule(
            seed=1, host_failures=(HostFailure(host=workload["kill"], time=0.0),)
        )
        retry = RetryPolicy()
        # Blind the scheduler (as a buggy deployment might) so the
        # re-root pass carries the load and the bound is exercised on
        # genuinely rewritten plans, fallbacks included.
        strategy = make_strategy("broadcast")
        strategy.schedule_uses_faults = False
    compiled = compile_resharding(
        task,
        CompileContext(
            strategy=strategy, faults=faults, retry_policy=retry, cache=None
        ),
    )
    timing = simulate_plan(compiled.plan, faults=faults, retry_policy=retry)
    mem = static_host_bounds(compiled.plan)
    return compiled, timing, mem


def test_persist_memory_bench():
    """Soundness on every fabric x workload x fault mode; persist rows."""
    rows = {}
    rewrites = 0
    for fabric, spec in sorted(zoo_specs().items()):
        cluster = Cluster(spec)
        rows[fabric] = {}
        for name, workload in GOLDEN_WORKLOADS.items():
            rows[fabric][name] = {}
            for mode in ("steady", "faulted"):
                compiled, timing, mem = _sweep_one(
                    cluster, workload, faulted=(mode == "faulted")
                )
                assert mem.dominates(timing.host_peak_buffers), (
                    f"{fabric}/{name}/{mode}: simulated peak "
                    f"{timing.host_peak_buffers} exceeds static bound "
                    f"{mem.per_host}"
                )
                assert not mem.nonfinite_ops and not mem.uncovered_ops
                rewrites += len(compiled.plan.fallbacks)
                simulated = max(
                    timing.host_peak_buffers.values(), default=0.0
                )
                rows[fabric][name][mode] = {
                    "static_peak_bytes": mem.peak,
                    "simulated_peak_bytes": simulated,
                    "budget_bytes": REFERENCE_BUDGET,
                    "within_budget": mem.peak <= REFERENCE_BUDGET,
                    "gated": mem.gated,
                    "fallbacks": len(compiled.plan.fallbacks),
                }
    # The faulted leg must exercise real re-rooting somewhere, or the
    # "with fault rewrites" half of the gate is vacuous.
    assert rewrites > 0, "no compile produced a fallback re-root"
    persist_bench(
        "memory",
        {
            "reference_budget_bytes": REFERENCE_BUDGET,
            "workloads": rows,
        },
    )

