"""E3 — regenerate Table 1 (GPT-3 layer per-GPU memory)."""

from conftest import save_table

from repro.experiments import table1


def test_regenerate_table1(benchmark, results_dir):
    table = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    save_table(results_dir, "table1_memory", table)
    for row in table.rows:
        assert row["measured"] == row["paper"], row


def test_bench_memory_formula(benchmark):
    from repro.models.gpt import gpt_layer_memory_table

    benchmark(gpt_layer_memory_table)
