"""E7 — regenerate the §3.1 / Figure 3 strategy-latency analysis."""

import pytest
from conftest import save_table

from repro.experiments import fig3
from repro.sim.cluster import GB


def test_regenerate_fig3(benchmark, results_dir):
    table = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    save_table(results_dir, "fig3_strategy_analysis", table)
    for row in table.rows:
        if row["strategy"] == "global_allgather":
            assert row["simulated (s)"] <= row["analytic (s)"] * 1.05
        else:
            assert row["simulated (s)"] == pytest.approx(
                row["analytic (s)"], rel=0.08
            )


@pytest.mark.parametrize(
    "strategy", ["send_recv", "local_allgather", "global_allgather", "broadcast"]
)
def test_bench_strategy_sim(benchmark, strategy):
    benchmark.pedantic(
        fig3.simulate_strategy, args=(strategy, 3, 2, GB), rounds=3, iterations=1
    )
