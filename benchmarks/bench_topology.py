"""Topology-zoo benchmark: the strategy x topology makespan heatmap.

Runs the E8 zoo (quick mode: 16 MB fan-out from 2 replica hosts to 6
receiving hosts on every topology in the zoo) and persists the raw
makespans to ``benchmarks/results/BENCH_topology.json`` — a committed,
machine-independent artifact; the flow simulator is deterministic, so
CI's ``topology-smoke`` job regenerates it and fails on drift.

The persistence test doubles as the acceptance gate for the topology
refactor's headline claims:

* switch multicast strictly beats the ring broadcast on at least one
  topology (it wins on every switched fabric in the zoo);
* the 4:1 oversubscribed fat-tree is strictly slower than the
  non-blocking fat-tree of identical shape — oversubscription is priced
  by the max-min fixpoint, not asserted;
* the switchless torus honestly reports multicast as unsupported.
"""

from __future__ import annotations

import pytest

from persist import persist_bench
from repro.experiments.topology_zoo import STRATEGIES, payload, zoo_specs


def test_persist_topology_bench() -> None:
    """Regenerate and persist the committed BENCH_topology.json artifact."""
    data = payload(quick=True)
    grid = data["makespans"]
    assert set(grid) == set(zoo_specs())
    for topo, row in grid.items():
        assert set(row) == set(STRATEGIES)
        assert row["broadcast"] is not None and row["broadcast"] > 0
        assert row["allgather"] is not None and row["allgather"] > 0

    # Multicast must strictly beat broadcast somewhere (and it should on
    # every switched fabric); the torus has no switches to replicate on.
    wins = [
        topo
        for topo, row in grid.items()
        if row["multicast"] is not None and row["multicast"] < row["broadcast"]
    ]
    assert wins, f"multicast never beat broadcast: {grid}"
    assert "fat_tree_4to1" in wins
    assert grid["torus_2d"]["multicast"] is None

    # Oversubscription must cost: same shape, 4:1 uplinks, slower.
    assert (
        grid["fat_tree_4to1"]["broadcast"] > grid["fat_tree_1to1"]["broadcast"]
    )
    assert (
        grid["fat_tree_4to1"]["multicast"] > grid["fat_tree_1to1"]["multicast"]
    )

    persist_bench("topology", data)


@pytest.mark.benchmark(group="topology")
def test_topology_zoo_quick(benchmark) -> None:
    """Wall time of one full quick-mode zoo sweep (virtual time inside)."""
    data = benchmark.pedantic(lambda: payload(quick=True), rounds=1, iterations=1)
    assert data["makespans"]
