"""S2 — cluster-size scaling experiments (extension)."""

import pytest
from conftest import save_table

from repro.experiments import scaling


def test_regenerate_scaling(benchmark, results_dir):
    table = benchmark.pedantic(scaling.run, rounds=1, iterations=1)
    save_table(results_dir, "s2_mesh_scaling", table)
    sr = table.column("send_recv (s)")
    bc = table.column("broadcast (s)")
    for a, b in zip(sr, bc):
        assert a == pytest.approx(4 * b, rel=0.05)  # replication factor
    # both scale down with aggregate bandwidth
    assert bc[-1] < bc[0] / 4


def test_regenerate_scheduler_scaling(benchmark, results_dir):
    table = benchmark.pedantic(scaling.run_scheduler_scaling, rounds=1, iterations=1)
    save_table(results_dir, "s2b_scheduler_scaling", table)
    speedups = table.column("speedup")
    # "more significant when the number of tiles is large" (§5.1.2)
    assert speedups == sorted(speedups)
    assert speedups[-1] > 3.0
    # scheduler runtime stays sub-second even at 576 tasks
    assert max(table.column("ours runtime (ms)")) < 5000
