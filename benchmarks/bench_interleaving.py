"""S3 — interleaved 1F1B virtual-stage sweep (extension)."""

from conftest import save_table

from repro.experiments import interleaving


def test_regenerate_interleaving(benchmark, results_dir):
    table = benchmark.pedantic(interleaving.run, rounds=1, iterations=1)
    save_table(results_dir, "s3_interleaving", table)
    rows = {(r["virtual stages"], r["comm/compute"]): r for r in table.rows}
    for comm in (0.0, 0.25, 0.5):
        # interleaving helps at every communication level
        assert (
            rows[(2, comm)]["iteration (s)"] < rows[(1, comm)]["iteration (s)"]
        )
        # and costs activation memory
        assert (
            rows[(2, comm)]["peak act stage0"] > rows[(1, comm)]["peak act stage0"]
        )
    # bubble shrinks with v in the comm-free case
    assert rows[(4, 0.0)]["bubble"] < rows[(1, 0.0)]["bubble"]
