"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one paper table/figure: the
``test_regenerate_*`` benchmark runs the full experiment (one round —
these are simulations, not microbenchmarks) and writes the reproduced
rows to ``benchmarks/results/<experiment>.md``; the remaining benchmarks
time the hot paths (planning, scheduling, simulation) that the
experiment exercises.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import ExperimentTable, format_markdown

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: pathlib.Path, name: str, table: ExperimentTable) -> None:
    """Persist a reproduced table and echo it to stdout."""
    md = format_markdown(table)
    (results_dir / f"{name}.md").write_text(md)
    print("\n" + md)
