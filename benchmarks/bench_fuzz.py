"""Chaos-fuzzer benchmark: campaign stats as a committed artifact.

The smoke campaign (25 seeded schedules over the golden workloads) must
find zero invariant violations, and its deterministic stats — events
injected, faults observed, loud failures, corruptions detected, the
campaign telemetry digest — are persisted to
``benchmarks/results/BENCH_fuzz.json``.  CI regenerates the artifact
and diffs it against the committed copy: a drift means the simulator's
observable behavior changed (update the artifact deliberately) or
determinism broke (fix that instead).
"""

from __future__ import annotations

import pytest

from persist import persist_bench
from repro.fuzz import run_fuzz

RUNS = 25
SEED = 0


def campaign_payload() -> dict:
    stats = run_fuzz(runs=RUNS, seed=SEED)
    assert stats.violations == [], [
        f"[{v.invariant}] {v.workload} run {v.run_index}: {v.detail}"
        for v in stats.violations
    ]
    payload = stats.to_json()
    payload.pop("violations")  # always empty here; keep the artifact flat
    return payload


def test_persist_fuzz_bench() -> None:
    """Regenerate and persist the committed BENCH_fuzz.json artifact."""
    payload = campaign_payload()
    # The campaign must genuinely exercise every detection path.
    assert payload["runs"] == RUNS
    assert payload["faults_observed"] > 0
    assert payload["loud_failures"] > 0
    assert payload["corruptions_detected"] > 0
    assert payload["replans_checked"] > 0
    persist_bench("fuzz", payload)


@pytest.mark.benchmark(group="fuzz")
def test_fuzz_campaign_wall_time(benchmark) -> None:
    """Wall time of the 25-run smoke campaign (virtual time inside)."""
    stats = benchmark.pedantic(
        lambda: run_fuzz(runs=RUNS, seed=SEED), rounds=3, iterations=1
    )
    assert stats.violations == []
