"""E1 — regenerate Figure 5 (single device -> multiple devices)."""

from conftest import save_table

from repro.experiments import fig5


def test_regenerate_fig5(benchmark, results_dir):
    table = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    save_table(results_dir, "fig5_single_to_multi", table)
    # sanity: broadcast stays flat while send/recv is linear
    bc = table.column("broadcast (s)")
    sr = table.column("send_recv (s)")
    assert max(bc) / min(bc) < 1.05
    assert sr[3] > 3.5 * sr[0]


def test_bench_broadcast_1gb_4nodes(benchmark):
    benchmark.pedantic(
        fig5.single_to_multi_latency, args=(4, 2, "broadcast"),
        rounds=3, iterations=1,
    )


def test_bench_allgather_1gb_4nodes(benchmark):
    benchmark.pedantic(
        fig5.single_to_multi_latency, args=(4, 2, "allgather"),
        rounds=3, iterations=1,
    )


def test_bench_send_recv_1gb_4nodes(benchmark):
    benchmark.pedantic(
        fig5.single_to_multi_latency, args=(4, 2, "send_recv"),
        rounds=3, iterations=1,
    )
