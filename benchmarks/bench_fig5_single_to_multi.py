"""E1 — regenerate Figure 5 (single device -> multiple devices)."""

from conftest import save_table

from repro.experiments import fig5


def test_regenerate_fig5(benchmark, results_dir):
    table = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    save_table(results_dir, "fig5_single_to_multi", table)
    # sanity: broadcast stays flat while send/recv is linear
    bc = table.column("broadcast (s)")
    sr = table.column("send_recv (s)")
    assert max(bc) / min(bc) < 1.05
    assert sr[3] > 3.5 * sr[0]


def test_quick_plan_cache_smoke():
    """Quick mode for the CI bench-smoke job: repeated Fig. 5
    reshardings must hit the plan cache, and one representative
    compile's per-pass timing lands in the job log."""
    from repro.compiler import (
        CompileContext,
        compile_resharding,
        default_plan_cache,
        reset_default_plan_cache,
    )
    from repro.core.mesh import DeviceMesh
    from repro.core.task import ReshardingTask
    from repro.experiments.common import paper_cluster

    reset_default_plan_cache()
    for _ in range(3):
        for strategy in fig5.STRATEGIES:
            fig5.single_to_multi_latency(4, 2, strategy)
    stats = default_plan_cache().stats()
    print(f"\nplan cache after 3x Fig.5 sweep: {stats!r}")
    assert stats.hit_rate > 0.0
    assert stats.misses == len(fig5.STRATEGIES)  # one compile per strategy

    cluster = paper_cluster(5)
    task = ReshardingTask(
        fig5.MESSAGE_SHAPE,
        DeviceMesh(cluster, [[0]]),
        "R",
        DeviceMesh.from_hosts(cluster, range(1, 5), devices_per_host=2),
        "R",
    )
    compiled = compile_resharding(
        task, CompileContext(strategy="broadcast", cache=None)
    )
    print("per-pass compile timing (broadcast, 1 GB, 1 -> 4x2 GPUs):")
    print(compiled.diagnostics.format_table())


def test_bench_broadcast_1gb_4nodes(benchmark):
    benchmark.pedantic(
        fig5.single_to_multi_latency, args=(4, 2, "broadcast"),
        rounds=3, iterations=1,
    )


def test_bench_allgather_1gb_4nodes(benchmark):
    benchmark.pedantic(
        fig5.single_to_multi_latency, args=(4, 2, "allgather"),
        rounds=3, iterations=1,
    )


def test_bench_send_recv_1gb_4nodes(benchmark):
    benchmark.pedantic(
        fig5.single_to_multi_latency, args=(4, 2, "send_recv"),
        rounds=3, iterations=1,
    )
