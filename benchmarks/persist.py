"""Persist benchmark payloads as committed, diffable JSON artifacts.

``persist_bench("service", payload)`` writes
``benchmarks/results/BENCH_service.json`` with sorted keys and no
timestamps or machine identifiers, so the artifact is byte-stable for a
given code state and a CI diff against the committed copy is a
regression signal, not noise.  Deterministic payloads only — anything
wall-clock-derived (pytest-benchmark timings, host names) stays out.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

__all__ = ["persist_bench", "load_bench", "RESULTS_DIR"]


def persist_bench(name: str, payload: Mapping[str, Any]) -> pathlib.Path:
    """Write ``payload`` to ``benchmarks/results/BENCH_<name>.json``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(name: str) -> Any:
    """Read back a previously persisted artifact (None if absent)."""
    path = RESULTS_DIR / f"BENCH_{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())
