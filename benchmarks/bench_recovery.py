"""Elastic-recovery benchmark — sweep regeneration plus overhead gates.

Two gates guard the recovery runtime:

* **fault-free overhead**: driving a training run through
  ``simulate_training_run`` (failure scanning, checkpoint plumbing, the
  elastic supervisor loop) with checkpointing disabled must land within
  2% of the plain per-iteration cost ``n * run_iteration(...)`` — the
  recovery path must be free when nothing fails;
* **determinism**: two runs of the same seeded failure scenario must
  agree bit-for-bit (state digest) and exactly on the simulated clock.
"""

from conftest import save_table

from repro.experiments.recovery import (
    STATE_ELEMS,
    poisson_host_failures,
    recovery_job,
    run_interval_sweep,
    sweep_config,
)
from repro.models.parallel import run_iteration
from repro.recovery import CheckpointConfig, simulate_training_run

N_ITERATIONS = 20


def fault_free_run():
    spec = recovery_job()
    return simulate_training_run(
        spec,
        N_ITERATIONS,
        config=CheckpointConfig(interval=0),
        state_elems_per_stage=STATE_ELEMS,
    )


def test_regenerate_recovery_sweep(benchmark, results_dir):
    table = benchmark.pedantic(run_interval_sweep, rounds=1, iterations=1)
    save_table(results_dir, "recovery_interval_sweep", table)
    assert all(r >= 1 for r in table.column("restarts"))
    assert all(o < 0.5 for o in table.column("overhead"))


def test_fault_free_overhead_under_2_percent(benchmark):
    """Acceptance gate: the recovery path is free when nothing fails."""
    spec = recovery_job()
    per_iter = run_iteration(spec, "broadcast").iteration_time
    rep = benchmark.pedantic(fault_free_run, rounds=3, iterations=1)
    assert rep.completed and rep.n_restarts == 0 and rep.n_checkpoints == 0
    baseline = N_ITERATIONS * per_iter
    assert abs(rep.total_time - baseline) / baseline < 0.02


def test_recovery_run_is_deterministic(benchmark):
    spec = recovery_job()
    iter_time = run_iteration(spec, "broadcast").iteration_time
    faults = poisson_host_failures(
        seed=7,
        mtbf=10.0 * iter_time,
        horizon=60.0 * iter_time,
        hosts=(0, 1),
    )

    def once():
        return simulate_training_run(
            spec,
            N_ITERATIONS,
            faults=faults,
            config=sweep_config(5),
            state_elems_per_stage=STATE_ELEMS,
        )

    first = once()
    second = benchmark.pedantic(once, rounds=1, iterations=1)
    assert first.n_restarts >= 1
    assert first.state_digest == second.state_digest
    assert first.total_time == second.total_time
