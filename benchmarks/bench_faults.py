"""Chaos benchmark — resharding latency vs. injected fault rate.

Two questions: (1) how gracefully does the broadcast runtime degrade as
flow-drop probability rises, and (2) what does the retry machinery cost
when nothing fails?  The second has a hard answer: at fault rate 0 the
simulated makespan must sit within 2% of the fault-free code path (it is
in fact byte-identical — every fault hook is behind a ``faults is
None``-style guard).
"""

from conftest import save_table

from repro.core.executor import simulate_plan
from repro.core.mesh import DeviceMesh
from repro.core.task import ReshardingTask
from repro.experiments.common import ExperimentTable
from repro.sim import GB, Cluster, ClusterSpec
from repro.sim.faults import FaultSchedule, RetryPolicy
from repro.strategies import BroadcastStrategy

DROP_RATES = [0.0, 0.01, 0.05, 0.1, 0.2]
POLICY = RetryPolicy(max_attempts=12, backoff_base=2e-3)


def make_task() -> ReshardingTask:
    cluster = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(cluster, [0, 1])
    dst = DeviceMesh.from_hosts(cluster, [2, 3])
    # ~1 GB fp32 tensor, same scale as the paper's microbenchmarks
    shape = (int(GB // (4 * 1024 * 1024)), 1024, 1024)
    return ReshardingTask(shape, src, "S0RR", dst, "RS1R", dtype="float32")


def latency_at(drop_rate: float, seed: int = 0):
    task = make_task()
    faults = FaultSchedule(seed=seed, drop_rate=drop_rate)
    plan = BroadcastStrategy(faults=faults).plan(task)
    return simulate_plan(plan, faults=faults, retry_policy=POLICY)


def run() -> ExperimentTable:
    task = make_task()
    baseline = simulate_plan(BroadcastStrategy().plan(task)).total_time
    table = ExperimentTable(
        experiment_id="chaos",
        title="Broadcast resharding under flow drops (1 GB, 2x2 hosts)",
        columns=["drop rate", "latency (s)", "slowdown", "retries", "status"],
        notes=f"fault-free baseline {baseline:.4g} s; retry policy {POLICY}",
    )
    for rate in DROP_RATES:
        res = latency_at(rate)
        rep = res.fault_report
        table.add(**{
            "drop rate": rate,
            "latency (s)": res.total_time,
            "slowdown": res.total_time / baseline,
            "retries": rep.n_retries,
            "status": rep.status,
        })
    return table


def test_regenerate_fault_sweep(benchmark, results_dir):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(results_dir, "chaos_fault_sweep", table)
    slow = table.column("slowdown")
    # graceful degradation: monotone-ish cost, no cliff at low rates
    assert slow[0] == 1.0
    assert all(s < 5.0 for s in slow)
    assert all(st != "fatal" for st in table.column("status"))


def test_zero_fault_overhead_under_2_percent(benchmark):
    """Acceptance gate: retry machinery is free when nothing fails."""
    task = make_task()
    baseline = simulate_plan(BroadcastStrategy().plan(task)).total_time
    res = benchmark.pedantic(latency_at, args=(0.0,), rounds=3, iterations=1)
    assert res.fault_report.status == "clean"
    assert abs(res.total_time - baseline) / baseline < 0.02


def test_zero_fault_overhead_with_new_classes_compiled_in(benchmark):
    """Same gate with the correlated/gray fault classes present but empty.

    A FaultSchedule now carries domain-failure, partition, and
    corruption fields; simply *having* them (as empty tuples) must cost
    nothing on the hot path — every new check is behind an emptiness or
    ``faults is None`` guard, so the simulated makespan stays within 2%
    of the fault-free code path (and the corruption hash draw never
    happens when no corruption window exists).
    """
    task = make_task()
    baseline = simulate_plan(BroadcastStrategy().plan(task)).total_time
    faults = FaultSchedule(
        seed=0,
        drop_rate=0.0,
        domain_failures=(),
        partitions=(),
        corruptions=(),
    )

    def run_with_empty_classes():
        plan = BroadcastStrategy(faults=faults).plan(task)
        return simulate_plan(plan, faults=faults, retry_policy=POLICY)

    res = benchmark.pedantic(run_with_empty_classes, rounds=3, iterations=1)
    assert res.fault_report.status == "clean"
    assert res.corrupted_ops == () and res.unverified_corruption == ()
    assert abs(res.total_time - baseline) / baseline < 0.02


def test_bench_chaos_plan_and_simulate_10pct(benchmark):
    benchmark.pedantic(latency_at, args=(0.1,), rounds=3, iterations=1)
