"""Service overload benchmarks: latency percentiles, hit/shed rates.

Two deterministic load scenarios run on the virtual-time loop:

* ``steady`` — sustained arrivals within capacity: high cache hit rate,
  no shedding, tight latency percentiles;
* ``bursty`` — periodic arrival spikes against a deliberately tight
  admission policy: the service must shed and coalesce instead of
  letting the queue grow without bound.

The scenario reports (admission-to-response p50/p95/p99 in virtual
seconds, cache hit rate, shed/coalesce rates, peak queue depth) are
persisted to ``benchmarks/results/BENCH_service.json`` — a committed,
machine-independent artifact, unlike the wall-clock pytest-benchmark
numbers also collected here.
"""

from __future__ import annotations

import pytest

from persist import persist_bench
from repro.service import (
    PROFILES,
    AdmissionConfig,
    LoadProfile,
    ServiceConfig,
    run_load,
)

#: tight admission policy that forces overload behavior under bursts
TIGHT = ServiceConfig(
    n_workers=2,
    admission=AdmissionConfig(max_queue_depth=12, per_tenant_depth=5, rate=45.0),
)

SCENARIOS: dict[str, tuple[LoadProfile, ServiceConfig]] = {
    "steady": (PROFILES["steady"], ServiceConfig(n_workers=2)),
    "bursty": (PROFILES["bursty"], TIGHT),
}


def scenario_payload() -> dict:
    payload: dict = {}
    for name, (profile, config) in sorted(SCENARIOS.items()):
        report = run_load(profile, seed=0, config=config, timeout=2.0)
        assert report.worker_crashes == 0
        payload[name] = report.to_json()
    return payload


def test_persist_service_bench() -> None:
    """Regenerate and persist the committed BENCH_service.json artifact."""
    payload = scenario_payload()
    bursty = payload["bursty"]
    # Overload safety: the bursty scenario must shed/coalesce rather
    # than grow the queue past its bound, and p99 must stay bounded.
    assert bursty["max_queue_depth"] <= TIGHT.admission.max_queue_depth
    assert bursty["n_shed"] > 0 or bursty["n_coalesced"] > 0
    assert bursty["latency"]["p99"] < 2.0
    persist_bench("service", payload)


@pytest.mark.benchmark(group="service")
def test_service_steady_throughput(benchmark) -> None:
    """Wall time of one full steady-load service run (virtual inside)."""
    profile, config = SCENARIOS["steady"]
    report = benchmark.pedantic(
        lambda: run_load(profile, seed=0, config=config, timeout=2.0),
        rounds=3,
        iterations=1,
    )
    assert report.worker_crashes == 0


@pytest.mark.benchmark(group="service")
def test_service_bursty_overload(benchmark) -> None:
    """Wall time of one bursty overload run against the tight policy."""
    profile, config = SCENARIOS["bursty"]
    report = benchmark.pedantic(
        lambda: run_load(profile, seed=0, config=config, timeout=2.0),
        rounds=3,
        iterations=1,
    )
    assert report.worker_crashes == 0
