"""E4 — regenerate Table 3 + Figure 7 (end-to-end training throughput)."""

import pytest
from conftest import save_table

from repro.experiments import fig7
from repro.models.gpt import GPTConfig, build_gpt
from repro.models.parallel import run_iteration
from repro.models.utransformer import UTransformerConfig, build_utransformer


def test_regenerate_fig7(benchmark, results_dir):
    table = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    save_table(results_dir, "fig7_end_to_end", table)
    rows = {(r["model"], r["method"]): r for r in table.rows}
    # GPT: ours ~1.1-1.2x over Alpa, both near the Signal bound
    for model in ("GPT case1", "GPT case2"):
        assert 1.05 < rows[(model, "ours")]["vs Alpa"] < 1.35
        assert rows[(model, "ours")]["of Signal"] > 0.97
    # U-Transformer: ours ~1.5x over Alpa, >= 97% of Signal
    assert 1.35 < rows[("U-Transformer", "ours")]["vs Alpa"] < 1.7
    assert rows[("U-Transformer", "ours")]["of Signal"] >= 0.97


def test_quick_cache_reduction_and_identical_makespan():
    """Quick mode for the CI bench-smoke job: a 2-stage GPT pipeline
    with >= 8 micro-batches shows >= 50% compile-call reduction from
    the plan cache, with zero change in the simulated makespan."""
    from repro.compiler import default_plan_cache, reset_default_plan_cache
    from repro.sim.cluster import Cluster, ClusterSpec

    cluster = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
    config = GPTConfig(
        name="GPT-quick", n_layers=4, hidden=1024, global_batch=32,
        dp=2, op=2, pp=2,
    )
    spec = build_gpt(config, cluster=cluster)
    assert len(spec.stage_meshes) == 2
    assert spec.n_microbatches >= 8

    reset_default_plan_cache()
    cached = run_iteration(spec, "ours")
    stats = default_plan_cache().stats()
    uncached = run_iteration(spec, "ours", cache=None)

    print(
        f"\nplan cache over one '{spec.name}' iteration: {stats!r}\n"
        f"compile-call reduction: {stats.compile_call_reduction:.1%} "
        f"({stats.requests} requests, {stats.misses} compiles)"
    )
    assert cached.iteration_time == uncached.iteration_time
    assert stats.compile_call_reduction >= 0.5


@pytest.mark.parametrize("method", ["alpa", "ours", "signal"])
def test_bench_gpt_iteration(benchmark, method):
    spec = build_gpt(GPTConfig())
    benchmark.pedantic(run_iteration, args=(spec, method), rounds=1, iterations=1)


@pytest.mark.parametrize("method", ["alpa", "ours"])
def test_bench_utransformer_iteration(benchmark, method):
    spec = build_utransformer(UTransformerConfig())
    benchmark.pedantic(run_iteration, args=(spec, method), rounds=1, iterations=1)
