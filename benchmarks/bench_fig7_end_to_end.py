"""E4 — regenerate Table 3 + Figure 7 (end-to-end training throughput)."""

import pytest
from conftest import save_table

from repro.experiments import fig7
from repro.models.gpt import GPTConfig, build_gpt
from repro.models.parallel import run_iteration
from repro.models.utransformer import UTransformerConfig, build_utransformer


def test_regenerate_fig7(benchmark, results_dir):
    table = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    save_table(results_dir, "fig7_end_to_end", table)
    rows = {(r["model"], r["method"]): r for r in table.rows}
    # GPT: ours ~1.1-1.2x over Alpa, both near the Signal bound
    for model in ("GPT case1", "GPT case2"):
        assert 1.05 < rows[(model, "ours")]["vs Alpa"] < 1.35
        assert rows[(model, "ours")]["of Signal"] > 0.97
    # U-Transformer: ours ~1.5x over Alpa, >= 97% of Signal
    assert 1.35 < rows[("U-Transformer", "ours")]["vs Alpa"] < 1.7
    assert rows[("U-Transformer", "ours")]["of Signal"] >= 0.97


@pytest.mark.parametrize("method", ["alpa", "ours", "signal"])
def test_bench_gpt_iteration(benchmark, method):
    spec = build_gpt(GPTConfig())
    benchmark.pedantic(run_iteration, args=(spec, method), rounds=1, iterations=1)


@pytest.mark.parametrize("method", ["alpa", "ours"])
def test_bench_utransformer_iteration(benchmark, method):
    spec = build_utransformer(UTransformerConfig())
    benchmark.pedantic(run_iteration, args=(spec, method), rounds=1, iterations=1)
