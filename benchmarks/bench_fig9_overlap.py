"""E6 — regenerate Figure 9 (overlap-friendly schedule ablation)."""

import pytest
from conftest import save_table

from repro.experiments import fig9
from repro.models.parallel import run_iteration
from repro.models.utransformer import UTransformerConfig, build_utransformer


def test_regenerate_fig9(benchmark, results_dir):
    table = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    save_table(results_dir, "fig9_overlap", table)
    rows = {(r["batch"], r["method"]): r for r in table.rows}
    small = [k for k in rows if k[0].startswith("small")][0][0]
    large = [k for k in rows if k[0].startswith("large")][0][0]
    # small batch: overlap close to eager (paper: within a few %)
    gap_small = (
        rows[(small, "ours")]["TFLOPS/GPU"] / rows[(small, "overlap")]["TFLOPS/GPU"]
    )
    assert gap_small < 1.12
    # large batch: overlap ~1.2-1.3x over broadcast, eager adds more
    assert rows[(large, "overlap")]["vs broadcast"] > 1.15
    assert rows[(large, "ours")]["vs broadcast"] > rows[(large, "overlap")]["vs broadcast"]


@pytest.mark.parametrize("method", ["broadcast", "overlap", "ours"])
def test_bench_utransformer_method(benchmark, method):
    spec = build_utransformer(UTransformerConfig(global_batch=256))
    benchmark.pedantic(run_iteration, args=(spec, method), rounds=1, iterations=1)
