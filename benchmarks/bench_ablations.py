"""A1-A5 — ablations of this implementation's design choices."""

import pytest
from conftest import save_table

from repro.experiments import ablations


def test_regenerate_ablation_granularity(benchmark, results_dir):
    table = benchmark.pedantic(ablations.run_granularity, rounds=1, iterations=1)
    save_table(results_dir, "ablation_a1_granularity", table)
    by_case = {r["case"]: r for r in table.rows}
    # orthogonal tilings punish slice granularity; aligned ones do not
    assert by_case["case4"]["slice/intersection"] > 1.5
    assert by_case["case1"]["slice/intersection"] == pytest.approx(1.0, abs=0.02)


def test_regenerate_ablation_chunks(benchmark, results_dir):
    table = benchmark.pedantic(ablations.run_chunks, rounds=1, iterations=1)
    save_table(results_dir, "ablation_a2_chunks", table)
    lat = table.column("latency (s)")
    assert lat == sorted(lat, reverse=True)  # monotone in K
    assert lat[0] / lat[-1] > 2.0


def test_regenerate_ablation_gating(benchmark, results_dir):
    table = benchmark.pedantic(ablations.run_gating, rounds=1, iterations=1)
    save_table(results_dir, "ablation_a3_gating", table)
    for r in table.rows:
        assert 0.9 < r["ungated/gated"] < 1.2


def test_regenerate_ablation_eagerness(benchmark, results_dir):
    table = benchmark.pedantic(ablations.run_eagerness, rounds=1, iterations=1)
    save_table(results_dir, "ablation_a4_eagerness", table)
    rows = table.rows
    assert rows[1]["iteration (s)"] < rows[0]["iteration (s)"]  # eager helps
    # deeper eagerness: no time gain, memory grows
    assert rows[2]["iteration (s)"] == pytest.approx(rows[1]["iteration (s)"], rel=0.02)
    assert rows[3]["peak act stage0"] > rows[1]["peak act stage0"]


def test_regenerate_ablation_weight_delay(benchmark, results_dir):
    table = benchmark.pedantic(ablations.run_weight_delay, rounds=1, iterations=1)
    save_table(results_dir, "ablation_a5_weight_delay", table)
    rows = table.rows
    assert rows[1]["iteration (s)"] <= rows[0]["iteration (s)"] + 1e-9
