"""S1 — GPT parallel-configuration sweep (extension experiment)."""

import pytest
from conftest import save_table

from repro.experiments import parallel_sweep


def test_regenerate_parallel_sweep(benchmark, results_dir):
    table = benchmark.pedantic(parallel_sweep.run, rounds=1, iterations=1)
    save_table(results_dir, "s1_parallel_sweep", table)
    rows = {r["config"]: r for r in table.rows}
    # no cross-mesh comm at pp=1 -> systems tie
    for cfg, r in rows.items():
        if cfg.endswith(",1)"):
            assert r["ours/alpa"] == pytest.approx(1.0, abs=0.01)
    # deeper pipelines widen the gap
    assert rows["(2,1,4)"]["ours/alpa"] > rows["(2,2,2)"]["ours/alpa"] > 1.1
    # cross-host operator parallelism collapses
    assert rows["(1,8,1)"]["alpa TFLOPS"] < 10
    # with ours, pipeline depth is nearly free
    assert rows["(1,1,8)"]["ours TFLOPS"] > 0.95 * rows["(4,1,2)"]["ours TFLOPS"]
