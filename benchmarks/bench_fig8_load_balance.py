"""E5 — regenerate Figure 8 (load-balance / scheduling ablation)."""

import numpy as np
import pytest
from conftest import save_table

from repro.core.task import ReshardingTask
from repro.experiments import fig8
from repro.experiments.common import make_microbench_meshes
from repro.experiments.fig6 import TABLE2_CASES, TENSOR_SHAPE
from repro.scheduling import (
    SchedulingProblem,
    dfs_schedule,
    ensemble_schedule,
    randomized_greedy_schedule,
)


def test_regenerate_fig8(benchmark, results_dir):
    table = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    save_table(results_dir, "fig8_load_balance", table)
    by_case = {r["case"]: r for r in table.rows}
    # ties where there is nothing to schedule
    assert by_case["case1"]["naive/ours"] == pytest.approx(1.0, abs=0.05)
    assert by_case["case8"]["naive/ours"] == pytest.approx(1.0, abs=0.05)
    # congestion elsewhere
    assert by_case["case2"]["naive/ours"] > 1.5
    assert by_case["case4"]["lb/ours"] > 1.3


def _problem(case):
    _c, src, dst = make_microbench_meshes(case.send_mesh, case.recv_mesh)
    rt = ReshardingTask(
        TENSOR_SHAPE, src, case.send_spec, dst, case.recv_spec, dtype=np.float32
    )
    return SchedulingProblem.from_resharding(rt)


def test_bench_scheduler_ensemble_case4(benchmark):
    p = _problem(TABLE2_CASES[3])  # 64 unit tasks
    benchmark(ensemble_schedule, p)


def test_bench_scheduler_randomized_case4(benchmark):
    p = _problem(TABLE2_CASES[3])
    benchmark(randomized_greedy_schedule, p)


def test_bench_scheduler_dfs_case3(benchmark):
    p = _problem(TABLE2_CASES[2])
    benchmark.pedantic(dfs_schedule, args=(p,), kwargs={"time_budget": 0.05},
                       rounds=3, iterations=1)
