"""Mixture-of-Experts training with a layout-changing stage boundary.

Shows the library generalizing beyond the paper's two workloads: a
GShard-style MoE transformer whose stage-0 mesh is (dp, ep) with experts
sharded across columns, and whose stage-1 mesh is (4, 1) running
sequence-sharded attention.  The boundary resharding converts a
batch-sharded activation into a sequence-sharded one across meshes of
different shapes — orthogonal tilings, the general §2.2 setting.

Run:  python examples/moe_expert_parallel.py
"""

import numpy as np

from repro.core.data import apply_plan
from repro.core.task import ReshardingTask
from repro.core.tensor import DistributedTensor
from repro.models import MoEConfig, build_moe, dispatch_all_to_all_time, moe_params
from repro.models.parallel import run_iteration
from repro.strategies import make_strategy


def main() -> None:
    cfg = MoEConfig()
    spec = build_moe(cfg)
    print(f"{cfg.name}: {moe_params(cfg) / 1e9:.2f}B params, "
          f"{cfg.n_experts} experts (top-{cfg.top_k} routing)")
    print(f"stage meshes: {spec.stage_meshes[0].shape} -> {spec.stage_meshes[1].shape}")
    for s, mesh in enumerate(spec.stage_meshes):
        a2a = dispatch_all_to_all_time(cfg, mesh)
        print(f"  stage {s}: expert all-to-all = {a2a * 1e3:.2f} ms per layer pass")

    # -- the boundary resharding, inspected in isolation -----------------
    b = spec.boundaries[0]
    print(f"\nboundary: {b.shape} {b.src_spec}@{spec.stage_meshes[0].shape} "
          f"-> {b.dst_spec}@{spec.stage_meshes[1].shape}")
    rt = ReshardingTask(
        b.shape, spec.stage_meshes[0], b.src_spec,
        spec.stage_meshes[1], b.dst_spec, dtype=np.float16,
    )
    print(f"decomposes into {len(rt.unit_tasks())} unit communication tasks")

    # verify the batch->sequence conversion moves real bytes correctly
    small = ReshardingTask(
        (8, 64, 32), spec.stage_meshes[0], b.src_spec,
        spec.stage_meshes[1], b.dst_spec, dtype=np.float32,
    )
    arr = np.arange(8 * 64 * 32, dtype=np.float32).reshape(8, 64, 32)
    plan = make_strategy("broadcast").plan(small)
    out = apply_plan(plan, DistributedTensor.from_global(
        small.src_mesh, small.src_spec, arr))
    assert np.array_equal(out.to_global(), arr)
    print("data plane verified: batch-sharded -> sequence-sharded is exact")

    # -- end to end -------------------------------------------------------
    print(f"\nend-to-end ({spec.n_microbatches} micro-batches):")
    results = {}
    for method in ("alpa", "broadcast", "overlap", "ours", "signal"):
        r = run_iteration(spec, method)
        results[method] = r
        print(f"  {method:<10} {r.iteration_time:6.2f}s  "
              f"{r.throughput_tflops:6.2f} TFLOPS/GPU")
    print(f"  -> ours vs Alpa: "
          f"{results['ours'].throughput_tflops / results['alpa'].throughput_tflops:.2f}x, "
          f"{results['ours'].throughput_tflops / results['signal'].throughput_tflops:.1%} "
          f"of Signal")


if __name__ == "__main__":
    main()
