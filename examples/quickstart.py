"""Quickstart: one cross-mesh resharding, timed and verified.

Builds the paper's testbed (nodes with 4 GPUs, NVLink inside, 10 Gbps
between), reshards a real tensor from a (2,4) mesh with spec RS0R to a
(2,4) mesh with spec S0RR — Table 2's case 3 — under each strategy, and
checks the destination layout is bit-exact.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Cluster, ClusterSpec, DeviceMesh, reshard

def main() -> None:
    # -- the cluster: 4 nodes x 4 GPUs ---------------------------------
    cluster = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src_mesh = DeviceMesh.from_hosts(cluster, [0, 1])  # (2, 4)
    dst_mesh = DeviceMesh.from_hosts(cluster, [2, 3])  # (2, 4)

    # -- a real tensor, sharded on the source mesh ---------------------
    tensor = np.arange(256 * 256 * 64, dtype=np.float32).reshape(256, 256, 64)
    print(f"tensor: {tensor.shape} fp32 = {tensor.nbytes / 2**20:.0f} MiB")
    print(f"reshard RS0R @ {src_mesh.shape}  ->  S0RR @ {dst_mesh.shape}\n")

    print(f"{'strategy':<12} {'latency':>12} {'cross-host traffic':>20}  data ok")
    for strategy in ("send_recv", "allgather", "broadcast"):
        result = reshard(tensor, src_mesh, "RS0R", dst_mesh, "S0RR",
                         strategy=strategy)
        ok = result.dst_tensor.allclose(tensor)
        print(
            f"{strategy:<12} {result.latency * 1e3:>9.2f} ms "
            f"{result.cross_host_bytes / 2**20:>16.1f} MiB  {ok}"
        )
        assert ok

    # -- inspect the winning plan ---------------------------------------
    result = reshard(tensor, src_mesh, "RS0R", dst_mesh, "S0RR",
                     strategy="broadcast")
    print(f"\nbroadcast plan: {result.plan}")
    print(f"unit tasks: {len(result.task.unit_tasks())}, "
          f"schedule = {result.plan.schedule.algorithm}, "
          f"analytic makespan = {result.plan.schedule.makespan * 1e3:.2f} ms")
    for op in result.plan.ops[:4]:
        print(f"  op{op.op_id}: dev{op.sender} -> {list(op.receivers)} "
              f"({op.nbytes / 2**20:.1f} MiB, {op.n_chunks} chunks)")


if __name__ == "__main__":
    main()
