"""End-to-end GPT-2.6B training simulation (paper Table 3 / Fig. 7).

Builds the GPT 2.6B workload under both Table 3 parallel configs,
simulates one training iteration per communication system, and reports
throughput plus the per-stage memory footprint under each schedule.

Run:  python examples/gpt_pipeline.py
"""

from repro.models import GPT_CASES, METHODS, build_gpt, run_iteration
from repro.pipeline import analytic_peak_inflight, memory_report


def main() -> None:
    for name, cfg in GPT_CASES.items():
        spec = build_gpt(cfg)
        print(f"=== {name}: {spec.notes} ===")
        print(f"  {cfg.n_layers} layers, H={cfg.hidden}, batch {cfg.global_batch} "
              f"-> {spec.n_microbatches} micro-batches on {spec.n_devices} GPUs")
        b = spec.boundaries[0]
        print(f"  stage boundary: {b.shape} {b.dtype} {b.src_spec}->{b.dst_spec} "
              f"({b.nbytes() / 2**20:.1f} MiB per micro-batch)\n")

        print(f"  {'method':<12} {'schedule':<12} {'iter':>8} {'TFLOPS/GPU':>11}")
        results = {}
        for method in ("send_recv", "alpa", "broadcast", "ours", "signal"):
            r = run_iteration(spec, method)
            results[method] = r
            ms = METHODS[method]
            print(f"  {method:<12} {ms.schedule:<12} {r.iteration_time:>7.2f}s "
                  f"{r.throughput_tflops:>11.2f}")
        speedup = results["ours"].throughput_tflops / results["alpa"].throughput_tflops
        frac = results["ours"].throughput_tflops / results["signal"].throughput_tflops
        print(f"  -> ours vs Alpa: {speedup:.2f}x; {frac:.1%} of the Signal bound\n")

        # memory: eager-1F1B stores a few more activations (paper §4)
        plain = run_iteration(spec, "overlap").pipeline
        eager = run_iteration(spec, "ours").pipeline
        print("  peak per-GPU memory (weights+opt + live activations):")
        for sched_name, res in (("1F1B", plain), ("eager-1F1B", eager)):
            rep = memory_report(res.job, res)
            mems = ", ".join(
                f"stage{m.stage}: {m.total / 2**30:.2f} GiB "
                f"({m.peak_activation_count} act)"
                for m in rep
            )
            print(f"    {sched_name:<11} {mems}")
        for s in range(len(spec.profiles)):
            bound = analytic_peak_inflight("eager_1f1b", s, len(spec.profiles),
                                           spec.n_microbatches)
            assert eager.peak_activation_counts[s] <= bound
        print()


if __name__ == "__main__":
    main()
