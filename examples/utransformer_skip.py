"""U-Transformer: why long skip connections bottleneck the pipeline.

Reproduces the paper's motivating U-Transformer scenario (Table 3,
Fig. 7, Fig. 9): a 2.1B-parameter U-shaped network split into two
pipeline stages, whose cross-mesh skip connection dominates
communication.  Prints the module map, the stage split, the per-edge
resharding costs under each strategy, and a short textual timeline
showing how eager-1F1B hides the transfers.

Run:  python examples/utransformer_skip.py
"""

from repro.models import (
    UTransformerConfig,
    build_utransformer,
    resolve_comm_edges,
    run_iteration,
    utransformer_modules,
    utransformer_params,
)


def main() -> None:
    cfg = UTransformerConfig(global_batch=512)
    print(f"U-Transformer: {utransformer_params(cfg) / 1e9:.2f}B parameters")
    for m in utransformer_modules(cfg):
        skip = ""
        if m.skip_out is not None:
            skip = f"  --> skip {m.skip_out}"
        if m.skip_in is not None:
            skip = f"  <-- skip {m.skip_in}"
        print(f"  {m.name:<18} {m.flops_fwd / 1e12:6.2f} TFLOP  "
              f"{m.params / 1e6:8.1f}M params  "
              f"out ({m.out_channels}, {m.out_spatial}, {m.out_spatial}){skip}")

    spec = build_utransformer(cfg)
    print(f"\n2-stage split ({spec.notes})")
    print("cross-mesh tensors per micro-batch:")
    for b in spec.boundaries:
        print(f"  {b.label:<12} {b.shape}  {b.nbytes() / 2**20:7.1f} MiB")

    print("\nper-micro-batch resharding latency at the stage boundary:")
    for strategy in ("send_recv", "allgather", "broadcast", "signal"):
        edges = resolve_comm_edges(spec, strategy)
        total = sum(e.fwd_time for e in edges)
        print(f"  {strategy:<12} fwd total {total * 1e3:8.2f} ms  "
              + "  ".join(f"{e.label}={e.fwd_time * 1e3:.1f}ms" for e in edges))

    print("\nend-to-end iteration:")
    results = {}
    for method in ("alpa", "broadcast", "overlap", "ours", "signal"):
        r = run_iteration(spec, method)
        results[method] = r
        print(f"  {method:<10} {r.iteration_time:7.2f}s  "
              f"{r.throughput_tflops:6.2f} TFLOPS/GPU")
    print(f"  -> ours vs Alpa: "
          f"{results['ours'].throughput_tflops / results['alpa'].throughput_tflops:.2f}x")

    # -- a small window of the eager-1F1B timeline ----------------------
    print("\neager-1F1B timeline (stage 0, first 12 events):")
    tl = sorted(results["ours"].pipeline.timeline, key=lambda e: e.start)
    for e in [e for e in tl if e.stage == 0][:12]:
        print(f"  t={e.start * 1e3:8.1f}..{e.end * 1e3:8.1f} ms  {e.kind}{e.microbatch}")
    comms = sorted(results["ours"].pipeline.comms, key=lambda c: c.start)[:6]
    print("overlapped transfers (first 6):")
    for c in comms:
        print(f"  t={c.start * 1e3:8.1f}..{c.end * 1e3:8.1f} ms  "
              f"{c.label} {c.direction} mb{c.microbatch}")


if __name__ == "__main__":
    main()
