"""Strategy sweep: message sizes, mesh shapes, and broadcast chunking.

Three sweeps that show where each communication strategy wins:

1. message size sweep (fixed meshes) — the latency crossovers;
2. receiver-mesh sweep (fixed 1 GB message) — Fig. 5 in miniature;
3. broadcast chunk-count sweep — the ``t + A t / K`` pipelining law
   from §3.1, measured on the simulator.

Run:  python examples/microbenchmark_sweep.py
"""

from repro import Cluster, ClusterSpec, DeviceMesh, reshard
from repro.sim import GB, Network, ring_broadcast
from repro.sim.analysis import latency_broadcast, t_cross_host


def message_size_sweep() -> None:
    print("== 1. message size sweep: RS0R @ (2,4) -> S0RR @ (2,4) ==")
    cluster = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(cluster, [0, 1])
    dst = DeviceMesh.from_hosts(cluster, [2, 3])
    print(f"{'size':>8} {'send_recv':>12} {'allgather':>12} {'broadcast':>12}")
    for mib in (1, 16, 256, 2048):
        n_elem = mib * (1 << 20) // 4
        row = []
        for strategy in ("send_recv", "allgather", "broadcast"):
            r = reshard((n_elem,), src, "S0", dst, "S1", strategy=strategy)
            row.append(r.latency)
        print(f"{mib:>6}Mi {row[0] * 1e3:>10.2f}ms {row[1] * 1e3:>10.2f}ms "
              f"{row[2] * 1e3:>10.2f}ms")


def receiver_mesh_sweep() -> None:
    print("\n== 2. receiver mesh sweep: 1 GiB replicated tensor ==")
    print(f"{'recv mesh':>10} {'send_recv':>12} {'allgather':>12} {'broadcast':>12}")
    for hosts, dph in ((1, 4), (2, 2), (2, 4), (4, 2)):
        cluster = Cluster(ClusterSpec(n_hosts=1 + hosts, devices_per_host=4))
        src = DeviceMesh(cluster, [[0]])
        dst = DeviceMesh.from_hosts(cluster, range(1, 1 + hosts), dph)
        row = []
        for strategy in ("send_recv", "allgather", "broadcast"):
            r = reshard((1 << 28,), src, "R", dst, "R", strategy=strategy)
            row.append(r.latency)
        print(f"{f'({hosts},{dph})':>10} {row[0]:>11.2f}s {row[1]:>11.2f}s "
              f"{row[2]:>11.2f}s")


def chunk_sweep() -> None:
    print("\n== 3. broadcast chunk count: T = t + A t / K (A = 3 hosts) ==")
    spec = ClusterSpec(n_hosts=4, devices_per_host=2,
                       inter_host_latency=0.0, intra_host_latency=0.0)
    t = t_cross_host(GB, spec.inter_host_bandwidth)
    print(f"t = {t:.3f}s;  {'K':>5} {'simulated':>11} {'analytic':>11}")
    for k in (1, 2, 4, 8, 16, 32, 64, 128):
        net = Network(Cluster(spec))
        h = ring_broadcast(net, 0, [2, 4, 6], GB, n_chunks=k)
        net.run()
        print(f"{k:>5} {h.finish_time:>10.3f}s {latency_broadcast(3, 1, t, k):>10.3f}s")


if __name__ == "__main__":
    message_size_sweep()
    receiver_mesh_sweep()
    chunk_sweep()
