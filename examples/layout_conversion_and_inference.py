"""Layout conversion within a mesh, and pipelined inference serving.

Two shorter scenarios rounding out the library:

1. **intra-mesh resharding** (the paper's §2.1 background, Fig. 1b):
   converting a tensor between layouts on one mesh via local reuse,
   NVLink broadcasts, and — only when unavoidable — cross-host traffic;
2. **forward-only inference**: streaming micro-batches through the
   GPT pipeline and measuring first-batch latency vs steady throughput
   under each communication system.

Run:  python examples/layout_conversion_and_inference.py
"""

import numpy as np

from repro import Cluster, ClusterSpec, DeviceMesh, intra_mesh_reshard
from repro.models import GPTConfig, build_gpt, run_inference


def intra_mesh_demo() -> None:
    print("== 1. intra-mesh layout conversion on a (2,4) mesh ==")
    cluster = Cluster(ClusterSpec(n_hosts=2, devices_per_host=4))
    mesh = DeviceMesh.from_hosts(cluster, [0, 1])
    arr = np.arange(512 * 512 * 4, dtype=np.float32).reshape(512, 512, 4)
    print(f"tensor {arr.shape} fp32 = {arr.nbytes / 2**20:.0f} MiB\n")
    cases = [
        ("S0RR", "S0RR", "identity"),
        ("RRR", "S0S1R", "replicated -> sharded (free local slice)"),
        ("RS1R", "RRR", "gather along the intra-host axis (NVLink only)"),
        ("S0RR", "RRR", "gather along the host axis (must cross hosts)"),
        ("S0RR", "RS1R", "axis swap"),
    ]
    print(f"{'conversion':<16} {'latency':>10} {'cross-host':>11}  note")
    for src, dst, note in cases:
        r = intra_mesh_reshard(arr, mesh, src, dst)
        assert r.dst_tensor is None or np.array_equal(r.dst_tensor.to_global(), arr)
        print(f"{src:>6} -> {dst:<6} {r.latency * 1e3:>8.2f}ms "
              f"{r.timing.bytes_cross_host / 2**20:>8.1f}MiB  {note}")


def inference_demo() -> None:
    print("\n== 2. pipelined GPT inference (forward-only streaming) ==")
    spec = build_gpt(GPTConfig())
    m = 32
    print(f"{spec.name}, {len(spec.profiles)} stages, {m} micro-batches\n")
    print(f"{'method':<10} {'first-batch':>12} {'throughput':>16}")
    for method in ("send_recv", "alpa", "broadcast", "ours", "signal"):
        r = run_inference(spec, method, n_microbatches=m)
        print(f"{method:<10} {r.first_batch_latency * 1e3:>10.1f}ms "
              f"{r.throughput_microbatches_per_s:>11.2f} mb/s")


if __name__ == "__main__":
    intra_mesh_demo()
    inference_demo()
