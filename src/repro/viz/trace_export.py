"""Chrome-trace (catapult JSON) export for simulation results.

Both the pipeline executor's timeline and the network simulator's flow
trace can be dumped in the ``chrome://tracing`` / Perfetto "trace event"
format for interactive inspection:

* pipeline: one process per stage, tracks for compute and transfers;
* network: one process per host, one track per device.

Since the unification on the runtime kernel, every simulator reports
through one telemetry bus, and these exporters read the span stream —
:func:`pipeline_trace_events` folds ``cat="compute"``/``cat="comm"``
spans, :func:`bus_flow_trace_events` folds ``cat="flow"`` spans.
:func:`flow_trace_events` keeps accepting the derived
:class:`~repro.sim.network.FlowRecord` view for callers that already
hold one.  For a layout-agnostic dump of a whole bus (all categories,
counters, marks) use :func:`repro.runtime.trace.chrome_trace_events`.

Timestamps are microseconds (the format's convention).
"""

from __future__ import annotations

from typing import Sequence

from ..pipeline.executor import PipelineResult
from ..runtime.telemetry import TelemetryBus
from ..runtime.trace import write_chrome_trace_file
from ..sim.cluster import Cluster
from ..sim.network import FlowRecord

__all__ = [
    "pipeline_trace_events",
    "flow_trace_events",
    "bus_flow_trace_events",
    "write_chrome_trace",
]

_US = 1e6


def pipeline_trace_events(result: PipelineResult) -> list[dict]:
    """Trace events for one simulated training iteration.

    Reads the result's telemetry spans (the executors emit one
    ``compute`` span per task and one ``comm`` span per transfer).
    """
    events: list[dict] = []
    for s in range(result.job.n_stages):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": s,
                "args": {"name": f"stage {s}"},
            }
        )
    for span in result.telemetry.spans_by_cat("compute"):
        a = span.attrs
        events.append(
            {
                "name": f"{a['kind']}{a['microbatch']}",
                "cat": "compute",
                "ph": "X",
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
                "pid": int(a["stage"]),  # type: ignore[arg-type]
                "tid": 0,
                "args": {"microbatch": a["microbatch"]},
            }
        )
    for span in result.telemetry.spans_by_cat("comm"):
        a = span.attrs
        events.append(
            {
                "name": f"{a['label'] or 'comm'} mb{a['microbatch']} {a['direction']}",
                "cat": "comm",
                "ph": "X",
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
                "pid": int(a["src_stage"]),  # type: ignore[arg-type]
                "tid": 1 if a["direction"] == "fwd" else 2,
                "args": {
                    "src_stage": a["src_stage"],
                    "dst_stage": a["dst_stage"],
                    "direction": a["direction"],
                },
            }
        )
    return events


def _flow_event(
    name: str,
    cluster: Cluster,
    src: int,
    dst: int,
    nbytes: float,
    start: float,
    duration: float,
) -> dict:
    return {
        "name": name,
        "cat": "intra" if cluster.same_host(src, dst) else "cross",
        "ph": "X",
        "ts": start * _US,
        "dur": max(duration * _US, 0.01),
        "pid": cluster.host_of(src),
        "tid": cluster.device(src).local_id,
        "args": {"src": src, "dst": dst, "bytes": nbytes},
    }


def _host_metas(cluster: Cluster) -> list[dict]:
    return [
        {
            "name": "process_name",
            "ph": "M",
            "pid": host.host_id,
            "args": {"name": f"host {host.host_id}"},
        }
        for host in cluster.hosts
    ]


def flow_trace_events(trace: Sequence[FlowRecord], cluster: Cluster) -> list[dict]:
    """Trace events for the flow-level network simulation."""
    events = _host_metas(cluster)
    for rec in trace:
        events.append(
            _flow_event(
                rec.tag or f"flow{rec.flow_id}",
                cluster,
                rec.src,
                rec.dst,
                rec.nbytes,
                rec.start_time,
                rec.duration,
            )
        )
    return events


def bus_flow_trace_events(bus: TelemetryBus, cluster: Cluster) -> list[dict]:
    """Trace events straight from a network's ``cat="flow"`` spans.

    Produces the same layout as :func:`flow_trace_events` without going
    through the :class:`~repro.sim.network.FlowRecord` view.
    """
    events = _host_metas(cluster)
    for span in bus.spans_by_cat("flow"):
        a = span.attrs
        events.append(
            _flow_event(
                span.name,
                cluster,
                int(a["src"]),  # type: ignore[arg-type]
                int(a["dst"]),  # type: ignore[arg-type]
                float(a["nbytes"]),  # type: ignore[arg-type]
                span.start,
                span.end - span.start,
            )
        )
    return events


def write_chrome_trace(events: list[dict], path: str) -> None:
    """Write events as a Chrome-tracing JSON file."""
    write_chrome_trace_file(events, path)
