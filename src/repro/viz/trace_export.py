"""Chrome-trace (catapult JSON) export for simulation results.

Both the pipeline executor's timeline and the network simulator's flow
trace can be dumped in the ``chrome://tracing`` / Perfetto "trace event"
format for interactive inspection:

* pipeline: one process per stage, tracks for compute and transfers;
* network: one process per host, one track per device.

Timestamps are microseconds (the format's convention).
"""

from __future__ import annotations

import json
from typing import Sequence

from ..pipeline.executor import PipelineResult
from ..sim.cluster import Cluster
from ..sim.network import FlowRecord

__all__ = ["pipeline_trace_events", "flow_trace_events", "write_chrome_trace"]

_US = 1e6


def pipeline_trace_events(result: PipelineResult) -> list[dict]:
    """Trace events for one simulated training iteration."""
    events: list[dict] = []
    for s in range(result.job.n_stages):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": s,
                "args": {"name": f"stage {s}"},
            }
        )
    for e in result.timeline:
        events.append(
            {
                "name": f"{e.kind}{e.microbatch}",
                "cat": "compute",
                "ph": "X",
                "ts": e.start * _US,
                "dur": (e.end - e.start) * _US,
                "pid": e.stage,
                "tid": 0,
                "args": {"microbatch": e.microbatch},
            }
        )
    for c in result.comms:
        events.append(
            {
                "name": f"{c.label or 'comm'} mb{c.microbatch} {c.direction}",
                "cat": "comm",
                "ph": "X",
                "ts": c.start * _US,
                "dur": (c.end - c.start) * _US,
                "pid": c.src_stage,
                "tid": 1 if c.direction == "fwd" else 2,
                "args": {
                    "src_stage": c.src_stage,
                    "dst_stage": c.dst_stage,
                    "direction": c.direction,
                },
            }
        )
    return events


def flow_trace_events(trace: Sequence[FlowRecord], cluster: Cluster) -> list[dict]:
    """Trace events for the flow-level network simulation."""
    events: list[dict] = []
    for host in cluster.hosts:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": host.host_id,
                "args": {"name": f"host {host.host_id}"},
            }
        )
    for rec in trace:
        events.append(
            {
                "name": rec.tag or f"flow{rec.flow_id}",
                "cat": "intra" if cluster.same_host(rec.src, rec.dst) else "cross",
                "ph": "X",
                "ts": rec.start_time * _US,
                "dur": max(rec.duration * _US, 0.01),
                "pid": cluster.host_of(rec.src),
                "tid": cluster.device(rec.src).local_id,
                "args": {
                    "src": rec.src,
                    "dst": rec.dst,
                    "bytes": rec.nbytes,
                },
            }
        )
    return events


def write_chrome_trace(events: list[dict], path: str) -> None:
    """Write events as a Chrome-tracing JSON file."""
    with open(path, "w") as f:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, f)
