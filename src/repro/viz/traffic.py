"""Traffic matrices and utilization summaries from simulation traces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.cluster import Cluster
from ..sim.network import FlowRecord

__all__ = ["host_traffic_matrix", "device_traffic_matrix", "LinkStats", "link_stats", "format_matrix"]


def host_traffic_matrix(trace: Sequence[FlowRecord], cluster: Cluster) -> np.ndarray:
    """Bytes sent host->host (cross-host flows only), shape (H, H)."""
    m = np.zeros((cluster.n_hosts, cluster.n_hosts))
    for rec in trace:
        hs, hd = cluster.host_of(rec.src), cluster.host_of(rec.dst)
        if hs != hd:
            m[hs, hd] += rec.nbytes
    return m


def device_traffic_matrix(trace: Sequence[FlowRecord], cluster: Cluster) -> np.ndarray:
    """Bytes sent device->device, shape (D, D)."""
    m = np.zeros((cluster.n_devices, cluster.n_devices))
    for rec in trace:
        m[rec.src, rec.dst] += rec.nbytes
    return m


@dataclass(frozen=True)
class LinkStats:
    """Utilization of one host's NIC over a window."""

    host: int
    bytes_sent: float
    bytes_received: float
    send_utilization: float
    recv_utilization: float


def link_stats(
    trace: Sequence[FlowRecord], cluster: Cluster, window: float
) -> list[LinkStats]:
    """Per-host NIC utilization over ``[0, window]`` seconds.

    Utilization is bytes moved divided by the NIC's capacity over the
    window — the quantity the paper's load-balance objective evens out.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    sent = np.zeros(cluster.n_hosts)
    recv = np.zeros(cluster.n_hosts)
    for rec in trace:
        hs, hd = cluster.host_of(rec.src), cluster.host_of(rec.dst)
        if hs == hd:
            continue
        sent[hs] += rec.nbytes
        recv[hd] += rec.nbytes
    cap = cluster.spec.inter_host_bandwidth * window
    return [
        LinkStats(
            host=h,
            bytes_sent=float(sent[h]),
            bytes_received=float(recv[h]),
            send_utilization=float(sent[h] / cap),
            recv_utilization=float(recv[h] / cap),
        )
        for h in range(cluster.n_hosts)
    ]


def format_matrix(m: np.ndarray, labels: Sequence[str] | None = None, unit: float = 1 << 20) -> str:
    """Pretty-print a traffic matrix (default unit: MiB)."""
    n = m.shape[0]
    labels = list(labels) if labels is not None else [str(i) for i in range(n)]
    w = max(8, max(len(s) for s in labels) + 1)
    head = " " * w + "".join(f"{s:>{w}}" for s in labels)
    lines = [head]
    for i in range(n):
        row = "".join(f"{m[i, j] / unit:>{w}.1f}" for j in range(n))
        lines.append(f"{labels[i]:>{w}}" + row)
    return "\n".join(lines)
