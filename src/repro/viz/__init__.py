"""Terminal visualizations of simulation results (Gantt, traffic)."""

from .gantt import GanttRow, bus_gantt, flow_gantt, pipeline_gantt, render_rows
from .trace_export import (
    bus_flow_trace_events,
    flow_trace_events,
    pipeline_trace_events,
    write_chrome_trace,
)
from .traffic import (
    LinkStats,
    device_traffic_matrix,
    format_matrix,
    host_traffic_matrix,
    link_stats,
)

__all__ = [
    "GanttRow",
    "render_rows",
    "pipeline_gantt",
    "flow_gantt",
    "host_traffic_matrix",
    "device_traffic_matrix",
    "link_stats",
    "LinkStats",
    "format_matrix",
    "pipeline_trace_events",
    "flow_trace_events",
    "bus_flow_trace_events",
    "bus_gantt",
    "write_chrome_trace",
]
