"""ASCII Gantt charts for pipeline timelines and network flow traces.

Terminal-friendly renderings of what the simulators produced — useful
for eyeballing schedules (the paper's Fig. 4 style timelines) and for
debugging overlap behaviour without plotting dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..pipeline.executor import PipelineResult
from ..runtime.telemetry import TelemetryBus
from ..sim.network import FlowRecord

__all__ = ["GanttRow", "render_rows", "pipeline_gantt", "flow_gantt", "bus_gantt"]

_KIND_CHARS = {"F": "F", "B": "B", "Bx": "x", "Bw": "w"}


@dataclass(frozen=True)
class GanttRow:
    """One labelled row of intervals to render."""

    label: str
    #: (start, end, glyph) triples in simulated seconds
    intervals: tuple[tuple[float, float, str], ...]


def render_rows(
    rows: Sequence[GanttRow],
    width: int = 100,
    t_max: Optional[float] = None,
    idle_char: str = ".",
) -> str:
    """Render rows onto a fixed-width time axis.

    Later intervals overwrite earlier ones in a cell; a cell covering
    several distinct glyphs shows the last one (resolution artefact, not
    a scheduling one).
    """
    if width < 10:
        raise ValueError("width must be at least 10")
    end = t_max
    if end is None:
        end = max(
            (iv[1] for row in rows for iv in row.intervals),
            default=0.0,
        )
    if end <= 0:
        end = 1.0
    label_w = max((len(r.label) for r in rows), default=0)
    scale = width / end
    lines = []
    for row in rows:
        cells = [idle_char] * width
        for start, stop, glyph in row.intervals:
            a = min(width - 1, max(0, int(start * scale)))
            b = min(width, max(a + 1, int(stop * scale + 0.5)))
            for i in range(a, b):
                cells[i] = glyph[0]
        lines.append(f"{row.label:>{label_w}} |{''.join(cells)}|")
    axis = f"{'':>{label_w}} 0{'':{width - 10}}{end:>8.3f}s"
    lines.append(axis)
    return "\n".join(lines)


def pipeline_gantt(
    result: PipelineResult,
    width: int = 100,
    show_comms: bool = True,
    max_microbatches: Optional[int] = None,
) -> str:
    """Fig. 4-style timeline: one row per stage (+ one per comm channel).

    Compute tasks use glyphs ``F``/``B``/``x``/``w``; transfers use
    ``>`` (forward) and ``<`` (backward).
    """
    rows: list[GanttRow] = []
    n_stages = result.job.n_stages
    for s in range(n_stages):
        ivs = [
            (e.start, e.end, _KIND_CHARS.get(e.kind, "?"))
            for e in result.timeline
            if e.stage == s
            and (max_microbatches is None or e.microbatch < max_microbatches)
        ]
        rows.append(GanttRow(f"stage{s}", tuple(sorted(ivs))))
    if show_comms:
        channels = sorted(
            {(c.src_stage, c.dst_stage, c.direction) for c in result.comms}
        )
        for src, dst, direction in channels:
            glyph = ">" if direction == "fwd" else "<"
            ivs = [
                (c.start, c.end, glyph)
                for c in result.comms
                if (c.src_stage, c.dst_stage, c.direction) == (src, dst, direction)
                and (max_microbatches is None or c.microbatch < max_microbatches)
            ]
            rows.append(
                GanttRow(f"comm{src}{glyph}{dst}", tuple(sorted(ivs)))
            )
    t_max = max(
        [e.end for e in result.timeline] + [c.end for c in result.comms],
        default=0.0,
    )
    return render_rows(rows, width=width, t_max=t_max)


def flow_gantt(
    trace: Sequence[FlowRecord],
    cluster,
    width: int = 100,
    by: str = "host",
) -> str:
    """Timeline of network usage per host (NIC sends) or per device."""
    if by not in ("host", "device"):
        raise ValueError("by must be 'host' or 'device'")
    rows_map: dict[str, list[tuple[float, float, str]]] = {}
    for rec in trace:
        if by == "host":
            if cluster.same_host(rec.src, rec.dst):
                continue  # NVLink traffic not shown at host granularity
            key = f"h{cluster.host_of(rec.src)}->h{cluster.host_of(rec.dst)}"
        else:
            key = f"d{rec.src}->d{rec.dst}"
        rows_map.setdefault(key, []).append((rec.start_time, rec.finish_time, "#"))
    rows = [GanttRow(k, tuple(sorted(v))) for k, v in sorted(rows_map.items())]
    return render_rows(rows, width=width)


def bus_gantt(
    bus: TelemetryBus,
    width: int = 100,
    cats: Optional[Sequence[str]] = None,
) -> str:
    """Generic timeline of a telemetry bus: one row per span track.

    Works for any simulator on the runtime kernel (pipeline stages,
    network devices, the recovery supervisor) since they all emit to
    the same span stream.  ``cats`` restricts the categories shown;
    compute spans reuse the pipeline glyphs, everything else renders as
    the first letter of its category.
    """
    wanted = None if cats is None else frozenset(cats)
    rows_map: dict[str, list[tuple[float, float, str]]] = {}
    for span in bus.spans:
        if wanted is not None and span.cat not in wanted:
            continue
        if span.cat == "compute":
            glyph = _KIND_CHARS.get(str(span.attrs.get("kind", "")), "?")
        else:
            glyph = (span.cat or "?")[0]
        rows_map.setdefault(span.track, []).append((span.start, span.end, glyph))
    rows = [GanttRow(k, tuple(sorted(v))) for k, v in sorted(rows_map.items())]
    return render_rows(rows, width=width)
