"""Pluggable network topologies: the cluster shape as a first-class object.

The paper's cost model assumes one cluster shape — fast intra-host
NVLink plus a flat, non-blocking inter-host fabric bottlenecked at each
host's NIC (§3).  That assumption used to be smeared across the flow
simulator, the scheduler, and every strategy's cost heuristic as scalar
``inter_host_bandwidth`` / ``intra_host_bandwidth`` lookups.  This
module lifts it into an explicit :class:`Topology` interface that
:class:`~repro.sim.cluster.ClusterSpec` composes:

* :meth:`Topology.path` returns the :class:`Link` sequence a cross-host
  transfer traverses *between* the two host NICs.  Contended links
  become extra ports in the flow simulator's max-min fair-share
  fixpoint, so switch oversubscription is priced honestly;
* :meth:`Topology.switches` enumerates the switch nodes, each of which
  can act as a replication point for the ``multicast`` strategy backend
  and (when ``failure_domain=True``) as a correlated-failure blast
  radius reusing the :class:`~repro.sim.cluster.FailureDomain`
  machinery;
* :meth:`Topology.bisection_bandwidth` summarizes the shape for
  reports and experiments.

Concrete variants (the *topology zoo*):

=====================  ==============================================
class                  shape
=====================  ==============================================
``TwoTierTopology``    the paper's baseline: non-blocking fabric, NIC
                       bottleneck.  Byte-identical to the pre-refactor
                       scalar model (pinned by the golden fig5/6/7
                       tests).
``FatTreeTopology``    two-level leaf/spine Clos with a configurable
                       oversubscription ratio; leaf uplinks are
                       contended ports, leaves are failure domains.
``TorusTopology``      2D torus with dimension-ordered routing; every
                       directed mesh edge is a contended port; no
                       switches (multicast unsupported).
``RailOptimizedTopology``  one non-blocking rail per device index;
                       cross-rail traffic squeezes through a contended
                       spine port.
``IslandTopology``     disconnected two-tier islands; cross-island
                       paths raise :class:`NoRouteError` (the analyzer
                       turns this into a static ``T003`` diagnostic).
=====================  ==============================================

Heterogeneous link speeds are expressed per-pair with
``ClusterSpec.link_overrides`` (see :class:`~repro.sim.cluster
.LinkOverride`) and are honoured for *every* topology by
:class:`BoundTopology`, the memoizing adapter each
:class:`~repro.sim.cluster.Cluster` binds as ``cluster.topo``.  All
pricing paths — network flows, the scheduler's duration model, the
``LoadTracker``'s discounting, and strategy cost heuristics — go
through that one adapter, so a new topology (or an override) is
honoured everywhere consistently.

Port-name discipline: the flow simulator dispatches port capacities on
the first character (``d`` = device NVLink port, ``n`` = host NIC
port), so topology-level ports must never start with those letters.
Convention: ``sw:`` for switch ports, ``tx:`` for torus edges, ``ov:``
for per-pair override pipes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import ClusterSpec
    from .cluster import FailureDomain as FailureDomainLike

__all__ = [
    "Link",
    "Switch",
    "MulticastTree",
    "NoRouteError",
    "Topology",
    "TwoTierTopology",
    "FatTreeTopology",
    "TorusTopology",
    "RailOptimizedTopology",
    "IslandTopology",
    "BoundTopology",
    "TOPOLOGIES",
    "make_topology",
]


class NoRouteError(ValueError):
    """The topology has no path between two hosts (disconnected shape)."""


@dataclass(frozen=True)
class Link:
    """One hop of a cross-host path, between the two endpoint NICs.

    ``name`` doubles as the port name in the flow simulator when the
    link is ``contended``: every concurrent flow whose path includes
    the link then shares ``bandwidth`` under max-min fairness.
    Uncontended links (non-blocking fabric segments) contribute latency
    and a bandwidth cap to the path but never queue — they are exactly
    the paper's "fully-connected, non-blocking" assumption, made
    explicit.  ``switch`` names the switch the link hangs off, for
    attribution in traces and diagnostics.
    """

    name: str
    bandwidth: float
    latency: float
    switch: str = ""
    contended: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link needs a non-empty name")
        if self.name[0] in ("d", "n"):
            raise ValueError(
                f"link name {self.name!r} collides with the simulator's "
                "device/NIC port namespace (must not start with 'd' or 'n')"
            )
        if not self.bandwidth > 0:
            raise ValueError(f"link {self.name!r}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"link {self.name!r}: latency must be >= 0")


@dataclass(frozen=True)
class Switch:
    """A replication-capable switch node spanning a set of hosts.

    ``failure_domain=True`` marks the switch as a correlated-failure
    blast radius: the hosts behind it go down *together* when it dies
    (a ToR/leaf wedge).  Core/spine switches whose member set is the
    whole cluster keep ``failure_domain=False`` — folding them into the
    domain machinery would make every host pair "share a domain" and
    defeat the F001/F003 out-of-domain re-rooting analysis.
    """

    name: str
    hosts: tuple[int, ...]
    kind: str = "switch"
    failure_domain: bool = False

    def spans(self, hosts: Iterable[int]) -> bool:
        """True when every given host hangs off this switch."""
        members = set(self.hosts)
        return all(h in members for h in hosts)


@dataclass(frozen=True)
class MulticastTree:
    """The routed shape of one switch-replicated send.

    The root pushes each chunk *once* through ``up_ports`` to
    ``switch``; the switch replicates it down every receiving host's
    ``down_ports``.  Empty port tuples mean the corresponding segment
    is non-blocking (no contended resource between NIC and switch).
    """

    switch: str
    up_ports: tuple[str, ...]
    #: per receiving host: contended ports between the switch and its NIC
    down_ports: tuple[tuple[int, tuple[str, ...]], ...]
    up_latency: float
    down_latency: float

    def down_ports_of(self, host: int) -> tuple[str, ...]:
        for h, ports in self.down_ports:
            if h == host:
                return ports
        raise KeyError(f"host {host} is not a leaf of this multicast tree")


class Topology(ABC):
    """Abstract cluster shape: pure description, no timing behaviour.

    Implementations are frozen dataclasses so ``repr`` is canonical —
    the compiler's plan cache keys on it, and two specs with equal
    topology reprs hash identically.
    """

    name: str = "abstract"

    def validate(self, spec: "ClusterSpec") -> None:
        """Raise ``ValueError`` when the spec does not fit this shape."""

    @abstractmethod
    def path(
        self, spec: "ClusterSpec", src_host: int, dst_host: int
    ) -> tuple[Link, ...]:
        """Links between ``src_host``'s NIC and ``dst_host``'s NIC.

        Raises :class:`NoRouteError` when the hosts are disconnected.
        """

    def device_path(
        self,
        spec: "ClusterSpec",
        src_host: int,
        dst_host: int,
        src_local: int,
        dst_local: int,
    ) -> tuple[Link, ...]:
        """Device-aware routing hook; defaults to the host-level path.

        Rail-optimized shapes override this: the rail a flow rides
        depends on the *local device index*, not just the host pair.
        """
        return self.path(spec, src_host, dst_host)

    def switches(self, spec: "ClusterSpec") -> tuple[Switch, ...]:
        """Enumerable switch nodes (empty: no replication points)."""
        return ()

    @abstractmethod
    def bisection_bandwidth(self, spec: "ClusterSpec") -> float:
        """Aggregate bandwidth across a worst-case even host bisection."""

    def __repr__(self) -> str:  # frozen-dataclass subclasses override
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class TwoTierTopology(Topology):
    """The paper's baseline shape: non-blocking fabric, NIC bottleneck.

    The single "core" link is uncontended and infinitely wide, so the
    flow simulator sees exactly the pre-refactor port set (device ports
    plus the two endpoint NICs) and the same latency constant — the
    golden fig5/6/7 makespans are byte-identical under this topology.
    """

    name: str = "two_tier"

    def path(
        self, spec: "ClusterSpec", src_host: int, dst_host: int
    ) -> tuple[Link, ...]:
        return (
            Link(
                name="sw:core",
                bandwidth=math.inf,
                latency=spec.inter_host_latency,
                switch="core",
                contended=False,
            ),
        )

    def switches(self, spec: "ClusterSpec") -> tuple[Switch, ...]:
        return (
            Switch(
                name="core",
                hosts=tuple(range(spec.n_hosts)),
                kind="spine",
                failure_domain=False,
            ),
        )

    def bisection_bandwidth(self, spec: "ClusterSpec") -> float:
        half = spec.n_hosts // 2
        return half * spec.inter_host_bandwidth


@dataclass(frozen=True)
class FatTreeTopology(Topology):
    """Two-level leaf/spine Clos with configurable oversubscription.

    Hosts are packed ``hosts_per_leaf`` to a leaf switch.  Same-leaf
    traffic is non-blocking.  Cross-leaf traffic traverses the source
    leaf's *uplink* and the destination leaf's *downlink* — contended
    ports of capacity ``hosts_per_leaf * inter_host_bandwidth /
    oversubscription`` each — plus a non-blocking spine.  At
    ``oversubscription=1`` the uplinks never bottleneck below the host
    NICs; at 4:1 four hosts bursting cross-leaf each get a quarter of
    their NIC rate, which is what makes the zoo heatmap's broadcast
    column visibly slower than the non-blocking variant.

    Leaves are failure domains (a leaf wedge downs its hosts together);
    the spine spans everything and is deliberately not one.
    """

    hosts_per_leaf: int = 4
    oversubscription: float = 1.0
    spine_extra_latency: float = 0.0
    name: str = "fat_tree"

    def validate(self, spec: "ClusterSpec") -> None:
        if self.hosts_per_leaf < 1:
            raise ValueError("hosts_per_leaf must be >= 1")
        if not self.oversubscription >= 1.0:
            raise ValueError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )
        if self.spine_extra_latency < 0:
            raise ValueError("spine_extra_latency must be >= 0")

    def leaf_of(self, host: int) -> int:
        return host // self.hosts_per_leaf

    def uplink_bandwidth(self, spec: "ClusterSpec") -> float:
        return (
            self.hosts_per_leaf * spec.inter_host_bandwidth / self.oversubscription
        )

    def path(
        self, spec: "ClusterSpec", src_host: int, dst_host: int
    ) -> tuple[Link, ...]:
        la, lb = self.leaf_of(src_host), self.leaf_of(dst_host)
        if la == lb:
            return (
                Link(
                    name=f"sw:leaf{la}",
                    bandwidth=math.inf,
                    latency=spec.inter_host_latency,
                    switch=f"leaf{la}",
                    contended=False,
                ),
            )
        up_bw = self.uplink_bandwidth(spec)
        return (
            Link(
                name=f"sw:leaf{la}.up",
                bandwidth=up_bw,
                latency=spec.inter_host_latency,
                switch=f"leaf{la}",
            ),
            Link(
                name="sw:spine",
                bandwidth=math.inf,
                latency=self.spine_extra_latency,
                switch="spine",
                contended=False,
            ),
            Link(
                name=f"sw:leaf{lb}.down",
                bandwidth=up_bw,
                latency=0.0,
                switch=f"leaf{lb}",
            ),
        )

    def switches(self, spec: "ClusterSpec") -> tuple[Switch, ...]:
        n_leaves = -(-spec.n_hosts // self.hosts_per_leaf)
        leaves = tuple(
            Switch(
                name=f"leaf{i}",
                hosts=tuple(
                    h
                    for h in range(
                        i * self.hosts_per_leaf,
                        min((i + 1) * self.hosts_per_leaf, spec.n_hosts),
                    )
                ),
                kind="switch",
                failure_domain=True,
            )
            for i in range(n_leaves)
        )
        spine = Switch(
            name="spine",
            hosts=tuple(range(spec.n_hosts)),
            kind="spine",
            failure_domain=False,
        )
        return leaves + (spine,)

    def bisection_bandwidth(self, spec: "ClusterSpec") -> float:
        n_leaves = -(-spec.n_hosts // self.hosts_per_leaf)
        through_spine = (n_leaves // 2 or 1) * self.uplink_bandwidth(spec)
        at_nics = (spec.n_hosts // 2) * spec.inter_host_bandwidth
        return min(through_spine, at_nics)


@dataclass(frozen=True)
class TorusTopology(Topology):
    """2D torus (``rows x cols`` hosts) with dimension-ordered routing.

    Every directed edge between neighbouring hosts is a contended port
    of ``inter_host_bandwidth`` capacity; a multi-hop flow holds every
    edge on its route simultaneously, and each hop adds one
    ``inter_host_latency``.  There are no switches, so the multicast
    backend does not apply — the zoo heatmap's "where broadcast's
    advantage breaks" column.
    """

    rows: int = 2
    cols: int = 2
    name: str = "torus"

    def validate(self, spec: "ClusterSpec") -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("torus dimensions must be >= 1")
        if self.rows * self.cols != spec.n_hosts:
            raise ValueError(
                f"torus is {self.rows}x{self.cols} = {self.rows * self.cols} "
                f"hosts but the spec has {spec.n_hosts}"
            )

    def _coord(self, host: int) -> tuple[int, int]:
        return host // self.cols, host % self.cols

    def _host(self, r: int, c: int) -> int:
        return (r % self.rows) * self.cols + (c % self.cols)

    def _steps(self, frm: int, to: int, size: int) -> list[int]:
        """Signed unit steps along one dimension, shortest wrap wins.

        Ties (exactly half way around an even ring) break toward the
        positive direction so routing is deterministic.
        """
        delta = (to - frm) % size
        if delta == 0:
            return []
        if delta <= size - delta:
            return [+1] * delta
        return [-1] * (size - delta)

    def route(self, src_host: int, dst_host: int) -> list[tuple[int, int]]:
        """Directed edges of the dimension-ordered route (rows first)."""
        (r0, c0), (r1, c1) = self._coord(src_host), self._coord(dst_host)
        edges: list[tuple[int, int]] = []
        r, c = r0, c0
        for step in self._steps(r0, r1, self.rows):
            nxt = self._host(r + step, c)
            edges.append((self._host(r, c), nxt))
            r += step
        for step in self._steps(c0, c1, self.cols):
            nxt = self._host(r, c + step)
            edges.append((self._host(r, c), nxt))
            c += step
        return edges

    def path(
        self, spec: "ClusterSpec", src_host: int, dst_host: int
    ) -> tuple[Link, ...]:
        return tuple(
            Link(
                name=f"tx:{a}>{b}",
                bandwidth=spec.inter_host_bandwidth,
                latency=spec.inter_host_latency,
            )
            for a, b in self.route(src_host, dst_host)
        )

    def bisection_bandwidth(self, spec: "ClusterSpec") -> float:
        # Cutting the torus across its smaller dimension severs two
        # rings' worth of wrap links per row/column on that side.
        return 2.0 * min(self.rows, self.cols) * spec.inter_host_bandwidth


@dataclass(frozen=True)
class RailOptimizedTopology(Topology):
    """One non-blocking rail per local device index (GPU-direct fabrics).

    A cross-host flow between devices with the *same* local index rides
    that index's dedicated rail switch at full NIC rate.  Flows between
    different local indices must cross rails through one shared,
    contended spine port of ``cross_rail_capacity_factor x
    inter_host_bandwidth`` capacity — the rail-optimized penalty for
    misaligned traffic.
    """

    cross_rail_capacity_factor: float = 2.0
    name: str = "rail"

    def validate(self, spec: "ClusterSpec") -> None:
        if not self.cross_rail_capacity_factor > 0:
            raise ValueError("cross_rail_capacity_factor must be positive")

    def path(
        self, spec: "ClusterSpec", src_host: int, dst_host: int
    ) -> tuple[Link, ...]:
        # Host-level callers (scheduler bounds, multicast trees) see the
        # aligned-rail fast path; device-aware routing refines this.
        return (
            Link(
                name="sw:rail0",
                bandwidth=math.inf,
                latency=spec.inter_host_latency,
                switch="rail0",
                contended=False,
            ),
        )

    def device_path(
        self,
        spec: "ClusterSpec",
        src_host: int,
        dst_host: int,
        src_local: int,
        dst_local: int,
    ) -> tuple[Link, ...]:
        if src_local == dst_local:
            return (
                Link(
                    name=f"sw:rail{src_local}",
                    bandwidth=math.inf,
                    latency=spec.inter_host_latency,
                    switch=f"rail{src_local}",
                    contended=False,
                ),
            )
        return (
            Link(
                name="sw:railx",
                bandwidth=self.cross_rail_capacity_factor
                * spec.inter_host_bandwidth,
                latency=spec.inter_host_latency,
                switch="rail0",
            ),
        )

    def switches(self, spec: "ClusterSpec") -> tuple[Switch, ...]:
        return tuple(
            Switch(
                name=f"rail{r}",
                hosts=tuple(range(spec.n_hosts)),
                kind="rail",
                failure_domain=False,
            )
            for r in range(spec.devices_per_host)
        )

    def bisection_bandwidth(self, spec: "ClusterSpec") -> float:
        return (spec.n_hosts // 2) * spec.inter_host_bandwidth


@dataclass(frozen=True)
class IslandTopology(Topology):
    """Disconnected two-tier islands of ``island_size`` hosts each.

    Intra-island traffic behaves like the two-tier baseline; there is
    *no* route between islands — :meth:`path` raises
    :class:`NoRouteError`, which the static analyzer surfaces as a
    ``T003`` diagnostic before any flow is ever submitted.
    """

    island_size: int = 2
    name: str = "island"

    def validate(self, spec: "ClusterSpec") -> None:
        if self.island_size < 1:
            raise ValueError("island_size must be >= 1")

    def island_of(self, host: int) -> int:
        return host // self.island_size

    def path(
        self, spec: "ClusterSpec", src_host: int, dst_host: int
    ) -> tuple[Link, ...]:
        ia, ib = self.island_of(src_host), self.island_of(dst_host)
        if ia != ib:
            raise NoRouteError(
                f"hosts {src_host} and {dst_host} sit on disconnected "
                f"islands {ia} and {ib}"
            )
        return (
            Link(
                name=f"sw:island{ia}",
                bandwidth=math.inf,
                latency=spec.inter_host_latency,
                switch=f"island{ia}",
                contended=False,
            ),
        )

    def switches(self, spec: "ClusterSpec") -> tuple[Switch, ...]:
        n_islands = -(-spec.n_hosts // self.island_size)
        return tuple(
            Switch(
                name=f"island{i}",
                hosts=tuple(
                    h
                    for h in range(
                        i * self.island_size,
                        min((i + 1) * self.island_size, spec.n_hosts),
                    )
                ),
                kind="switch",
                failure_domain=True,
            )
            for i in range(n_islands)
        )

    def bisection_bandwidth(self, spec: "ClusterSpec") -> float:
        return 0.0  # any even bisection separates at least two islands


#: topology factories by name, for the CLI / fixtures / experiments
TOPOLOGIES: Dict[str, Callable[[], Topology]] = {
    "two_tier": TwoTierTopology,
    "fat_tree": FatTreeTopology,
    "torus": TorusTopology,
    "rail": RailOptimizedTopology,
    "island": IslandTopology,
}


def make_topology(name: str, **kwargs: object) -> Topology:
    """Instantiate a zoo topology by name."""
    try:
        factory = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; options: {sorted(TOPOLOGIES)}"
        ) from None
    return factory(**kwargs)  # type: ignore[call-arg]


class BoundTopology:
    """A :class:`Topology` bound to one spec: the single pricing oracle.

    Every "how fast / how far is host a from host b" question in the
    codebase goes through here — the flow simulator's port sets and
    latencies, the scheduler's duration model, the ``LoadTracker``'s
    per-byte weights, and strategy cost heuristics — so per-pair
    ``link_overrides`` and exotic topologies are honoured everywhere at
    once.  Paths are memoized per (src_host, dst_host, locals) key;
    contended-port capacities are registered as paths are first priced.
    """

    def __init__(self, spec: "ClusterSpec") -> None:
        self.spec = spec
        self.topology: Topology = (
            spec.topology if spec.topology is not None else TwoTierTopology()
        )
        self._paths: dict[tuple[int, int, int, int], tuple[Link, ...]] = {}
        self._capacity: dict[str, float] = {}
        self._overrides: dict[tuple[int, int], tuple[Optional[float], Optional[float]]] = {}
        for ov in spec.link_overrides:
            self._overrides[(ov.src_host, ov.dst_host)] = (ov.bandwidth, ov.latency)
            self._overrides[(ov.dst_host, ov.src_host)] = (ov.bandwidth, ov.latency)
        self._switches: Optional[Tuple[Switch, ...]] = None

    # -- path resolution -----------------------------------------------
    def links(
        self, src_host: int, dst_host: int, src_local: int = 0, dst_local: int = 0
    ) -> tuple[Link, ...]:
        """The (override-adjusted) link sequence between two host NICs."""
        key = (src_host, dst_host, src_local, dst_local)
        found = self._paths.get(key)
        if found is not None:
            return found
        links = self.topology.device_path(
            self.spec, src_host, dst_host, src_local, dst_local
        )
        ov = self._overrides.get((src_host, dst_host))
        if ov is not None:
            ov_bw, ov_lat = ov
            latency = ov_lat if ov_lat is not None else sum(l.latency for l in links)
            if ov_bw is not None:
                # A dedicated pipe replaces the fabric path: directional
                # port so full-duplex a->b and b->a never share capacity.
                links = (
                    Link(
                        name=f"ov:{src_host}>{dst_host}",
                        bandwidth=ov_bw,
                        latency=latency,
                    ),
                )
            else:
                links = tuple(
                    Link(
                        name=l.name,
                        bandwidth=l.bandwidth,
                        latency=(latency if i == 0 else 0.0),
                        switch=l.switch,
                        contended=l.contended,
                    )
                    for i, l in enumerate(links)
                )
        for l in links:
            if l.contended:
                self._capacity.setdefault(l.name, l.bandwidth)
        self._paths[key] = links
        return links

    def transit_ports(
        self, src_host: int, dst_host: int, src_local: int = 0, dst_local: int = 0
    ) -> tuple[str, ...]:
        """Contended port names between the two NICs (empty: non-blocking).

        The two-tier baseline returns ``()`` here, which keeps the flow
        simulator's port tuples — and therefore the max-min fixpoint's
        float arithmetic — byte-identical to the pre-refactor model.
        """
        return tuple(
            l.name
            for l in self.links(src_host, dst_host, src_local, dst_local)
            if l.contended
        )

    def path_latency(
        self, src_host: int, dst_host: int, src_local: int = 0, dst_local: int = 0
    ) -> float:
        """Fixed startup latency of one cross-host transfer."""
        links = self.links(src_host, dst_host, src_local, dst_local)
        if len(links) == 1:
            return links[0].latency  # exact: no float summation residue
        return sum(l.latency for l in links)

    def path_bandwidth(
        self, src_host: int, dst_host: int, src_local: int = 0, dst_local: int = 0
    ) -> float:
        """Uncontended bottleneck rate of one cross-host transfer."""
        bws = [
            self.spec.host_nic_bandwidth(src_host),
            self.spec.host_nic_bandwidth(dst_host),
        ]
        bws.extend(
            l.bandwidth for l in self.links(src_host, dst_host, src_local, dst_local)
        )
        return min(bws)

    def port_capacity(self, port: str) -> float:
        """Capacity of a topology-level contended port."""
        try:
            return self._capacity[port]
        except KeyError:
            raise KeyError(f"unknown topology port {port!r}") from None

    def has_route(self, src_host: int, dst_host: int) -> bool:
        """True when the topology connects the two hosts."""
        if src_host == dst_host:
            return True
        try:
            self.links(src_host, dst_host)
        except NoRouteError:
            return False
        return True

    # -- scalar views used by schedulers and cost heuristics -----------
    def host_nic_bandwidth(self, host: int) -> float:
        """NIC bandwidth of ``host`` (override-aware)."""
        return self.spec.host_nic_bandwidth(host)

    @property
    def reference_bandwidth(self) -> float:
        """The nominal inter-host rate used to normalize load weights."""
        return self.spec.inter_host_bandwidth

    @property
    def intra_host_bandwidth(self) -> float:
        return self.spec.intra_host_bandwidth

    def group_bandwidth(self, hosts: Iterable[int]) -> float:
        """Per-port rate of a ring collective over ``hosts``.

        A single-host group runs over NVLink; a multi-host ring is
        bottlenecked by its slowest member pair's path.  Reduces to the
        classic ``intra if one host else inter`` ternary on the two-tier
        baseline, which is exactly the lookup this call dedupes.
        """
        hs = sorted(set(hosts))
        if len(hs) <= 1:
            return self.spec.intra_host_bandwidth
        ring = hs + [hs[0]]
        return min(
            self.path_bandwidth(a, b) for a, b in zip(ring[:-1], ring[1:])
        )

    def ring_bandwidth(
        self,
        sender_host: int,
        receiver_hosts: Iterable[int],
        nic_bw: Callable[[int], float],
    ) -> float:
        """Bottleneck rate of a broadcast ring rooted at ``sender_host``.

        ``nic_bw`` supplies (possibly fault-discounted) per-host NIC
        rates; contended fabric links on each root->receiver path cap
        the result further.  On the two-tier baseline this computes
        ``min(nic(sender), nic(h) for h in receivers)`` — byte-identical
        to the scheduler's previous inline formula.
        """
        bws = [nic_bw(sender_host)]
        for h in receiver_hosts:
            if h == sender_host:
                continue
            bws.append(nic_bw(h))
            bws.extend(
                l.bandwidth for l in self.links(sender_host, h) if l.contended
            )
        return min(bws)

    # -- switches ------------------------------------------------------
    @property
    def switches(self) -> tuple[Switch, ...]:
        if self._switches is None:
            self._switches = self.topology.switches(self.spec)
        return self._switches

    @property
    def has_switches(self) -> bool:
        return bool(self.switches)

    def switch(self, name: str) -> Switch:
        for sw in self.switches:
            if sw.name == name:
                return sw
        raise KeyError(f"no switch named {name!r} in topology {self.topology.name!r}")

    def common_switch(self, root_host: int, hosts: Iterable[int]) -> Optional[Switch]:
        """The most specific switch spanning root and every host, if any.

        "Most specific" = fewest member hosts: a shared leaf beats the
        spine, so multicast replication happens as close to the
        receivers as possible.
        """
        wanted = set(hosts) | {root_host}
        best: Optional[Switch] = None
        for sw in self.switches:
            if sw.spans(wanted):
                if best is None or len(sw.hosts) < len(best.hosts):
                    best = sw
        return best

    def switch_domains(self) -> tuple["FailureDomainLike", ...]:
        """Failure-domain views of the failure-domain-capable switches."""
        from .cluster import FailureDomain

        return tuple(
            FailureDomain(name=sw.name, hosts=sw.hosts, kind="switch")
            for sw in self.switches
            if sw.failure_domain
        )

    def multicast_tree(
        self, root_host: int, dst_hosts: Iterable[int], switch_name: str
    ) -> MulticastTree:
        """Route one switch-replicated send through ``switch_name``.

        Up ports: contended links on the root->switch segment (each
        traversed once per chunk regardless of receiver count — the
        multicast win).  Down ports per host: contended links on the
        switch->host segment.  Segments are derived from the routed
        root->host paths, split at the first link owned by the switch.
        """
        sw = self.switch(switch_name)
        downs: list[tuple[int, tuple[str, ...]]] = []
        up: tuple[str, ...] = ()
        up_latency = self.spec.inter_host_latency
        down_latency = 0.0
        for h in sorted(set(dst_hosts)):
            if h == root_host:
                continue
            links = self.links(root_host, h)
            split = len(links)
            for i, l in enumerate(links):
                if l.switch == sw.name:
                    split = i + 1
                    break
            seg_up = tuple(l.name for l in links[:split] if l.contended)
            seg_down = tuple(l.name for l in links[split:] if l.contended)
            if seg_up and not up:
                up = seg_up
            downs.append((h, seg_down))
            up_latency = max(up_latency, sum(l.latency for l in links[:split]))
            down_latency = max(
                down_latency, sum(l.latency for l in links[split:])
            )
        return MulticastTree(
            switch=sw.name,
            up_ports=up,
            down_ports=tuple(downs),
            up_latency=up_latency,
            down_latency=down_latency,
        )

    def bisection_bandwidth(self) -> float:
        return self.topology.bisection_bandwidth(self.spec)

    def __repr__(self) -> str:
        return f"BoundTopology({self.topology!r}, n_hosts={self.spec.n_hosts})"
