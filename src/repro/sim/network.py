"""Flow-level network simulator with max-min fair bandwidth sharing.

Every transfer between two devices is modelled as a *flow* traversing a
set of full-duplex *ports*:

* ``dev_send(d)`` / ``dev_recv(d)``  — the device's NVLink ports;
* ``nic_send(h)`` / ``nic_recv(h)`` — the host NIC ports, only traversed
  by cross-host flows.

At any instant, concurrent flows share port capacity by progressive
filling (max-min fairness), which captures the paper's assumption that
"when multiple devices in a single host send data to another host, they
compete for the communication bandwidth at the host's network interface"
while a device can send and receive at full rate simultaneously (full
duplex).

Rates are recomputed whenever a flow starts or finishes; the event loop
advances directly to the earliest completion, so simulation cost is
``O(events x flows x ports)`` — comfortably fast for cluster sizes in the
paper (dozens of devices, thousands of flows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .cluster import Cluster
from .events import Event, EventLoop

__all__ = ["Flow", "FlowRecord", "Network"]


@dataclass
class Flow:
    """A point-to-point transfer in flight."""

    flow_id: int
    src: int
    dst: int
    nbytes: float
    remaining: float
    ports: tuple[str, ...]
    on_complete: Optional[Callable[["Flow"], None]] = None
    tag: str = ""
    submit_time: float = 0.0
    start_time: float = -1.0  # when it became active (post-latency)
    finish_time: float = -1.0
    rate: float = 0.0

    @property
    def done(self) -> bool:
        return self.finish_time >= 0.0


@dataclass(frozen=True)
class FlowRecord:
    """Immutable trace entry for a completed flow."""

    flow_id: int
    src: int
    dst: int
    nbytes: float
    submit_time: float
    start_time: float
    finish_time: float
    tag: str = ""

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time


class Network:
    """Simulates timed data transfers over a :class:`Cluster`.

    Flows are submitted with :meth:`start_flow`; their completion
    callbacks typically submit further flows (that is how the collective
    primitives in :mod:`repro.sim.primitives` chain ring hops).  Call
    ``network.loop.run()`` to drive everything to completion.
    """

    def __init__(self, cluster: Cluster, loop: Optional[EventLoop] = None) -> None:
        self.cluster = cluster
        self.loop = loop if loop is not None else EventLoop()
        self._active: dict[int, Flow] = {}
        self._next_id = 0
        self._completion_event: Optional[Event] = None
        self._expected_finish: list[int] = []
        self._last_update = 0.0
        self.trace: list[FlowRecord] = []
        self.bytes_cross_host = 0.0
        self.bytes_intra_host = 0.0

    # ------------------------------------------------------------------
    # Port model
    # ------------------------------------------------------------------
    def _ports_for(self, src: int, dst: int) -> tuple[str, ...]:
        c = self.cluster
        if c.same_host(src, dst):
            return (f"ds{src}", f"dr{dst}")
        hs, hd = c.host_of(src), c.host_of(dst)
        return (f"ds{src}", f"ns{hs}", f"nr{hd}", f"dr{dst}")

    def _port_capacity(self, port: str) -> float:
        spec = self.cluster.spec
        if port[0] == "d":
            return spec.intra_host_bandwidth
        return spec.host_nic_bandwidth(int(port[2:]))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start_flow(
        self,
        src: int,
        dst: int,
        nbytes: float,
        on_complete: Optional[Callable[[Flow], None]] = None,
        tag: str = "",
        extra_latency: float = 0.0,
    ) -> Flow:
        """Submit a transfer of ``nbytes`` from device ``src`` to ``dst``.

        The flow becomes bandwidth-active after the link's fixed startup
        latency (plus ``extra_latency``, e.g. software overhead), then
        progresses at its max-min fair rate until done.  ``on_complete``
        fires at the finish instant.
        """
        if src == dst:
            raise ValueError("flow source and destination must differ")
        if nbytes < 0:
            raise ValueError(f"negative flow size: {nbytes}")
        flow = Flow(
            flow_id=self._next_id,
            src=src,
            dst=dst,
            nbytes=float(nbytes),
            remaining=float(nbytes),
            ports=self._ports_for(src, dst),
            on_complete=on_complete,
            tag=tag,
            submit_time=self.loop.now,
        )
        self._next_id += 1
        latency = self.cluster.link_latency(src, dst) + extra_latency
        self.loop.call_after(latency, lambda: self._activate(flow))
        return flow

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _activate(self, flow: Flow) -> None:
        self._advance_to_now()
        flow.start_time = self.loop.now
        if flow.remaining <= 0.0:
            self._finish(flow)
        else:
            self._active[flow.flow_id] = flow
        self._reallocate_and_schedule()

    def _advance_to_now(self) -> None:
        """Drain bytes transferred since the last rate update."""
        now = self.loop.now
        dt = now - self._last_update
        if dt > 0.0:
            for f in self._active.values():
                f.remaining = max(0.0, f.remaining - f.rate * dt)
        self._last_update = now

    def _maxmin_rates(self) -> None:
        """Progressive-filling max-min fair allocation over active flows."""
        flows = list(self._active.values())
        if not flows:
            return
        # Port -> remaining capacity and unassigned flow count.
        cap: dict[str, float] = {}
        load: dict[str, int] = {}
        for f in flows:
            f.rate = 0.0
            for p in f.ports:
                if p not in cap:
                    cap[p] = self._port_capacity(p)
                    load[p] = 0
                load[p] += 1
        unassigned = set(self._active.keys())
        while unassigned:
            # Most constrained port: minimal fair share among loaded ports.
            best_port = None
            best_share = float("inf")
            for p, n in load.items():
                if n <= 0:
                    continue
                share = cap[p] / n
                if share < best_share:
                    best_share = share
                    best_port = p
            if best_port is None:  # pragma: no cover - defensive
                break
            # Fix that share for every unassigned flow through best_port.
            fixed = [
                fid
                for fid in unassigned
                if best_port in self._active[fid].ports
            ]
            for fid in fixed:
                f = self._active[fid]
                f.rate = best_share
                unassigned.discard(fid)
                for p in f.ports:
                    cap[p] -= best_share
                    load[p] -= 1
            cap[best_port] = 0.0
            load[best_port] = 0

    def _reallocate_and_schedule(self) -> None:
        self._maxmin_rates()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._active:
            return
        etas = {
            fid: (f.remaining / f.rate if f.rate > 0 else float("inf"))
            for fid, f in self._active.items()
        }
        next_eta = min(etas.values())
        if next_eta == float("inf"):  # pragma: no cover - defensive
            raise RuntimeError("active flows with zero rate: allocation bug")
        # Flows whose ETA ties the minimum (within float tolerance) are
        # force-finished at the event, so rounding residue in `remaining`
        # can never stall the simulation at a fixed timestamp.
        tol = 1e-12 * max(next_eta, 1.0) + 1e-15
        self._expected_finish = [fid for fid, eta in etas.items() if eta <= next_eta + tol]
        self._completion_event = self.loop.call_at(
            self.loop.now + next_eta, self._on_completion
        )

    def _on_completion(self) -> None:
        self._completion_event = None
        self._advance_to_now()
        for fid in self._expected_finish:
            if fid in self._active:
                self._active[fid].remaining = 0.0
        self._expected_finish = []
        finished = [f for f in self._active.values() if f.remaining <= 0.0]
        for f in finished:
            del self._active[f.flow_id]
        # Finish callbacks may submit new flows; they will trigger their
        # own reallocation on activation, but we reallocate here too in
        # case no new flows appear.
        for f in finished:
            self._finish(f)
        self._reallocate_and_schedule()

    def _finish(self, flow: Flow) -> None:
        flow.finish_time = self.loop.now
        flow.remaining = 0.0
        if self.cluster.same_host(flow.src, flow.dst):
            self.bytes_intra_host += flow.nbytes
        else:
            self.bytes_cross_host += flow.nbytes
        self.trace.append(
            FlowRecord(
                flow_id=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                nbytes=flow.nbytes,
                submit_time=flow.submit_time,
                start_time=flow.start_time,
                finish_time=flow.finish_time,
                tag=flow.tag,
            )
        )
        if flow.on_complete is not None:
            flow.on_complete(flow)

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._active)

    def run(self, until: Optional[float] = None) -> float:
        """Drive the event loop until all flows complete."""
        return self.loop.run(until=until)
