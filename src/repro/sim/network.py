"""Flow-level network simulator with max-min fair bandwidth sharing.

Every transfer between two devices is modelled as a *flow* traversing a
set of full-duplex *ports*:

* ``dev_send(d)`` / ``dev_recv(d)``  — the device's NVLink ports;
* ``nic_send(h)`` / ``nic_recv(h)`` — the host NIC ports, only traversed
  by cross-host flows.

At any instant, concurrent flows share port capacity by progressive
filling (max-min fairness), which captures the paper's assumption that
"when multiple devices in a single host send data to another host, they
compete for the communication bandwidth at the host's network interface"
while a device can send and receive at full rate simultaneously (full
duplex).

Rates are recomputed whenever a flow starts or finishes; the event loop
advances directly to the earliest completion, so simulation cost is
``O(events x flows x ports)`` — comfortably fast for cluster sizes in the
paper (dozens of devices, thousands of flows).

The network runs on the unified runtime kernel
(:class:`~repro.runtime.kernel.Kernel`) and reports through its
telemetry bus: every delivered/failed/abandoned flow attempt is emitted
as a ``cat="flow"`` span, byte totals are counters, and fault incidents
are marks.  ``Network.trace`` is a *derived view* over those spans (the
legacy :class:`FlowRecord` format), not separate bookkeeping.

**Fault tolerance** (optional): constructed with a
:class:`~repro.sim.faults.FaultSchedule`, the network becomes lossy —
NIC capacities vary over time (degradation windows), flows through a
flapped-down NIC fail mid-flight (partial progress lost) or fail fast on
arrival, and individual deliveries can be dropped.  Failed flows are
retried under a :class:`~repro.sim.faults.RetryPolicy` (bounded
attempts, exponential backoff with deterministic jitter, optional
per-attempt timeout); exhausted flows are *abandoned* and reported via
the ``on_abandon`` callback.  The trace distinguishes first-try
(``ok``), retried-to-success (``retried``), per-attempt ``failed``, and
``abandoned`` records.  Without a schedule every fault hook is skipped,
so the healthy path is byte-identical to the fault-free simulator.

Failure attribution is causal, not just symptomatic: a flow killed by a
correlated :class:`~repro.sim.faults.DomainFailure` records a
``domain-down`` incident, a lone dead host ``host-down``, a flap
``nic-flap``/``nic-down`` — so ``FaultReport.categories()`` can tell a
rack loss from a flaky NIC.  Asymmetric
:class:`~repro.sim.faults.Partition` windows are honoured distinctly
from host-down: affected src→dst flows fail (``partition``) while all
other traffic through the same NICs proceeds at full rate.  Gray
:class:`~repro.sim.faults.CorruptionWindow` events never fail a flow at
all: the delivery completes with normal timing, is marked
``corrupted`` in the trace, and is only caught downstream by per-slice
checksums (:mod:`repro.core.verify_data`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..runtime.kernel import Event, EventLoop, Kernel
from ..runtime.telemetry import SpanRow, TelemetryBus
from .cluster import Cluster
from .faults import FaultIncident, FaultReport, FaultSchedule, RetryPolicy
from .solver import RateSolver, make_solver

__all__ = ["Flow", "FlowRecord", "Network"]


# Slotted: tens of thousands are alive at once in large simulations, and
# the rate solvers touch `rate`/`remaining` on every reallocation.
@dataclass(slots=True)
class Flow:
    """A point-to-point transfer in flight."""

    flow_id: int
    src: int
    dst: int
    nbytes: float
    remaining: float
    ports: tuple[str, ...]
    on_complete: Optional[Callable[["Flow"], None]] = None
    tag: str = ""
    submit_time: float = 0.0
    start_time: float = -1.0  # when it became active (post-latency)
    finish_time: float = -1.0
    rate: float = 0.0
    attempts: int = 1
    abandoned: bool = False
    on_abandon: Optional[Callable[["Flow"], None]] = None
    timeout_event: Optional[Event] = None
    #: fixed startup latency re-applied on every retry attempt
    base_latency: float = 0.0

    @property
    def done(self) -> bool:
        return self.finish_time >= 0.0


@dataclass(frozen=True)
class FlowRecord:
    """Immutable trace entry for one disposition of a flow.

    ``status`` is ``"ok"`` (delivered first try), ``"retried"``
    (delivered after at least one failure), ``"failed"`` (one failed
    attempt; the flow lives on), or ``"abandoned"`` (retry budget
    exhausted, data never delivered).
    """

    flow_id: int
    src: int
    dst: int
    nbytes: float
    submit_time: float
    start_time: float
    finish_time: float
    tag: str = ""
    attempts: int = 1
    status: str = "ok"

    @property
    def duration(self) -> float:
        """Active transfer time; queue-inclusive for never-active flows.

        Flows that never became bandwidth-active (``start_time == -1``,
        e.g. fast-failed against a down NIC) are measured from
        ``submit_time`` instead of producing a nonsensical negative
        value.
        """
        if self.start_time < 0.0:
            return self.finish_time - self.submit_time
        return self.finish_time - self.start_time

    @property
    def queued_time(self) -> float:
        """Time spent between submission and becoming bandwidth-active."""
        active_from = self.start_time if self.start_time >= 0.0 else self.finish_time
        return active_from - self.submit_time


def _flow_record_from_row(row: SpanRow) -> FlowRecord:
    """Rebuild the legacy record from one raw ``cat="flow"`` span row."""
    a = row[7]
    return FlowRecord(
        flow_id=int(a["flow_id"]),  # type: ignore[arg-type]
        src=int(a["src"]),  # type: ignore[arg-type]
        dst=int(a["dst"]),  # type: ignore[arg-type]
        nbytes=float(a["nbytes"]),  # type: ignore[arg-type]
        submit_time=float(a["submit_time"]),  # type: ignore[arg-type]
        start_time=float(a["active_start"]),  # type: ignore[arg-type]
        finish_time=row[4],
        tag=str(a["tag"]),
        attempts=int(a["attempts"]),  # type: ignore[arg-type]
        status=str(a["status"]),
    )


class Network:
    """Simulates timed data transfers over a :class:`Cluster`.

    Flows are submitted with :meth:`start_flow`; their completion
    callbacks typically submit further flows (that is how the collective
    primitives in :mod:`repro.sim.primitives` chain ring hops).  Call
    ``network.loop.run()`` to drive everything to completion.
    """

    def __init__(
        self,
        cluster: Cluster,
        loop: Optional[EventLoop] = None,
        faults: Optional[FaultSchedule] = None,
        retry_policy: Optional[RetryPolicy] = None,
        solver: Union[str, RateSolver, None] = None,
    ) -> None:
        self.cluster = cluster
        self.loop = loop if loop is not None else Kernel()
        self.bus: TelemetryBus = (
            self.loop.bus
            if isinstance(self.loop, Kernel)
            else TelemetryBus(clock=lambda: self.loop.now)
        )
        self._active: dict[int, Flow] = {}
        #: the max-min fixpoint backend (see :mod:`repro.sim.solver`);
        #: "scalar" | "vector" | "adaptive" (default) or an instance
        self.solver: RateSolver = make_solver(solver)
        self.solver.attach(self)
        self._next_id = 0
        self._completion_event: Optional[Event] = None
        self._expected_finish: list[int] = []
        self._last_update = 0.0
        self._trace_view: list[FlowRecord] = []
        self._trace_cursor = 0
        self.bytes_cross_host = 0.0
        self.bytes_intra_host = 0.0
        self._c_cross = self.bus.counter("bytes_cross_host", track="net")
        self._c_intra = self.bus.counter("bytes_intra_host", track="net")
        # -- fault tolerance (all no-ops when faults is None) ----------
        self.faults = faults
        self.retry_policy = retry_policy or RetryPolicy()
        self.n_failures = 0
        self.n_retries = 0
        self.n_abandoned = 0
        self.wasted_bytes = 0.0  # transferred by attempts that failed
        self.added_latency = 0.0  # estimated time lost to faults
        self.incidents: list[FaultIncident] = []
        self.n_corrupted = 0
        #: (tag, flow_id) of deliveries that completed with bad bytes —
        #: the executor joins these against CommOp checksums
        self.corrupted_flows: list[tuple[str, int]] = []
        if faults is not None:
            # NIC capacity is piecewise-constant between fault window
            # boundaries; revisit rate allocation (and kill flows caught
            # on a flapped NIC) exactly at those instants.
            for b in faults.boundaries():
                if b > self.loop.now:
                    self.loop.call_at(b, self._on_fault_boundary)

    # ------------------------------------------------------------------
    # Port model
    # ------------------------------------------------------------------
    def _ports_for(self, src: int, dst: int) -> tuple[str, ...]:
        c = self.cluster
        if c.same_host(src, dst):
            return (f"ds{src}", f"dr{dst}")
        a, b = c.device(src), c.device(dst)
        # Contended fabric ports (switch uplinks, torus edges, override
        # pipes) sit between the two NICs.  The two-tier baseline has
        # none, so its port tuples — and the max-min fixpoint's float
        # arithmetic — are byte-identical to the pre-topology model.
        mid = c.topo.transit_ports(a.host_id, b.host_id, a.local_id, b.local_id)
        return (f"ds{src}", f"ns{a.host_id}") + mid + (f"nr{b.host_id}", f"dr{dst}")

    def _port_capacity(self, port: str) -> float:
        spec = self.cluster.spec
        if port[0] == "d":
            return spec.intra_host_bandwidth
        if port[0] == "n":
            bw = spec.host_nic_bandwidth(int(port[2:]))
            if self.faults is not None:
                bw *= self.faults.nic_factor(int(port[2:]), self.loop.now)
            return bw
        return self.cluster.topo.port_capacity(port)

    def _nic_down_for(self, flow: Flow) -> bool:
        """True if any NIC port the flow traverses is flapped down now."""
        assert self.faults is not None
        now = self.loop.now
        return any(
            p[0] == "n" and self.faults.host_down(int(p[2:]), now)
            for p in flow.ports
        )

    def _down_reason_for(self, flow: Flow, flap_kind: str) -> Optional[str]:
        """Causal incident kind if a traversed NIC is down, else None.

        Priority: a correlated domain outage beats an independent host
        death beats a flap — when several explanations overlap, the
        incident blames the widest blast radius.  ``flap_kind`` names the
        flap case ("nic-down" fast-fail vs "nic-flap" mid-flight).
        """
        assert self.faults is not None
        now = self.loop.now
        reason = None
        for p in flow.ports:
            if p[0] != "n":
                continue
            h = int(p[2:])
            if not self.faults.host_down(h, now):
                continue
            if self.faults.failed_domain_of(h, now) is not None:
                return "domain-down"
            if self.faults.host_dead(h, now):
                reason = "host-down"
            elif reason is None:
                reason = flap_kind
        return reason

    def _partition_blocked(self, flow: Flow) -> bool:
        """True while an asymmetric partition blocks this flow's path."""
        assert self.faults is not None
        if not self.faults.partitions:
            return False
        c = self.cluster
        if c.same_host(flow.src, flow.dst):
            return False
        return self.faults.partitioned(
            c.host_of(flow.src), c.host_of(flow.dst), self.loop.now
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start_flow(
        self,
        src: int,
        dst: int,
        nbytes: float,
        on_complete: Optional[Callable[[Flow], None]] = None,
        tag: str = "",
        extra_latency: float = 0.0,
        on_abandon: Optional[Callable[[Flow], None]] = None,
        ports: Optional[tuple[str, ...]] = None,
        latency: Optional[float] = None,
    ) -> Flow:
        """Submit a transfer of ``nbytes`` from device ``src`` to ``dst``.

        The flow becomes bandwidth-active after the link's fixed startup
        latency (plus ``extra_latency``, e.g. software overhead), then
        progresses at its max-min fair rate until done.  ``on_complete``
        fires at the finish instant.  Under fault injection a flow that
        exhausts its retry budget fires ``on_abandon`` instead (never
        both).

        ``ports``/``latency`` override the routed path: collective
        primitives that traverse only a *segment* of the fabric (e.g.
        the switch-replicated legs of a multicast) price exactly the
        resources that segment holds instead of a full device-to-device
        path.
        """
        if src == dst:
            raise ValueError("flow source and destination must differ")
        if nbytes < 0:
            raise ValueError(f"negative flow size: {nbytes}")
        base = (
            latency if latency is not None else self.cluster.link_latency(src, dst)
        )
        flow = Flow(
            flow_id=self._next_id,
            src=src,
            dst=dst,
            nbytes=float(nbytes),
            remaining=float(nbytes),
            ports=ports if ports is not None else self._ports_for(src, dst),
            on_complete=on_complete,
            tag=tag,
            submit_time=self.loop.now,
            on_abandon=on_abandon,
            base_latency=base,
        )
        self._next_id += 1
        self.loop.call_after(base + extra_latency, lambda: self._activate(flow))
        return flow

    # ------------------------------------------------------------------
    # Telemetry: the bus is the source of truth; `trace` is a view
    # ------------------------------------------------------------------
    def _emit_flow(
        self, flow: Flow, status: str, finish_time: Optional[float] = None
    ) -> None:
        """Emit one flow disposition as a ``cat="flow"`` span."""
        finish = flow.finish_time if finish_time is None else finish_time
        start = flow.start_time if flow.start_time >= 0.0 else flow.submit_time
        self.bus.span(
            flow.tag or f"flow{flow.flow_id}",
            "flow",
            f"dev:{flow.src}",
            start,
            finish,
            {
                "flow_id": flow.flow_id,
                "src": flow.src,
                "dst": flow.dst,
                "nbytes": flow.nbytes,
                "submit_time": flow.submit_time,
                "active_start": flow.start_time,
                "attempts": flow.attempts,
                "status": status,
                "tag": flow.tag,
            },
        )

    @property
    def trace(self) -> list[FlowRecord]:
        """Flow dispositions as legacy :class:`FlowRecord`\\ s.

        Derived from the telemetry bus's ``flow`` spans.  The view is
        incremental: a cursor over the bus's raw span rows appends only
        the records emitted since the last access, instead of scanning
        and rebuilding the whole span list every time.
        """
        rows = self.bus.span_rows
        cursor = self._trace_cursor
        if cursor < len(rows):
            view = self._trace_view
            for row in rows[cursor:]:
                if row[1] == "flow":
                    view.append(_flow_record_from_row(row))
            self._trace_cursor = len(rows)
        return self._trace_view

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _activate(self, flow: Flow) -> None:
        self._advance_to_now()
        if self.faults is not None:
            reason = self._down_reason_for(flow, "nic-down")
            if reason is None and self._partition_blocked(flow):
                reason = "partition"
            if reason is not None:
                # Fast-fail: the transfer cannot start (NIC down or the
                # destination is unreachable from here).  start_time
                # stays -1 — the flow never became active.
                self._fail_flow(flow, reason)
                self._reallocate_and_schedule()
                return
        flow.start_time = self.loop.now
        if flow.remaining <= 0.0:
            self._finish(flow)
        else:
            self._active[flow.flow_id] = flow
            self.solver.flow_added(flow)
            self._arm_timeout(flow)
        self._reallocate_and_schedule()

    def _advance_to_now(self) -> None:
        """Drain bytes transferred since the last rate update."""
        now = self.loop.now
        dt = now - self._last_update
        if dt > 0.0:
            for f in self._active.values():
                f.remaining = max(0.0, f.remaining - f.rate * dt)
        self._last_update = now

    def _maxmin_rates(self) -> None:
        """Max-min fair allocation over active flows (via the solver)."""
        self.solver.solve()

    def _reallocate_and_schedule(self) -> None:
        self.solver.solve()
        if not self._active:
            if self._completion_event is not None:
                self._completion_event.cancel()
                self._completion_event = None
            return
        # Two cheap passes instead of building a per-reallocation dict:
        # the first finds the earliest ETA, the second collects ties.
        next_eta = float("inf")
        for f in self._active.values():
            if f.rate > 0:
                eta = f.remaining / f.rate
                if eta < next_eta:
                    next_eta = eta
        if next_eta == float("inf"):  # pragma: no cover - defensive
            raise RuntimeError("active flows with zero rate: allocation bug")
        # Flows whose ETA ties the minimum (within float tolerance) are
        # force-finished at the event, so rounding residue in `remaining`
        # can never stall the simulation at a fixed timestamp.
        bound = next_eta + 1e-12 * max(next_eta, 1.0) + 1e-15
        self._expected_finish = [
            fid
            for fid, f in self._active.items()
            if f.rate > 0 and f.remaining / f.rate <= bound
        ]
        when = self.loop.now + next_eta
        armed = self._completion_event
        if armed is not None:
            if armed.time == when and not armed.cancelled:
                # The completion instant did not move: keep the armed
                # event instead of churning the heap with a cancel +
                # re-push pair (lazy cancellation's common case).
                return
            armed.cancel()
        self._completion_event = self.loop.call_at(when, self._on_completion)

    def _on_completion(self) -> None:
        self._completion_event = None
        self._advance_to_now()
        for fid in self._expected_finish:
            if fid in self._active:
                self._active[fid].remaining = 0.0
        self._expected_finish = []
        finished = [f for f in self._active.values() if f.remaining <= 0.0]
        for f in finished:
            del self._active[f.flow_id]
            self.solver.flow_removed(f)
        # Finish callbacks may submit new flows; they will trigger their
        # own reallocation on activation, but we reallocate here too in
        # case no new flows appear.
        for f in finished:
            self._finish(f)
        self._reallocate_and_schedule()

    def _finish(self, flow: Flow) -> None:
        corrupted = False
        if self.faults is not None:
            self._cancel_timeout(flow)
            if self.faults.should_drop(flow.flow_id, flow.attempts):
                # Lost in transit: the bandwidth was spent, the payload
                # was not delivered — detected at the delivery instant.
                flow.remaining = 0.0
                self._fail_flow(flow, "dropped")
                return
            if self.faults.corruptions:
                # Gray failure: the delivery completes with normal
                # timing but the bytes are bad.  The network does NOT
                # fail or retry the flow — nothing at this layer can
                # see the corruption; only end-to-end checksums
                # (executor + verify_data) catch it downstream.
                hosts = sorted(
                    {int(p[2:]) for p in flow.ports if p[0] == "n"}
                )
                corrupted = self.faults.should_corrupt(
                    hosts, self.loop.now, flow.flow_id, flow.attempts
                )
        flow.finish_time = self.loop.now
        flow.remaining = 0.0
        if self.cluster.same_host(flow.src, flow.dst):
            self.bytes_intra_host += flow.nbytes
            self._c_intra.add(flow.nbytes)
        else:
            self.bytes_cross_host += flow.nbytes
            self._c_cross.add(flow.nbytes)
        if corrupted:
            self.n_corrupted += 1
            self.corrupted_flows.append((flow.tag, flow.flow_id))
            self.incidents.append(
                FaultIncident(
                    kind="corruption",
                    where=(
                        f"flow {flow.flow_id} d{flow.src}->d{flow.dst} "
                        f"[{flow.tag}]"
                    ),
                    time=self.loop.now,
                    attempt=flow.attempts,
                    resolved=False,  # nothing at this layer resolves it
                )
            )
            self._emit_flow(flow, "corrupted")
        else:
            self._emit_flow(flow, "ok" if flow.attempts == 1 else "retried")
        if flow.on_complete is not None:
            flow.on_complete(flow)

    # ------------------------------------------------------------------
    # Fault machinery (reached only when a FaultSchedule is installed)
    # ------------------------------------------------------------------
    def _record(self, flow: Flow, status: str) -> None:
        self._emit_flow(flow, status, finish_time=self.loop.now)

    def _fail_flow(self, flow: Flow, reason: str) -> None:
        """One attempt failed: record it and retry or abandon."""
        if self._active.pop(flow.flow_id, None) is not None:
            self.solver.flow_removed(flow)
        self._cancel_timeout(flow)
        now = self.loop.now
        self.n_failures += 1
        if flow.start_time >= 0.0:
            self.wasted_bytes += flow.nbytes - flow.remaining
        attempt_began = flow.start_time if flow.start_time >= 0.0 else now
        exhausted = self.retry_policy.exhausted(flow.attempts)
        self.incidents.append(
            FaultIncident(
                kind=reason,
                where=f"flow {flow.flow_id} d{flow.src}->d{flow.dst} [{flow.tag}]",
                time=now,
                attempt=flow.attempts,
                resolved=not exhausted,
            )
        )
        if exhausted:
            self.n_abandoned += 1
            flow.abandoned = True
            flow.finish_time = now
            self._record(flow, "abandoned")
            if flow.on_abandon is not None:
                flow.on_abandon(flow)
            return
        self._record(flow, "failed")
        delay = self.retry_policy.backoff(flow.attempts, self.faults.seed, flow.flow_id)
        self.added_latency += (now - attempt_began) + delay
        self.n_retries += 1
        flow.attempts += 1
        flow.remaining = flow.nbytes
        flow.start_time = -1.0
        flow.rate = 0.0
        # The flow's own base latency, not a fresh route lookup: custom-
        # port flows (multicast segments) must retry over the same path.
        self.loop.call_after(
            delay + flow.base_latency, lambda: self._activate(flow)
        )

    def _arm_timeout(self, flow: Flow) -> None:
        if self.faults is None or self.retry_policy.flow_timeout is None:
            return
        attempt = flow.attempts
        flow.timeout_event = self.loop.call_after(
            self.retry_policy.flow_timeout,
            lambda: self._on_flow_timeout(flow, attempt),
        )

    def _cancel_timeout(self, flow: Flow) -> None:
        if flow.timeout_event is not None:
            flow.timeout_event.cancel()
            flow.timeout_event = None

    def _on_flow_timeout(self, flow: Flow, attempt: int) -> None:
        if self._active.get(flow.flow_id) is not flow or flow.attempts != attempt:
            return  # already finished / failed / retried
        self._advance_to_now()
        self._fail_flow(flow, "timeout")
        self._reallocate_and_schedule()

    def _on_fault_boundary(self) -> None:
        """A fault window opened or closed: rates change right now."""
        self._advance_to_now()
        victims: list[tuple[Flow, str]] = []
        for f in self._active.values():
            # Mid-flight kill: partial progress is lost.  Attribution is
            # causal (domain-down > host-down > nic-flap > partition).
            reason = self._down_reason_for(f, "nic-flap")
            if reason is None and self._partition_blocked(f):
                reason = "partition"
            if reason is not None:
                victims.append((f, reason))
        for f, reason in victims:
            self._fail_flow(f, reason)
        self._reallocate_and_schedule()

    def fault_report(self) -> Optional[FaultReport]:
        """Summary of fault activity; ``None`` without a FaultSchedule.

        Gray corruption does *not* move ``status`` here: at the flow
        layer the delivery looked healthy, which is the point of a gray
        failure.  Corruption incidents are in ``incidents`` (and hence
        ``categories()``); the executor escalates the report to fatal
        when per-op checksums expose the bad bytes.
        """
        if self.faults is None:
            return None
        if self.n_abandoned:
            status = "fatal"
        elif self.n_failures:
            status = "recovered"
        else:
            status = "clean"
        return FaultReport(
            status=status,
            n_faults=self.n_failures,
            n_retries=self.n_retries,
            n_abandoned=self.n_abandoned,
            added_latency=self.added_latency,
            incidents=list(self.incidents),
        )

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._active)

    def run(self, until: Optional[float] = None) -> float:
        """Drive the event loop until all flows complete."""
        return self.loop.run(until=until)
