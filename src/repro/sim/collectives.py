"""Additional timed collectives: all-to-all, reduce-scatter, all-reduce.

These complete the §2.1 substrate: *intra-mesh* layout conversion
(resharding within one mesh) is implemented with collective
communication — all-gather (see :mod:`repro.sim.primitives`), all-to-all
for shard-axis swaps, and all-reduce/reduce-scatter for partial-sum
layouts.  All are ring/pairwise algorithms with the standard
bandwidth-optimal costs:

* pairwise all-to-all: each device exchanges ``total/N`` with every
  other device; time ~ ``(N-1)/N * total / bw`` per port;
* ring reduce-scatter: ``N-1`` rounds of ``total/N`` shards;
* ring all-reduce = reduce-scatter + all-gather: ``2 (N-1)/N * total/bw``.
"""

from __future__ import annotations

from typing import Sequence

from .network import Network
from .primitives import (
    CollectiveHandle,
    _empty_handle,
    ring_allgather,
    ring_broadcast,
    switch_multicast,
)

__all__ = ["all_to_all", "reduce_scatter", "all_reduce", "multicast"]


def multicast(
    network: Network,
    root: int,
    receivers: Sequence[int],
    nbytes: float,
    n_chunks: int = 16,
    tag: str = "multicast",
) -> CollectiveHandle:
    """Switch-replicated broadcast with automatic switch selection.

    Picks the most specific topology switch spanning the root's and
    every receiver's host and runs :func:`~repro.sim.primitives
    .switch_multicast` through it; when no switch spans the group (a
    switchless torus, or a fan-out wider than any single switch) it
    degrades to the ring broadcast, which is always routable.
    """
    cluster = network.cluster
    sw = cluster.topo.common_switch(
        cluster.host_of(root), cluster.hosts_of(receivers)
    )
    if sw is None:
        return ring_broadcast(
            network, root, receivers, nbytes, n_chunks=n_chunks, tag=tag
        )
    return switch_multicast(
        network, root, receivers, nbytes, switch=sw.name,
        n_chunks=n_chunks, tag=tag,
    )


def all_to_all(
    network: Network,
    devices: Sequence[int],
    per_pair_bytes: float,
    tag: str = "all_to_all",
) -> CollectiveHandle:
    """Pairwise exchange: every device sends ``per_pair_bytes`` to every
    other device.

    Implemented as ``N-1`` pairwise rounds (round ``r``: device ``i``
    sends to ``i xor``-style partner ``(i + r) mod N``), each round's
    flows running concurrently; rounds are chained per sender so a
    device's NIC handles one outgoing partner at a time.
    """
    devs = list(devices)
    n = len(devs)
    if n <= 1 or per_pair_bytes <= 0:
        return _empty_handle(network, tag)
    handle = CollectiveHandle(network, tag)
    n_rounds = n - 1
    handle._expect(n_rounds * n)

    def start_round(r: int) -> None:
        if r > n_rounds:
            return
        remaining = [n]

        def on_done(_f) -> None:
            handle._flow_done()
            remaining[0] -= 1
            if remaining[0] == 0:
                start_round(r + 1)

        for i in range(n):
            j = (i + r) % n
            network.start_flow(
                devs[i], devs[j], per_pair_bytes, on_done, tag=f"{tag}:r{r}"
            )

    start_round(1)
    handle._seal()
    return handle


def reduce_scatter(
    network: Network,
    devices: Sequence[int],
    total_bytes: float,
    tag: str = "reduce_scatter",
) -> CollectiveHandle:
    """Ring reduce-scatter over ``total_bytes`` of per-device data.

    ``N-1`` rounds; in round ``r`` device ``i`` sends a ``total/N``
    shard (its running partial sum) to device ``i+1``.  Identical
    communication structure to the ring all-gather, so we reuse it for
    timing (reduction compute is not modelled).
    """
    devs = list(devices)
    n = len(devs)
    if n <= 1 or total_bytes <= 0:
        return _empty_handle(network, tag)
    return ring_allgather(network, devs, total_bytes / n, tag=tag)


def all_reduce(
    network: Network,
    devices: Sequence[int],
    total_bytes: float,
    tag: str = "all_reduce",
) -> CollectiveHandle:
    """Ring all-reduce: reduce-scatter followed by all-gather."""
    devs = list(devices)
    n = len(devs)
    if n <= 1 or total_bytes <= 0:
        return _empty_handle(network, tag)
    handle = CollectiveHandle(network, tag)
    handle._expect(2 * n * (n - 1))

    rs = reduce_scatter(network, devs, total_bytes, tag=f"{tag}:rs")

    def count(h: CollectiveHandle) -> None:
        for _ in range(h.n_total):
            handle._flow_done()

    def start_ag(_h: CollectiveHandle) -> None:
        ag = ring_allgather(network, devs, total_bytes / n, tag=f"{tag}:ag")
        ag.add_done_callback(count)

    rs.add_done_callback(count)
    rs.add_done_callback(start_ag)
    handle._seal()
    return handle
