"""Cluster topology model.

Mirrors the testbed of the paper's §5: nodes (hosts) each carrying several
GPUs (devices), fast intra-node interconnect (NVLink) and a slower
inter-node network (Ethernet/InfiniBand) with these properties (paper §3):

* fast intra-node, slow inter-node communication;
* a fully-connected, non-blocking fabric between hosts (bandwidth between a
  host pair is unaffected by other pairs);
* the communication bottleneck sits at each *host's* NIC, not at devices;
* full duplex: separate send and receive bandwidth everywhere.

The classes here are pure topology description; the timing behaviour lives
in :mod:`repro.sim.network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .topology import BoundTopology, Topology

__all__ = [
    "ClusterSpec",
    "FailureDomain",
    "LinkOverride",
    "Device",
    "Host",
    "Cluster",
    "GBPS",
    "GB",
]

GBPS = 1e9 / 8.0  # 1 Gbit/s in bytes/second
GB = 1 << 30  # one gibibyte in bytes

#: failure-domain kinds with a conventional meaning (free-form is allowed)
DOMAIN_KINDS = ("rack", "switch", "pdu", "spine")


@dataclass(frozen=True)
class FailureDomain:
    """A group of hosts sharing one piece of physical infrastructure.

    Hosts in the same rack share a ToR switch and a PDU; a single
    infrastructure fault (switch wedge, breaker trip) takes every member
    down *together*.  Failure domains are pure topology description —
    :class:`repro.sim.faults.DomainFailure` is the event that downs one,
    and the recovery/planning layers consult them to keep replicas
    (buddy checkpoints, broadcast re-roots) out of the blast radius of
    whatever they are guarding against.

    A host may belong to several domains of different kinds (its rack
    *and* its PDU group); two hosts "share a domain" if any domain
    contains both.
    """

    name: str
    hosts: tuple[int, ...]
    kind: str = "rack"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("failure domain needs a non-empty name")
        if not self.hosts:
            raise ValueError(f"failure domain {self.name!r} has no member hosts")
        if len(set(self.hosts)) != len(self.hosts):
            raise ValueError(f"failure domain {self.name!r} lists a host twice")
        for h in self.hosts:
            if not isinstance(h, int) or isinstance(h, bool) or h < 0:
                raise ValueError(
                    f"failure domain {self.name!r}: host ids must be "
                    f"non-negative ints, got {h!r}"
                )
        if not self.kind:
            raise ValueError(f"failure domain {self.name!r} needs a kind")


@dataclass(frozen=True)
class LinkOverride:
    """A per-host-pair deviation from the topology's nominal links.

    Models heterogeneous inter-host links (a pair wired at 25 Gbps in a
    10 Gbps fleet, or a long-haul pair with extra latency) without
    defining a whole new topology.  ``bandwidth=None`` keeps the
    topology's path capacity; ``latency=None`` keeps its path latency.
    Applies to both directions of the pair; each direction gets its own
    full-duplex port in the flow simulator.
    """

    src_host: int
    dst_host: int
    bandwidth: Optional[float] = None
    latency: Optional[float] = None

    def __post_init__(self) -> None:
        for h in (self.src_host, self.dst_host):
            if not isinstance(h, int) or isinstance(h, bool):
                raise ValueError(
                    f"link override host ids must be ints, got {h!r}"
                )
        if self.src_host == self.dst_host:
            raise ValueError(
                f"link override is a self-loop on host {self.src_host} "
                "(intra-host links are not overridable)"
            )
        if self.bandwidth is None and self.latency is None:
            raise ValueError(
                f"link override {self.src_host}<->{self.dst_host} sets "
                "neither bandwidth nor latency"
            )
        if self.bandwidth is not None and not (
            self.bandwidth > 0 and self.bandwidth != float("inf")
        ):
            raise ValueError(
                f"link override {self.src_host}<->{self.dst_host}: bandwidth "
                f"must be positive and finite, got {self.bandwidth}"
            )
        if self.latency is not None and not (
            0 <= self.latency < float("inf")
        ):
            raise ValueError(
                f"link override {self.src_host}<->{self.dst_host}: latency "
                f"must be finite and >= 0, got {self.latency}"
            )


@dataclass(frozen=True)
class ClusterSpec:
    """Parameters of a simulated GPU cluster.

    Defaults reproduce the paper's AWS testbed: p3.8xlarge nodes with
    4 V100 GPUs connected by NVLink, 10 Gbps inter-node bandwidth.

    ``host_bandwidth_overrides`` models heterogeneous networking (one of
    the paper's §1 challenges): a mapping ``host_id -> NIC bandwidth``
    for hosts whose links differ from ``inter_host_bandwidth`` (e.g. a
    mixed 10/25 Gbps fleet).

    ``n_spare_hosts`` marks the *last* k hosts as warm spares: they are
    fully wired into the fabric but carry no work until the elastic
    recovery runtime (:mod:`repro.recovery`) substitutes one for a
    permanently failed host.
    """

    n_hosts: int = 2
    devices_per_host: int = 4
    #: host NIC bandwidth, bytes/s, each direction (full duplex)
    inter_host_bandwidth: float = 10 * GBPS
    #: per-device NVLink bandwidth, bytes/s, each direction
    intra_host_bandwidth: float = 100e9
    #: fixed per-transfer latency across hosts (TCP/IB handshake), seconds
    inter_host_latency: float = 100e-6
    #: fixed per-transfer latency within a host (NVLink/driver), seconds
    intra_host_latency: float = 5e-6
    #: per-host NIC bandwidth overrides, bytes/s (heterogeneous fleets)
    host_bandwidth_overrides: tuple[tuple[int, float], ...] = ()
    #: trailing hosts held back as warm spares for elastic recovery
    n_spare_hosts: int = 0
    #: correlated-failure groups (rack / switch / PDU); a host may appear
    #: in several domains of different kinds
    failure_domains: tuple[FailureDomain, ...] = ()
    #: the inter-host fabric shape; None = the paper's two-tier baseline
    topology: Optional[Topology] = None
    #: per-host-pair bandwidth/latency deviations (heterogeneous links)
    link_overrides: tuple[LinkOverride, ...] = ()
    #: transient resharding-buffer budget, bytes per host; ``None``
    #: disables the M001/M003 peak-memory planning constraint entirely
    memory_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {self.n_hosts}")
        if not 0 <= self.n_spare_hosts < self.n_hosts:
            raise ValueError(
                f"n_spare_hosts must be in [0, n_hosts), got "
                f"{self.n_spare_hosts} of {self.n_hosts}"
            )
        if self.devices_per_host < 1:
            raise ValueError(
                f"devices_per_host must be >= 1, got {self.devices_per_host}"
            )
        if self.inter_host_bandwidth <= 0 or self.intra_host_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.inter_host_latency < 0 or self.intra_host_latency < 0:
            raise ValueError("latencies must be non-negative")
        seen: set[int] = set()
        for host, bw in self.host_bandwidth_overrides:
            if not isinstance(host, int) or isinstance(host, bool):
                raise ValueError(
                    f"override host id must be an int, got {host!r}"
                )
            if not 0 <= host < self.n_hosts:
                raise ValueError(
                    f"override references unknown host {host} "
                    f"(valid: 0..{self.n_hosts - 1})"
                )
            if host in seen:
                raise ValueError(f"duplicate bandwidth override for host {host}")
            seen.add(host)
            if not bw > 0 or bw != bw or bw == float("inf"):
                raise ValueError(
                    f"override bandwidth for host {host} must be a positive "
                    f"finite number of bytes/s, got {bw}"
                )
        names: set[str] = set()
        for dom in self.failure_domains:
            if not isinstance(dom, FailureDomain):
                raise ValueError(
                    f"failure_domains entries must be FailureDomain, got {dom!r}"
                )
            if dom.name in names:
                raise ValueError(f"duplicate failure domain name {dom.name!r}")
            names.add(dom.name)
            for h in dom.hosts:
                if not 0 <= h < self.n_hosts:
                    raise ValueError(
                        f"failure domain {dom.name!r} references unknown host "
                        f"{h} (valid: 0..{self.n_hosts - 1})"
                    )
        if self.topology is not None:
            if not isinstance(self.topology, Topology):
                raise ValueError(
                    f"topology must be a Topology, got {self.topology!r}"
                )
            self.topology.validate(self)
            for dom in self.topology.switches(self):
                if dom.failure_domain and dom.name in names:
                    raise ValueError(
                        f"declared failure domain {dom.name!r} collides with "
                        f"a topology switch domain of the same name"
                    )
        pairs: set[tuple[int, int]] = set()
        for ov in self.link_overrides:
            if not isinstance(ov, LinkOverride):
                raise ValueError(
                    f"link_overrides entries must be LinkOverride, got {ov!r}"
                )
            for h in (ov.src_host, ov.dst_host):
                if not 0 <= h < self.n_hosts:
                    raise ValueError(
                        f"link override {ov.src_host}<->{ov.dst_host} "
                        f"references unknown host {h} "
                        f"(valid: 0..{self.n_hosts - 1})"
                    )
            pair = (min(ov.src_host, ov.dst_host), max(ov.src_host, ov.dst_host))
            if pair in pairs:
                raise ValueError(
                    f"duplicate link override for host pair "
                    f"{pair[0]}<->{pair[1]}"
                )
            pairs.add(pair)
        if self.memory_budget is not None and not (
            self.memory_budget > 0 and self.memory_budget != float("inf")
        ):
            raise ValueError(
                f"memory_budget must be a positive finite number of bytes "
                f"per host (or None to disable), got {self.memory_budget}"
            )

    @property
    def n_devices(self) -> int:
        return self.n_hosts * self.devices_per_host

    @property
    def n_active_hosts(self) -> int:
        """Hosts that carry work from the start (non-spares)."""
        return self.n_hosts - self.n_spare_hosts

    def host_nic_bandwidth(self, host: int) -> float:
        """NIC bandwidth of ``host``, honouring overrides."""
        for h, bw in self.host_bandwidth_overrides:
            if h == host:
                return bw
        return self.inter_host_bandwidth

    # -- failure domains -----------------------------------------------
    @property
    def effective_failure_domains(self) -> tuple[FailureDomain, ...]:
        """Declared domains plus the topology's switch blast radii.

        A topology switch flagged ``failure_domain=True`` (e.g. a
        fat-tree leaf) is a correlated-failure group exactly like a
        declared rack/PDU domain: a wedge downs its member hosts
        together, and re-rooting/replica placement must escape it.  The
        two-tier baseline contributes none (its core switch spans every
        host and is deliberately not a domain), so existing specs
        behave identically.
        """
        if self.topology is None:
            return self.failure_domains
        switch_domains = tuple(
            FailureDomain(name=sw.name, hosts=sw.hosts, kind="switch")
            for sw in self.topology.switches(self)
            if sw.failure_domain
        )
        return self.failure_domains + switch_domains

    def domain(self, name: str) -> FailureDomain:
        """The failure domain called ``name`` (KeyError if unknown)."""
        for dom in self.effective_failure_domains:
            if dom.name == name:
                return dom
        raise KeyError(f"no failure domain named {name!r}")

    def domains_of_host(self, host: int) -> tuple[FailureDomain, ...]:
        """Every failure domain ``host`` belongs to (declaration order)."""
        return tuple(
            d for d in self.effective_failure_domains if host in d.hosts
        )

    def shares_domain(self, a: int, b: int) -> bool:
        """True if any failure domain contains both hosts.

        A host trivially shares every one of its domains with itself;
        callers comparing a host against itself get ``True`` whenever the
        host belongs to at least one domain.
        """
        return any(
            a in d.hosts and b in d.hosts
            for d in self.effective_failure_domains
        )


@dataclass(frozen=True)
class Device:
    """A single accelerator (GPU) in the cluster."""

    device_id: int
    host_id: int
    local_id: int  # index within its host

    def __repr__(self) -> str:  # compact, used heavily in traces
        return f"d{self.device_id}(h{self.host_id})"


@dataclass(frozen=True)
class Host:
    """A node holding several devices and one NIC."""

    host_id: int
    devices: tuple[Device, ...] = field(default_factory=tuple)


class Cluster:
    """A concrete cluster instantiated from a :class:`ClusterSpec`.

    Device ids are global and dense: host ``h`` owns devices
    ``[h * devices_per_host, (h+1) * devices_per_host)``.
    """

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        #: the one pricing oracle for "how fast/far is a from b" queries
        self.topo = BoundTopology(spec)
        self.devices: list[Device] = []
        self.hosts: list[Host] = []
        for h in range(spec.n_hosts):
            devs = tuple(
                Device(device_id=h * spec.devices_per_host + i, host_id=h, local_id=i)
                for i in range(spec.devices_per_host)
            )
            self.hosts.append(Host(host_id=h, devices=devs))
            self.devices.extend(devs)

    # ------------------------------------------------------------------
    def device(self, device_id: int) -> Device:
        if not 0 <= device_id < len(self.devices):
            raise KeyError(f"no device {device_id} in cluster of {len(self.devices)}")
        return self.devices[device_id]

    def host_of(self, device_id: int) -> int:
        """Host id owning ``device_id``."""
        return self.device(device_id).host_id

    def same_host(self, a: int, b: int) -> bool:
        return self.host_of(a) == self.host_of(b)

    def hosts_of(self, device_ids) -> set[int]:
        """The set of host ids covering the given devices."""
        return {self.host_of(d) for d in device_ids}

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    @property
    def active_host_ids(self) -> tuple[int, ...]:
        """Hosts initially carrying work (everything but the spares)."""
        return tuple(range(self.spec.n_active_hosts))

    @property
    def spare_host_ids(self) -> tuple[int, ...]:
        """Warm spare hosts reserved for elastic recovery."""
        return tuple(range(self.spec.n_active_hosts, self.spec.n_hosts))

    # ------------------------------------------------------------------
    def link_bandwidth(self, src: int, dst: int) -> float:
        """Point-to-point bandwidth (bytes/s) between two devices.

        Cross-host pairs are priced by the bound topology (NIC rates,
        contended fabric links, per-pair overrides) — the single lookup
        that used to be three inlined ``intra if same host else inter``
        ternaries.
        """
        if src == dst:
            raise ValueError("no link from a device to itself")
        if self.same_host(src, dst):
            return self.spec.intra_host_bandwidth
        a, b = self.device(src), self.device(dst)
        return self.topo.path_bandwidth(
            a.host_id, b.host_id, a.local_id, b.local_id
        )

    def link_latency(self, src: int, dst: int) -> float:
        """Fixed startup latency (s) between two devices."""
        if src == dst:
            raise ValueError("no link from a device to itself")
        if self.same_host(src, dst):
            return self.spec.intra_host_latency
        a, b = self.device(src), self.device(dst)
        return self.topo.path_latency(
            a.host_id, b.host_id, a.local_id, b.local_id
        )

    def __repr__(self) -> str:
        return (
            f"Cluster(hosts={self.n_hosts}, devices_per_host="
            f"{self.spec.devices_per_host})"
        )
