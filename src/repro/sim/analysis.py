"""Closed-form latency models from the paper's §3.1 (Figure 3).

``t`` is the time to move the object once across a host boundary
(``t = nbytes / inter_host_bandwidth``).  ``A`` is the number of receiving
hosts and ``B`` the number of receiving devices per host.  Intra-node time
is neglected, exactly as in the paper's analysis.

These are used by the E7 bench and by tests that check the simulator
reproduces the analysis, not by the planner itself (the planner measures
costs on the simulator).
"""

from __future__ import annotations

__all__ = [
    "t_cross_host",
    "latency_send_recv",
    "latency_local_allgather",
    "latency_global_allgather",
    "latency_broadcast",
]


def t_cross_host(nbytes: float, inter_host_bandwidth: float) -> float:
    """Time ``t`` to push the object across one host boundary once."""
    if inter_host_bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return nbytes / inter_host_bandwidth


def latency_send_recv(a: int, b: int, t: float) -> float:
    """Naive send/recv to every device: ``T = A * B * t``."""
    return a * b * t


def latency_local_allgather(a: int, b: int, t: float) -> float:
    """Send one copy per host + intra-host all-gather: ``T = A * t``."""
    return a * t


def latency_global_allgather(a: int, b: int, t: float) -> float:
    """Scatter over all devices + global ring all-gather: ``T = 2t``.

    Only valid when receivers span more than one device; a single
    receiver degenerates to a plain send (``t``).
    """
    return 2.0 * t if a * b > 1 else t


def latency_broadcast(a: int, b: int, t: float, n_chunks: int) -> float:
    """Pipelined ring broadcast: ``T = t + A * t / K``."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    return t + a * t / n_chunks
