"""Closed-form latency models from the paper's §3.1 (Figure 3).

``t`` is the time to move the object once across a host boundary
(``t = nbytes / inter_host_bandwidth``).  ``A`` is the number of receiving
hosts and ``B`` the number of receiving devices per host.  Intra-node time
is neglected, exactly as in the paper's analysis.

These are used by the E7 bench and by tests that check the simulator
reproduces the analysis, not by the planner itself (the planner measures
costs on the simulator).

The second half of the module analyses the *measured* side: every
simulator reports through the runtime telemetry bus, so makespans,
per-track busy time and utilization are folded directly from the span
stream (:func:`stream_makespan`, :func:`track_busy_time`,
:func:`track_utilization`) instead of from executor-private lists.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..runtime.telemetry import TelemetryBus

__all__ = [
    "t_cross_host",
    "latency_send_recv",
    "latency_local_allgather",
    "latency_global_allgather",
    "latency_broadcast",
    "stream_makespan",
    "track_busy_time",
    "track_utilization",
]


def t_cross_host(nbytes: float, inter_host_bandwidth: float) -> float:
    """Time ``t`` to push the object across one host boundary once."""
    if inter_host_bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return nbytes / inter_host_bandwidth


def latency_send_recv(a: int, b: int, t: float) -> float:
    """Naive send/recv to every device: ``T = A * B * t``."""
    return a * b * t


def latency_local_allgather(a: int, b: int, t: float) -> float:
    """Send one copy per host + intra-host all-gather: ``T = A * t``."""
    return a * t


def latency_global_allgather(a: int, b: int, t: float) -> float:
    """Scatter over all devices + global ring all-gather: ``T = 2t``.

    Only valid when receivers span more than one device; a single
    receiver degenerates to a plain send (``t``).
    """
    return 2.0 * t if a * b > 1 else t


def latency_broadcast(a: int, b: int, t: float, n_chunks: int) -> float:
    """Pipelined ring broadcast: ``T = t + A * t / K``."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    return t + a * t / n_chunks


# ----------------------------------------------------------------------
# Span-stream analysis (telemetry-bus side)
# ----------------------------------------------------------------------
def stream_makespan(bus: TelemetryBus, cats: Optional[Sequence[str]] = None) -> float:
    """Latest span end in the stream, optionally restricted to ``cats``.

    With ``cats=("compute", "comm")`` this equals the pipeline
    executors' ``iteration_time``; with ``cats=("flow",)`` the network
    makespan.
    """
    wanted = None if cats is None else frozenset(cats)
    return max(
        (s.end for s in bus.spans if wanted is None or s.cat in wanted),
        default=0.0,
    )


def track_busy_time(
    bus: TelemetryBus, cats: Optional[Sequence[str]] = None
) -> dict[str, float]:
    """Total span duration per track (summed in emission order).

    Overlapping spans on one track double-count — callers that need
    exclusive occupancy should restrict ``cats`` to a category the
    emitter serializes (e.g. ``compute``).
    """
    wanted = None if cats is None else frozenset(cats)
    busy: dict[str, float] = {}
    for s in bus.spans:
        if wanted is not None and s.cat not in wanted:
            continue
        busy[s.track] = busy.get(s.track, 0.0) + (s.end - s.start)
    return busy


def track_utilization(
    bus: TelemetryBus, cats: Optional[Sequence[str]] = None
) -> dict[str, float]:
    """Busy fraction per track against the stream makespan."""
    span = stream_makespan(bus, cats)
    if span <= 0:
        return {}
    return {k: v / span for k, v in track_busy_time(bus, cats).items()}
