"""Deterministic fault injection for the simulated cluster.

The paper evaluates broadcast-based resharding on a healthy, fixed-
bandwidth cluster; real fleets are not so kind.  This module models the
failure classes a production deployment of the system would face —

* **link degradation**: a host's NIC runs at a fraction of its nominal
  bandwidth for a window (congestion, cable errors, thermal throttling);
* **host NIC flaps**: a host's NIC is *down* for a window; flows through
  it fail mid-flight and newly arriving flows fail fast;
* **flow drops**: an individual transfer is lost (checksum failure,
  switch buffer overrun) and detected at its expected delivery instant;
* **compute stragglers**: a pipeline stage runs slower than profiled for
  a window (preemption, ECC scrubbing, clock throttling);
* **permanent host failures**: a host dies at an instant and never comes
  back (kernel panic, hardware fault, spot instance reclaim) — the
  fail-stop model behind the elastic recovery runtime in
  :mod:`repro.recovery`.

Everything is **deterministic and replayable**: a :class:`FaultSchedule`
is pure data generated from a seed, and all per-flow decisions (drop or
not, backoff jitter) are derived from seeded hashes of stable ids rather
than global RNG state — two runs with the same schedule produce
byte-identical event traces regardless of wall-clock, process hash
randomization, or interleaving of unrelated work.

The consumers are :class:`repro.sim.network.Network` (flow failures,
retries, time-varying capacity), the strategies (failure-aware sender
selection and re-rooting), and :func:`repro.pipeline.executor
.simulate_pipeline` (stragglers plus a watchdog that re-sends lost
cross-stage messages).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import ClusterSpec

__all__ = [
    "seeded_uniform",
    "DegradedWindow",
    "FlapWindow",
    "StragglerWindow",
    "HostFailure",
    "DomainFailure",
    "Partition",
    "CorruptionWindow",
    "FaultSchedule",
    "RetryPolicy",
    "FaultIncident",
    "FaultReport",
    "FAULT_CATEGORIES",
    "switch_outage",
]


def _uniform(*key) -> float:
    """Deterministic uniform in [0, 1) keyed by ``key``.

    Uses :class:`random.Random` with a string seed (SHA-512 based), so
    the draw is stable across processes and PYTHONHASHSEED values.
    """
    return random.Random(":".join(str(k) for k in key)).random()


def seeded_uniform(*key) -> float:
    """Public alias of :func:`_uniform` for out-of-module consumers.

    The service layer (:mod:`repro.service.chaos`) keys its per-request
    chaos decisions the same way the network keys per-flow drops —
    through one shared deterministic hash, so the whole repo has exactly
    one source of seeded randomness.
    """
    return _uniform(*key)


# ----------------------------------------------------------------------
# Fault windows (pure data)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DegradedWindow:
    """Host NIC runs at ``factor`` x nominal bandwidth during the window."""

    host: int
    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"window duration must be positive, got {self.duration}")
        if not 0.0 < self.factor < 1.0:
            raise ValueError(f"degradation factor must be in (0, 1), got {self.factor}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class FlapWindow:
    """Host NIC is down (zero capacity) during the window."""

    host: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"window duration must be positive, got {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class StragglerWindow:
    """Pipeline stage computes ``slowdown`` x slower during the window."""

    stage: int
    start: float
    duration: float
    slowdown: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"window duration must be positive, got {self.duration}")
        if self.slowdown <= 1.0:
            raise ValueError(f"slowdown must be > 1, got {self.slowdown}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class HostFailure:
    """Host dies permanently at ``time`` (fail-stop; it never recovers).

    Unlike a :class:`FlapWindow` the outage has no end: every flow
    through the host fails from ``time`` on, and the only way forward is
    the elastic recovery runtime (substitute a spare host or shrink the
    placement, then reshard checkpointed state onto the new layout).
    """

    host: int
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"failure time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class DomainFailure:
    """One correlated event downs every host of a failure domain at once.

    ``hosts`` is the member list (snapshot of the
    :class:`repro.sim.cluster.FailureDomain` at schedule-build time, so
    the schedule stays self-contained pure data); ``domain`` names it for
    reporting.  ``duration=None`` is fail-stop: the whole rack dies at
    ``time`` and never comes back (breaker trip, ToR bricked).  A finite
    ``duration`` is a correlated outage window: every member NIC is down
    for the window and comes back (switch reboot).
    """

    domain: str
    hosts: tuple[int, ...]
    time: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.hosts:
            raise ValueError(f"domain failure {self.domain!r} downs no hosts")
        if self.time < 0:
            raise ValueError(f"failure time must be >= 0, got {self.time}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(
                f"domain outage duration must be positive (or None for "
                f"permanent), got {self.duration}"
            )

    @property
    def permanent(self) -> bool:
        return self.duration is None

    @property
    def end(self) -> float:
        return float("inf") if self.duration is None else self.time + self.duration

    def active(self, t: float) -> bool:
        return self.time <= t < self.end


@dataclass(frozen=True)
class Partition:
    """Asymmetric network partition: ``src_hosts`` cannot reach ``dst_hosts``.

    Distinct from host-down: every member NIC keeps full capacity for all
    other traffic, but flows from a source host to a destination host in
    the window fail (fast on admission, killed mid-flight at onset).
    Reachability is *directional* — the reverse path works unless a
    second Partition covers it — modelling gray routing faults
    (asymmetric ACL pushes, one-way link corrosion, split-brain spines).
    """

    src_hosts: tuple[int, ...]
    dst_hosts: tuple[int, ...]
    start: float
    duration: float

    def __post_init__(self) -> None:
        if not self.src_hosts or not self.dst_hosts:
            raise ValueError("partition needs non-empty src and dst host sets")
        if self.duration <= 0:
            raise ValueError(f"window duration must be positive, got {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        return self.start <= t < self.end

    def blocks(self, src_host: int, dst_host: int, t: float) -> bool:
        return (
            self.active(t)
            and src_host in self.src_hosts
            and dst_host in self.dst_hosts
        )


@dataclass(frozen=True)
class CorruptionWindow:
    """Gray NIC: flows through ``host`` complete on time but deliver bad bytes.

    The network simulator never fails these flows — they finish with
    normal timing and the collective proceeds, exactly like a silently
    corrupting NIC/DMA engine.  Detection is end-to-end only: per-slice
    checksums stamped on :class:`repro.core.plan.CommOp` at emission let
    the executor and :mod:`repro.core.verify_data` catch the corruption
    after the fact.  ``rate`` is the per-delivery corruption probability,
    decided by a seeded hash of the flow id.
    """

    host: int
    start: float
    duration: float
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"window duration must be positive, got {self.duration}")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"corruption rate must be in (0, 1], got {self.rate}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


# ----------------------------------------------------------------------
# Schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSchedule:
    """A replayable fault scenario: windows plus a per-flow drop rate.

    The schedule is pure data; :meth:`generate` builds a randomized one
    from a seed, and the same seed always yields the identical schedule.
    ``drop_rate`` applies per delivery attempt, decided by a seeded hash
    of the flow's stable id — independent of submission interleaving.
    """

    seed: int = 0
    degradations: tuple[DegradedWindow, ...] = ()
    flaps: tuple[FlapWindow, ...] = ()
    stragglers: tuple[StragglerWindow, ...] = ()
    drop_rate: float = 0.0
    host_failures: tuple[HostFailure, ...] = ()
    domain_failures: tuple[DomainFailure, ...] = ()
    partitions: tuple[Partition, ...] = ()
    corruptions: tuple[CorruptionWindow, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")

    # -- permanent failures --------------------------------------------
    def host_dead(self, host: int, t: float) -> bool:
        """True once ``host`` has permanently failed at or before ``t``."""
        if any(f.host == host and t >= f.time for f in self.host_failures):
            return True
        return any(
            d.permanent and host in d.hosts and t >= d.time
            for d in self.domain_failures
        )

    def failed_hosts(self, t: float) -> frozenset[int]:
        """Hosts permanently dead at time ``t``."""
        dead = {f.host for f in self.host_failures if t >= f.time}
        for d in self.domain_failures:
            if d.permanent and t >= d.time:
                dead.update(d.hosts)
        return frozenset(dead)

    def first_host_failure(self, after: float = 0.0) -> Optional[HostFailure]:
        """Earliest permanent failure at or after ``after`` (None if clear).

        Permanent :class:`DomainFailure` events count too — each is
        reported as a synthetic :class:`HostFailure` of its lowest member
        host, so the recovery runtime reacts to a rack loss the same way
        it reacts to a lone host death (and then discovers the full
        blast radius via :meth:`failed_hosts`).
        """
        upcoming = [f for f in self.host_failures if f.time >= after]
        upcoming += [
            HostFailure(host=min(d.hosts), time=d.time)
            for d in self.domain_failures
            if d.permanent and d.time >= after
        ]
        return min(upcoming, key=lambda f: (f.time, f.host), default=None)

    def failed_domain_of(self, host: int, t: float) -> Optional[str]:
        """Name of a failure domain downing ``host`` at ``t`` (None if none).

        Covers both permanent and windowed domain failures; used for
        fault attribution (``categories()``) and the F003 analyzer check.
        """
        for d in self.domain_failures:
            if host in d.hosts and d.active(t):
                return d.domain
        return None

    # -- NIC capacity --------------------------------------------------
    def host_down(self, host: int, t: float) -> bool:
        """True while ``host``'s NIC is flapped down — or dead — at ``t``."""
        if self.host_dead(host, t) or any(
            w.host == host and w.active(t) for w in self.flaps
        ):
            return True
        return any(
            not d.permanent and host in d.hosts and d.active(t)
            for d in self.domain_failures
        )

    def host_down_during(self, host: int, start: float, end: float) -> bool:
        """True if ``host`` is flapped or dead anywhere in [start, end)."""
        if any(f.host == host and f.time < end for f in self.host_failures):
            return True
        if any(
            host in d.hosts and d.time < end and start < d.end
            for d in self.domain_failures
        ):
            return True
        return any(
            w.host == host and w.start < end and start < w.end for w in self.flaps
        )

    # -- partitions ----------------------------------------------------
    def partitioned(self, src_host: int, dst_host: int, t: float) -> bool:
        """True while ``src_host`` cannot reach ``dst_host`` at ``t``."""
        return any(p.blocks(src_host, dst_host, t) for p in self.partitions)

    # -- gray corruption -----------------------------------------------
    def corruption_rate(self, host: int, t: float) -> float:
        """Probability a delivery through ``host`` at ``t`` is corrupted.

        Overlapping windows compound as independent corruption sources:
        ``1 - prod(1 - rate)``.
        """
        clean = 1.0
        for w in self.corruptions:
            if w.host == host and w.active(t):
                clean *= 1.0 - w.rate
        return 1.0 - clean

    def should_corrupt(self, hosts, t: float, *key) -> bool:
        """Deterministically decide whether one delivery is corrupted.

        ``hosts`` are the hosts whose NICs the flow traverses; the draw
        is keyed on the schedule seed plus the flow's stable id, so
        replays corrupt the identical deliveries.
        """
        if not self.corruptions:
            return False
        clean = 1.0
        for h in hosts:
            clean *= 1.0 - self.corruption_rate(h, t)
        rate = 1.0 - clean
        if rate <= 0.0:
            return False
        return _uniform(self.seed, "corrupt", *key) < rate

    def nic_factor(self, host: int, t: float) -> float:
        """Capacity multiplier of ``host``'s NIC at ``t`` (0 when down)."""
        if self.host_down(host, t):
            return 0.0
        factor = 1.0
        for w in self.degradations:
            if w.host == host and w.active(t):
                factor *= w.factor
        return factor

    def mean_nic_factor(self, host: int, horizon: Optional[float] = None) -> float:
        """Time-averaged capacity factor of ``host`` over ``[0, horizon]``.

        Used by the failure-aware scheduler load model: a host degraded
        for half the horizon at factor 0.5 looks like a 0.75x host.
        Floored at 1e-6 so fully-flapped hosts stay orderable.
        """
        if horizon is None:
            horizon = self.horizon()
        if horizon <= 0.0:
            # An already-dead host must stay maximally unattractive even
            # over an empty averaging window (e.g. a schedule whose only
            # fault is a failure at t=0, as replanning produces).
            return 1e-6 if self.host_dead(host, 0.0) else 1.0
        cuts = sorted(
            {0.0, horizon}
            | {min(max(b, 0.0), horizon) for b in self.boundaries()}
        )
        acc = 0.0
        for lo, hi in zip(cuts, cuts[1:]):
            if hi > lo:
                acc += self.nic_factor(host, lo) * (hi - lo)
        return max(acc / horizon, 1e-6)

    def boundaries(self) -> tuple[float, ...]:
        """Sorted instants at which any NIC's capacity or reachability changes.

        Partition edges are included even though capacity is untouched:
        the network re-examines in-flight flows at every boundary, which
        is how a partition onset kills flows already crossing it.
        Corruption windows contribute nothing — they are decided at
        delivery time and never change flow timing.
        """
        pts: set[float] = set()
        for w in self.degradations:
            pts.add(w.start)
            pts.add(w.end)
        for w in self.flaps:
            pts.add(w.start)
            pts.add(w.end)
        for f in self.host_failures:
            pts.add(f.time)
        for d in self.domain_failures:
            pts.add(d.time)
            if not d.permanent:
                pts.add(d.end)
        for p in self.partitions:
            pts.add(p.start)
            pts.add(p.end)
        return tuple(sorted(pts))

    def horizon(self) -> float:
        """End of the last fault window (0.0 for an all-clear schedule).

        Permanent failures contribute their onset instant (they have no
        end); the averaging in :meth:`mean_nic_factor` therefore counts a
        dead host's capacity as zero from that instant on.
        """
        ends = [w.end for w in self.degradations + self.flaps + self.stragglers]
        ends += [f.time for f in self.host_failures]
        ends += [d.time if d.permanent else d.end for d in self.domain_failures]
        ends += [p.end for p in self.partitions]
        ends += [w.end for w in self.corruptions]
        return max(ends, default=0.0)

    # -- re-anchoring ---------------------------------------------------
    def shifted(self, origin: float) -> "FaultSchedule":
        """The schedule as seen from a run starting at time ``origin``.

        Each simulated iteration starts its own event loop at t=0 while
        the training run's wall clock keeps advancing; this re-anchors
        every window to the new origin.  Windows fully in the past are
        dropped, windows straddling the origin are clipped to their
        remaining duration, and past permanent failures stay dead at
        t=0 — but are *clipped to one event per victim*: a host that
        failed three times before the origin becomes a single t=0
        failure, not three redundant ones.  ``seed`` and ``drop_rate``
        are preserved.
        """
        if origin < 0:
            raise ValueError(f"origin must be >= 0, got {origin}")
        if origin == 0.0:
            return self

        def clip(windows, make):
            out = []
            for w in windows:
                if w.end <= origin:
                    continue
                start = max(w.start - origin, 0.0)
                out.append(make(w, start, w.end - origin - start))
            return tuple(out)

        # Permanent failures that began before the new origin stay dead
        # at t=0; duplicates per host collapse to the single earliest
        # clamped event (a dead host cannot die again).
        failures: list[HostFailure] = []
        clamped: set[int] = set()
        for f in self.host_failures:
            t = max(f.time - origin, 0.0)
            if t == 0.0:
                if f.host in clamped:
                    continue
                clamped.add(f.host)
            failures.append(HostFailure(f.host, t))

        dom_failures: list[DomainFailure] = []
        dom_clamped: set[str] = set()
        for d in self.domain_failures:
            if d.permanent:
                t = max(d.time - origin, 0.0)
                if t == 0.0:
                    if d.domain in dom_clamped:
                        continue
                    dom_clamped.add(d.domain)
                dom_failures.append(DomainFailure(d.domain, d.hosts, t, None))
            else:
                if d.end <= origin:
                    continue
                start = max(d.time - origin, 0.0)
                dom_failures.append(
                    DomainFailure(d.domain, d.hosts, start, d.end - origin - start)
                )

        return FaultSchedule(
            seed=self.seed,
            degradations=clip(
                self.degradations,
                lambda w, s, d: DegradedWindow(w.host, s, d, w.factor),
            ),
            flaps=clip(self.flaps, lambda w, s, d: FlapWindow(w.host, s, d)),
            stragglers=clip(
                self.stragglers,
                lambda w, s, d: StragglerWindow(w.stage, s, d, w.slowdown),
            ),
            drop_rate=self.drop_rate,
            host_failures=tuple(failures),
            domain_failures=tuple(dom_failures),
            partitions=clip(
                self.partitions,
                lambda p, s, d: Partition(p.src_hosts, p.dst_hosts, s, d),
            ),
            corruptions=clip(
                self.corruptions,
                lambda w, s, d: CorruptionWindow(w.host, s, d, w.rate),
            ),
        )

    # -- per-attempt decisions -----------------------------------------
    def should_drop(self, *key) -> bool:
        """Deterministically decide whether one delivery attempt is lost."""
        if self.drop_rate <= 0.0:
            return False
        return _uniform(self.seed, "drop", *key) < self.drop_rate

    # -- pipeline stragglers -------------------------------------------
    def straggler_factor(self, stage: int, t: float) -> float:
        """Compute-duration multiplier for ``stage`` at time ``t`` (>= 1)."""
        factor = 1.0
        for w in self.stragglers:
            if w.stage == stage and w.active(t):
                factor *= w.slowdown
        return factor

    # -- construction ---------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        n_hosts: int,
        horizon: float,
        n_degradations: int = 2,
        n_flaps: int = 1,
        drop_rate: float = 0.0,
        n_stragglers: int = 0,
        n_stages: int = 0,
        min_factor: float = 0.2,
        max_window_frac: float = 0.25,
        n_host_failures: int = 0,
        domains: tuple = (),
        n_domain_failures: int = 0,
        n_partitions: int = 0,
        n_corruptions: int = 0,
    ) -> "FaultSchedule":
        """Build a randomized, replayable schedule for ``n_hosts`` hosts.

        Window starts, durations, victims, and severities are drawn from
        ``random.Random(seed)``; the same arguments always produce the
        identical schedule.

        The correlated and gray classes draw via :func:`seeded_uniform`
        keyed on ``(seed, class, index)`` instead of the sequential
        stream, so enabling them never perturbs the independent events a
        seed produced before they existed.  ``domains`` (a tuple of
        :class:`repro.sim.cluster.FailureDomain`) supplies the victim
        pool for domain failures and partitions; with it empty,
        ``n_domain_failures`` is ignored and partitions split single
        hosts off the fabric.
        """
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = random.Random(seed)
        max_dur = max_window_frac * horizon
        degradations = tuple(
            DegradedWindow(
                host=rng.randrange(n_hosts),
                start=rng.uniform(0.0, horizon),
                duration=rng.uniform(0.05 * max_dur, max_dur),
                factor=rng.uniform(min_factor, 0.9),
            )
            for _ in range(n_degradations)
        )
        flaps = tuple(
            FlapWindow(
                host=rng.randrange(n_hosts),
                start=rng.uniform(0.0, horizon),
                duration=rng.uniform(0.05 * max_dur, max_dur),
            )
            for _ in range(n_flaps)
        )
        stragglers = tuple(
            StragglerWindow(
                stage=rng.randrange(n_stages),
                start=rng.uniform(0.0, horizon),
                duration=rng.uniform(0.05 * max_dur, max_dur),
                slowdown=rng.uniform(1.5, 4.0),
            )
            for _ in range(n_stragglers if n_stages > 0 else 0)
        )
        failed: list[int] = []
        failures = []
        for _ in range(n_host_failures):
            candidates = [h for h in range(n_hosts) if h not in failed]
            if not candidates:
                break
            host = candidates[rng.randrange(len(candidates))]
            failed.append(host)
            failures.append(HostFailure(host=host, time=rng.uniform(0.0, horizon)))

        # Correlated + gray classes: independent seeded_uniform draws so
        # that n_*=0 reproduces the historical schedule byte-for-byte.
        dom_failures: list[DomainFailure] = []
        struck: list[str] = []
        if domains:
            for i in range(n_domain_failures):
                pool = [d for d in domains if d.name not in struck]
                if not pool:
                    break
                dom = pool[int(_uniform(seed, "domfail", i, "which") * len(pool))]
                struck.append(dom.name)
                onset = _uniform(seed, "domfail", i, "time") * horizon
                permanent = _uniform(seed, "domfail", i, "perm") < 0.5
                duration = None if permanent else (
                    (0.05 + 0.95 * _uniform(seed, "domfail", i, "dur"))
                    * max_window_frac * horizon
                )
                dom_failures.append(
                    DomainFailure(dom.name, tuple(dom.hosts), onset, duration)
                )
        partitions: list[Partition] = []
        for i in range(n_partitions):
            if domains:
                dom = domains[int(_uniform(seed, "part", i, "src") * len(domains))]
                srcs = tuple(dom.hosts)
            else:
                srcs = (int(_uniform(seed, "part", i, "src") * n_hosts),)
            dsts = tuple(h for h in range(n_hosts) if h not in srcs)
            if not dsts:
                continue
            start = _uniform(seed, "part", i, "time") * horizon
            duration = (
                (0.05 + 0.95 * _uniform(seed, "part", i, "dur"))
                * max_window_frac * horizon
            )
            partitions.append(Partition(srcs, dsts, start, duration))
        corruptions = tuple(
            CorruptionWindow(
                host=int(_uniform(seed, "corrwin", i, "host") * n_hosts),
                start=_uniform(seed, "corrwin", i, "time") * horizon,
                duration=(
                    (0.05 + 0.95 * _uniform(seed, "corrwin", i, "dur"))
                    * max_window_frac * horizon
                ),
                rate=0.25 + 0.75 * _uniform(seed, "corrwin", i, "rate"),
            )
            for i in range(n_corruptions)
        )
        return cls(
            seed=seed,
            degradations=degradations,
            flaps=flaps,
            stragglers=stragglers,
            drop_rate=drop_rate,
            host_failures=tuple(failures),
            domain_failures=tuple(dom_failures),
            partitions=tuple(partitions),
            corruptions=corruptions,
        )


def switch_outage(
    spec: "ClusterSpec",
    switch_name: str,
    time: float,
    duration: Optional[float] = None,
) -> DomainFailure:
    """A topology switch going dark, as a :class:`DomainFailure`.

    A switch is a failure domain: when it dies (ToR bricked, firmware
    reboot), every host hanging off it loses connectivity at once.
    This builds the correlated event from the cluster topology's switch
    definition — ``duration=None`` is fail-stop, a finite duration is a
    reboot window — so fault scenarios can name fabric elements instead
    of hand-listing their member hosts.
    """
    from .topology import BoundTopology

    sw = BoundTopology(spec).switch(switch_name)
    return DomainFailure(
        domain=sw.name, hosts=sw.hosts, time=time, duration=duration
    )


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How the runtime retries failed transfers.

    Backoff for attempt ``a`` (1-based; the delay precedes attempt
    ``a+1``) is ``backoff_base * backoff_factor**(a-1)`` stretched by a
    deterministic jitter in ``[0, jitter)`` derived from the flow id —
    retries of concurrent flows de-synchronize identically in every run.
    ``flow_timeout`` bounds how long a single attempt may stay active
    (degraded links can otherwise stretch a transfer arbitrarily);
    ``None`` disables the timeout.
    """

    max_attempts: int = 6
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    jitter: float = 0.25
    flow_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base must be >= 0 and backoff_factor >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.flow_timeout is not None and self.flow_timeout <= 0:
            raise ValueError("flow_timeout must be positive (or None)")

    def backoff(self, attempt: int, *key) -> float:
        """Delay before retrying after failed attempt ``attempt`` (1-based)."""
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter * _uniform("backoff", attempt, *key))

    def exhausted(self, attempt: int) -> bool:
        return attempt >= self.max_attempts


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultIncident:
    """One observed fault: what failed, when, and how it ended."""

    kind: str  # "dropped" | "nic-flap" | "timeout" | "straggler" | ...
    where: str  # e.g. "flow 12 d0->d4", "edge 0 fwd mb3"
    time: float
    attempt: int = 1
    resolved: bool = True


#: stable category keys of :meth:`FaultReport.categories`, in fixed order
FAULT_CATEGORIES = (
    "degraded",
    "flap",
    "drop",
    "straggler",
    "host",
    "domain",
    "partition",
    "corruption",
)

#: incident ``kind`` -> category; unknown kinds land in "drop" (a lost
#: delivery with no finer attribution) so the summary never crashes on a
#: kind added later — but every kind the repo emits is mapped here.
_KIND_CATEGORY = {
    "degraded": "degraded",
    "timeout": "degraded",  # an attempt stretched past its bound
    "nic-flap": "flap",
    "nic-down": "flap",
    "dropped": "drop",
    "message-lost": "drop",
    "straggler": "straggler",
    "host-down": "host",
    "domain-down": "domain",
    "partition": "partition",
    "corruption": "corruption",
}


@dataclass
class FaultReport:
    """Structured outcome of a run under fault injection.

    ``status`` is ``"clean"`` (no fault struck), ``"recovered"`` (faults
    struck, every one was retried to success), or ``"fatal"`` (at least
    one transfer was abandoned / the run could not complete).
    ``added_latency`` estimates the simulated time lost to failed
    attempts and backoff waits.

    Post-hoc status changes (e.g. the plan executor discovering that ops
    never delivered) must go through :meth:`escalate`, never direct
    field mutation, so ``escalations`` keeps an auditable record of who
    demoted the report and from which prior status.
    """

    status: str
    n_faults: int = 0
    n_retries: int = 0
    n_abandoned: int = 0
    added_latency: float = 0.0
    detail: str = ""
    incidents: list[FaultIncident] = field(default_factory=list)
    escalations: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.status not in ("clean", "recovered", "fatal"):
            raise ValueError(f"unknown status {self.status!r}")

    def escalate(self, detail: str) -> None:
        """Escalate this report to ``fatal``, recording the provenance.

        ``detail`` says what was discovered (appended to ``detail``);
        the transition itself is logged in ``escalations`` as
        ``"<old-status>->fatal: <detail>"``.
        """
        if not detail:
            raise ValueError("an escalation must say why")
        self.escalations.append(f"{self.status}->fatal: {detail}")
        self.status = "fatal"
        self.detail = f"{self.detail}; {detail}" if self.detail else detail

    def categories(self) -> dict[str, int]:
        """Incident counts bucketed by stable category.

        Returns every key of :data:`FAULT_CATEGORIES` (zero-filled, fixed
        order) so tests and telemetry consume
        ``report.categories()["partition"]`` instead of string-matching
        incident reprs.  Each incident counts once, under the category of
        its ``kind``.
        """
        out = {c: 0 for c in FAULT_CATEGORIES}
        for inc in self.incidents:
            out[_KIND_CATEGORY.get(inc.kind, "drop")] += 1
        return out

    @property
    def recovered(self) -> bool:
        return self.status == "recovered"

    @property
    def fatal(self) -> bool:
        return self.status == "fatal"

    def __repr__(self) -> str:
        return (
            f"FaultReport({self.status}, faults={self.n_faults}, "
            f"retries={self.n_retries}, abandoned={self.n_abandoned}, "
            f"added_latency={self.added_latency:.6f}s)"
        )
