"""Discrete-event simulation engine.

A minimal, deterministic priority-queue event loop.  All simulated time is
in seconds (float).  Determinism is guaranteed by breaking time ties with a
monotonically increasing sequence number, so two runs over the same inputs
produce identical schedules.

The engine is deliberately tiny: the network model (`repro.sim.network`)
and the pipeline executor (`repro.pipeline.executor`) both drive it with
plain callbacks instead of coroutines, which keeps stack traces shallow and
the hot loop cheap (per the project's "simple vectorized/flat Python"
performance guidance).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["EventLoop", "Event"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap pops them in
    chronological order with FIFO tie-breaking.
    """

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class EventLoop:
    """Deterministic discrete-event loop.

    Usage::

        loop = EventLoop()
        loop.call_at(1.5, lambda: print("hello at t=1.5"))
        loop.run()
        assert loop.now == 1.5
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self.now: float = 0.0
        self._n_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute simulated time ``when``."""
        if when < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule event in the past: {when} < now={self.now}"
            )
        ev = Event(time=max(when, self.now), seq=self._seq, fn=fn)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def call_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.  Returns False when idle."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self.now = ev.time
            self._n_processed += 1
            ev.fn()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains (or simulated time passes ``until``).

        Returns the final simulated time.  ``max_events`` is a runaway
        guard; hitting it raises ``RuntimeError``.
        """
        n = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                break
            if not self.step():
                break
            n += 1
            if n > max_events:
                raise RuntimeError(f"event budget exceeded ({max_events} events)")
        return self.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    @property
    def processed(self) -> int:
        """Total number of events executed so far."""
        return self._n_processed
