"""Compatibility shim: the event engine moved to :mod:`repro.runtime.kernel`.

The deterministic priority-queue loop that used to live here is now the
foundation of the unified runtime kernel (heap-scheduled events with
``(time, seq)`` FIFO tie-breaking, simulated clock, resource tokens,
telemetry bus).  Import :class:`~repro.runtime.kernel.Kernel` for new
code; ``EventLoop``/``Event`` remain importable from here so existing
callers keep working.
"""

from __future__ import annotations

from ..runtime.kernel import Event, EventLoop, Kernel

__all__ = ["EventLoop", "Event", "Kernel"]
