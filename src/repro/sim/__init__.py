"""Simulated GPU cluster: event loop, topology, flow network, collectives.

This package substitutes for the paper's physical testbed (NCCL on a
V100/NVLink/10-Gbps-Ethernet cluster).  See DESIGN.md §2 for the
substitution argument.
"""

from .cluster import GB, GBPS, Cluster, ClusterSpec, Device, FailureDomain, Host
from .collectives import all_reduce, all_to_all, reduce_scatter
from .events import EventLoop
from .faults import (
    FAULT_CATEGORIES,
    CorruptionWindow,
    DegradedWindow,
    DomainFailure,
    FaultIncident,
    FaultReport,
    FaultSchedule,
    FlapWindow,
    HostFailure,
    Partition,
    RetryPolicy,
    StragglerWindow,
)
from .network import Flow, FlowRecord, Network
from .primitives import (
    DEFAULT_BROADCAST_CHUNKS,
    CollectiveHandle,
    p2p,
    ring_allgather,
    ring_broadcast,
    ring_order,
    scatter,
)
from .solver import (
    AdaptiveSolver,
    RateSolver,
    ScalarSolver,
    VectorSolver,
    make_solver,
)

__all__ = [
    "GB",
    "GBPS",
    "Cluster",
    "ClusterSpec",
    "FailureDomain",
    "Device",
    "Host",
    "EventLoop",
    "Flow",
    "FlowRecord",
    "Network",
    "RateSolver",
    "ScalarSolver",
    "VectorSolver",
    "AdaptiveSolver",
    "make_solver",
    "DegradedWindow",
    "FlapWindow",
    "HostFailure",
    "DomainFailure",
    "Partition",
    "CorruptionWindow",
    "StragglerWindow",
    "FAULT_CATEGORIES",
    "FaultSchedule",
    "RetryPolicy",
    "FaultIncident",
    "FaultReport",
    "CollectiveHandle",
    "DEFAULT_BROADCAST_CHUNKS",
    "p2p",
    "ring_allgather",
    "ring_broadcast",
    "ring_order",
    "scatter",
    "all_to_all",
    "reduce_scatter",
    "all_reduce",
]
