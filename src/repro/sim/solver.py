"""Pluggable max-min fair rate solvers for the flow-level simulator.

The progressive-filling fixpoint used to live inline in
``Network._maxmin_rates`` and was rebuilt from scratch — fresh
``cap``/``load`` dicts, a fresh ``unassigned`` set — on *every* rate
reallocation, i.e. on every flow arrival, completion, failure, and fault
boundary.  At thousands of concurrent flows that rebuild (plus the
``O(ports)`` min-share scan and the ``O(flows)`` fixing scan *per
filling round*) dominates simulation wall time.

This module makes the solver a first-class, swappable component:

* :class:`ScalarSolver` — the original algorithm, verbatim.  It remains
  the executable specification: the golden Fig. 5/6/7 numbers pin its
  float arithmetic bit-for-bit.
* :class:`VectorSolver` — a NumPy backend over a flow x port incidence
  structure that is maintained *incrementally* on flow add/remove
  instead of being rebuilt per solve.  Per filling round it does the
  min-share scan, the tie detection, and the capacity subtractions as
  array ops.  It is constructed to produce **bit-equal** rates to the
  scalar solver (see "Bit-equality" below), so switching backends can
  never move a golden number.
* :class:`AdaptiveSolver` — the default: scalar below a crossover flow
  count (NumPy call overhead loses on tiny active sets), vector above
  it.  Because both backends are bit-equal, adaptivity is purely a
  wall-time decision and cannot affect results.

Bit-equality
============

The scalar algorithm's float arithmetic is replicated exactly:

* **Shares** are IEEE-754 double divisions (``cap / load``) in both
  backends; NumPy elementwise division of float64 is the same operation.
* **Port tie-break**: the scalar picks the first minimal-share port in
  ``cap``-dict insertion order, which is "first traversal by the
  earliest-activated active flow, ports in path order".  The vector
  backend keeps a lazy min-heap of ``(activation_seq, path_pos)`` keys
  per port and breaks share ties by that key — the same port wins.
* **Capacity subtraction**: the scalar subtracts the fixed share from a
  port once per fixed flow traversing it, sequentially.  The result
  depends only on the *count* of subtractions per port (ports are
  independent accumulators), and ``np.subtract.at`` — the unbuffered
  ufunc — applies one subtraction per index occurrence, reproducing the
  same sequence of rounding steps.
* **Flow fixing order** inside a round cannot affect rates (every fixed
  flow gets the same share), so the vector backend is free to fix them
  in member-array order while the scalar keeps its sorted walk.

``tests/test_solver_equivalence.py`` holds the property-based pin:
randomized flow/port sets across every topology-zoo fabric must produce
``==``-equal (not approximately equal) rates from both backends.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional, Protocol, Union

import numpy as np
from numpy.typing import NDArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import Flow, Network

__all__ = [
    "RateSolver",
    "ScalarSolver",
    "VectorSolver",
    "AdaptiveSolver",
    "make_solver",
    "VECTOR_THRESHOLD",
]

#: active-flow count at which the adaptive solver switches to NumPy;
#: below it the scalar loop's lower constant factors win.
VECTOR_THRESHOLD = 192

_F64 = NDArray[np.float64]
_I64 = NDArray[np.int64]
_B = NDArray[np.bool_]


class RateSolver(Protocol):
    """Strategy interface: assign a max-min fair ``rate`` to active flows.

    The network calls :meth:`attach` once, then :meth:`flow_added` /
    :meth:`flow_removed` as flows enter and leave the active set (in
    activation order — the order ``Network._active`` iterates), and
    :meth:`solve` whenever rates must be recomputed.  ``solve`` writes
    ``flow.rate`` on every active flow and returns nothing.
    """

    name: str

    def attach(self, network: "Network") -> None: ...

    def flow_added(self, flow: "Flow") -> None: ...

    def flow_removed(self, flow: "Flow") -> None: ...

    def solve(self) -> None: ...


class ScalarSolver:
    """The original progressive-filling loop, kept byte-identical.

    Stateless between solves: rebuilds ``cap``/``load`` dicts from the
    active set each time, exactly as ``Network._maxmin_rates`` always
    did.  This is the executable specification the golden tests pin.
    """

    name = "scalar"

    def __init__(self) -> None:
        self._net: Optional["Network"] = None

    def attach(self, network: "Network") -> None:
        self._net = network

    def flow_added(self, flow: "Flow") -> None:  # noqa: ARG002 - interface
        pass

    def flow_removed(self, flow: "Flow") -> None:  # noqa: ARG002 - interface
        pass

    def solve(self) -> None:
        net = self._net
        assert net is not None
        active = net._active
        flows = list(active.values())
        if not flows:
            return
        # Port -> remaining capacity and unassigned flow count.
        cap: dict[str, float] = {}
        load: dict[str, int] = {}
        for f in flows:
            f.rate = 0.0
            for p in f.ports:
                if p not in cap:
                    cap[p] = net._port_capacity(p)
                    load[p] = 0
                load[p] += 1
        unassigned = set(active.keys())
        while unassigned:
            # Most constrained port: minimal fair share among loaded ports.
            best_port = None
            best_share = float("inf")
            for p, n in load.items():
                if n <= 0:
                    continue
                share = cap[p] / n
                if share < best_share:
                    best_share = share
                    best_port = p
            if best_port is None:  # pragma: no cover - defensive
                break
            # Fix that share for every unassigned flow through best_port.
            # Sorted: the per-port capacity subtractions below are float
            # ops, so a set-order walk would round differently per run.
            fixed = [
                fid for fid in sorted(unassigned) if best_port in active[fid].ports
            ]
            for fid in fixed:
                f = active[fid]
                f.rate = best_share
                unassigned.discard(fid)
                for p in f.ports:
                    cap[p] -= best_share
                    load[p] -= 1
            cap[best_port] = 0.0
            load[best_port] = 0


class VectorSolver:
    """NumPy progressive filling over an incremental incidence structure.

    Persistent state (updated in ``O(path length)`` per flow add/remove,
    never rebuilt per solve):

    * one *column* per distinct port ever traversed — port sets are a
      property of the fabric, so columns are few and stable;
    * ``_cap0`` / ``_base_load`` — static column capacities and the live
      per-column active-flow counts;
    * one *slot* per active flow (slots are free-listed) carrying its
      column indices, both verbatim (for multiplicity-true subtraction)
      and padded to a rectangle (for one-``ravel`` round updates);
    * per-column member arrays (``slot``, ``activation_seq``) for the
      round's "which unassigned flows traverse the bottleneck" query,
      with lazy tombstones and amortized compaction;
    * per-column lazy min-heaps of ``(activation_seq, path_pos, slot)``
      keys implementing the scalar solver's first-seen port tie-break.

    Each solve copies the small column vectors, then runs the filling
    rounds entirely in NumPy; the only per-flow Python work is writing
    the final rates back onto the ``Flow`` objects.
    """

    name = "vector"

    def __init__(self) -> None:
        self._net: Optional["Network"] = None
        # -- columns (port axis); column 0 is the padding sink ----------
        self._port_col: dict[str, int] = {}
        self._port_names: list[str] = ["<pad>"]
        self._ncols = 1
        self._cap0: _F64 = np.zeros(8, dtype=np.float64)
        self._base_load: _I64 = np.zeros(8, dtype=np.int64)
        self._nic_cols: list[int] = []
        # per-column member arrays (slot ids + the activation seq that
        # validates them) and live/dead counts for compaction
        self._m_slot: list[_I64] = [np.zeros(0, dtype=np.int64)]
        self._m_ins: list[_I64] = [np.zeros(0, dtype=np.int64)]
        self._m_n: list[int] = [0]
        self._m_dead: list[int] = [0]
        self._tie: list[list[tuple[int, int, int]]] = [[]]
        # -- slots (flow axis) ------------------------------------------
        self._nslots = 0
        self._alive: _B = np.zeros(0, dtype=np.bool_)
        self._slot_ins: _I64 = np.zeros(0, dtype=np.int64)
        self._rate: _F64 = np.zeros(0, dtype=np.float64)
        self._slot_flow: list[Optional["Flow"]] = []
        self._slot_cols: list[Optional[_I64]] = []
        self._slot_dcols: list[Optional[_I64]] = []
        self._padded: _I64 = np.zeros((0, 6), dtype=np.int64)
        self._free: list[int] = []
        self._slot_of: dict[int, int] = {}
        self._n_active = 0
        self._ins_counter = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        self._net = network

    def _new_col(self, port: str) -> int:
        net = self._net
        assert net is not None
        c = self._ncols
        if c >= self._cap0.shape[0]:
            grow = max(16, 2 * self._cap0.shape[0])
            self._cap0 = np.resize(self._cap0, grow)
            self._base_load = np.resize(self._base_load, grow)
            # np.resize zero-fills only when growing from non-empty; be
            # explicit so stale values can never leak into new columns
            self._cap0[c:] = 0.0
            self._base_load[c:] = 0
        self._ncols = c + 1
        self._port_col[port] = c
        self._port_names.append(port)
        # The static baseline; NIC columns are refreshed per solve when a
        # fault schedule makes their capacity time-varying.
        self._cap0[c] = net._port_capacity(port)
        self._base_load[c] = 0
        if port[0] == "n":
            self._nic_cols.append(c)
        self._m_slot.append(np.zeros(8, dtype=np.int64))
        self._m_ins.append(np.zeros(8, dtype=np.int64))
        self._m_n.append(0)
        self._m_dead.append(0)
        self._tie.append([])
        return c

    def _alloc_slot(self) -> int:
        if self._free:
            return self._free.pop()
        s = self._nslots
        grow = max(16, 2 * s)
        if s >= self._alive.shape[0]:
            self._alive = np.resize(self._alive, grow)
            self._alive[s:] = False
            self._slot_ins = np.resize(self._slot_ins, grow)
            self._rate = np.resize(self._rate, grow)
            width = self._padded.shape[1]
            padded = np.zeros((grow, width), dtype=np.int64)
            padded[:s] = self._padded[:s]
            self._padded = padded
            self._slot_flow.extend([None] * (grow - len(self._slot_flow)))
            self._slot_cols.extend([None] * (grow - len(self._slot_cols)))
            self._slot_dcols.extend([None] * (grow - len(self._slot_dcols)))
        self._nslots = s + 1
        return s

    def _member_append(self, col: int, slot: int, ins: int) -> None:
        n = self._m_n[col]
        arr = self._m_slot[col]
        if n >= arr.shape[0]:
            grow = max(16, 2 * arr.shape[0])
            self._m_slot[col] = np.resize(arr, grow)
            self._m_ins[col] = np.resize(self._m_ins[col], grow)
        self._m_slot[col][n] = slot
        self._m_ins[col][n] = ins
        self._m_n[col] = n + 1

    def _compact_members(self, col: int) -> None:
        n = self._m_n[col]
        rows = self._m_slot[col][:n]
        ins = self._m_ins[col][:n]
        keep = self._alive[rows] & (self._slot_ins[rows] == ins)
        kept_rows = rows[keep]
        kept_ins = ins[keep]
        size = max(8, 2 * kept_rows.shape[0])
        self._m_slot[col] = np.resize(kept_rows, size)
        self._m_ins[col] = np.resize(kept_ins, size)
        self._m_n[col] = int(kept_rows.shape[0])
        self._m_dead[col] = 0

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def flow_added(self, flow: "Flow") -> None:
        self._ins_counter += 1
        ins = self._ins_counter
        slot = self._alloc_slot()
        cols_list: list[int] = []
        seen: set[str] = set()
        dcols_list: list[int] = []
        for pos, p in enumerate(flow.ports):
            c = self._port_col.get(p)
            if c is None:
                c = self._new_col(p)
            cols_list.append(c)
            if p not in seen:
                seen.add(p)
                dcols_list.append(c)
                self._member_append(c, slot, ins)
                heapq.heappush(self._tie[c], (ins, pos, slot))
        cols = np.asarray(cols_list, dtype=np.int64)
        dcols = cols if len(dcols_list) == len(cols_list) else np.asarray(
            dcols_list, dtype=np.int64
        )
        np.add.at(self._base_load, cols, 1)
        if cols.shape[0] > self._padded.shape[1]:
            width = max(cols.shape[0], 2 * self._padded.shape[1])
            padded = np.zeros((self._padded.shape[0], width), dtype=np.int64)
            padded[:, : self._padded.shape[1]] = self._padded
            self._padded = padded
        self._padded[slot, :] = 0
        self._padded[slot, : cols.shape[0]] = cols
        self._slot_cols[slot] = cols
        self._slot_dcols[slot] = dcols
        self._slot_flow[slot] = flow
        self._slot_ins[slot] = ins
        self._alive[slot] = True
        self._rate[slot] = 0.0
        self._slot_of[flow.flow_id] = slot
        self._n_active += 1

    def flow_removed(self, flow: "Flow") -> None:
        slot = self._slot_of.pop(flow.flow_id)
        cols = self._slot_cols[slot]
        dcols = self._slot_dcols[slot]
        assert cols is not None and dcols is not None
        np.subtract.at(self._base_load, cols, 1)
        self._alive[slot] = False
        self._slot_flow[slot] = None
        self._slot_cols[slot] = None
        self._slot_dcols[slot] = None
        self._n_active -= 1
        self._free.append(slot)
        for c in dcols.tolist():
            self._m_dead[c] += 1
            if self._m_dead[c] * 2 > self._m_n[c] and self._m_n[c] >= 16:
                self._compact_members(c)

    # ------------------------------------------------------------------
    # The solve
    # ------------------------------------------------------------------
    def _tie_key(self, col: int) -> tuple[int, int]:
        """First-seen order key of ``col``: earliest (activation, path pos).

        Lazily discards heap entries whose slot died or was recycled.
        """
        h = self._tie[col]
        while h:
            ins, pos, slot = h[0]
            if self._alive[slot] and int(self._slot_ins[slot]) == ins:
                return (ins, pos)
            heapq.heappop(h)
        # Unreachable for a loaded port; order any empty column last.
        return (1 << 62, 0)  # pragma: no cover - defensive

    def solve(self) -> None:
        net = self._net
        assert net is not None
        if self._n_active == 0:
            return
        ncols = self._ncols
        cap = self._cap0[:ncols].copy()
        if net.faults is not None:
            # NIC capacity is piecewise-constant under a fault schedule:
            # refresh exactly those columns at the current instant.
            names = self._port_names
            for c in self._nic_cols:
                cap[c] = net._port_capacity(names[c])
        load = self._base_load[:ncols].copy()
        nslots = self._nslots
        alive = self._alive[:nslots]
        slot_ins = self._slot_ins[:nslots]
        rate = self._rate[:nslots]
        rate[alive] = 0.0
        unassigned = alive.copy()
        remaining = self._n_active
        shares = np.empty(ncols, dtype=np.float64)
        inf = float("inf")
        while remaining:
            shares.fill(inf)
            np.divide(cap, load, out=shares, where=load > 0)
            m = shares.min()
            if m == inf:  # pragma: no cover - defensive (mirrors scalar)
                break
            tied = np.flatnonzero(shares == m)
            if tied.shape[0] == 1:
                best = int(tied[0])
            else:
                # Scalar keeps the first minimal port in first-seen
                # order; the per-column heaps reproduce that order.
                best = min(
                    (int(c) for c in tied), key=lambda c: self._tie_key(c)
                )
            n = self._m_n[best]
            rows = self._m_slot[best][:n]
            mask = unassigned[rows] & (slot_ins[rows] == self._m_ins[best][:n])
            fixed = rows[mask]
            if fixed.shape[0] == 0:  # pragma: no cover - defensive
                break
            rate[fixed] = m
            unassigned[fixed] = False
            remaining -= int(fixed.shape[0])
            # One subtraction per (flow, port) incidence — np.*.at is
            # unbuffered, so repeated columns round exactly like the
            # scalar solver's sequential walk.  Padding hits column 0.
            cols = self._padded[fixed].ravel()
            np.subtract.at(cap, cols, m)
            np.subtract.at(load, cols, 1)
            cap[best] = 0.0
            load[best] = 0
        # Write rates back onto the Flow objects (the only O(flows)
        # Python work per solve).
        slot_flow = self._slot_flow
        for s in np.flatnonzero(alive).tolist():
            f = slot_flow[s]
            assert f is not None
            f.rate = float(rate[s])


class AdaptiveSolver:
    """Scalar below :data:`VECTOR_THRESHOLD` active flows, vector above.

    The vector backend's incidence structures are built lazily the
    first time the active set crosses the threshold (a one-off
    ``O(flows x path length)`` rebuild in activation order) and
    maintained incrementally from then on, so simulations that never
    reach the crossover pay nothing for it.  Both backends are
    bit-equal, so the switch can never change a simulation result.
    """

    name = "adaptive"

    def __init__(self, threshold: int = VECTOR_THRESHOLD) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._net: Optional["Network"] = None
        self._scalar = ScalarSolver()
        self._vector: Optional[VectorSolver] = None

    def attach(self, network: "Network") -> None:
        self._net = network
        self._scalar.attach(network)

    def flow_added(self, flow: "Flow") -> None:
        if self._vector is not None:
            self._vector.flow_added(flow)
            return
        net = self._net
        assert net is not None
        if len(net._active) >= self.threshold:
            # Build in activation order so tie-break keys match the
            # scalar solver's dict-insertion order exactly.
            vec = VectorSolver()
            vec.attach(net)
            for f in net._active.values():
                vec.flow_added(f)
            self._vector = vec

    def flow_removed(self, flow: "Flow") -> None:
        if self._vector is not None:
            self._vector.flow_removed(flow)

    def solve(self) -> None:
        net = self._net
        assert net is not None
        if self._vector is not None and len(net._active) >= self.threshold:
            self._vector.solve()
        else:
            self._scalar.solve()


def make_solver(spec: Union[str, RateSolver, None]) -> RateSolver:
    """Resolve a solver spec: an instance, a backend name, or ``None``.

    Names: ``"scalar"``, ``"vector"``, ``"adaptive"`` (the default for
    ``None``, and what :class:`~repro.sim.network.Network` uses unless
    told otherwise).
    """
    if spec is None:
        return AdaptiveSolver()
    if isinstance(spec, str):
        if spec == "scalar":
            return ScalarSolver()
        if spec == "vector":
            return VectorSolver()
        if spec == "adaptive":
            return AdaptiveSolver()
        raise ValueError(
            f"unknown rate solver {spec!r} (choose scalar | vector | adaptive)"
        )
    return spec
