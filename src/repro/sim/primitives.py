"""Timed communication primitives built from network flows.

These implement, on the flow simulator, the strategies analysed in the
paper's §3.1 / Figure 3:

* :func:`p2p` — plain send/recv;
* :func:`scatter` — one sender splitting an object across receivers;
* :func:`ring_allgather` — the classic bandwidth-optimal ring all-gather
  (NVIDIA, 2018) used by the "Alpa" baseline;
* :func:`ring_broadcast` — the paper's chunk-pipelined ring broadcast, in
  which a receiver starts forwarding a chunk as soon as it has received
  it, achieving latency ``t + A * t / K`` for ``A`` extra host hops and
  ``K`` chunks.

All primitives are asynchronous: they submit flows and chain follow-up
flows from completion callbacks, returning a :class:`CollectiveHandle`
that fires when the whole collective is done.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .cluster import Cluster
from .network import Network

__all__ = [
    "CollectiveHandle",
    "p2p",
    "scatter",
    "ring_allgather",
    "ring_broadcast",
    "switch_multicast",
    "ring_order",
    "split_chunks",
]

#: Default number of pipeline chunks for ring broadcast (paper: "K ~ 100
#: in our experiments").
DEFAULT_BROADCAST_CHUNKS = 64


class CollectiveHandle:
    """Completion tracker for a group of chained flows.

    Under fault injection a constituent flow may be *abandoned* (retry
    budget exhausted); the handle then completes early with
    ``failed=True`` — downstream hops are never submitted and the
    collective's data did not fully arrive, but nothing deadlocks and
    the caller can observe the failure.
    """

    def __init__(self, network: Network, name: str = "") -> None:
        self.network = network
        self.name = name
        self.n_total = 0
        self.n_done = 0
        self.finish_time: float = -1.0
        self.failed = False
        self.fail_reason = ""
        self._sealed = False
        self._callbacks: list[Callable[["CollectiveHandle"], None]] = []

    # -- used by primitive constructors --------------------------------
    def _expect(self, n: int = 1) -> None:
        self.n_total += n

    def _seal(self) -> None:
        """No more flows will be registered; allow completion."""
        self._sealed = True
        self._maybe_finish()

    def _flow_done(self) -> None:
        self.n_done += 1
        self._maybe_finish()

    def _flow_abandoned(self, flow=None) -> None:
        """A constituent flow gave up; fail the whole collective."""
        self._abort(
            f"flow abandoned ({flow.tag})" if flow is not None else "flow abandoned"
        )

    def _abort(self, reason: str) -> None:
        if self.done:
            return
        self.failed = True
        self.fail_reason = reason
        self.finish_time = self.network.loop.now
        for cb in self._callbacks:
            cb(self)

    def _maybe_finish(self) -> None:
        if self._sealed and self.n_done >= self.n_total and self.finish_time < 0:
            self.finish_time = self.network.loop.now
            for cb in self._callbacks:
                cb(self)

    # -- public ---------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.finish_time >= 0.0

    def add_done_callback(self, cb: Callable[["CollectiveHandle"], None]) -> None:
        if self.done:
            cb(self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:
        state = f"done@{self.finish_time:.6f}" if self.done else "pending"
        if self.failed:
            state = f"failed@{self.finish_time:.6f} ({self.fail_reason})"
        return f"CollectiveHandle({self.name!r}, {self.n_done}/{self.n_total}, {state})"


def _empty_handle(network: Network, name: str) -> CollectiveHandle:
    h = CollectiveHandle(network, name)
    h._seal()
    return h


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def ring_order(cluster: Cluster, root: int, receivers: Sequence[int]) -> list[int]:
    """Order ``receivers`` so a ring from ``root`` enters each host once.

    Receivers co-located with the root come first (NVLink hops), then the
    other hosts in ascending id, each host's devices grouped together.
    Grouping by host is what keeps the number of *inter-host* hops equal
    to the number of receiving hosts, the key property behind the
    broadcast strategy's ``t + A*t/K`` latency.
    """
    root_host = cluster.host_of(root)
    by_host: dict[int, list[int]] = {}
    for d in receivers:
        by_host.setdefault(cluster.host_of(d), []).append(d)
    ordered: list[int] = []
    for h in sorted(by_host, key=lambda h: (h != root_host, h)):
        ordered.extend(sorted(by_host[h]))
    return ordered


def split_chunks(nbytes: float, n_chunks: int) -> list[float]:
    """Split ``nbytes`` into ``n_chunks`` near-equal positive chunks."""
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    base = nbytes / n_chunks
    return [base] * n_chunks


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def p2p(
    network: Network,
    src: int,
    dst: int,
    nbytes: float,
    tag: str = "p2p",
) -> CollectiveHandle:
    """Point-to-point send/recv of one message."""
    handle = CollectiveHandle(network, tag)
    handle._expect(1)
    network.start_flow(
        src, dst, nbytes, lambda f: handle._flow_done(), tag=tag,
        on_abandon=handle._flow_abandoned,
    )
    handle._seal()
    return handle


def scatter(
    network: Network,
    root: int,
    receivers: Sequence[int],
    total_bytes: float,
    tag: str = "scatter",
) -> CollectiveHandle:
    """Root sends a distinct ``total/N`` part to each receiver.

    All flows are submitted together and share the root's send ports
    under max-min fairness, so the aggregate takes about
    ``total_bytes / sender_bandwidth`` when the root NIC is the
    bottleneck.
    """
    group = list(receivers)
    remote = [d for d in group if d != root]
    if not group or not remote:
        return _empty_handle(network, tag)
    handle = CollectiveHandle(network, tag)
    part = total_bytes / len(group)  # the root's own part stays local
    handle._expect(len(remote))
    for dst in remote:
        network.start_flow(
            root, dst, part, lambda f: handle._flow_done(), tag=tag,
            on_abandon=handle._flow_abandoned,
        )
    handle._seal()
    return handle


def ring_allgather(
    network: Network,
    devices: Sequence[int],
    shard_bytes: float,
    tag: str = "allgather",
) -> CollectiveHandle:
    """Ring all-gather: each device starts with one ``shard_bytes`` shard.

    ``N-1`` rounds; in round ``j`` device ``i`` forwards to device
    ``i+1`` the shard it received in round ``j-1`` (its own shard in
    round 1).  Devices should already be ring-ordered (see
    :func:`ring_order`) so each host boundary is crossed once per round.
    """
    devs = list(devices)
    n = len(devs)
    if n <= 1 or shard_bytes <= 0:
        return _empty_handle(network, tag)
    handle = CollectiveHandle(network, tag)
    n_rounds = n - 1
    handle._expect(n_rounds * n)

    # done[j][i] == flow of round j from sender index i has completed.
    done = [[False] * n for _ in range(n_rounds + 1)]
    started = [[False] * n for _ in range(n_rounds + 1)]

    def deps_met(j: int, i: int) -> bool:
        if j == 1:
            return True
        return done[j - 1][(i - 1) % n]

    def maybe_start(j: int, i: int) -> None:
        if j > n_rounds or started[j][i] or not deps_met(j, i):
            return
        started[j][i] = True
        src, dst = devs[i], devs[(i + 1) % n]

        def on_done(_f, j=j, i=i) -> None:
            done[j][i] = True
            handle._flow_done()
            maybe_start(j + 1, (i + 1) % n)

        network.start_flow(
            src, dst, shard_bytes, on_done, tag=f"{tag}:r{j}",
            on_abandon=handle._flow_abandoned,
        )

    for i in range(n):
        maybe_start(1, i)
    handle._seal()
    return handle


def ring_broadcast(
    network: Network,
    root: int,
    receivers: Sequence[int],
    nbytes: float,
    n_chunks: int = DEFAULT_BROADCAST_CHUNKS,
    tag: str = "broadcast",
    order: bool = True,
) -> CollectiveHandle:
    """Chunk-pipelined ring broadcast from ``root`` to ``receivers``.

    The object is split into ``n_chunks`` chunks.  Chunk ``c`` travels
    the ring hop by hop; a device forwards chunk ``c`` as soon as it has
    (a) fully received it and (b) finished forwarding chunk ``c-1``, so
    chunks stream through the ring in pipeline fashion.
    """
    recv = [d for d in receivers if d != root]
    if order:
        recv = ring_order(network.cluster, root, recv)
    if not recv or nbytes <= 0:
        return _empty_handle(network, tag)
    ring = [root] + recv
    n_hops = len(ring) - 1
    chunks = split_chunks(nbytes, n_chunks)
    handle = CollectiveHandle(network, tag)
    handle._expect(n_chunks * n_hops)

    done = [[False] * n_hops for _ in range(n_chunks)]
    started = [[False] * n_hops for _ in range(n_chunks)]

    def deps_met(c: int, h: int) -> bool:
        arrived = h == 0 or done[c][h - 1]
        forwarded_prev = c == 0 or done[c - 1][h]
        return arrived and forwarded_prev

    def maybe_start(c: int, h: int) -> None:
        if c >= n_chunks or h >= n_hops or started[c][h] or not deps_met(c, h):
            return
        started[c][h] = True

        def on_done(_f, c=c, h=h) -> None:
            done[c][h] = True
            handle._flow_done()
            maybe_start(c, h + 1)
            maybe_start(c + 1, h)

        network.start_flow(
            ring[h], ring[h + 1], chunks[c], on_done, tag=f"{tag}:c{c}h{h}",
            on_abandon=handle._flow_abandoned,
        )

    maybe_start(0, 0)
    handle._seal()
    return handle


def switch_multicast(
    network: Network,
    root: int,
    receivers: Sequence[int],
    nbytes: float,
    switch: str,
    n_chunks: int = 16,
    tag: str = "multicast",
) -> CollectiveHandle:
    """Switch-replicated broadcast: one upstream traversal per chunk.

    The root pushes each chunk *once* up to ``switch`` (paying its own
    NIC and any contended uplink exactly once, regardless of how many
    hosts receive), and the switch replicates it down every receiving
    host's path concurrently.  Compare the ring broadcast, which drags
    each chunk across ``A`` host boundaries — on an oversubscribed
    fat-tree that is ``A`` paid uplink traversals versus this
    primitive's one.

    Pipelining mirrors :func:`ring_broadcast`: chunk ``c``'s upstream
    leg starts once chunk ``c-1``'s finished; a host's downstream leg
    for chunk ``c`` starts once the chunk reached the switch *and* the
    host finished chunk ``c-1``.  Receivers beyond the first on each
    host are fanned out over NVLink after the last chunk lands; co-
    located receivers get direct intra-host copies.

    Routing comes from :meth:`repro.sim.topology.BoundTopology
    .multicast_tree`; the per-segment flows use explicit port sets so
    only the resources each leg actually holds are contended.
    """
    recv = [d for d in receivers if d != root]
    if not recv or nbytes <= 0:
        return _empty_handle(network, tag)
    cluster = network.cluster
    root_host = cluster.host_of(root)
    local = [d for d in recv if cluster.host_of(d) == root_host]
    by_host: dict[int, list[int]] = {}
    for d in recv:
        h = cluster.host_of(d)
        if h != root_host:
            by_host.setdefault(h, []).append(d)
    hosts = sorted(by_host)

    handle = CollectiveHandle(network, tag)

    for dst in sorted(local):
        handle._expect(1)
        network.start_flow(
            root, dst, nbytes, lambda f: handle._flow_done(),
            tag=f"{tag}:loc{dst}", on_abandon=handle._flow_abandoned,
        )
    if not hosts:
        handle._seal()
        return handle

    tree = cluster.topo.multicast_tree(root_host, hosts, switch)
    chunks = split_chunks(nbytes, n_chunks)
    heads = {h: min(by_host[h]) for h in hosts}

    handle._expect(n_chunks)  # upstream legs
    handle._expect(n_chunks * len(hosts))  # downstream legs
    n_sib = sum(len(by_host[h]) - 1 for h in hosts)
    handle._expect(n_sib)  # NVLink fanout after the last chunk

    up_done = [False] * n_chunks
    down_done = {h: [False] * n_chunks for h in hosts}
    up_started = [False] * n_chunks
    down_started = {h: [False] * n_chunks for h in hosts}

    def fan_out(h: int) -> None:
        head = heads[h]
        for sib in sorted(by_host[h]):
            if sib == head:
                continue
            network.start_flow(
                head, sib, nbytes, lambda f: handle._flow_done(),
                tag=f"{tag}:fan{sib}", on_abandon=handle._flow_abandoned,
            )

    def maybe_start_down(h: int, c: int) -> None:
        if c >= n_chunks or down_started[h][c]:
            return
        if not up_done[c] or (c > 0 and not down_done[h][c - 1]):
            return
        down_started[h][c] = True
        head = heads[h]
        ports = tree.down_ports_of(h) + (f"nr{h}", f"dr{head}")

        def on_done(_f, h=h, c=c) -> None:
            down_done[h][c] = True
            handle._flow_done()
            maybe_start_down(h, c + 1)
            if c == n_chunks - 1:
                fan_out(h)

        network.start_flow(
            root, head, chunks[c], on_done, tag=f"{tag}:c{c}h{h}",
            on_abandon=handle._flow_abandoned,
            ports=ports, latency=tree.down_latency,
        )

    def maybe_start_up(c: int) -> None:
        if c >= n_chunks or up_started[c]:
            return
        if c > 0 and not up_done[c - 1]:
            return
        up_started[c] = True
        ports = (f"ds{root}", f"ns{root_host}") + tree.up_ports

        def on_done(_f, c=c) -> None:
            up_done[c] = True
            handle._flow_done()
            maybe_start_up(c + 1)
            for h in hosts:
                maybe_start_down(h, c)

        network.start_flow(
            root, heads[hosts[0]], chunks[c], on_done, tag=f"{tag}:c{c}u",
            on_abandon=handle._flow_abandoned,
            ports=ports, latency=tree.up_latency,
        )

    maybe_start_up(0)
    handle._seal()
    return handle
