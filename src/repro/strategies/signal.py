"""Signal send/recv — the hypothetical upper bound of §4.

Communicates one byte per (sender, receiver) pair of every unit task,
preserving all compute data dependencies while removing essentially all
communication cost.  Used as the performance ceiling in the end-to-end
evaluation (Fig. 7).  The resulting plan cannot reconstruct the tensor,
so ``data_complete`` is False.
"""

from __future__ import annotations

from ..core.plan import CommPlan, SendOp
from ..core.task import ReshardingTask
from .base import CommStrategy

__all__ = ["SignalStrategy"]


class SignalStrategy(CommStrategy):
    name = "signal"
    data_complete = False

    def __init__(self, granularity: str = "intersection") -> None:
        self.granularity = granularity

    def cache_key(self) -> tuple:
        return (self.name, self.granularity)

    def emit(self, task: ReshardingTask, plan: CommPlan, schedule, load) -> None:
        for ut in task.unit_tasks(self.granularity):
            if not ut.receivers:
                continue
            sender = min(ut.senders)
            for receiver in ut.receivers:
                plan.add(
                    SendOp(
                        op_id=plan.next_op_id,
                        unit_task_id=ut.task_id,
                        region=ut.region,
                        nbytes=1.0,
                        sender=sender,
                        receiver=receiver,
                    )
                )
