"""Broadcast-based resharding — the paper's strategy (§3.1 + §3.2).

Each unit task is served by a single chunk-pipelined ring broadcast from
one sender replica to every receiver that overlaps the slice; receivers
crop their required sub-region locally.  The edge cost of additional
receiving hosts is ``t/K`` per host, so one broadcast per unit task is
enough and latency approaches the lower bound ``t``.

Sender hosts and the launch order of the unit tasks come from a
scheduling algorithm (§3.2); the default is the paper's ensemble of DFS
with pruning and randomized greedy.  The schedule is attached to the
plan so the executor can gate task launches per Eq. 3.

Under a fault schedule, the compiler's ``fault_rewrite`` pass re-roots
unit tasks whose assigned sender host is down onto a surviving replica
host before emission (see :class:`repro.compiler.passes
.FaultRewritePass`); emission then simply follows the (rewritten)
schedule.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..core.plan import BroadcastOp, CommPlan
from ..core.task import ReshardingTask
from ..scheduling import SCHEDULERS, Schedule, SchedulingProblem
from ..sim.faults import FaultSchedule
from .base import CommStrategy

__all__ = ["BroadcastStrategy", "adaptive_chunks", "TARGET_CHUNK_BYTES", "MAX_CHUNKS"]

SchedulerLike = Union[str, Callable[[SchedulingProblem], Schedule]]


#: chunks are sized to amortize per-hop latency; 1 GB messages get the
#: paper's "K ~ 100" while small messages degrade gracefully to few chunks
TARGET_CHUNK_BYTES = 8 << 20
MAX_CHUNKS = 128


def adaptive_chunks(
    nbytes: float,
    target_chunk_bytes: float = TARGET_CHUNK_BYTES,
    max_chunks: int = MAX_CHUNKS,
) -> int:
    """Pick the pipeline chunk count for one broadcast of ``nbytes``."""
    if nbytes <= 0:
        return 1
    return max(1, min(max_chunks, int(nbytes // target_chunk_bytes)))


class BroadcastStrategy(CommStrategy):
    name = "broadcast"
    emit_uses_faults = True
    schedule_uses_faults = True
    reroot_on_faults = True

    def __init__(
        self,
        scheduler: SchedulerLike = "ensemble",
        n_chunks: Optional[int] = None,
        gate_on_schedule: bool = True,
        granularity: str = "intersection",
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        self.granularity = granularity
        self.faults = faults
        if isinstance(scheduler, str):
            if scheduler not in SCHEDULERS:
                raise ValueError(
                    f"unknown scheduler {scheduler!r}; options: {sorted(SCHEDULERS)}"
                )
            self._scheduler = SCHEDULERS[scheduler]
            self.scheduler_name = scheduler
        else:
            self._scheduler = scheduler
            self.scheduler_name = getattr(scheduler, "__name__", "custom")
        if n_chunks is not None and int(n_chunks) < 1:
            raise ValueError("n_chunks must be >= 1")
        self.n_chunks = None if n_chunks is None else int(n_chunks)
        self.gate_on_schedule = gate_on_schedule

    def scheduler_fn(self):
        return self._scheduler

    def cache_key(self) -> Optional[tuple]:
        if SCHEDULERS.get(self.scheduler_name) is not self._scheduler:
            # A user-supplied scheduler callable has no canonical
            # signature; make the compile uncacheable rather than wrong.
            return None
        return (
            self.name,
            self.granularity,
            self.scheduler_name,
            self.n_chunks,
            self.gate_on_schedule,
            repr(self.faults),
        )

    def emit(self, task: ReshardingTask, plan: CommPlan, schedule, load) -> None:
        for ut in task.unit_tasks(self.granularity):
            if not ut.receivers:
                continue
            host = schedule.assignment[ut.task_id]
            sender = load.pick_on_host(ut.senders, host, ut.nbytes)
            plan.add(
                BroadcastOp(
                    op_id=plan.next_op_id,
                    unit_task_id=ut.task_id,
                    region=ut.region,
                    nbytes=ut.nbytes,
                    sender=sender,
                    receivers=ut.receivers,
                    n_chunks=(
                        self.n_chunks
                        if self.n_chunks is not None
                        else adaptive_chunks(ut.nbytes)
                    ),
                )
            )
