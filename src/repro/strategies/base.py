"""Strategy interface: compile a resharding task into a CommPlan."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from typing import Sequence

from ..core.plan import CommPlan
from ..core.task import ReshardingTask

__all__ = ["CommStrategy", "LoadTracker"]


class CommStrategy(ABC):
    """Compiles :class:`ReshardingTask` -> :class:`CommPlan`."""

    #: short identifier used in benchmarks and result tables
    name: str = "abstract"

    @abstractmethod
    def plan(self, task: ReshardingTask) -> CommPlan:
        """Produce the communication plan for one resharding task."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LoadTracker:
    """Greedy sender selection by accumulated outgoing bytes.

    The paper's baselines "do load balancing with a greedy approach
    which picks the sender with the lowest load for the next data
    slice" (§5.1.2); load is tracked at host level (hosts are the
    bottleneck) with per-device load as tie-break.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.host_load: dict[int, float] = defaultdict(float)
        self.device_load: dict[int, float] = defaultdict(float)

    def pick(self, candidates: Sequence[int], nbytes: float) -> int:
        """Choose the least-loaded candidate device and charge it."""
        if not candidates:
            raise ValueError("no sender candidates")
        best = min(
            candidates,
            key=lambda d: (
                self.host_load[self.cluster.host_of(d)],
                self.device_load[d],
                d,
            ),
        )
        self.charge(best, nbytes)
        return best

    def pick_on_host(self, candidates: Sequence[int], host: int, nbytes: float) -> int:
        """Choose the least-loaded candidate on a fixed host."""
        on_host = [d for d in candidates if self.cluster.host_of(d) == host]
        if not on_host:
            raise ValueError(f"no sender candidate on host {host}")
        best = min(on_host, key=lambda d: (self.device_load[d], d))
        self.charge(best, nbytes)
        return best

    def charge(self, device: int, nbytes: float) -> None:
        self.device_load[device] += nbytes
        self.host_load[self.cluster.host_of(device)] += nbytes
