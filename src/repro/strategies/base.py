"""Strategy interface: emit communication ops for the plan compiler.

A strategy no longer runs the whole show.  The staged compiler
(:mod:`repro.compiler`) owns lowering, scheduling, fault re-rooting,
and validation as explicit passes; a strategy contributes

* a few **declarative knobs** the passes read (``granularity``,
  ``scheduler_fn``, ``gate_on_schedule``, the ``*_uses_faults`` /
  ``reroot_on_faults`` flags),
* an :meth:`CommStrategy.emit` hook that appends concrete ops to the
  plan following the schedule the compiler built, and
* a canonical :meth:`CommStrategy.cache_key` so compiles through it can
  be content-addressed (return ``None`` to opt out: the compile is then
  simply uncacheable, never wrong).

:meth:`CommStrategy.plan` is kept as the stable public API — it now
delegates to :func:`repro.compiler.compile_resharding` with the cache
disabled, so ``strategy.plan(task)`` behaves exactly as before (a fresh
plan every call).  Subclasses implement :meth:`emit` (preferred) or
override :meth:`plan` wholesale.
"""

from __future__ import annotations

from abc import ABC
from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..core.plan import CommPlan
from ..core.task import ReshardingTask
from ..sim.faults import FaultSchedule, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scheduling import Schedule, SchedulingProblem

__all__ = ["CommStrategy", "LoadTracker"]


class CommStrategy(ABC):
    """Compiles :class:`ReshardingTask` -> :class:`CommPlan` (via the
    staged compiler)."""

    #: short identifier used in benchmarks and result tables
    name: str = "abstract"
    #: unit-task decomposition the strategy emits against
    granularity: str = "intersection"
    #: fault schedule the strategy was configured with (may be None)
    faults: Optional[FaultSchedule] = None
    #: retry policy (auto strategy scoring); read by the compile context
    retry_policy: Optional[RetryPolicy] = None
    #: False when emitted plans do not carry the tensor (signal)
    data_complete: bool = True
    #: attach the schedule to the plan so the executor gates on it
    gate_on_schedule: bool = False
    #: emission's LoadTracker weights/filters senders by fault state
    emit_uses_faults: bool = False
    #: the scheduling problem discounts degraded NICs
    schedule_uses_faults: bool = False
    #: the fault_rewrite pass re-roots assignments off down hosts
    reroot_on_faults: bool = False

    def scheduler_fn(
        self,
    ) -> Optional[Callable[["SchedulingProblem"], "Schedule"]]:
        """The scheduling algorithm, or None when the strategy does not
        schedule (every unit task launches eagerly)."""
        return None

    def supports(self, task: ReshardingTask) -> bool:
        """Whether this strategy can compile ``task`` at all.

        Topology-dependent backends override this (e.g. switch multicast
        needs a topology that exposes switches); :class:`~repro
        .compiler.passes.SelectPass` skips unsupported candidates
        instead of scoring a plan that could never execute.
        """
        return True

    def emit(
        self,
        task: ReshardingTask,
        plan: CommPlan,
        schedule: Optional["Schedule"],
        load: "LoadTracker",
    ) -> None:
        """Append this strategy's ops to ``plan`` (the emit pass)."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement emit() or override plan()"
        )

    def cache_key(self) -> Optional[tuple]:
        """Canonical tuple of every plan-shaping option, or None.

        ``None`` makes compiles through this strategy uncacheable —
        the safe default for subclasses that have not declared their
        configuration surface.
        """
        return None

    def plan(self, task: ReshardingTask) -> CommPlan:
        """Produce the communication plan for one resharding task.

        Public API preserved from the pre-compiler era: compiles through
        the staged pass pipeline with caching disabled, so every call
        yields a freshly compiled plan.
        """
        from ..compiler.pipeline import CompileContext, compile_resharding

        ctx = CompileContext(strategy=self, cache=None)
        return compile_resharding(task, ctx).plan

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LoadTracker:
    """Greedy sender selection by accumulated outgoing bytes.

    The paper's baselines "do load balancing with a greedy approach
    which picks the sender with the lowest load for the next data
    slice" (§5.1.2); load is tracked at host level (hosts are the
    bottleneck) with per-device load as tie-break.

    With a :class:`~repro.sim.faults.FaultSchedule`, host load is
    normalized by the host's *effective* NIC bandwidth (nominal x
    time-averaged degradation factor), so a half-speed host is charged
    double per byte and receives proportionally less work; flapped-down
    hosts can be excluded entirely via :meth:`healthy`.
    """

    def __init__(self, cluster, faults: Optional[FaultSchedule] = None) -> None:
        self.cluster = cluster
        self.faults = faults
        self.host_load: dict[int, float] = defaultdict(float)
        self.device_load: dict[int, float] = defaultdict(float)
        self._host_weight: dict[int, float] = {}

    def _weight(self, host: int) -> float:
        """Cost multiplier per byte sent from ``host`` (1 when healthy)."""
        if self.faults is None:
            return 1.0
        w = self._host_weight.get(host)
        if w is None:
            topo = self.cluster.topo
            effective = (
                topo.host_nic_bandwidth(host) * self.faults.mean_nic_factor(host)
            )
            w = topo.reference_bandwidth / max(effective, 1e-9)
            self._host_weight[host] = w
        return w

    def healthy(self, candidates: Sequence[int], at: float = 0.0) -> list[int]:
        """Candidates whose host NIC is not flapped down at time ``at``.

        Falls back to the full candidate list when every host is down —
        a doomed pick is still better than no plan (the runtime's retry
        machinery may yet save it).
        """
        if self.faults is None:
            return list(candidates)
        up = [
            d
            for d in candidates
            if not self.faults.host_down(self.cluster.host_of(d), at)
        ]
        return up if up else list(candidates)

    def pick(self, candidates: Sequence[int], nbytes: float) -> int:
        """Choose the least-loaded candidate device and charge it."""
        if not candidates:
            raise ValueError("no sender candidates")
        best = min(
            candidates,
            key=lambda d: (
                self.host_load[self.cluster.host_of(d)],
                self.device_load[d],
                d,
            ),
        )
        self.charge(best, nbytes)
        return best

    def pick_on_host(self, candidates: Sequence[int], host: int, nbytes: float) -> int:
        """Choose the least-loaded candidate on a fixed host."""
        on_host = [d for d in candidates if self.cluster.host_of(d) == host]
        if not on_host:
            raise ValueError(f"no sender candidate on host {host}")
        best = min(on_host, key=lambda d: (self.device_load[d], d))
        self.charge(best, nbytes)
        return best

    def charge(self, device: int, nbytes: float) -> None:
        self.device_load[device] += nbytes
        host = self.cluster.host_of(device)
        self.host_load[host] += nbytes * self._weight(host)
