"""All-gather based strategy — the "Alpa" baseline (paper §5.1).

For each unit task, the chosen sender splits the data slice into as many
flat parts as there are receivers, scatters one part to each receiver,
and the receivers run a ring all-gather among themselves to reconstruct
the slice.  When all receivers share one host, the all-gather runs
entirely over NVLink ("send/recv with local allgather", latency ``A*t``
per §3.1); when they span hosts, the all-gather itself crosses the slow
links ("global allgather", latency ``~2t``).

Two deliberate infidelities of the real system are reproduced:

* **Uneven partitions** are unsupported: when the slice's element count
  does not divide by the receiver count, the unit task degrades to plain
  per-receiver sends of the full slice — the sudden performance drops at
  3 GPUs / 3 nodes in Fig. 5.
* **Execution order**: Alpa emits resharding ops into each mesh's SPMD
  program, so transfers run in program order per host rather than in a
  congestion-aware order; with forced senders "two sender nodes always
  communicate with the same receiver, making one of them idle" (§5.1.2).
  We model this by gating unit tasks on a greedy load-balance-only
  schedule (the paper's baseline scheduler) instead of the full
  search-based one.
"""

from __future__ import annotations

from ..core.plan import AllGatherOp, CommPlan, ScatterOp, SendOp
from ..core.slices import region_size
from ..core.task import ReshardingTask
from ..scheduling import SCHEDULERS
from ..sim.primitives import ring_order
from .base import CommStrategy

__all__ = ["AllGatherStrategy"]


class AllGatherStrategy(CommStrategy):
    name = "allgather"

    def __init__(
        self,
        granularity: str = "intersection",
        scheduler: str = "load_balance",
        gate_on_schedule: bool = True,
    ) -> None:
        self.granularity = granularity
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; options: {sorted(SCHEDULERS)}"
            )
        self.scheduler_name = scheduler
        self._scheduler = SCHEDULERS[scheduler]
        self.gate_on_schedule = gate_on_schedule

    def scheduler_fn(self):
        return self._scheduler

    def cache_key(self) -> tuple:
        return (self.name, self.granularity, self.scheduler_name, self.gate_on_schedule)

    def emit(self, task: ReshardingTask, plan: CommPlan, schedule, load) -> None:
        for ut in task.unit_tasks(self.granularity):
            if not ut.receivers:
                continue
            host = schedule.assignment[ut.task_id]
            n_recv = len(ut.receivers)
            if n_recv == 1:
                sender = load.pick_on_host(ut.senders, host, ut.nbytes)
                plan.add(
                    SendOp(
                        op_id=plan.next_op_id,
                        unit_task_id=ut.task_id,
                        region=ut.region,
                        nbytes=ut.nbytes,
                        sender=sender,
                        receiver=ut.receivers[0],
                    )
                )
                continue
            if region_size(ut.region) % n_recv != 0:
                # Uneven partition: Alpa falls back to full-slice sends.
                for receiver in ut.receivers:
                    sender = load.pick(ut.senders, ut.nbytes)
                    plan.add(
                        SendOp(
                            op_id=plan.next_op_id,
                            unit_task_id=ut.task_id,
                            region=ut.region,
                            nbytes=ut.nbytes,
                            sender=sender,
                            receiver=receiver,
                        )
                    )
                continue
            sender = load.pick_on_host(ut.senders, host, ut.nbytes)
            group = tuple(ring_order(task.cluster, sender, ut.receivers))
            sc = plan.add(
                ScatterOp(
                    op_id=plan.next_op_id,
                    unit_task_id=ut.task_id,
                    region=ut.region,
                    nbytes=ut.nbytes,
                    sender=sender,
                    receivers=group,
                )
            )
            plan.add(
                AllGatherOp(
                    op_id=plan.next_op_id,
                    unit_task_id=ut.task_id,
                    region=ut.region,
                    nbytes=ut.nbytes,
                    deps=(sc.op_id,),
                    devices=group,
                )
            )
