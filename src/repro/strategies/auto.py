"""Auto strategy: pick the fastest plan by offline simulation.

Real systems tune communication choices ahead of time (the paper's
library chooses broadcast because it is provably optimal for its
setting; Alpa's compiler more generally picks per-case).  Since our
simulator is cheap, the auto strategy compiles every candidate strategy,
simulates each plan once, and returns the fastest — a small, honest
autotuner that is also a useful regression oracle: broadcast should
(almost) always win cross-mesh.

The scoring loop itself lives in the compiler's select pass
(:class:`repro.compiler.passes.SelectPass`); this class declares the
candidate set and tuning scenario.  The winner's scored
:class:`~repro.core.executor.TimingResult` is attached to the
:class:`~repro.compiler.pipeline.CompiledPlan` (and exposed via
:meth:`plan_scored`), so callers no longer re-simulate a plan that was
already simulated to be chosen.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.executor import TimingResult
from ..core.plan import CommPlan
from ..core.task import ReshardingTask
from ..sim.faults import FaultSchedule, RetryPolicy
from .allgather import AllGatherStrategy
from .base import CommStrategy
from .broadcast import BroadcastStrategy
from .send_recv import SendRecvStrategy

__all__ = ["AutoStrategy"]


class AutoStrategy(CommStrategy):
    name = "auto"

    def __init__(
        self,
        candidates: Optional[Sequence[CommStrategy]] = None,
        faults: Optional[FaultSchedule] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.faults = faults
        self.retry_policy = retry_policy
        self.candidates: tuple[CommStrategy, ...] = (
            tuple(candidates)
            if candidates is not None
            else (
                SendRecvStrategy(faults=faults),
                AllGatherStrategy(),
                BroadcastStrategy(faults=faults),
            )
        )
        if not self.candidates:
            raise ValueError("need at least one candidate strategy")
        #: (strategy name, simulated latency) pairs of the last plan() call
        self.last_scores: list[tuple[str, float]] = []

    def cache_key(self) -> Optional[tuple]:
        keys = tuple(c.cache_key() for c in self.candidates)
        if any(k is None for k in keys):
            return None
        return (self.name, repr(self.retry_policy)) + keys

    def emit(self, task: ReshardingTask, plan: CommPlan, schedule, load) -> None:
        raise RuntimeError(
            "the auto strategy compiles through the select pass, not emit()"
        )

    def plan_scored(self, task: ReshardingTask) -> tuple[CommPlan, TimingResult]:
        """Compile and return ``(winning plan, its scored TimingResult)``.

        The timing is the simulation that *chose* the winner — callers
        wanting both the plan and its latency use this instead of
        ``simulate_plan(auto.plan(task))`` (which would simulate twice).
        """
        from ..compiler.pipeline import CompileContext, compile_resharding

        compiled = compile_resharding(task, CompileContext(strategy=self, cache=None))
        assert compiled.timing is not None
        return compiled.plan, compiled.timing
