"""Auto strategy: pick the fastest plan by offline simulation.

Real systems tune communication choices ahead of time (the paper's
library chooses broadcast because it is provably optimal for its
setting; Alpa's compiler more generally picks per-case).  Since our
simulator is cheap, the auto strategy simply compiles every candidate
strategy, simulates each plan once, and returns the fastest — a small,
honest autotuner that is also a useful regression oracle: broadcast
should (almost) always win cross-mesh.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.executor import simulate_plan
from ..core.plan import CommPlan
from ..core.task import ReshardingTask
from ..sim.faults import FaultSchedule, RetryPolicy
from .allgather import AllGatherStrategy
from .base import CommStrategy
from .broadcast import BroadcastStrategy
from .send_recv import SendRecvStrategy

__all__ = ["AutoStrategy"]


class AutoStrategy(CommStrategy):
    name = "auto"

    def __init__(
        self,
        candidates: Optional[Sequence[CommStrategy]] = None,
        faults: Optional[FaultSchedule] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.faults = faults
        self.retry_policy = retry_policy
        self.candidates: tuple[CommStrategy, ...] = (
            tuple(candidates)
            if candidates is not None
            else (
                SendRecvStrategy(faults=faults),
                AllGatherStrategy(),
                BroadcastStrategy(faults=faults),
            )
        )
        if not self.candidates:
            raise ValueError("need at least one candidate strategy")
        #: (strategy name, simulated latency) pairs of the last plan() call
        self.last_scores: list[tuple[str, float]] = []

    def plan(self, task: ReshardingTask) -> CommPlan:
        """Compile every candidate, score by simulation, return the best.

        With a fault schedule, scoring runs each candidate on a lossy
        network so the pick accounts for retries and degraded links;
        plans that go fatal under the scenario are only chosen when no
        candidate survives.
        """
        best: Optional[tuple[bool, float, CommPlan]] = None
        self.last_scores = []
        for strat in self.candidates:
            plan = strat.plan(task)
            result = simulate_plan(
                plan, faults=self.faults, retry_policy=self.retry_policy
            )
            fatal = result.fault_report is not None and result.fault_report.fatal
            self.last_scores.append((strat.name, result.total_time))
            key = (fatal, result.total_time, plan)
            if best is None or key[:2] < best[:2]:
                best = key
        assert best is not None
        return best[2]
