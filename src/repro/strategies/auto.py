"""Auto strategy: pick the fastest plan by offline simulation.

Real systems tune communication choices ahead of time (the paper's
library chooses broadcast because it is provably optimal for its
setting; Alpa's compiler more generally picks per-case).  Since our
simulator is cheap, the auto strategy simply compiles every candidate
strategy, simulates each plan once, and returns the fastest — a small,
honest autotuner that is also a useful regression oracle: broadcast
should (almost) always win cross-mesh.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.executor import simulate_plan
from ..core.plan import CommPlan
from ..core.task import ReshardingTask
from .allgather import AllGatherStrategy
from .base import CommStrategy
from .broadcast import BroadcastStrategy
from .send_recv import SendRecvStrategy

__all__ = ["AutoStrategy"]


class AutoStrategy(CommStrategy):
    name = "auto"

    def __init__(self, candidates: Optional[Sequence[CommStrategy]] = None) -> None:
        self.candidates: tuple[CommStrategy, ...] = (
            tuple(candidates)
            if candidates is not None
            else (SendRecvStrategy(), AllGatherStrategy(), BroadcastStrategy())
        )
        if not self.candidates:
            raise ValueError("need at least one candidate strategy")
        #: (strategy name, simulated latency) pairs of the last plan() call
        self.last_scores: list[tuple[str, float]] = []

    def plan(self, task: ReshardingTask) -> CommPlan:
        best_plan: Optional[CommPlan] = None
        best_time = float("inf")
        self.last_scores = []
        for strat in self.candidates:
            plan = strat.plan(task)
            t = simulate_plan(plan).total_time
            self.last_scores.append((strat.name, t))
            if t < best_time:
                best_time = t
                best_plan = plan
        assert best_plan is not None
        return best_plan
