"""Cross-mesh resharding communication strategies (paper §3.1)."""

from typing import Callable

from .allgather import AllGatherStrategy
from .auto import AutoStrategy
from .base import CommStrategy, LoadTracker
from .broadcast import BroadcastStrategy
from .multicast import MulticastStrategy
from .send_recv import SendRecvStrategy
from .signal import SignalStrategy

__all__ = [
    "CommStrategy",
    "LoadTracker",
    "SendRecvStrategy",
    "AllGatherStrategy",
    "BroadcastStrategy",
    "MulticastStrategy",
    "SignalStrategy",
    "AutoStrategy",
    "make_strategy",
    "STRATEGIES",
]

STRATEGIES: dict[str, Callable[[], CommStrategy]] = {
    "send_recv": SendRecvStrategy,
    "allgather": AllGatherStrategy,
    "alpa": AllGatherStrategy,  # the paper's name for the baseline
    "broadcast": BroadcastStrategy,
    "multicast": MulticastStrategy,
    "signal": SignalStrategy,
    "auto": AutoStrategy,
}


def make_strategy(name: "str | CommStrategy", **kwargs) -> CommStrategy:
    """Instantiate a strategy by name (pass-through for instances)."""
    if isinstance(name, CommStrategy):
        if kwargs:
            raise ValueError("cannot pass kwargs with a strategy instance")
        return name
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; options: {sorted(STRATEGIES)}"
        ) from None
    return factory(**kwargs)
