"""Switch-multicast resharding — replicate in the fabric, not the ring.

The ring broadcast (:mod:`repro.strategies.broadcast`) drags every chunk
across ``A`` host boundaries, so on an oversubscribed fat-tree each
chunk pays the contended uplink once per receiving host.  Switch
multicast sends each chunk *upstream once* — root device -> root NIC ->
the nearest switch spanning every endpoint — and the switch replicates
it down all receiving hosts' paths concurrently ("Exploiting Multicast
for Accelerating Collective Communication" is the hardware analogue).

Emission picks, per unit task, the most specific topology switch
spanning the (scheduled) sender host and every receiver host and emits
a :class:`~repro.core.plan.MulticastOp` claiming it; the claim is
statically checkable (analyzer codes T001/T002) and honestly priced by
the flow simulator, which contends the tree's up and down links in the
same max-min fixpoint as everything else.  Unit tasks no switch spans
fall back to a ring broadcast op — the plan stays correct on partially
multicast-capable fabrics.

The strategy only *competes* where it can run at all:
:meth:`MulticastStrategy.supports` is False on switchless topologies
(e.g. a torus), which makes :class:`~repro.compiler.passes.SelectPass`
skip it instead of scoring an impossible plan.

Scheduling, fault re-rooting, and gating reuse the broadcast machinery
unchanged — a multicast is a broadcast with a smarter data path, so the
paper's Eq. 3 ordering model applies as-is.
"""

from __future__ import annotations

from typing import Optional

from ..core.plan import BroadcastOp, CommPlan, MulticastOp
from ..core.task import ReshardingTask
from ..scheduling import SCHEDULERS, Schedule, SchedulingProblem  # noqa: F401
from ..sim.faults import FaultSchedule
from .base import CommStrategy
from .broadcast import SchedulerLike, adaptive_chunks

__all__ = ["MulticastStrategy"]


class MulticastStrategy(CommStrategy):
    name = "multicast"
    emit_uses_faults = True
    schedule_uses_faults = True
    reroot_on_faults = True

    def __init__(
        self,
        scheduler: SchedulerLike = "ensemble",
        n_chunks: Optional[int] = None,
        gate_on_schedule: bool = True,
        granularity: str = "intersection",
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        self.granularity = granularity
        self.faults = faults
        if isinstance(scheduler, str):
            if scheduler not in SCHEDULERS:
                raise ValueError(
                    f"unknown scheduler {scheduler!r}; options: {sorted(SCHEDULERS)}"
                )
            self._scheduler = SCHEDULERS[scheduler]
            self.scheduler_name = scheduler
        else:
            self._scheduler = scheduler
            self.scheduler_name = getattr(scheduler, "__name__", "custom")
        if n_chunks is not None and int(n_chunks) < 1:
            raise ValueError("n_chunks must be >= 1")
        self.n_chunks = None if n_chunks is None else int(n_chunks)
        self.gate_on_schedule = gate_on_schedule

    def scheduler_fn(self):
        return self._scheduler

    def supports(self, task: ReshardingTask) -> bool:
        """Multicast needs a fabric with at least one switch to claim."""
        return bool(task.cluster.topo.has_switches)

    def cache_key(self) -> Optional[tuple]:
        if SCHEDULERS.get(self.scheduler_name) is not self._scheduler:
            return None
        return (
            self.name,
            self.granularity,
            self.scheduler_name,
            self.n_chunks,
            self.gate_on_schedule,
            repr(self.faults),
        )

    def emit(self, task: ReshardingTask, plan: CommPlan, schedule, load) -> None:
        topo = task.cluster.topo
        for ut in task.unit_tasks(self.granularity):
            if not ut.receivers:
                continue
            host = schedule.assignment[ut.task_id]
            sender = load.pick_on_host(ut.senders, host, ut.nbytes)
            recv_hosts = task.cluster.hosts_of(ut.receivers)
            sw = topo.common_switch(host, recv_hosts)
            n_chunks = (
                self.n_chunks
                if self.n_chunks is not None
                else adaptive_chunks(ut.nbytes)
            )
            if sw is not None:
                plan.add(
                    MulticastOp(
                        op_id=plan.next_op_id,
                        unit_task_id=ut.task_id,
                        region=ut.region,
                        nbytes=ut.nbytes,
                        sender=sender,
                        receivers=ut.receivers,
                        switch=sw.name,
                        n_chunks=n_chunks,
                    )
                )
            else:
                # No switch spans this unit task (e.g. cross-rail fan-
                # out): ring broadcast keeps the plan complete.
                plan.add(
                    BroadcastOp(
                        op_id=plan.next_op_id,
                        unit_task_id=ut.task_id,
                        region=ut.region,
                        nbytes=ut.nbytes,
                        sender=sender,
                        receivers=ut.receivers,
                        n_chunks=n_chunks,
                    )
                )
