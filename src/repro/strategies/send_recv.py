"""Plain send/recv strategy (paper §3.1, the "Send/Recv" baseline).

Every destination tile piece is delivered with an individual
point-to-point message: for each unit task (an overlap-grid region) and
each destination device requiring it, a greedily load-balanced sender
transmits the exact region.  No multicast, no intra-node offloading —
inter-host volume scales with destination replication, which is why its
latency grows as ``A x B x t`` in Figure 5.
"""

from __future__ import annotations

from typing import Optional

from ..core.plan import CommPlan, SendOp
from ..core.task import ReshardingTask
from ..sim.faults import FaultSchedule
from .base import CommStrategy

__all__ = ["SendRecvStrategy"]


class SendRecvStrategy(CommStrategy):
    name = "send_recv"
    emit_uses_faults = True

    def __init__(
        self,
        granularity: str = "intersection",
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        self.granularity = granularity
        self.faults = faults

    def cache_key(self) -> tuple:
        return (self.name, self.granularity, repr(self.faults))

    def emit(self, task: ReshardingTask, plan: CommPlan, schedule, load) -> None:
        for ut in task.unit_tasks(self.granularity):
            # Failure-aware: skip senders on hosts whose NIC is down at
            # plan time (degraded hosts are handled by the weighted
            # load, flapped hosts by exclusion).
            candidates = load.healthy(ut.senders)
            for receiver in ut.receivers:
                sender = load.pick(candidates, ut.nbytes)
                plan.add(
                    SendOp(
                        op_id=plan.next_op_id,
                        unit_task_id=ut.task_id,
                        region=ut.region,
                        nbytes=ut.nbytes,
                        sender=sender,
                        receiver=receiver,
                    )
                )
