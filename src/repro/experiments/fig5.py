"""E1 — Figure 5: single device to multiple devices microbenchmark.

The sender mesh has one GPU; the receiver mesh varies.  Group 1: one
node with 1-4 GPUs.  Group 2: 2 GPUs per node, 1-4 nodes.  Both ends use
fully replicated sharding specs; the message is 1 GB.  Strategies:
Send/Recv, Alpa (all-gather based), Broadcast (ours).

Expected shape: Send/Recv grows linearly with #GPUs; Alpa and Broadcast
stay flat within a node; Alpa degrades across nodes and collapses at 3
GPUs / 3 nodes (uneven partition fallback); Broadcast stays ~flat.
"""

from __future__ import annotations

from ..core.api import reshard
from ..core.mesh import DeviceMesh
from .common import ExperimentTable, paper_cluster

__all__ = ["run", "single_to_multi_latency", "STRATEGIES"]

STRATEGIES = ("send_recv", "allgather", "broadcast")

#: 1 GB of fp32 elements
MESSAGE_SHAPE = (1 << 28,)


def single_to_multi_latency(
    n_recv_hosts: int, gpus_per_host: int, strategy: str
) -> float:
    """Latency of 1 GB replicated -> replicated, 1 sender GPU."""
    cluster = paper_cluster(1 + n_recv_hosts, devices_per_host=4)
    src = DeviceMesh(cluster, [[0]])
    dst = DeviceMesh.from_hosts(
        cluster, range(1, 1 + n_recv_hosts), devices_per_host=gpus_per_host
    )
    result = reshard(MESSAGE_SHAPE, src, "R", dst, "R", strategy=strategy)
    return result.latency


def run() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="E1 (Fig. 5)",
        title="Single device to multiple devices, 1 GB message",
        columns=["group", "x", "send_recv (s)", "allgather/Alpa (s)", "broadcast (s)"],
        notes=(
            "Group 1: receiver is 1 node, x = #GPUs. "
            "Group 2: 2 GPUs per node, x = #nodes."
        ),
    )
    for g in range(1, 5):
        lat = {s: single_to_multi_latency(1, g, s) for s in STRATEGIES}
        table.add(
            group="1 node, vary #GPUs",
            x=g,
            **{
                "send_recv (s)": lat["send_recv"],
                "allgather/Alpa (s)": lat["allgather"],
                "broadcast (s)": lat["broadcast"],
            },
        )
    for n in range(1, 5):
        lat = {s: single_to_multi_latency(n, 2, s) for s in STRATEGIES}
        table.add(
            group="2 GPUs/node, vary #nodes",
            x=n,
            **{
                "send_recv (s)": lat["send_recv"],
                "allgather/Alpa (s)": lat["allgather"],
                "broadcast (s)": lat["broadcast"],
            },
        )
    return table
