"""E7 — §3.1 / Figure 3: unit-task strategy latency vs the closed forms.

For one sender and ``A`` receiving hosts x ``B`` devices, simulate each
communication strategy as raw primitives and compare against the paper's
analysis: ``T_sr = A B t``, ``T_srla = A t``, ``T_srga ~ 2 t``,
``T_bc = t + A t / K``.
"""

from __future__ import annotations

from ..sim.analysis import (
    latency_broadcast,
    latency_global_allgather,
    latency_local_allgather,
    latency_send_recv,
    t_cross_host,
)
from ..sim.cluster import GB, Cluster, ClusterSpec
from ..sim.network import Network
from ..sim.primitives import p2p, ring_allgather, ring_broadcast, ring_order, scatter
from .common import ExperimentTable

__all__ = ["run", "simulate_strategy"]


def _receivers(cluster: Cluster, a: int, b: int) -> list[int]:
    """Devices of hosts 1..a, b per host (host 0 is the sender's)."""
    out = []
    for h in range(1, a + 1):
        out.extend(d.device_id for d in cluster.hosts[h].devices[:b])
    return out


def simulate_strategy(
    strategy: str, a: int, b: int, nbytes: float = GB, n_chunks: int = 64
) -> float:
    """Simulated latency of sending ``nbytes`` to ``a x b`` devices."""
    cluster = Cluster(
        ClusterSpec(
            n_hosts=a + 1,
            devices_per_host=max(b, 1),
            inter_host_latency=0.0,
            intra_host_latency=0.0,
        )
    )
    net = Network(cluster)
    root = 0
    recv = _receivers(cluster, a, b)
    if strategy == "send_recv":
        handles = [p2p(net, root, d, nbytes) for d in recv]
    elif strategy == "local_allgather":
        # One scatter per receiving host, then a per-host ring all-gather.
        handles = []
        for h in range(1, a + 1):
            devs = [d.device_id for d in cluster.hosts[h].devices[:b]]
            sc = scatter(net, root, devs, nbytes)
            handles.append(sc)
            if len(devs) > 1:
                ag_holder = []

                def start_ag(_h, devs=devs, ag_holder=ag_holder):
                    ag_holder.append(
                        ring_allgather(net, devs, nbytes / len(devs))
                    )

                sc.add_done_callback(start_ag)
                handles.append(ag_holder)  # resolved after run
    elif strategy == "global_allgather":
        sc = scatter(net, root, recv, nbytes)
        holder = []
        if len(recv) > 1:
            sc.add_done_callback(
                lambda _h: holder.append(
                    ring_allgather(
                        net, ring_order(cluster, recv[0], recv), nbytes / len(recv)
                    )
                )
            )
        handles = [sc, holder]
    elif strategy == "broadcast":
        handles = [ring_broadcast(net, root, recv, nbytes, n_chunks=n_chunks)]
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    net.run()

    def finish(h) -> float:
        if isinstance(h, list):
            return max((finish(x) for x in h), default=0.0)
        return h.finish_time

    return max(finish(h) for h in handles)


def run(nbytes: float = GB, n_chunks: int = 64, max_hosts: int = 4) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="E7 (Fig. 3 / §3.1)",
        title="Unit-task strategy latency: simulation vs closed-form analysis",
        columns=["strategy", "A (hosts)", "B (dev/host)", "simulated (s)", "analytic (s)"],
        notes=(
            "t is one cross-host traversal of the object; the broadcast "
            f"uses K={n_chunks} chunks. Analytic forms from §3.1."
        ),
    )
    for a in range(1, max_hosts + 1):
        b = 2
        t = t_cross_host(nbytes, ClusterSpec().inter_host_bandwidth)
        forms = {
            "send_recv": latency_send_recv(a, b, t),
            "local_allgather": latency_local_allgather(a, b, t),
            "global_allgather": latency_global_allgather(a, b, t),
            "broadcast": latency_broadcast(a, b, t, n_chunks),
        }
        for strat, analytic in forms.items():
            table.add(
                **{
                    "strategy": strat,
                    "A (hosts)": a,
                    "B (dev/host)": b,
                    "simulated (s)": simulate_strategy(strat, a, b, nbytes, n_chunks),
                    "analytic (s)": analytic,
                }
            )
    return table
