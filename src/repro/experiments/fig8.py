"""E5 — Figure 8: ablation of the load-balance/scheduling algorithm.

The Table 2 microbenchmark cases, all using broadcast-based resharding,
but with three schedulers: the naive algorithm (first sender host,
arbitrary order), load-balance-only (LPT greedy), and ours (the
ensemble of DFS-with-pruning and randomized greedy).

Expected shape: ties on cases 1 and 8 (pure p2p / a single broadcast);
everywhere else naive and load-balance-only hit congestion while the
ensemble finds a schedule that keeps every sender and receiver busy.
"""

from __future__ import annotations

from .common import ExperimentTable
from .fig6 import TABLE2_CASES, case_latency

__all__ = ["run", "SCHEDULERS_UNDER_TEST"]

SCHEDULERS_UNDER_TEST = ("naive", "load_balance", "ensemble")


def run() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="E5 (Fig. 8)",
        title="Load-balance ablation: broadcast resharding under three schedulers",
        columns=[
            "case",
            "naive (s)",
            "load_balance (s)",
            "ours/ensemble (s)",
            "naive/ours",
            "lb/ours",
        ],
    )
    for case in TABLE2_CASES:
        lat = {
            s: case_latency(case, "broadcast", scheduler=s)
            for s in SCHEDULERS_UNDER_TEST
        }
        table.add(
            **{
                "case": case.name,
                "naive (s)": lat["naive"],
                "load_balance (s)": lat["load_balance"],
                "ours/ensemble (s)": lat["ensemble"],
                "naive/ours": lat["naive"] / lat["ensemble"],
                "lb/ours": lat["load_balance"] / lat["ensemble"],
            }
        )
    return table
