"""Paper experiment reproductions, one module per table/figure.

=======  ==========================  ============================
module   paper reference             what it regenerates
=======  ==========================  ============================
fig5     Figure 5                    single -> multi microbenchmark
fig6     Table 2 + Figure 6          multi -> multi microbenchmark
table1   Table 1                     GPT-3 layer memory sizes
fig7     Table 3 + Figure 7          end-to-end throughput
fig8     Figure 8                    load-balance ablation
fig9     Figure 9                    overlap ablation
fig3     Figure 3 / §3.1             strategy latency vs analysis
report   —                           EXPERIMENTS.md generator
=======  ==========================  ============================
"""

from . import (
    ablations,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    interleaving,
    parallel_sweep,
    report,
    scaling,
    table1,
)
from .common import ExperimentTable, format_markdown

__all__ = [
    "ablations",
    "parallel_sweep",
    "scaling",
    "interleaving",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table1",
    "report",
    "ExperimentTable",
    "format_markdown",
]
