"""Shared infrastructure for the paper-reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.mesh import DeviceMesh
from ..sim.cluster import Cluster, ClusterSpec

__all__ = [
    "ExperimentTable",
    "format_markdown",
    "paper_cluster",
    "make_microbench_meshes",
    "fmt_seconds",
    "fmt_bytes",
]


@dataclass
class ExperimentTable:
    """One reproduced table/figure: rows of dicts plus metadata."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def add(self, **kw) -> None:
        missing = [c for c in self.columns if c not in kw]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append(kw)

    def column(self, name: str) -> list:
        return [r[name] for r in self.rows]


def format_markdown(table: ExperimentTable) -> str:
    """Render an ExperimentTable as GitHub markdown."""
    def cell(v) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    lines = [f"### {table.experiment_id}: {table.title}", ""]
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for r in table.rows:
        lines.append("| " + " | ".join(cell(r[c]) for c in table.columns) + " |")
    if table.notes:
        lines.extend(["", table.notes])
    lines.append("")
    return "\n".join(lines)


def paper_cluster(n_hosts: int, devices_per_host: int = 4) -> Cluster:
    """The paper's testbed: p3.8xlarge-style nodes, 10 Gbps inter-node."""
    return Cluster(ClusterSpec(n_hosts=n_hosts, devices_per_host=devices_per_host))


def make_microbench_meshes(
    send_shape: tuple[int, int],
    recv_shape: tuple[int, int],
    cluster: Optional[Cluster] = None,
) -> tuple[Cluster, DeviceMesh, DeviceMesh]:
    """Build disjoint sender/receiver meshes with one host per mesh row.

    Mesh shape ``(m1, m2)`` means ``m1`` hosts with ``m2`` devices each,
    the convention of the paper's Table 2.
    """
    if cluster is None:
        cluster = paper_cluster(
            send_shape[0] + recv_shape[0],
            devices_per_host=max(send_shape[1], recv_shape[1]),
        )
    send = DeviceMesh.from_hosts(
        cluster, range(send_shape[0]), devices_per_host=send_shape[1]
    )
    recv = DeviceMesh.from_hosts(
        cluster,
        range(send_shape[0], send_shape[0] + recv_shape[0]),
        devices_per_host=recv_shape[1],
    )
    return cluster, send, recv


def fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f} s"
    return f"{s * 1e3:.2f} ms"


def fmt_bytes(n: float) -> str:
    for unit, div in (("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10)):
        if n >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"
