"""Run every experiment and write EXPERIMENTS.md (paper vs measured).

Usage::

    python -m repro.experiments.report [output-path]
"""

from __future__ import annotations

import sys
import time

from . import (
    ablations,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    interleaving,
    parallel_sweep,
    scaling,
    table1,
)
from .common import ExperimentTable, format_markdown

__all__ = ["run_all", "write_report", "EXPECTATIONS"]

#: per experiment: the paper's qualitative claims we check against
EXPECTATIONS = {
    "E1": (
        "Send/Recv grows linearly with #GPUs; Alpa and Broadcast stay flat "
        "inside a node; Alpa degrades across nodes and collapses at 3 GPUs / "
        "3 nodes (uneven partition); Broadcast stays flat."
    ),
    "E2": (
        "Cases 1, 2: ours ~ Alpa.  Cases 3, 4, 9: ours substantially faster "
        "(paper: 3-10x; sender-order congestion).  Cases 7, 8: ours up to "
        "~2.5x faster (Alpa's all-gather crosses nodes)."
    ),
    "E3": "Exact Table 1 values: 216M / 432M / 24M, 2.95GB / 48MB.",
    "E4": (
        "GPT: ours ~1.1x over Alpa, both near the Signal bound.  "
        "U-Transformer: ours ~1.5x over Alpa, >=97% of Signal."
    ),
    "E5": (
        "Ties on cases 1 and 8; elsewhere naive and load-balance-only hit "
        "congestion, the DFS+randomized-greedy ensemble does not."
    ),
    "E6": (
        "Few micro-batches: Overlap within a few % of Eager-1F1B.  Many "
        "micro-batches: Overlap ~1.3x over Broadcast, Eager-1F1B ~15% more."
    ),
    "E7": "Simulated strategy latencies track the closed forms of §3.1.",
}


def run_all(verbose: bool = True) -> list[ExperimentTable]:
    """Execute every experiment module; returns their tables."""
    modules = [
        ("E1", fig5),
        ("E2", fig6),
        ("E3", table1),
        ("E4", fig7),
        ("E5", fig8),
        ("E6", fig9),
        ("E7", fig3),
        ("A0", ablations),
        ("S1", parallel_sweep),
        ("S2", scaling),
        ("S3", interleaving),
    ]
    tables = []
    for eid, mod in modules:
        t0 = time.time()  # repro-lint: allow[L001] progress printing only
        table = mod.run()
        if verbose:
            # repro-lint: allow[L001] progress printing only
            print(f"{eid} done in {time.time() - t0:.1f}s", file=sys.stderr)
        tables.append(table)
    return tables


HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation, regenerated on the
simulated cluster (2-4 nodes x 4 V100-class GPUs, NVLink intra-node,
10 Gbps inter-node; see DESIGN.md for the substitution argument).
Absolute numbers are simulator outputs and are not expected to match the
authors' AWS testbed; the *shape* of each result — who wins, by what
factor, where crossovers fall — is the reproduction target.

Regenerate with `python -m repro.experiments.report` (about 5-10
minutes) or run individual benches under `benchmarks/`.
"""


DIVERGENCES = """\
## Known divergences from the paper, and why

1. **E2 cases 3/4/9 magnitude.** The paper reports Alpa 3-10x slower than
   ours; we measure 1.5-1.9x.  Our Alpa baseline reproduces the *mechanism*
   the paper names (sender-order congestion: "two sender nodes always
   communicate with the same receiver, making one of them idle", modelled as
   load-balance-only scheduling with per-host program order) but sits on an
   idealized flow-level network.  The remaining real-system factors — Ray
   object-store copies, per-pair NCCL communicator setup, D2H/H2D staging in
   Alpa's send/recv path — are not modelled, so our baseline is more
   charitable than the real one.  Direction and significance reproduce;
   magnitude does not fully.

2. **E2 cases 5/6 parity.** The paper says Alpa ~ ours; we measure Alpa
   ~1.3-1.5x slower.  This follows from taking the paper's own description
   of the baseline scheduler literally (greedy lowest-load sender, which is
   "Load balance only" of Fig. 8) — Fig. 8 itself shows that scheduler
   congesting on case 5, so the paper's Fig. 6 and Fig. 8 are in slight
   tension; we sided with the described algorithm.

3. **E4 GPT margin.** Paper: ours 1.1x over Alpa; we measure ~1.2x.  Our
   blocking baseline pays both send and recv occupancy on the stage, which
   on the 10 Gbps testbed is slightly more pessimistic than Megatron-style
   fused exchange ops.

4. **E6 attribution.** Total broadcast->eager-1F1B gain matches (~1.5x),
   but the paper attributes ~1.3x to Overlap and ~1.15x to eagerness while
   we measure ~1.2x and ~1.26x: how much 1F1B-with-overlap can hide depends
   on the exact stage imbalance, which we could not calibrate from the
   paper (the U-Transformer configuration is not fully specified; ours is
   reconstructed to hit 2.1B parameters and a communication-bound split).

5. **Absolute scales.**  Throughputs use effective V100 GEMM rates
   (50 TFLOPS fp16, 13 TFLOPS fp32); latencies use 10 Gbps NICs and
   100 GB/s NVLink with fixed per-transfer startup latencies.  These set the
   scale, not the shape.
"""


def write_report(path: str = "EXPERIMENTS.md", verbose: bool = True) -> str:
    tables = run_all(verbose=verbose)
    parts = [HEADER]
    for table in tables:
        eid = table.experiment_id.split(" ")[0]
        parts.append(format_markdown(table))
        if eid in EXPECTATIONS:
            parts.append(f"**Paper's claim:** {EXPECTATIONS[eid]}\n")
    parts.append(DIVERGENCES)
    text = "\n".join(parts)
    with open(path, "w") as f:
        f.write(text)
    return text


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    write_report(out)
    print(f"wrote {out}", file=sys.stderr)
