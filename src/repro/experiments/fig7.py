"""E4 — Table 3 + Figure 7: end-to-end training throughput.

Three workloads (GPT 2.6B under two parallel configs, U-Transformer
2.1B) x five systems (Send/Recv, Alpa, Broadcast, Ours, and the Signal
Send/Recv upper bound).  Throughput is aggregate per-GPU TFLOPS, model
FLOPs / iteration time / #GPUs, as in the paper.

Expected shape: on GPT both Alpa and ours sit close to the bound with
ours ~1.1x over Alpa (overlap); on U-Transformer the cross-mesh skip
connections make communication the bottleneck and ours is ~1.5x over
Alpa, reaching >=97 % of the Signal bound.
"""

from __future__ import annotations

from typing import Optional

from ..models.gpt import GPT_CASES, build_gpt
from ..models.parallel import ParallelJobSpec, run_iteration
from ..models.utransformer import UTransformerConfig, build_utransformer
from .common import ExperimentTable

__all__ = ["run", "E2E_METHODS", "workloads"]

E2E_METHODS = ("send_recv", "alpa", "broadcast", "ours", "signal")


def workloads() -> dict[str, ParallelJobSpec]:
    """Table 3's three evaluated configurations."""
    specs: dict[str, ParallelJobSpec] = {
        name: build_gpt(cfg) for name, cfg in GPT_CASES.items()
    }
    specs["U-Transformer"] = build_utransformer(UTransformerConfig())
    return specs


def run(methods: Optional[tuple[str, ...]] = None) -> ExperimentTable:
    methods = methods if methods is not None else E2E_METHODS
    table = ExperimentTable(
        experiment_id="E4 (Table 3 + Fig. 7)",
        title="End-to-end training throughput (per-GPU TFLOPS)",
        columns=["model", "method", "iteration (s)", "TFLOPS/GPU", "vs Alpa", "of Signal"],
    )
    for model_name, spec in workloads().items():
        results = {m: run_iteration(spec, m) for m in methods}
        alpa = results.get("alpa")
        signal = results.get("signal")
        for m in methods:
            r = results[m]
            table.add(
                model=model_name,
                method=m,
                **{
                    "iteration (s)": r.iteration_time,
                    "TFLOPS/GPU": r.throughput_tflops,
                    "vs Alpa": (
                        r.throughput_tflops / alpa.throughput_tflops if alpa else float("nan")
                    ),
                    "of Signal": (
                        r.throughput_tflops / signal.throughput_tflops
                        if signal
                        else float("nan")
                    ),
                },
            )
    return table
