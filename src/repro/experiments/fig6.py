"""E2 — Table 2 + Figure 6: multi-device to multi-device microbenchmark.

Nine representative (sharding spec, mesh shape) cases from common deep
learning workloads, tensor shape (1024, 1024, 512) fp32 (2 GiB).

Expected shape: cases 1, 2, 5, 6 — ours ~ Alpa (both offload to
NVLink); cases 7, 8 — ours up to ~2.5x faster (Alpa's all-gather
crosses nodes, ours pipelines it); cases 3, 4, 9 — ours 3-10x faster
(sender-side load balance keeps both sender nodes busy).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import reshard
from .common import ExperimentTable, make_microbench_meshes

__all__ = ["Case", "TABLE2_CASES", "run", "case_latency"]

TENSOR_SHAPE = (1024, 1024, 512)


@dataclass(frozen=True)
class Case:
    """One row of the paper's Table 2."""

    name: str
    send_spec: str
    recv_spec: str
    send_mesh: tuple[int, int]
    recv_mesh: tuple[int, int]


TABLE2_CASES: list[Case] = [
    Case("case1", "S0RR", "S0RR", (2, 4), (2, 4)),
    Case("case2", "RRR", "S0RR", (2, 4), (2, 4)),
    Case("case3", "RS0R", "S0RR", (2, 4), (2, 4)),
    Case("case4", "RS01R", "S01RR", (2, 4), (2, 4)),
    Case("case5", "S1RR", "S0RR", (2, 4), (2, 4)),
    Case("case6", "S0RR", "S0RR", (2, 4), (3, 4)),
    Case("case7", "S1RR", "RRR", (1, 4), (2, 4)),
    Case("case8", "RRR", "RRR", (2, 3), (3, 2)),
    Case("case9", "RS0R", "RRS0", (2, 4), (2, 4)),
]


def case_latency(case: Case, strategy: str, **strategy_kwargs) -> float:
    """Simulated completion time of one Table 2 case."""
    _cluster, src, dst = make_microbench_meshes(case.send_mesh, case.recv_mesh)
    result = reshard(
        TENSOR_SHAPE,
        src,
        case.send_spec,
        dst,
        case.recv_spec,
        strategy=strategy,
        **strategy_kwargs,
    )
    return result.latency


def run() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="E2 (Table 2 + Fig. 6)",
        title="Multi-device to multi-device microbenchmark, (1024,1024,512) fp32",
        columns=[
            "case",
            "send spec",
            "recv spec",
            "send mesh",
            "recv mesh",
            "send_recv (s)",
            "allgather/Alpa (s)",
            "broadcast (s)",
            "ours/Alpa speedup",
        ],
    )
    for case in TABLE2_CASES:
        sr = case_latency(case, "send_recv")
        ag = case_latency(case, "allgather")
        bc = case_latency(case, "broadcast")
        table.add(
            **{
                "case": case.name,
                "send spec": case.send_spec,
                "recv spec": case.recv_spec,
                "send mesh": str(case.send_mesh),
                "recv mesh": str(case.recv_mesh),
                "send_recv (s)": sr,
                "allgather/Alpa (s)": ag,
                "broadcast (s)": bc,
                "ours/Alpa speedup": ag / bc,
            }
        )
    return table
