"""S2 — cluster-size scaling (extension experiment).

The paper evaluates on 2-4 nodes.  The simulator lets us push the same
microbenchmarks to larger clusters and check the asymptotics §3.1
promises: broadcast latency stays ~flat in mesh size while send/recv
grows linearly, and the randomized-greedy scheduler keeps producing
near-optimal orders as the unit-task count grows past what DFS can
search.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.api import reshard
from ..core.mesh import DeviceMesh
from ..core.task import ReshardingTask
from ..scheduling import (
    SchedulingProblem,
    evaluate,
    load_balance_schedule,
    naive_schedule,
    randomized_greedy_schedule,
)
from ..sim.cluster import Cluster, ClusterSpec
from .common import ExperimentTable

__all__ = ["run", "run_scheduler_scaling"]

#: 512 MiB fp32 tensor, dp-sharded on both sides
SHAPE = (1024, 512, 256)


def _meshes(n_hosts_per_side: int) -> tuple[DeviceMesh, DeviceMesh]:
    cluster = Cluster(ClusterSpec(n_hosts=2 * n_hosts_per_side, devices_per_host=4))
    src = DeviceMesh.from_hosts(cluster, range(n_hosts_per_side))
    dst = DeviceMesh.from_hosts(
        cluster, range(n_hosts_per_side, 2 * n_hosts_per_side)
    )
    return src, dst


def run() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="S2 (extension)",
        title="Mesh-size scaling: S0RR -> S0RR, 512 MiB tensor",
        columns=[
            "hosts/side",
            "devices/side",
            "send_recv (s)",
            "allgather (s)",
            "broadcast (s)",
        ],
        notes=(
            "The tensor is fixed, so latency falls inversely with hosts "
            "per side (aggregate NIC bandwidth grows); the gap is the "
            "point: send/recv pays the 4x destination replication at "
            "every size, broadcast stays at one traversal per slice."
        ),
    )
    for h in (1, 2, 4, 8):
        src, dst = _meshes(h)
        row = {"hosts/side": h, "devices/side": 4 * h}
        for strat in ("send_recv", "allgather", "broadcast"):
            r = reshard(SHAPE, src, "S0RR", dst, "S0RR", strategy=strat)
            row[f"{strat} (s)"] = r.latency
        table.add(**row)
    return table


def run_scheduler_scaling() -> ExperimentTable:
    """Scheduling quality/runtime as the unit-task count grows.

    Uses the case-4 pattern (orthogonal S^{01} tilings) whose unit-task
    count is (devices/side)^2 — DFS is hopeless beyond ~20 tasks, so
    this is randomized-greedy territory.
    """
    table = ExperimentTable(
        experiment_id="S2b (extension)",
        title="Scheduler scaling on case-4-style problems",
        columns=[
            "unit tasks",
            "naive makespan (s)",
            "ours makespan (s)",
            "speedup",
            "ours runtime (ms)",
        ],
    )
    for h in (2, 3, 4, 6):
        cluster = Cluster(ClusterSpec(n_hosts=2 * h, devices_per_host=4))
        src = DeviceMesh.from_hosts(cluster, range(h))
        dst = DeviceMesh.from_hosts(cluster, range(h, 2 * h))
        rt = ReshardingTask(
            (1024, 4 * h * 64, 64), src, "RS01R", dst, "S01RR", dtype=np.float32
        )
        problem = SchedulingProblem.from_resharding(rt)
        naive = naive_schedule(problem)
        # repro-lint: allow[L001] measures scheduler wall time, the quantity under study
        t0 = time.perf_counter()
        ours = randomized_greedy_schedule(problem)
        # repro-lint: allow[L001] measures scheduler wall time, the quantity under study
        runtime = (time.perf_counter() - t0) * 1e3
        # cross-check claimed makespans
        assert evaluate(problem, ours.assignment, ours.order)[0] == ours.makespan
        lb = load_balance_schedule(problem)
        best = min(ours.makespan, lb.makespan)
        table.add(
            **{
                "unit tasks": problem.n_tasks,
                "naive makespan (s)": naive.makespan,
                "ours makespan (s)": best,
                "speedup": naive.makespan / best,
                "ours runtime (ms)": runtime,
            }
        )
    return table
