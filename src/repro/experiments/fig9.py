"""E6 — Figure 9: ablation of the overlap-friendly schedule.

U-Transformer under two global batch sizes (same micro-batch size), with
three systems: "Broadcast" (broadcast resharding, no overlap),
"Overlap" (communication overlapped, still 1F1B), and "Eager-1F1B"
(ours).  We additionally report eager-1F1B with backward weight
delaying, the §4 refinement.

Expected shape: with very few micro-batches the pipeline has no steady
phase and Overlap is within a few percent of Eager-1F1B; with many
micro-batches Overlap gains ~1.3x over Broadcast and Eager-1F1B adds
~15 % more.
"""

from __future__ import annotations

from dataclasses import replace

from ..models.parallel import run_iteration
from ..models.utransformer import UTransformerConfig, build_utransformer
from .common import ExperimentTable

__all__ = ["run", "OVERLAP_METHODS", "BATCH_SIZES"]

OVERLAP_METHODS = ("broadcast", "overlap", "ours", "ours_delay")

#: (label, global batch) — micro-batch stays at the config default
BATCH_SIZES = (
    ("small batch (4 micro-batches)", 32),
    ("large batch (256 micro-batches)", 2048),
)


def run() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="E6 (Fig. 9)",
        title="Overlap ablation on U-Transformer (throughput, TFLOPS/GPU)",
        columns=[
            "batch",
            "method",
            "iteration (s)",
            "TFLOPS/GPU",
            "vs broadcast",
        ],
    )
    for label, batch in BATCH_SIZES:
        cfg = replace(UTransformerConfig(), global_batch=batch)
        spec = build_utransformer(cfg)
        results = {m: run_iteration(spec, m) for m in OVERLAP_METHODS}
        base = results["broadcast"]
        for m in OVERLAP_METHODS:
            r = results[m]
            table.add(
                batch=label,
                method=m,
                **{
                    "iteration (s)": r.iteration_time,
                    "TFLOPS/GPU": r.throughput_tflops,
                    "vs broadcast": r.throughput_tflops / base.throughput_tflops,
                },
            )
    return table
