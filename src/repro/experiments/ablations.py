"""Ablations of this implementation's own design choices (DESIGN.md §5).

Beyond the paper's ablations (Fig. 8 and Fig. 9), these isolate the
knobs our reproduction introduces or makes explicit:

* **A1 unit-task granularity** — the paper's prose defines unit tasks
  per source slice (§2.2) while its evaluation counts overlap-grid
  intersections (§5.1.2); we ship both and measure the gap.
* **A2 broadcast chunk count** — the ``t + A t/K`` pipelining law at the
  strategy level.
* **A3 schedule gating** — Eq. 3's non-overlap constraint vs letting the
  max-min-fair network multiplex everything.
* **A4 eagerness depth** — interpolating the warm-up between 1F1B
  (extra = 0) and eager-1F1B (extra = 1) and beyond, measuring both
  iteration time and peak activation memory.
* **A5 backward weight delaying** — §4's refinement, swept over delay
  slots on 1F1B-with-overlap.
"""

from __future__ import annotations

from dataclasses import replace

from ..models.parallel import resolve_comm_edges
from ..models.utransformer import UTransformerConfig, build_utransformer
from ..pipeline.executor import simulate_pipeline
from ..pipeline.schedules import one_f_one_b_order, split_backward
from ..pipeline.stage import PipelineJob
from .common import ExperimentTable
from .fig6 import TABLE2_CASES, case_latency

__all__ = [
    "run_granularity",
    "run_chunks",
    "run_gating",
    "run_eagerness",
    "run_weight_delay",
    "run_all",
]


def run_granularity() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="A1",
        title="Unit-task granularity: overlap-grid intersections vs full source slices",
        columns=["case", "intersection (s)", "slice (s)", "slice/intersection"],
        notes=(
            "Broadcast strategy on the Table 2 cases.  Slice granularity "
            "multicasts whole source slices even to receivers needing a "
            "fraction, inflating traffic exactly where source and "
            "destination tilings are orthogonal (cases 4, 9)."
        ),
    )
    for case in TABLE2_CASES:
        inter = case_latency(case, "broadcast", granularity="intersection")
        slc = case_latency(case, "broadcast", granularity="slice")
        table.add(
            **{
                "case": case.name,
                "intersection (s)": inter,
                "slice (s)": slc,
                "slice/intersection": slc / inter,
            }
        )
    return table


def run_chunks() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="A2",
        title="Broadcast pipeline chunk count (Table 2 case 8, one broadcast)",
        columns=["K", "latency (s)"],
        notes="T ~ t + A t / K; diminishing returns past K ~ 32.",
    )
    case8 = TABLE2_CASES[7]
    for k in (1, 2, 4, 8, 16, 32, 64, 128):
        table.add(K=k, **{"latency (s)": case_latency(case8, "broadcast", n_chunks=k)})
    return table


def run_gating() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="A3",
        title="Eq. 3 schedule gating vs free-running max-min fair sharing",
        columns=["case", "gated (s)", "ungated (s)", "ungated/gated"],
        notes=(
            "Gating launches unit tasks in the ensemble schedule's order; "
            "ungated submits everything at t=0 and lets fair sharing "
            "multiplex.  Fair sharing is a good implicit scheduler on "
            "symmetric cases, so gating mostly protects the pathological "
            "orders the baselines produce."
        ),
    )
    for case in TABLE2_CASES:
        gated = case_latency(case, "broadcast", gate_on_schedule=True)
        ungated = case_latency(case, "broadcast", gate_on_schedule=False)
        table.add(
            **{
                "case": case.name,
                "gated (s)": gated,
                "ungated (s)": ungated,
                "ungated/gated": ungated / gated,
            }
        )
    return table


def _utransformer_job(batch: int = 512) -> tuple[PipelineJob, object]:
    spec = build_utransformer(replace(UTransformerConfig(), global_batch=batch))
    edges = resolve_comm_edges(spec, "broadcast")
    job = PipelineJob(
        stages=spec.profiles, edges=edges, n_microbatches=spec.n_microbatches
    )
    return job, spec


def run_eagerness() -> ExperimentTable:
    """Sweep warm-up depth: extra=0 is 1F1B, extra=1 is eager-1F1B."""
    table = ExperimentTable(
        experiment_id="A4",
        title="Eagerness depth on U-Transformer (overlapped communication)",
        columns=["extra warm-up", "iteration (s)", "peak act stage0", "peak act stage1"],
        notes=(
            "Warm-up = (p - s) + extra * (p - s - 1).  extra=1 (the "
            "paper's eager-1F1B) captures the overlap benefit; deeper "
            "eagerness only costs memory."
        ),
    )
    job, _ = _utransformer_job()
    p, m = job.n_stages, job.n_microbatches
    for extra in (0, 1, 2, 3):
        orders = [
            one_f_one_b_order(m, (p - s) + extra * (p - s - 1)) for s in range(p)
        ]
        r = simulate_pipeline(job, orders, overlap=True)
        table.add(
            **{
                "extra warm-up": extra,
                "iteration (s)": r.iteration_time,
                "peak act stage0": r.peak_activation_counts[0],
                "peak act stage1": r.peak_activation_counts[1],
            }
        )
    return table


def run_weight_delay() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="A5",
        title="Backward weight delaying on U-Transformer (1F1B + overlap)",
        columns=["delay slots", "iteration (s)", "peak act stage0"],
        notes=(
            "Splitting B into Bx/Bw and delaying Bw releases the gradient "
            "transfer earlier; one slot suffices (paper §4)."
        ),
    )
    job, _ = _utransformer_job()
    p, m = job.n_stages, job.n_microbatches
    base = [one_f_one_b_order(m, p - s) for s in range(p)]
    for delay in (0, 1, 2):
        orders = [split_backward(o, delay_slots=delay) for o in base]
        r = simulate_pipeline(job, orders, overlap=True)
        table.add(
            **{
                "delay slots": delay,
                "iteration (s)": r.iteration_time,
                "peak act stage0": r.peak_activation_counts[0],
            }
        )
    return table


def run_all() -> list[ExperimentTable]:
    return [
        run_granularity(),
        run_chunks(),
        run_gating(),
        run_eagerness(),
        run_weight_delay(),
    ]


def run() -> ExperimentTable:
    """Single-table summary for the report: headline ratio per ablation."""
    tables = run_all()
    summary = ExperimentTable(
        experiment_id="A0 (ablation summary)",
        title="Implementation-choice ablations (details in benchmarks/results/)",
        columns=["ablation", "headline"],
    )
    a1 = tables[0]
    worst = max(a1.column("slice/intersection"))
    summary.add(
        ablation="A1 granularity",
        headline=f"slice granularity up to {worst:.1f}x slower (case with orthogonal tilings)",
    )
    a2 = tables[1]
    summary.add(
        ablation="A2 chunk count",
        headline=(
            f"K=1 -> {a2.rows[0]['latency (s)']:.2f}s, "
            f"K=128 -> {a2.rows[-1]['latency (s)']:.2f}s"
        ),
    )
    a3 = tables[2]
    ratios = a3.column("ungated/gated")
    summary.add(
        ablation="A3 gating",
        headline=f"ungated/gated across cases: {min(ratios):.2f}-{max(ratios):.2f}",
    )
    a4 = tables[3]
    t0 = a4.rows[0]["iteration (s)"]
    t1 = a4.rows[1]["iteration (s)"]
    summary.add(
        ablation="A4 eagerness",
        headline=f"extra=0 -> {t0:.2f}s, extra=1 -> {t1:.2f}s, extra>1 no further gain",
    )
    a5 = tables[4]
    summary.add(
        ablation="A5 weight delay",
        headline=(
            f"delay 0 -> {a5.rows[0]['iteration (s)']:.2f}s, "
            f"delay 1 -> {a5.rows[1]['iteration (s)']:.2f}s"
        ),
    )
    return summary
