"""E3 — Table 1: per-GPU memory of a GPT-3 layer in mixed precision.

S = 1024, H = 12288, B = 2, TMP = 8.  Expected (binary units): 216 Mi
parameters, 432 Mi optimizer params, 24 Mi activation elements, 2.95 GiB
of weights+optimizer, 48 MiB of activations.
"""

from __future__ import annotations

from ..models.gpt import gpt_layer_memory_table
from .common import ExperimentTable

__all__ = ["run", "PAPER_VALUES"]

#: the values printed in the paper's Table 1
PAPER_VALUES = {
    "#parameter": "216M",
    "#optimizer state parameters": "432M",
    "#activation elements": "24M",
    "Memory of weights and optimizer": "2.95GB",
    "Memory of activation": "48MB",
}


def run(
    seq_len: int = 1024, hidden: int = 12288, micro_batch: int = 2, tmp: int = 8
) -> ExperimentTable:
    row = gpt_layer_memory_table(seq_len, hidden, micro_batch, tmp)
    mi = float(1 << 20)
    gi = float(1 << 30)
    table = ExperimentTable(
        experiment_id="E3 (Table 1)",
        title=(
            f"GPT-3 layer per-GPU sizes (S={seq_len}, H={hidden}, "
            f"B={micro_batch}, TMP={tmp})"
        ),
        columns=["quantity", "expression", "measured", "paper"],
        notes="Paper values use binary prefixes (M = 2^20, GB = 2^30).",
    )
    table.add(
        quantity="#parameter",
        expression=row.expressions["n_parameters"],
        measured=f"{row.n_parameters / mi:.0f}M",
        paper=PAPER_VALUES["#parameter"],
    )
    table.add(
        quantity="#optimizer state parameters",
        expression=row.expressions["n_optimizer_params"],
        measured=f"{row.n_optimizer_params / mi:.0f}M",
        paper=PAPER_VALUES["#optimizer state parameters"],
    )
    table.add(
        quantity="#activation elements",
        expression=row.expressions["n_activation_elements"],
        measured=f"{row.n_activation_elements / mi:.0f}M",
        paper=PAPER_VALUES["#activation elements"],
    )
    table.add(
        quantity="Memory of weights and optimizer",
        expression=row.expressions["weights_and_optimizer_bytes"],
        measured=f"{row.weights_and_optimizer_bytes / gi:.2f}GB",
        paper=PAPER_VALUES["Memory of weights and optimizer"],
    )
    table.add(
        quantity="Memory of activation",
        expression=row.expressions["activation_bytes"],
        measured=f"{row.activation_bytes / mi:.0f}MB",
        paper=PAPER_VALUES["Memory of activation"],
    )
    return table
