"""E8 — strategy x topology heatmap over the topology zoo.

The paper's broadcast-beats-allgather claim is an artifact of one
cluster shape: fast NVLink inside the host, a single flat non-blocking
tier between hosts.  This experiment maps where the claim holds and
where it breaks by running the same resharding (replicated slices on 2
source hosts fanned out to 6 receiving hosts) across the topology zoo:

* ``two_tier`` — the paper's baseline (golden-pinned elsewhere);
* ``fat_tree_1to1`` — 2-host leaves, non-blocking uplinks;
* ``fat_tree_4to1`` — same shape, 4:1 oversubscribed uplinks: the ring
  broadcast pays the contended uplink once per receiving host and
  chunk, switch multicast pays it once per chunk;
* ``torus_2d`` — 2x4 torus, no switches: multicast is unsupported
  (reported as ``n/a``), flows pay per-hop dimension-ordered routing;
* ``rail`` — rail-optimized: same-rail device pairs bypass the
  cross-rail stage;
* ``hetero`` — two-tier with per-pair ``link_overrides`` slowing the
  links into two of the receiving hosts to 1/4 rate.

Makespans come from the flow simulator, which contends switch ports in
the same max-min fixpoint as NICs — oversubscription is *priced*, not
asserted.  The quick mode (the default, also the CI ``topology-smoke``
payload persisted as ``BENCH_topology.json``) uses a 16 MB tensor; full
mode uses 256 MB.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.executor import simulate_plan
from ..core.mesh import DeviceMesh
from ..core.task import ReshardingTask
from ..sim.cluster import Cluster, ClusterSpec, LinkOverride
from ..sim.topology import (
    FatTreeTopology,
    RailOptimizedTopology,
    TorusTopology,
)
from ..strategies import make_strategy
from .common import ExperimentTable

__all__ = ["run", "payload", "zoo_specs", "N_HOSTS", "STRATEGIES"]

N_HOSTS = 8
DEVICES_PER_HOST = 2
SRC_HOSTS = (0, 1)
DST_HOSTS = (2, 3, 4, 5, 6, 7)
STRATEGIES = ("broadcast", "multicast", "allgather")

QUICK_SHAPE = (2048, 2048)  # 16 MB fp32
FULL_SHAPE = (8192, 8192)  # 256 MB fp32


def zoo_specs() -> dict[str, ClusterSpec]:
    """The zoo: name -> 8-host cluster spec, identical scalar speeds."""
    base = dict(n_hosts=N_HOSTS, devices_per_host=DEVICES_PER_HOST)
    default = ClusterSpec()
    return {
        "two_tier": ClusterSpec(**base),
        "fat_tree_1to1": ClusterSpec(
            **base,
            topology=FatTreeTopology(hosts_per_leaf=2, oversubscription=1.0),
        ),
        "fat_tree_4to1": ClusterSpec(
            **base,
            topology=FatTreeTopology(hosts_per_leaf=2, oversubscription=4.0),
        ),
        "torus_2d": ClusterSpec(**base, topology=TorusTopology(rows=2, cols=4)),
        "rail": ClusterSpec(**base, topology=RailOptimizedTopology()),
        "hetero": ClusterSpec(
            **base,
            link_overrides=(
                LinkOverride(0, 6, bandwidth=default.inter_host_bandwidth / 4),
                LinkOverride(0, 7, bandwidth=default.inter_host_bandwidth / 4),
                LinkOverride(1, 6, bandwidth=default.inter_host_bandwidth / 4),
                LinkOverride(1, 7, bandwidth=default.inter_host_bandwidth / 4),
            ),
        ),
    }


def _measure(
    spec: ClusterSpec, strategy_name: str, shape: tuple[int, int]
) -> Optional[float]:
    """Makespan of the fan-out resharding, or None when unsupported."""
    cluster = Cluster(spec)
    src = DeviceMesh.from_hosts(cluster, SRC_HOSTS)
    dst = DeviceMesh.from_hosts(cluster, DST_HOSTS)
    task = ReshardingTask(shape, src, "S0R", dst, "RR", dtype=np.float32)
    strategy = make_strategy(strategy_name)
    if not strategy.supports(task):
        return None
    plan = strategy.plan(task)
    return simulate_plan(plan).total_time


def run(
    quick: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> ExperimentTable:
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    nbytes = float(np.prod(shape)) * 4
    table = ExperimentTable(
        experiment_id="E8 (topology zoo)",
        title="Strategy x topology makespan heatmap",
        columns=["topology", "strategy", "makespan (s)", "vs broadcast"],
        notes=(
            f"Fan-out of a {nbytes / (1 << 20):.0f} MB fp32 tensor from "
            f"{len(SRC_HOSTS)} replica hosts to {len(DST_HOSTS)} receiving "
            "hosts; 'n/a' = strategy unsupported on that fabric (switch "
            "multicast needs switches). Switch ports are contended "
            "resources in the flow simulator's max-min fixpoint."
        ),
    )
    for topo_name, spec in zoo_specs().items():
        base: Optional[float] = None
        for strat in STRATEGIES:
            if progress is not None:
                progress(f"{topo_name} x {strat}")
            makespan = _measure(spec, strat, shape)
            if strat == "broadcast":
                base = makespan
            table.add(
                **{
                    "topology": topo_name,
                    "strategy": strat,
                    "makespan (s)": "n/a" if makespan is None else makespan,
                    "vs broadcast": (
                        "n/a"
                        if makespan is None or not base
                        else f"{makespan / base:.3f}x"
                    ),
                }
            )
    return table


def payload(quick: bool = True) -> dict:
    """Deterministic ``BENCH_topology.json`` payload: the raw heatmap."""
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    out: dict = {
        "shape": list(shape),
        "n_hosts": N_HOSTS,
        "devices_per_host": DEVICES_PER_HOST,
        "makespans": {},
    }
    for topo_name, spec in zoo_specs().items():
        row = {}
        for strat in STRATEGIES:
            makespan = _measure(spec, strat, shape)
            # round: byte-stable across platforms, still a drift signal
            row[strat] = None if makespan is None else round(makespan, 9)
        out["makespans"][topo_name] = row
    return out
