"""R1 — elastic recovery: time-to-recover vs. MTBF and checkpoint interval.

Not a figure from the paper: the paper assumes a healthy cluster.  This
experiment characterizes the recovery runtime built on top of its
resharding machinery, sweeping

* **checkpoint interval** under a fixed failure schedule — the classic
  U-curve (checkpoint too often: write overhead; too rarely: long
  warmup after rollback), compared against the Young/Daly first-order
  optimum ``sqrt(2 * delta * MTBF)``;
* **MTBF** at a fixed interval — how total overhead and the
  detect/load/reshard/warmup breakdown scale as failures get denser.

Failure schedules are deterministic: exponential inter-arrival draws
from a seeded RNG, victims round-robin over the working hosts.
"""

from __future__ import annotations

import random

from ..models.gpt import GPTConfig, build_gpt
from ..models.parallel import ParallelJobSpec
from ..recovery import CheckpointConfig, optimal_interval, simulate_training_run
from ..sim.cluster import Cluster, ClusterSpec
from ..sim.faults import FaultSchedule, HostFailure
from .common import ExperimentTable

__all__ = [
    "poisson_host_failures",
    "recovery_job",
    "run_interval_sweep",
    "run_mtbf_sweep",
    "run",
]


def poisson_host_failures(
    seed: int, mtbf: float, horizon: float, hosts: tuple[int, ...]
) -> FaultSchedule:
    """Exponential failure arrivals over ``[0, horizon)``, one distinct
    victim per arrival (a host dies at most once)."""
    rng = random.Random(seed)
    t = 0.0
    victims = list(hosts)
    failures: list[HostFailure] = []
    while victims:
        t += rng.expovariate(1.0 / mtbf)
        if t >= horizon:
            break
        failures.append(HostFailure(host=victims.pop(0), time=t))
    return FaultSchedule(seed=seed, host_failures=tuple(failures))


#: per-stage optimizer-state elements — sized so one checkpoint write is
#: a visible fraction of an iteration and the Young/Daly optimum lands
#: inside the swept interval range instead of degenerating to "always".
STATE_ELEMS = 1 << 22


def recovery_job(n_spares: int = 2) -> ParallelJobSpec:
    """The sweep workload: a small 2-stage GPT on 2 hosts plus spares
    (small so iteration time and checkpoint cost are commensurate)."""
    cluster = Cluster(
        ClusterSpec(n_hosts=2 + n_spares, devices_per_host=4, n_spare_hosts=n_spares)
    )
    config = GPTConfig(name="GPT-small", n_layers=4, hidden=1024, dp=2, op=2, pp=2)
    return build_gpt(config, cluster=cluster)


def sweep_config(interval: int) -> CheckpointConfig:
    return CheckpointConfig(
        interval=interval,
        write_bandwidth=1e8,
        read_bandwidth=2e8,
        detection_latency=0.5,
    )


def run_interval_sweep(
    n_iterations: int = 30,
    mtbf_iterations: float = 12.0,
    intervals: tuple[int, ...] = (1, 2, 5, 10, 15, 30),
    seed: int = 7,
) -> ExperimentTable:
    """Total-time U-curve over the checkpoint interval, Young/Daly marked."""
    spec = recovery_job()
    base = simulate_training_run(
        spec, n_iterations, config=sweep_config(0), state_elems_per_stage=STATE_ELEMS
    )
    iter_time = base.total_time / n_iterations
    mtbf = mtbf_iterations * iter_time
    faults = poisson_host_failures(
        seed, mtbf, horizon=3.0 * n_iterations * iter_time, hosts=(0, 1)
    )
    # Measured per-checkpoint cost, for the analytic optimum.
    delta = (
        simulate_training_run(
            spec, 2, config=sweep_config(1), state_elems_per_stage=STATE_ELEMS
        ).checkpoint_time
        / 2.0
    )
    yd_iters = optimal_interval(mtbf, delta) / iter_time
    table = ExperimentTable(
        experiment_id="R1a",
        title="Elastic recovery: checkpoint-interval sweep under host failures",
        columns=[
            "interval (iters)",
            "total (s)",
            "overhead",
            "restarts",
            "ckpt (s)",
            "warmup (s)",
            "reshard (s)",
        ],
        notes=(
            f"MTBF {mtbf:.0f}s (~{mtbf_iterations:g} iters); Young/Daly "
            f"optimum ~{yd_iters:.1f} iters; seed {seed}"
        ),
    )
    for interval in intervals:
        rep = simulate_training_run(
            spec,
            n_iterations,
            faults=faults,
            config=sweep_config(interval),
            max_restarts=8,
            state_elems_per_stage=STATE_ELEMS,
        )
        table.add(
            **{
                "interval (iters)": interval,
                "total (s)": rep.total_time,
                "overhead": rep.overhead,
                "restarts": rep.n_restarts,
                "ckpt (s)": rep.checkpoint_time,
                "warmup (s)": rep.time_warmup,
                "reshard (s)": rep.time_reshard,
            }
        )
    return table


def run_mtbf_sweep(
    n_iterations: int = 30,
    mtbf_iterations: tuple[float, ...] = (6.0, 12.0, 24.0, 48.0),
    interval: int = 5,
    seed: int = 7,
) -> ExperimentTable:
    """Recovery breakdown as failures get denser."""
    spec = recovery_job()
    base = simulate_training_run(
        spec, n_iterations, config=sweep_config(0), state_elems_per_stage=STATE_ELEMS
    )
    iter_time = base.total_time / n_iterations
    table = ExperimentTable(
        experiment_id="R1b",
        title="Elastic recovery: overhead breakdown vs. MTBF",
        columns=[
            "MTBF (iters)",
            "restarts",
            "overhead",
            "detect (s)",
            "load (s)",
            "reshard (s)",
            "warmup (s)",
            "wasted (s)",
        ],
        notes=f"checkpoint interval {interval} iters; seed {seed}",
    )
    for m in mtbf_iterations:
        faults = poisson_host_failures(
            seed, m * iter_time, horizon=3.0 * n_iterations * iter_time, hosts=(0, 1)
        )
        rep = simulate_training_run(
            spec,
            n_iterations,
            faults=faults,
            config=sweep_config(interval),
            max_restarts=8,
            state_elems_per_stage=STATE_ELEMS,
        )
        table.add(
            **{
                "MTBF (iters)": m,
                "restarts": rep.n_restarts,
                "overhead": rep.overhead,
                "detect (s)": rep.time_detect,
                "load (s)": rep.time_load,
                "reshard (s)": rep.time_reshard,
                "warmup (s)": rep.time_warmup,
                "wasted (s)": rep.time_wasted,
            }
        )
    return table


def run() -> list[ExperimentTable]:
    return [run_interval_sweep(), run_mtbf_sweep()]


if __name__ == "__main__":
    from .common import format_markdown

    for t in run():
        print(format_markdown(t))
        print()
