"""S3 — interleaved 1F1B with virtual pipeline stages (extension).

Sweeps the virtual-stage count ``v`` under increasing communication
cost.  Interleaving shrinks the pipeline bubble but multiplies the
number of cross-mesh transfers by ``v`` — exactly the regime where the
paper's overlap machinery earns its keep.
"""

from __future__ import annotations

from ..pipeline.interleaved import InterleavedJob, simulate_interleaved
from .common import ExperimentTable

__all__ = ["run"]

#: total per-stage work per micro-batch, split across chunks
FWD_TOTAL = 0.05
P = 4
M = 16


def run() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="S3 (extension)",
        title="Interleaved 1F1B: virtual stages vs communication cost (4 stages, 16 micro-batches)",
        columns=[
            "virtual stages",
            "comm/compute",
            "iteration (s)",
            "bubble",
            "peak act stage0",
        ],
        notes=(
            "Total compute per stage is fixed; v chunks mean v times as "
            "many (v times smaller) boundary transfers.  Overlap keeps "
            "the extra transfers off the critical path, so deeper "
            "interleaving still wins under communication."
        ),
    )
    for comm_ratio in (0.0, 0.25, 0.5):
        for v in (1, 2, 4):
            job = InterleavedJob(
                n_stages=P,
                n_virtual=v,
                n_microbatches=M,
                fwd_time=FWD_TOTAL / v,
                bwd_time=2 * FWD_TOTAL / v,
                comm_fwd=comm_ratio * FWD_TOTAL / v,
                comm_bwd=comm_ratio * FWD_TOTAL / v,
            )
            r = simulate_interleaved(job)
            table.add(
                **{
                    "virtual stages": v,
                    "comm/compute": comm_ratio,
                    "iteration (s)": r.iteration_time,
                    "bubble": r.bubble_fraction(),
                    "peak act stage0": r.peak_activation_counts[0],
                }
            )
    return table
