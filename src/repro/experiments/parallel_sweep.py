"""S1 — parallel-configuration sweep (beyond the paper's fixed configs).

Table 3 evaluates two hand-picked GPT parallel configs.  Systems like
Alpa *search* this space; with the whole stack simulated we can sweep
every (dp, op, pp) factorization of the 8-GPU cluster and see how the
communication system changes the ranking — communication-heavier
configs (more pipeline stages, cross-host tensor parallelism) gain the
most from broadcast + eager-1F1B.
"""

from __future__ import annotations

from ..models.gpt import GPTConfig, build_gpt
from ..models.parallel import run_iteration
from .common import ExperimentTable

__all__ = ["run", "gpt_config_space"]


def gpt_config_space(n_devices: int = 8, n_layers: int = 32) -> list[GPTConfig]:
    """All (dp, op, pp) factorizations of ``n_devices`` that fit GPT."""
    configs = []
    for pp in (1, 2, 4, 8):
        if n_devices % pp or n_layers % pp:
            continue
        rest = n_devices // pp
        dp = 1
        while dp <= rest:
            if rest % dp == 0:
                op = rest // dp
                try:
                    configs.append(
                        GPTConfig(
                            name=f"GPT ({dp},{op},{pp})", dp=dp, op=op, pp=pp
                        )
                    )
                except ValueError:
                    pass
            dp *= 2
    return configs


def run(methods: tuple[str, ...] = ("alpa", "ours")) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="S1 (extension)",
        title="GPT-2.6B parallel-config sweep on 8 GPUs (per-GPU TFLOPS)",
        columns=["config", "micro-batches"] + [f"{m} TFLOPS" for m in methods]
        + ["ours/alpa"],
        notes=(
            "pp=1 has no cross-mesh resharding, so all systems tie; "
            "deeper pipelines shift more time into communication and "
            "widen the gap."
        ),
    )
    for cfg in gpt_config_space():
        spec = build_gpt(cfg)
        results = {m: run_iteration(spec, m) for m in methods}
        row = {
            "config": f"({cfg.dp},{cfg.op},{cfg.pp})",
            "micro-batches": cfg.n_microbatches,
            "ours/alpa": (
                results["ours"].throughput_tflops / results["alpa"].throughput_tflops
                if {"ours", "alpa"} <= set(methods)
                else float("nan")
            ),
        }
        for m in methods:
            row[f"{m} TFLOPS"] = results[m].throughput_tflops
        table.add(**row)
    return table
