"""repro — reproduction of "On Optimizing the Communication of Model
Parallelism" (MLSys 2023) on a simulated GPU cluster.

Public surface:

* :mod:`repro.sim` — simulated cluster (hosts, NICs, NVLink, flows);
* :mod:`repro.core` — meshes, sharding specs, cross-mesh resharding
  tasks, plans, and the :func:`repro.reshard` entry point;
* :mod:`repro.strategies` — send/recv, all-gather ("Alpa"), broadcast
  (the paper's method), and signal communication strategies;
* :mod:`repro.scheduling` — load balancing / ordering of unit tasks;
* :mod:`repro.pipeline` — GPipe / 1F1B / eager-1F1B pipeline schedules
  with communication overlap and memory accounting;
* :mod:`repro.models` — GPT-3-style and U-Transformer cost models;
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from .core import (
    CommPlan,
    DeviceMesh,
    DistributedTensor,
    IntraReshardResult,
    ReshardingTask,
    ReshardResult,
    ShardingSpec,
    TimingResult,
    UnitCommTask,
    apply_plan,
    intra_mesh_reshard,
    plan_resharding,
    reshard,
    simulate_plan,
)
from .sim import GB, GBPS, Cluster, ClusterSpec, Network
from .strategies import (
    AllGatherStrategy,
    BroadcastStrategy,
    CommStrategy,
    SendRecvStrategy,
    SignalStrategy,
    make_strategy,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Cluster",
    "ClusterSpec",
    "Network",
    "GB",
    "GBPS",
    "DeviceMesh",
    "ShardingSpec",
    "ReshardingTask",
    "UnitCommTask",
    "CommPlan",
    "DistributedTensor",
    "TimingResult",
    "ReshardResult",
    "reshard",
    "plan_resharding",
    "simulate_plan",
    "apply_plan",
    "intra_mesh_reshard",
    "IntraReshardResult",
    "CommStrategy",
    "SendRecvStrategy",
    "AllGatherStrategy",
    "BroadcastStrategy",
    "SignalStrategy",
    "make_strategy",
]
