"""Seeded load generator + report for exercising the service.

Drives a :class:`~repro.service.service.ReshardingService` on the
virtual-time loop with a deterministic multi-tenant arrival process —
steady Poisson or bursty (rate switches to ``burst_rate`` during
periodic burst windows) — over a small pool of distinct resharding
tasks, so identical requests recur and the cache/coalescing paths get
real traffic.  The whole run is a pure function of
``(profile, seed, config, chaos)``: arrivals, tenants, task choices,
cancellations, and every service decision replay byte-identically.

:func:`run_load` returns a :class:`LoadReport` with the overload-safety
evidence the benchmarks and CI smoke gate assert on: latency
percentiles, per-status counts, cache hit rate, shed/coalesce rates,
peak queue depth, and the telemetry digest.
"""

from __future__ import annotations

import asyncio
import math
import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.task import ReshardingTask
from ..experiments.common import make_microbench_meshes
from .chaos import ServiceChaos
from .clock import run_virtual
from .request import CompileRequest, CompileResponse
from .service import ReshardingService, ServiceConfig

__all__ = [
    "LoadProfile",
    "Arrival",
    "PROFILES",
    "generate_arrivals",
    "build_task_pool",
    "percentile",
    "LoadReport",
    "run_load",
]


@dataclass(frozen=True)
class LoadProfile:
    """A deterministic arrival process over a pool of distinct tasks."""

    name: str
    n_requests: int = 120
    n_tenants: int = 4
    n_distinct_tasks: int = 6
    #: mean arrival rate outside bursts (requests / service second)
    base_rate: float = 60.0
    #: arrival rate inside a burst window
    burst_rate: float = 600.0
    #: a burst starts every ``burst_every`` seconds and lasts ``burst_len``
    burst_every: float = 1.0
    burst_len: float = 0.25
    bursty: bool = True

    def rate_at(self, t: float) -> float:
        if self.bursty and (t % self.burst_every) < self.burst_len:
            return self.burst_rate
        return self.base_rate


PROFILES: dict[str, LoadProfile] = {
    "steady": LoadProfile(name="steady", bursty=False),
    "bursty": LoadProfile(name="bursty"),
}


@dataclass(frozen=True)
class Arrival:
    """One scheduled submission."""

    time: float
    request_id: str
    tenant: str
    task_idx: int


def generate_arrivals(profile: LoadProfile, seed: int) -> list[Arrival]:
    """Seeded arrival schedule: exponential gaps at the profile's rate."""
    rng = random.Random(f"loadgen:{seed}:{profile.name}")
    arrivals: list[Arrival] = []
    t = 0.0
    for i in range(profile.n_requests):
        t += rng.expovariate(profile.rate_at(t))
        arrivals.append(
            Arrival(
                time=t,
                request_id=f"req-{i:04d}",
                tenant=f"tenant-{rng.randrange(profile.n_tenants)}",
                task_idx=rng.randrange(profile.n_distinct_tasks),
            )
        )
    return arrivals


def build_task_pool(n_distinct_tasks: int) -> list[ReshardingTask]:
    """``n`` small distinct reshardings (varying shape/specs), cycled."""
    combos = [
        ((2, 2), (2, 2), "S0R", "RS0"),
        ((1, 2), (2, 2), "RS0", "S0R"),
        ((2, 2), (1, 4), "S0R", "S1R"),
        ((2, 1), (2, 2), "RR", "S0R"),
    ]
    tasks: list[ReshardingTask] = []
    for i in range(n_distinct_tasks):
        send, recv, src_spec, dst_spec = combos[i % len(combos)]
        _cluster, src_mesh, dst_mesh = make_microbench_meshes(send, recv)
        shape = (64 + 32 * (i // len(combos)), 128)
        tasks.append(ReshardingTask(shape, src_mesh, src_spec, dst_mesh, dst_spec))
    return tasks


def percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(p / 100.0 * len(ordered))
    rank = min(max(rank, 1), len(ordered))
    return ordered[rank - 1]


@dataclass
class LoadReport:
    """Everything a benchmark or CI gate asserts about one load run."""

    profile: str
    seed: int
    n_requests: int
    status_counts: dict[str, int] = field(default_factory=dict)
    p50_latency: float = 0.0
    p95_latency: float = 0.0
    p99_latency: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    n_coalesced: int = 0
    n_shed: int = 0
    n_degraded: int = 0
    n_retries: int = 0
    max_queue_depth: int = 0
    worker_crashes: int = 0
    counter_totals: dict[str, float] = field(default_factory=dict)
    telemetry_digest: str = ""

    @property
    def shed_rate(self) -> float:
        return self.n_shed / self.n_requests if self.n_requests else 0.0

    @property
    def coalesce_rate(self) -> float:
        return self.n_coalesced / self.n_requests if self.n_requests else 0.0

    def to_json(self) -> dict[str, object]:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "status_counts": dict(sorted(self.status_counts.items())),
            "latency": {
                "p50": self.p50_latency,
                "p95": self.p95_latency,
                "p99": self.p99_latency,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
            },
            "n_coalesced": self.n_coalesced,
            "n_shed": self.n_shed,
            "shed_rate": self.shed_rate,
            "n_degraded": self.n_degraded,
            "n_retries": self.n_retries,
            "max_queue_depth": self.max_queue_depth,
            "worker_crashes": self.worker_crashes,
            "telemetry_digest": self.telemetry_digest,
        }

    def format_summary(self) -> str:
        lines = [
            f"profile={self.profile} seed={self.seed} "
            f"requests={self.n_requests} crashes={self.worker_crashes}",
            "status: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.status_counts.items())),
            f"latency: p50={self.p50_latency * 1e3:.2f}ms "
            f"p95={self.p95_latency * 1e3:.2f}ms "
            f"p99={self.p99_latency * 1e3:.2f}ms",
            f"cache: hits={self.cache_hits} misses={self.cache_misses} "
            f"hit_rate={self.cache_hit_rate:.2%}",
            f"coalesced={self.n_coalesced} shed={self.n_shed} "
            f"degraded={self.n_degraded} retries={self.n_retries} "
            f"max_queue_depth={self.max_queue_depth}",
        ]
        return "\n".join(lines)


async def drive(
    service: ReshardingService,
    arrivals: list[Arrival],
    tasks: list[ReshardingTask],
    chaos: Optional[ServiceChaos] = None,
    *,
    timeout: Optional[float] = None,
    deadline: Optional[float] = None,
) -> list[CompileResponse]:
    """Submit every arrival at its scheduled virtual time; await all.

    ``chaos`` client-side behavior (hang-ups) is applied here: a client
    chosen to cancel arms a timer for ``cancel_delay`` after admission.
    """
    loop = asyncio.get_event_loop()

    async def one(arrival: Arrival) -> CompileResponse:
        delay = arrival.time - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        request = CompileRequest(
            request_id=arrival.request_id,
            tenant=arrival.tenant,
            task=tasks[arrival.task_idx % len(tasks)],
            timeout=timeout,
            deadline=deadline,
        )
        outcome = service.try_submit(request)
        if isinstance(outcome, CompileResponse):
            return outcome
        if chaos is not None and chaos.cancels(arrival.request_id):
            loop.call_later(chaos.cancel_delay(arrival.request_id), outcome.cancel)
        return await outcome.wait()

    return list(await asyncio.gather(*(one(a) for a in arrivals)))


def run_load(
    profile: LoadProfile,
    *,
    seed: int = 0,
    config: Optional[ServiceConfig] = None,
    chaos: Optional[ServiceChaos] = None,
    timeout: Optional[float] = None,
    deadline: Optional[float] = None,
) -> LoadReport:
    """One complete, replayable load run on a fresh virtual-time loop."""
    arrivals = generate_arrivals(profile, seed)
    tasks = build_task_pool(profile.n_distinct_tasks)

    async def main() -> tuple[ReshardingService, list[CompileResponse]]:
        service = ReshardingService(config, chaos=chaos)
        await service.start()
        responses = await drive(
            service, arrivals, tasks, chaos, timeout=timeout, deadline=deadline
        )
        await service.shutdown()
        return service, responses

    service, responses = run_virtual(main())
    return build_report(profile, seed, service, responses)


def build_report(
    profile: LoadProfile,
    seed: int,
    service: ReshardingService,
    responses: list[CompileResponse],
) -> LoadReport:
    status_counts: dict[str, int] = {}
    for r in responses:
        status_counts[r.status] = status_counts.get(r.status, 0) + 1
    ok_latencies = [r.latency for r in responses if r.ok]
    totals = service.bus.counter_totals()
    stats = service.cache.stats()
    max_depth = 0
    for name, _track, _time, value in service.bus.counter_rows:
        if name == "service.queue_depth":
            max_depth = max(max_depth, int(value))
    return LoadReport(
        profile=profile.name,
        seed=seed,
        n_requests=len(responses),
        status_counts=status_counts,
        p50_latency=percentile(ok_latencies, 50),
        p95_latency=percentile(ok_latencies, 95),
        p99_latency=percentile(ok_latencies, 99),
        cache_hits=stats.hits,
        cache_misses=stats.misses,
        cache_hit_rate=stats.hit_rate,
        n_coalesced=int(totals.get("service/service.coalesced", 0)),
        n_shed=int(totals.get("service/service.shed", 0)),
        n_degraded=int(totals.get("service/service.degraded", 0)),
        n_retries=int(totals.get("service/service.retries", 0)),
        max_queue_depth=max_depth,
        worker_crashes=service.worker_crashes,
        counter_totals=totals,
        telemetry_digest=service.bus.digest(),
    )
