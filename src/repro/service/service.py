"""The resharding service: an overload-safe async planning frontend.

:class:`ReshardingService` accepts concurrent compile requests from many
tenants and guarantees that *overload degrades answers, never the
service*:

* every submission is answered — admitted, coalesced, served stale, or
  shed with a structured :class:`~repro.service.request.Overloaded`;
* backlog is bounded (global + per-tenant) and drained round-robin, so
  no tenant starves behind another's burst;
* identical in-flight compiles are **coalesced**: requests whose plan
  signature matches a compile already running attach to it and share
  the one result (single-flight);
* a :class:`~repro.service.breaker.CircuitBreaker` guards the compiler;
  while it is open, requests with a stale-but-valid cached plan get it
  with ``degraded=True`` and the rest are shed with a retry-after;
* transient compile faults are retried with the repo's deterministic
  backoff policy; poison requests (plans that fail static validation)
  fail their own request only — never the worker, never the breaker.

The service is plain asyncio and normally runs on the deterministic
:class:`~repro.service.clock.VirtualTimeLoop`: all timestamps come from
``loop.time()`` and all chaos decisions from seeded hashes, so a run's
telemetry stream is byte-identical across replays.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional, Union

from ..compiler import (
    CompiledPlan,
    CompileContext,
    CompileTimeout,
    PlanCache,
    compile_resharding,
    plan_signature,
)
from ..compiler.passes import DEFAULT_PASSES
from ..core.validate import PlanValidationError
from ..runtime.telemetry import TelemetryBus
from ..sim.faults import RetryPolicy
from ..strategies import make_strategy
from ..strategies.base import CommStrategy
from .admission import AdmissionConfig, AdmissionController, FairQueue
from .breaker import BreakerConfig, CircuitBreaker
from .chaos import PoisonPass, ServiceChaos
from .request import (
    CompileRequest,
    CompileResponse,
    Overloaded,
    TransientCompileFault,
)

__all__ = ["ServiceConfig", "RequestHandle", "ReshardingService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Static policy for one service instance."""

    n_workers: int = 2
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: retry policy for transient compile faults (deterministic backoff)
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=3, backoff_base=0.005, backoff_factor=2.0, jitter=0.25
        )
    )
    #: service seconds one compile occupies a worker (plus per-op cost)
    base_service_time: float = 0.01
    per_op_service_time: float = 0.0005
    #: defaults applied to requests that do not set their own
    default_deadline: Optional[float] = None
    default_timeout: Optional[float] = None
    #: serve stale cached plans (``degraded=True``) while the breaker is
    #: open instead of shedding
    serve_stale: bool = True

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.base_service_time <= 0:
            raise ValueError("base_service_time must be positive")
        if self.per_op_service_time < 0:
            raise ValueError("per_op_service_time must be >= 0")

    @property
    def drain_rate(self) -> float:
        """Nominal queue drain throughput (requests / service second)."""
        return self.n_workers / self.base_service_time


class RequestHandle:
    """One submission's ticket: await the response, or cancel it."""

    def __init__(
        self,
        request: CompileRequest,
        submitted_at: float,
        future: "asyncio.Future[CompileResponse]",
        service: "ReshardingService",
    ) -> None:
        self.request = request
        self.submitted_at = submitted_at
        self.future = future
        self._service = service

    @property
    def done(self) -> bool:
        return self.future.done()

    async def wait(self) -> CompileResponse:
        return await self.future

    def cancel(self) -> bool:
        """Client hangs up: resolve this handle ``cancelled`` (idempotent).

        Only this waiter is cancelled — a coalesced compile keeps running
        for the other requests attached to it.
        """
        return self._service._cancel_handle(self)

    def deadline_at(self) -> Optional[float]:
        """Absolute service time at which this request expires."""
        if self.request.timeout is None:
            return None
        return self.submitted_at + self.request.timeout


class _InFlight:
    """One physical compile plus every request coalesced onto it."""

    __slots__ = ("signature", "stale_key", "strategy", "handles", "poison")

    def __init__(
        self,
        signature: Optional[str],
        stale_key: Optional[str],
        strategy: CommStrategy,
        leader: RequestHandle,
        poison: bool,
    ) -> None:
        self.signature = signature
        self.stale_key = stale_key
        self.strategy = strategy
        self.handles: list[RequestHandle] = [leader]
        self.poison = poison

    @property
    def leader(self) -> RequestHandle:
        return self.handles[0]


class ReshardingService:
    """Admission-controlled, breaker-guarded compile frontend.

    Construct inside a running event loop (all timestamps come from
    ``loop.time()``), call :meth:`start`, submit requests, then
    :meth:`shutdown` — which drains the queue before returning.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        cache: Optional[PlanCache] = None,
        bus: Optional[TelemetryBus] = None,
        chaos: Optional[ServiceChaos] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.cache = cache if cache is not None else PlanCache(n_shards=4)
        loop = asyncio.get_event_loop()
        self._loop = loop
        self.bus = bus if bus is not None else TelemetryBus(clock=loop.time)
        self.chaos = chaos
        self.admission = AdmissionController(self.config.admission)
        self.breaker = CircuitBreaker(self.config.breaker)
        self._queue: FairQueue[_InFlight] = FairQueue()
        self._inflight: dict[str, _InFlight] = {}
        #: last known-good plan per epoch-independent signature, served
        #: with ``degraded=True`` while the breaker is open
        self._stale: dict[str, CompiledPlan] = {}
        self._cond = asyncio.Condition()
        self._workers: list[asyncio.Task[None]] = []
        self._running = False
        self.worker_crashes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._workers = [
            self._loop.create_task(self._worker_loop(i), name=f"reshard-worker-{i}")
            for i in range(self.config.n_workers)
        ]

    async def shutdown(self) -> None:
        """Stop accepting work, drain the backlog, join the workers."""
        self._running = False
        async with self._cond:
            self._cond.notify_all()
        if self._workers:
            await asyncio.gather(*self._workers)
        self._workers = []

    def _now(self) -> float:
        return self._loop.time()

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    async def submit(self, request: CompileRequest) -> CompileResponse:
        """Submit and wait for the terminal response."""
        outcome = self.try_submit(request)
        if isinstance(outcome, CompileResponse):
            return outcome
        return await outcome.wait()

    def try_submit(
        self, request: CompileRequest
    ) -> Union[RequestHandle, CompileResponse]:
        """Admission-or-rejection, synchronously.

        Returns a :class:`RequestHandle` when admitted (or coalesced, or
        answered from cache — the handle is already resolved then), or a
        terminal ``shed`` :class:`CompileResponse` when refused.
        """
        if not self._running:
            raise RuntimeError("service is not running (call start() first)")
        now = self._now()
        if request.deadline is None and self.config.default_deadline is not None:
            request.deadline = self.config.default_deadline
        if request.timeout is None and self.config.default_timeout is not None:
            request.timeout = self.config.default_timeout

        overloaded = self.admission.decide(
            request.tenant, now, self._queue, self.config.drain_rate
        )
        if overloaded is not None:
            self._count("service.shed", now)
            self._count(f"service.shed.{overloaded.reason}", now)
            self._request_span(request, now, now, "shed")
            return CompileResponse(
                request_id=request.request_id,
                tenant=request.tenant,
                status="shed",
                overloaded=overloaded,
                submitted_at=now,
                completed_at=now,
                detail=overloaded.reason,
            )

        self._count("service.admitted", now)
        future: "asyncio.Future[CompileResponse]" = self._loop.create_future()
        handle = RequestHandle(request, now, future, self)

        strategy = make_strategy(request.strategy, **request.strategy_kwargs)
        strategy_key = strategy.cache_key()
        signature: Optional[str] = None
        stale_key: Optional[str] = None
        poison = self.chaos is not None and self.chaos.is_poison(request.request_id)
        if strategy_key is not None and not poison:
            signature = plan_signature(
                request.task, strategy_key, None, None, epoch=self.cache.epoch
            )
            stale_key = plan_signature(
                request.task, strategy_key, None, None, epoch=-1
            )

            cached = self.cache.lookup(signature)
            if cached is not None:
                self._count("service.cache_hit", now)
                self._resolve(
                    handle,
                    self._ok_response(handle, cached, now, attempts=0),
                    "ok",
                )
                return handle

            running = self._inflight.get(signature)
            if running is not None:
                running.handles.append(handle)
                self._count("service.coalesced", now)
                return handle

        entry = _InFlight(signature, stale_key, strategy, handle, poison)
        if signature is not None:
            self._inflight[signature] = entry
        self._queue.push(request.tenant, entry)
        self._gauge_depth(now)
        self._notify()
        return handle

    def _notify(self) -> None:
        async def _kick() -> None:
            async with self._cond:
                self._cond.notify_all()

        self._loop.create_task(_kick())

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    async def _worker_loop(self, idx: int) -> None:
        track = f"worker:{idx}"
        while True:
            async with self._cond:
                while self._running and self._queue.depth() == 0:
                    await self._cond.wait()
                popped = self._queue.pop()
                if popped is None:
                    if not self._running:
                        return
                    continue
            self._gauge_depth(self._now())
            _tenant, entry = popped
            try:
                await self._process(entry, track)
            except asyncio.CancelledError:  # pragma: no cover - shutdown path
                raise
            except Exception as exc:
                # The contract under test: a bad request may fail itself,
                # never the worker.  Anything reaching here is a service
                # bug — count it loudly and keep serving.
                self.worker_crashes += 1
                self._count("service.worker_crash", self._now())
                self._fail_all(entry, f"internal error: {exc!r}")

    async def _process(self, entry: _InFlight, track: str) -> None:
        now = self._now()
        if entry.signature is not None:
            # from here on, new identical requests start a fresh compile
            self._inflight.pop(entry.signature, None)
        self._expire_handles(entry, now)
        if not self._live_handles(entry):
            return

        verdict = self.breaker.allow(now)
        if verdict == "reject":
            self._serve_degraded_or_shed(entry, now)
            return
        if verdict == "probe":
            self._count("service.breaker_probe", now)

        leader_id = entry.leader.request.request_id
        attempt = 0
        while True:
            attempt += 1
            try:
                compiled = await self._attempt(entry, attempt, track)
            except TransientCompileFault as fault:
                if fault.cause == "partition":
                    self._count("service.partition_fault", self._now())
                else:
                    self._count("service.transient_fault", self._now())
                if not self.config.retry.exhausted(attempt):
                    self._count("service.retries", self._now())
                    await asyncio.sleep(
                        self.config.retry.backoff(attempt, "service", leader_id)
                    )
                    self._expire_handles(entry, self._now())
                    if not self._live_handles(entry):
                        self.breaker.record_failure(self._now(), kind=fault.cause)
                        return
                    continue
                self.breaker.record_failure(self._now(), kind=fault.cause)
                self._count("service.failed", self._now())
                self._fail_all(entry, f"retries exhausted: {fault}", attempts=attempt)
                return
            except CompileTimeout as timeout:
                self.breaker.record_failure(self._now())
                self._count("service.deadline_exceeded", self._now())
                self._count("service.failed", self._now())
                self._fail_all(entry, str(timeout), attempts=attempt)
                return
            except PlanValidationError as invalid:
                # The request's own fault: resolve it invalid, leave the
                # breaker alone (the compiler worked correctly).
                self.breaker.record_success(self._now())
                self._count("service.invalid", self._now())
                if "M0" in str(invalid):
                    # Budget rejections get their own counter so capacity
                    # dashboards can tell "bad plan" from "plan too big".
                    self._count("service.invalid.memory_budget", self._now())
                done_at = self._now()
                for handle in self._live_handles(entry):
                    self._resolve(
                        handle,
                        CompileResponse(
                            request_id=handle.request.request_id,
                            tenant=handle.request.tenant,
                            status="invalid",
                            attempts=attempt,
                            submitted_at=handle.submitted_at,
                            completed_at=done_at,
                            detail=f"plan validation failed: {invalid}",
                        ),
                        "invalid",
                    )
                return
            break

        self.breaker.record_success(self._now())
        if entry.stale_key is not None:
            self._stale[entry.stale_key] = compiled
        done_at = self._now()
        self._expire_handles(entry, done_at)
        live = self._live_handles(entry)
        if not live:
            self._count("service.wasted_compile", done_at)
            return
        self._count("service.completed", done_at)
        for handle in live:
            self._resolve(
                handle,
                self._ok_response(
                    handle,
                    compiled,
                    done_at,
                    attempts=attempt,
                    coalesced=handle is not entry.handles[0],
                ),
                "ok",
            )

    async def _attempt(
        self, entry: _InFlight, attempt: int, track: str
    ) -> CompiledPlan:
        """One compile attempt, occupying the worker for its service time."""
        leader_id = entry.leader.request.request_id
        start = self._now()
        service_time = self.config.base_service_time
        if self.chaos is not None:
            extra = self.chaos.slow_extra_time(leader_id)
            if extra > 0:
                self._count("service.slow_compile", start)
                service_time += extra
        await asyncio.sleep(service_time)
        try:
            if self.chaos is not None and self.chaos.attempt_partitioned(
                leader_id, attempt
            ):
                raise TransientCompileFault(
                    f"worker unreachable on attempt {attempt} of {leader_id}",
                    cause="partition",
                )
            if self.chaos is not None and self.chaos.attempt_faults(leader_id, attempt):
                raise TransientCompileFault(
                    f"injected fault on attempt {attempt} of {leader_id}"
                )
            request = entry.leader.request
            if entry.poison:
                passes = DEFAULT_PASSES()
                passes.insert(len(passes) - 1, PoisonPass())
                ctx = CompileContext(
                    strategy=entry.strategy,
                    deadline=request.deadline,
                    cache=None,
                    validate=True,
                    passes=passes,
                )
            else:
                ctx = CompileContext(
                    strategy=entry.strategy,
                    deadline=request.deadline,
                    cache=self.cache,
                    # A budget-carrying task must be admission-checked:
                    # validate so an over-budget plan surfaces as a
                    # structured "invalid" (M001/M003), never as a
                    # breaker-counted failure.
                    validate=request.task.cluster.spec.memory_budget is not None,
                )
            compiled = compile_resharding(request.task, ctx)
        finally:
            self.bus.span(
                "compile",
                cat="service",
                track=track,
                start=start,
                end=self._now(),
                attrs={"request": leader_id, "attempt": attempt},
            )
        if self.config.per_op_service_time > 0 and compiled.plan.ops:
            await asyncio.sleep(
                self.config.per_op_service_time * len(compiled.plan.ops)
            )
        return compiled

    # ------------------------------------------------------------------
    # Degraded / terminal paths
    # ------------------------------------------------------------------
    def _serve_degraded_or_shed(self, entry: _InFlight, now: float) -> None:
        stale = (
            self._stale.get(entry.stale_key)
            if (self.config.serve_stale and entry.stale_key is not None)
            else None
        )
        if stale is not None:
            self._count("service.degraded", now)
            for handle in self._live_handles(entry):
                response = self._ok_response(
                    handle,
                    stale,
                    now,
                    attempts=0,
                    coalesced=handle is not entry.handles[0],
                )
                response.degraded = True
                response.detail = "stale plan served while circuit breaker open"
                self._resolve(handle, response, "ok")
            return
        retry_after = self.breaker.retry_after(now)
        self._count("service.shed", now)
        self._count("service.shed.breaker-open", now)
        for handle in self._live_handles(entry):
            self._resolve(
                handle,
                CompileResponse(
                    request_id=handle.request.request_id,
                    tenant=handle.request.tenant,
                    status="shed",
                    overloaded=Overloaded(
                        reason="breaker-open",
                        retry_after=retry_after,
                        tenant=handle.request.tenant,
                        queue_depth=self._queue.depth(),
                    ),
                    submitted_at=handle.submitted_at,
                    completed_at=now,
                    detail="circuit breaker open, no stale plan available",
                ),
                "shed",
            )

    def _fail_all(self, entry: _InFlight, detail: str, attempts: int = 0) -> None:
        now = self._now()
        for handle in self._live_handles(entry):
            self._resolve(
                handle,
                CompileResponse(
                    request_id=handle.request.request_id,
                    tenant=handle.request.tenant,
                    status="failed",
                    attempts=attempts,
                    submitted_at=handle.submitted_at,
                    completed_at=now,
                    detail=detail,
                ),
                "failed",
            )

    def _expire_handles(self, entry: _InFlight, now: float) -> None:
        for handle in entry.handles:
            if handle.future.done():
                continue
            deadline_at = handle.deadline_at()
            if deadline_at is not None and now > deadline_at:
                self._count("service.expired", now)
                self._resolve(
                    handle,
                    CompileResponse(
                        request_id=handle.request.request_id,
                        tenant=handle.request.tenant,
                        status="expired",
                        submitted_at=handle.submitted_at,
                        completed_at=now,
                        detail=f"timeout {handle.request.timeout:g}s elapsed",
                    ),
                    "expired",
                )

    def _cancel_handle(self, handle: RequestHandle) -> bool:
        if handle.future.done():
            return False
        now = self._now()
        self._count("service.cancelled", now)
        self._resolve(
            handle,
            CompileResponse(
                request_id=handle.request.request_id,
                tenant=handle.request.tenant,
                status="cancelled",
                submitted_at=handle.submitted_at,
                completed_at=now,
                detail="client cancelled",
            ),
            "cancelled",
        )
        return True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _live_handles(self, entry: _InFlight) -> list[RequestHandle]:
        return [h for h in entry.handles if not h.future.done()]

    def _ok_response(
        self,
        handle: RequestHandle,
        compiled: CompiledPlan,
        now: float,
        attempts: int,
        coalesced: bool = False,
    ) -> CompileResponse:
        return CompileResponse(
            request_id=handle.request.request_id,
            tenant=handle.request.tenant,
            status="ok",
            plan_signature=compiled.signature,
            n_ops=len(compiled.plan.ops),
            coalesced=coalesced,
            attempts=attempts,
            submitted_at=handle.submitted_at,
            completed_at=now,
        )

    def _resolve(
        self, handle: RequestHandle, response: CompileResponse, status: str
    ) -> None:
        if handle.future.done():  # pragma: no cover - defensive
            return
        handle.future.set_result(response)
        self._request_span(
            handle.request, handle.submitted_at, response.completed_at, status
        )

    def _request_span(
        self, request: CompileRequest, start: float, end: float, status: str
    ) -> None:
        self.bus.span(
            "request",
            cat="service",
            track=f"tenant:{request.tenant}",
            start=start,
            end=end,
            attrs={"request": request.request_id, "status": status},
        )

    def _count(self, name: str, now: float) -> None:
        self.bus.counter(name, track="service").add(1, at=now)

    def _gauge_depth(self, now: float) -> None:
        gauge = self.bus.gauge("service.queue_depth", track="service")
        gauge.add(self._queue.depth() - gauge.value, at=now)
