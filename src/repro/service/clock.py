"""A virtual-time asyncio event loop for deterministic async services.

The resharding service is ordinary asyncio code — coroutines, queues,
``loop.call_at`` timers — but the repo's determinism contract (byte-
identical telemetry for identical inputs, enforced by the repro-lint
L001 rule) rules out the wall clock.  :class:`VirtualTimeLoop` squares
that circle: ``loop.time()`` reads a **virtual clock** that only moves
when every runnable task has yielded, and then jumps straight to the
next scheduled timer.  ``await asyncio.sleep(0.25)`` costs zero wall
time, and two runs of the same seeded workload execute the exact same
interleaving — the standard virtual-clock testing trick (as used by
Trio's test clock and asyncio ``looptime``-style harnesses), promoted
here to the service's default execution mode.

The mechanism: asyncio's selector event loop computes ``timeout = next
timer - now`` and blocks in ``selector.select(timeout)``.  The wrapped
selector never blocks — it polls ready file descriptors, and when there
are none (the service does no real I/O) advances the virtual clock by
exactly ``timeout``, so the pending timer fires immediately.  A
``select(None)`` — no ready callbacks *and* no timers — means the
program is waiting on something that can never happen; the loop raises
:class:`VirtualTimeStall` instead of hanging, turning a silent deadlock
into a loud diagnostic.
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Any, Coroutine, Mapping, Optional, TypeVar

__all__ = ["VirtualTimeLoop", "VirtualTimeStall", "run_virtual"]

T = TypeVar("T")


class VirtualTimeStall(RuntimeError):
    """The virtual loop has no ready callbacks and no timers to run."""


class _VirtualSelector(selectors.BaseSelector):
    """Selector wrapper that converts blocking waits into time jumps."""

    def __init__(self, inner: selectors.BaseSelector, loop: "VirtualTimeLoop") -> None:
        self._inner = inner
        self._loop = loop

    def register(
        self, fileobj: Any, events: int, data: Any = None
    ) -> selectors.SelectorKey:
        return self._inner.register(fileobj, events, data)

    def unregister(self, fileobj: Any) -> selectors.SelectorKey:
        return self._inner.unregister(fileobj)

    def modify(
        self, fileobj: Any, events: int, data: Any = None
    ) -> selectors.SelectorKey:
        return self._inner.modify(fileobj, events, data)

    def select(
        self, timeout: Optional[float] = None
    ) -> list[tuple[selectors.SelectorKey, int]]:
        ready = self._inner.select(0)
        if ready:
            return ready
        if timeout is None:
            raise VirtualTimeStall(
                "virtual-time loop stalled: every task is waiting on an event "
                "that no timer or callback will ever deliver"
            )
        if timeout > 0:
            self._loop._advance(timeout)
        return []

    def close(self) -> None:
        self._inner.close()

    def get_map(self) -> Mapping[Any, selectors.SelectorKey]:
        return self._inner.get_map()


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """An asyncio event loop whose clock is simulated, not measured.

    ``loop.time()`` starts at 0.0 and advances only through scheduled
    waits, so timer arithmetic is exact: a task sleeping 0.25s wakes at
    *precisely* ``t + 0.25`` and telemetry stamped off ``loop.time()``
    is reproducible byte-for-byte.
    """

    _vtime: float = 0.0

    def __init__(self) -> None:
        self._vtime = 0.0
        super().__init__(selector=_VirtualSelector(selectors.SelectSelector(), self))

    def time(self) -> float:
        return self._vtime

    def _advance(self, dt: float) -> None:
        self._vtime += dt


def run_virtual(main: Coroutine[Any, Any, T]) -> T:
    """Run ``main`` to completion on a fresh :class:`VirtualTimeLoop`."""
    loop = VirtualTimeLoop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(main)
    finally:
        try:
            _cancel_all_tasks(loop)
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()


def _cancel_all_tasks(loop: asyncio.AbstractEventLoop) -> None:
    pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
    if not pending:
        return
    for task in pending:
        task.cancel()
    loop.run_until_complete(asyncio.gather(*pending, return_exceptions=True))
