"""Admission control: bounded queues, fair sharing, rate limits.

The service's first line of overload defense is refusing work *at the
door*, cheaply and deterministically, before it can occupy memory or a
worker.  Three independent checks gate every submission, evaluated in
order of increasing specificity:

1. a **global queue bound** — total backlog may never exceed
   ``max_queue_depth``, so memory and tail latency stay bounded;
2. a **per-tenant queue bound** — one bursty tenant may only occupy
   ``per_tenant_depth`` slots of that backlog, so it can saturate its
   own share but never starve the others;
3. a **per-tenant token bucket** — sustained arrival rate above
   ``rate`` requests/second (with ``burst`` tokens of headroom) is
   rate-limited even while the queue has room.

Rejections return a structured :class:`~repro.service.request
.Overloaded` with a deterministic ``retry_after`` estimate, so clients
back off with information instead of guessing.

Dequeue order is deficit-free round-robin over tenants in sorted name
order (:class:`FairQueue`): each turn serves one request from the next
tenant that has any queued, so a tenant's worst-case wait is bounded by
the number of active tenants, not by the depth of anyone else's burst.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Deque, Generic, Optional, TypeVar

from .request import Overloaded

__all__ = ["AdmissionConfig", "TokenBucket", "FairQueue", "AdmissionController"]

T = TypeVar("T")


@dataclass(frozen=True)
class AdmissionConfig:
    """Static admission-control policy knobs."""

    #: global backlog bound across all tenants
    max_queue_depth: int = 64
    #: per-tenant share of the backlog
    per_tenant_depth: int = 16
    #: sustained per-tenant admission rate (requests / service second);
    #: ``0`` disables rate limiting
    rate: float = 0.0
    #: token-bucket burst headroom (full bucket size)
    burst: float = 8.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.per_tenant_depth < 1:
            raise ValueError("per_tenant_depth must be >= 1")
        if self.rate < 0:
            raise ValueError("rate must be >= 0")
        if self.rate > 0 and self.burst < 1:
            raise ValueError("burst must be >= 1 when rate limiting is on")


class TokenBucket:
    """Classic token bucket over the service clock (time passed in).

    The caller supplies ``now`` on every call — the bucket never reads a
    clock itself, so it works identically under the virtual-time loop
    and in unit tests that pass literal instants.
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def _refill(self, now: float) -> None:
        if now > self.updated_at:
            self.tokens = min(self.burst, self.tokens + (now - self.updated_at) * self.rate)
            self.updated_at = now

    def take(self, now: float) -> bool:
        """Consume one token if available; refills lazily from ``now``."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def time_until_token(self, now: float) -> float:
        """Service seconds until one whole token will exist (0 if it does)."""
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class FairQueue(Generic[T]):
    """Round-robin multi-tenant FIFO with per-tenant depth accounting.

    ``push`` appends to the tenant's FIFO; ``pop`` serves one item from
    the next non-empty tenant after the previously served one, cycling
    in sorted-tenant-name order (an :class:`OrderedDict` keyed by first
    appearance would make dequeue order depend on arrival interleaving;
    sorted order keeps it a pure function of queue *content*).
    """

    def __init__(self) -> None:
        self._queues: "OrderedDict[str, Deque[T]]" = OrderedDict()
        self._last_served: Optional[str] = None

    def push(self, tenant: str, item: T) -> None:
        self._queues.setdefault(tenant, deque()).append(item)

    def pop(self) -> Optional[tuple[str, T]]:
        """Serve one item round-robin; ``None`` when everything is empty."""
        active = sorted(t for t, q in self._queues.items() if q)
        if not active:
            return None
        if self._last_served is None:
            tenant = active[0]
        else:
            # first active tenant strictly after the last served, wrapping
            after = [t for t in active if t > self._last_served]
            tenant = after[0] if after else active[0]
        self._last_served = tenant
        return tenant, self._queues[tenant].popleft()

    def depth(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            q = self._queues.get(tenant)
            return len(q) if q else 0
        return sum(len(q) for q in self._queues.values())

    def __len__(self) -> int:
        return self.depth()


class AdmissionController:
    """Evaluate the three admission gates for one prospective request."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self._buckets: dict[str, TokenBucket] = {}

    def _bucket(self, tenant: str, now: float) -> Optional[TokenBucket]:
        if self.config.rate <= 0:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.config.rate, self.config.burst, now)
            self._buckets[tenant] = bucket
        return bucket

    def decide(
        self,
        tenant: str,
        now: float,
        queue: FairQueue[Any],
        drain_rate: float,
    ) -> Optional[Overloaded]:
        """``None`` to admit, else the structured rejection.

        ``drain_rate`` is the service's deterministic estimate of queue
        drain throughput (requests / service second), used to compute
        ``retry_after`` for queue-bound rejections.
        """
        depth = queue.depth()
        cfg = self.config
        if depth >= cfg.max_queue_depth:
            return Overloaded(
                reason="queue-full",
                retry_after=self._drain_eta(1, drain_rate),
                tenant=tenant,
                queue_depth=depth,
            )
        tenant_depth = queue.depth(tenant)
        if tenant_depth >= cfg.per_tenant_depth:
            return Overloaded(
                reason="tenant-queue-full",
                retry_after=self._drain_eta(1, drain_rate),
                tenant=tenant,
                queue_depth=depth,
            )
        bucket = self._bucket(tenant, now)
        if bucket is not None and not bucket.take(now):
            return Overloaded(
                reason="rate-limited",
                retry_after=bucket.time_until_token(now),
                tenant=tenant,
                queue_depth=depth,
            )
        return None

    @staticmethod
    def _drain_eta(slots_needed: int, drain_rate: float) -> float:
        if drain_rate <= 0:
            return 1.0
        return slots_needed / drain_rate
