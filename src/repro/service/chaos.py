"""Fault injection for the service itself — seeded, replayable chaos.

The simulator already injects *network* faults (:mod:`repro.sim.faults`);
this module injects faults into the **planning frontend**: compiles that
run slow, compile attempts that fail transiently, clients that hang up
mid-request, and poison requests whose plans cannot validate.  The same
discipline applies: a :class:`ServiceChaos` is pure data built from a
seed, and every per-request decision is a seeded hash of the stable
request id — never global RNG state — so a chaos run replays
byte-identically regardless of interleaving.

Poison requests are modelled honestly rather than by raising a magic
exception: the request compiles through a pass pipeline with a
:class:`PoisonPass` spliced in before validation, which silently drops
the plan's final op.  The static analyzer then reports the coverage
hole and compilation aborts with :class:`~repro.core.validate
.PlanValidationError` — exercising the real "bad request must fail the
request, never the worker, and never trip the breaker" path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.faults import seeded_uniform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compiler.passes import PlanState
    from ..compiler.pipeline import CompileContext

__all__ = ["ServiceChaos", "PoisonPass"]


@dataclass(frozen=True)
class ServiceChaos:
    """A replayable chaos scenario for the resharding service.

    All rates are probabilities in ``[0, 1)`` decided per request (or
    per attempt, for ``fault_rate``) by seeded hashes of the request id.
    """

    seed: int = 0
    #: fraction of compiles that run slow, and how much extra service
    #: time a slow compile takes
    slow_rate: float = 0.0
    slow_extra: float = 0.05
    #: per-attempt probability of a transient compile fault
    fault_rate: float = 0.0
    #: per-attempt probability the worker is unreachable (network
    #: partition between frontend and worker — the compiler is fine)
    partition_rate: float = 0.0
    #: fraction of clients that cancel, and how long after admission
    cancel_rate: float = 0.0
    cancel_after: float = 0.01
    #: request ids whose plans are poisoned (fail static validation)
    poison_requests: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("slow_rate", "fault_rate", "partition_rate", "cancel_rate"):
            v = getattr(self, name)
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {v}")
        if self.slow_extra < 0 or self.cancel_after < 0:
            raise ValueError("slow_extra and cancel_after must be >= 0")

    # ------------------------------------------------------------------
    # Per-request decisions (pure functions of seed + stable ids)
    # ------------------------------------------------------------------
    def is_slow(self, request_id: str) -> bool:
        if self.slow_rate <= 0.0:
            return False
        return seeded_uniform(self.seed, "slow", request_id) < self.slow_rate

    def slow_extra_time(self, request_id: str) -> float:
        """Extra service seconds this compile takes (0 if not slow)."""
        if not self.is_slow(request_id):
            return 0.0
        return self.slow_extra * (
            0.5 + seeded_uniform(self.seed, "slow-extra", request_id)
        )

    def attempt_faults(self, request_id: str, attempt: int) -> bool:
        """Does compile attempt ``attempt`` (1-based) fault transiently?"""
        if self.fault_rate <= 0.0:
            return False
        return (
            seeded_uniform(self.seed, "fault", request_id, attempt) < self.fault_rate
        )

    def attempt_partitioned(self, request_id: str, attempt: int) -> bool:
        """Is attempt ``attempt`` cut off by a frontend/worker partition?"""
        if self.partition_rate <= 0.0:
            return False
        return (
            seeded_uniform(self.seed, "partition", request_id, attempt)
            < self.partition_rate
        )

    def cancels(self, request_id: str) -> bool:
        if self.cancel_rate <= 0.0:
            return False
        return seeded_uniform(self.seed, "cancel", request_id) < self.cancel_rate

    def cancel_delay(self, request_id: str) -> float:
        """Service seconds after admission at which the client hangs up."""
        return self.cancel_after * (
            0.5 + seeded_uniform(self.seed, "cancel-delay", request_id)
        )

    def is_poison(self, request_id: str) -> bool:
        return request_id in self.poison_requests


class PoisonPass:
    """Corrupt the emitted plan so static validation must reject it.

    Spliced immediately before the validate pass for poison requests:
    dropping the final op leaves a receiver without its data, which the
    analyzer reports as a coverage ERROR.  The corruption is done on the
    real plan object so the whole validation machinery — not a mock —
    classifies the request as invalid.
    """

    name = "poison"

    def run(self, state: "PlanState", ctx: "CompileContext") -> str:
        if state.plan is None or not state.plan.ops:
            return "no-op (nothing to poison)"
        dropped = state.plan.ops.pop()
        return f"dropped final op {dropped.op_id}"
