"""Circuit breaker around the plan compiler.

When the compiler starts failing persistently (a bad pass deployment, a
poisoned dependency, systematic timeouts), hammering it with every
queued request multiplies the damage: workers burn their time on doomed
compiles and every tenant's latency collapses together.  The breaker
implements the standard three-state machine:

``closed``
    normal operation; consecutive failures are counted, successes reset
    the count.  :attr:`~BreakerConfig.failure_threshold` consecutive
    failures **open** the breaker.
``open``
    compiles are refused outright for :attr:`~BreakerConfig.cooldown`
    service seconds.  The service layer answers from its stale-plan
    store where it can (``degraded=True``) and sheds otherwise.
``half_open``
    after the cooldown, up to :attr:`~BreakerConfig.half_open_probes`
    requests are let through as probes.  Any probe failure re-opens the
    breaker (restarting the cooldown); all probes succeeding closes it.

State changes are appended to :attr:`CircuitBreaker.transitions` as
``(time, from_state, to_state)`` so tests and telemetry can assert the
exact trajectory.

Failures carry a **kind**.  ``kind="compile"`` (the default) means the
compiler itself misbehaved and counts toward tripping the breaker.
``kind="partition"`` means the attempt died of a *network partition*
between the frontend and the worker — the compiler may be perfectly
healthy, we just couldn't reach it — so it is tallied separately
(:attr:`CircuitBreaker.partition_failures`) and never advances the
consecutive-failure count or re-opens a probing breaker.  Conflating
the two turns every switch hiccup into a full cooldown during which
healthy compiles are refused; distinguishing them is what lets the
service degrade *only* for the faults the breaker can actually help
with.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BreakerConfig", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Static breaker policy."""

    #: consecutive compile failures that trip the breaker
    failure_threshold: int = 5
    #: service seconds the breaker stays open before probing
    cooldown: float = 1.0
    #: successful probes required to close from half-open
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown <= 0:
            raise ValueError("cooldown must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """The closed / open / half-open state machine (clock passed in)."""

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probes_in_flight = 0
        self.probe_successes = 0
        #: partition-induced failures seen (telemetry; never trip the breaker)
        self.partition_failures = 0
        #: (time, from_state, to_state) history, oldest first
        self.transitions: list[tuple[float, str, str]] = []

    def _move(self, to_state: str, now: float) -> None:
        self.transitions.append((now, self.state, to_state))
        self.state = to_state

    # ------------------------------------------------------------------
    # Gate
    # ------------------------------------------------------------------
    def allow(self, now: float) -> str:
        """Gate one compile: ``"allow"``, ``"probe"``, or ``"reject"``.

        A ``"probe"`` verdict reserves one half-open probe slot; the
        caller **must** follow up with :meth:`record_success` or
        :meth:`record_failure` to release it.
        """
        if self.state == OPEN:
            if now - self.opened_at >= self.config.cooldown:
                self._move(HALF_OPEN, now)
                self.probes_in_flight = 0
                self.probe_successes = 0
            else:
                return "reject"
        if self.state == HALF_OPEN:
            if self.probes_in_flight >= self.config.half_open_probes:
                return "reject"
            self.probes_in_flight += 1
            return "probe"
        return "allow"

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def record_success(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self.probes_in_flight -= 1
            self.probe_successes += 1
            if self.probe_successes >= self.config.half_open_probes:
                self._move(CLOSED, now)
                self.consecutive_failures = 0
        else:
            self.consecutive_failures = 0

    def record_failure(self, now: float, kind: str = "compile") -> None:
        """Record one failed attempt.

        ``kind="partition"`` marks a partition-induced timeout: the slot
        (if this was a probe) is released, the separate
        :attr:`partition_failures` counter advances, and the breaker's
        compile-health state is left untouched — an unreachable worker
        is not evidence of a broken compiler.
        """
        if kind not in ("compile", "partition"):
            raise ValueError(
                f"unknown failure kind {kind!r}; expected 'compile' or "
                f"'partition'"
            )
        if kind == "partition":
            self.partition_failures += 1
            if self.state == HALF_OPEN:
                self.probes_in_flight -= 1
            return
        if self.state == HALF_OPEN:
            self.probes_in_flight -= 1
            self._move(OPEN, now)
            self.opened_at = now
            self.consecutive_failures = self.config.failure_threshold
            return
        if self.state == CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.config.failure_threshold:
                self._move(OPEN, now)
                self.opened_at = now

    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self.state == OPEN

    def retry_after(self, now: float) -> float:
        """Service seconds until the breaker will next admit a probe."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.config.cooldown - (now - self.opened_at))

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, "
            f"failures={self.consecutive_failures}, "
            f"transitions={len(self.transitions)})"
        )
