"""Resharding-as-a-service: an overload-safe async planning frontend.

The :class:`ReshardingService` wraps the staged plan compiler
(:mod:`repro.compiler`) in a multi-tenant asyncio frontend that degrades
gracefully under overload instead of collapsing:

* **admission control** — bounded global and per-tenant queues, token-
  bucket rate limits, round-robin fair dequeue
  (:mod:`repro.service.admission`);
* **single-flight coalescing** — identical in-flight compiles are
  shared, not repeated;
* **circuit breaking + degraded mode** — a persistently failing
  compiler is isolated, stale-but-valid cached plans are served with
  ``degraded=True`` (:mod:`repro.service.breaker`);
* **deterministic execution** — the service runs on a virtual-time
  event loop (:mod:`repro.service.clock`) with seeded chaos injection
  (:mod:`repro.service.chaos`), so an overload or failure scenario
  replays byte-identically.

See ``docs/service.md`` for the request lifecycle and the overload /
degraded-mode contracts.
"""

from .admission import AdmissionConfig, AdmissionController, FairQueue, TokenBucket
from .breaker import BreakerConfig, CircuitBreaker
from .chaos import PoisonPass, ServiceChaos
from .clock import VirtualTimeLoop, VirtualTimeStall, run_virtual
from .loadgen import (
    PROFILES,
    Arrival,
    LoadProfile,
    LoadReport,
    build_task_pool,
    generate_arrivals,
    run_load,
)
from .request import (
    STATUSES,
    CompileRequest,
    CompileResponse,
    Overloaded,
    TransientCompileFault,
)
from .service import RequestHandle, ReshardingService, ServiceConfig

__all__ = [
    "ReshardingService",
    "ServiceConfig",
    "RequestHandle",
    "CompileRequest",
    "CompileResponse",
    "Overloaded",
    "TransientCompileFault",
    "STATUSES",
    "AdmissionConfig",
    "AdmissionController",
    "FairQueue",
    "TokenBucket",
    "BreakerConfig",
    "CircuitBreaker",
    "ServiceChaos",
    "PoisonPass",
    "VirtualTimeLoop",
    "VirtualTimeStall",
    "run_virtual",
    "LoadProfile",
    "LoadReport",
    "Arrival",
    "PROFILES",
    "generate_arrivals",
    "build_task_pool",
    "run_load",
]
