"""Request/response vocabulary of the resharding service.

Every submission ends in exactly one :class:`CompileResponse`, whatever
happened along the way — admission rejection, coalesced cache share,
degraded stale plan, retry exhaustion, client cancellation, or a clean
compile.  Clients branch on :attr:`CompileResponse.status` (one of
:data:`STATUSES`); overload rejections additionally carry a structured
:class:`Overloaded` telling the client *why* it was shed and when to
come back, so backoff is informed rather than guessed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task import ReshardingTask

__all__ = [
    "STATUSES",
    "TransientCompileFault",
    "CompileRequest",
    "Overloaded",
    "CompileResponse",
]

#: terminal request states, in rough order of desirability:
#:
#: ``ok``         compiled (possibly coalesced onto another request's
#:                compile, possibly ``degraded`` — a stale cached plan
#:                served while the circuit breaker is open);
#: ``shed``       rejected by admission control or the open breaker
#:                without a usable stale plan — carries ``overloaded``;
#: ``expired``    per-request timeout elapsed before a worker finished;
#: ``cancelled``  the client cancelled while queued or in flight;
#: ``invalid``    the request itself is bad (its plan fails static
#:                validation) — a client error, never a service fault;
#: ``failed``     compilation kept faulting transiently past the retry
#:                budget, or hit its deterministic compile deadline.
STATUSES = ("ok", "shed", "expired", "cancelled", "invalid", "failed")


class TransientCompileFault(Exception):
    """A compile attempt failed for a retryable, non-deterministic-input
    reason (injected via :class:`~repro.service.chaos.ServiceChaos` in
    tests; stands in for OOM-killed workers, flaky pass dependencies).

    Counts against the request's retry budget; whether it also counts
    against the circuit breaker's consecutive-failure window depends on
    ``cause``: ``"compile"`` (the default — the worker itself faulted)
    does, ``"partition"`` (the worker was unreachable: a network
    partition between frontend and worker, not a sick compiler) is
    tallied separately and never trips the breaker.  Unlike either,
    :class:`~repro.core.validate.PlanValidationError` is the *request's*
    fault and must never trip the breaker at all.
    """

    def __init__(self, message: str, cause: str = "compile") -> None:
        super().__init__(message)
        if cause not in ("compile", "partition"):
            raise ValueError(f"unknown fault cause {cause!r}")
        self.cause = cause


@dataclass
class CompileRequest:
    """One tenant's ask: compile a resharding task into a plan.

    ``deadline`` bounds the compile itself in deterministic budget
    seconds (see :mod:`repro.compiler.budget`); ``timeout`` bounds the
    whole admission-to-response interval in service (virtual) seconds —
    a request still queued when it elapses is answered ``expired``
    instead of occupying a worker.
    """

    request_id: str
    tenant: str
    task: "ReshardingTask"
    strategy: str = "broadcast"
    strategy_kwargs: dict[str, Any] = field(default_factory=dict)
    deadline: Optional[float] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ValueError("request_id must be non-empty")
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")


@dataclass(frozen=True)
class Overloaded:
    """Structured overload rejection: why, and when to retry.

    ``reason`` is one of ``"queue-full"`` (global queue bound),
    ``"tenant-queue-full"`` (per-tenant fairness bound),
    ``"rate-limited"`` (token bucket empty), or ``"breaker-open"``
    (compiler circuit open and no stale plan available).
    ``retry_after`` is the service's deterministic estimate, in service
    seconds, of when capacity will exist again.
    """

    reason: str
    retry_after: float
    tenant: str
    queue_depth: int

    def __post_init__(self) -> None:
        if self.retry_after < 0:
            raise ValueError(f"retry_after must be >= 0, got {self.retry_after}")


@dataclass
class CompileResponse:
    """The single terminal answer to one :class:`CompileRequest`."""

    request_id: str
    tenant: str
    status: str
    #: content-addressed signature of the compiled plan (``ok`` only)
    plan_signature: Optional[str] = None
    n_ops: int = 0
    #: plan is a stale cached artifact served during breaker-open
    degraded: bool = False
    #: this response rode another identical in-flight compile
    coalesced: bool = False
    #: compile attempts actually spent (0 when never reached a worker)
    attempts: int = 0
    overloaded: Optional[Overloaded] = None
    submitted_at: float = 0.0
    completed_at: float = 0.0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown status {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency(self) -> float:
        """Admission-to-response service time (0 for instant rejections)."""
        return max(0.0, self.completed_at - self.submitted_at)
