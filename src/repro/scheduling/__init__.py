"""Load balancing and scheduling of unit communication tasks (paper §3.2)."""

from .algorithms import (
    brute_force_schedule,
    dfs_schedule,
    ensemble_schedule,
    load_balance_schedule,
    naive_schedule,
    randomized_greedy_schedule,
)
from .problem import (
    Schedule,
    SchedTask,
    SchedulingProblem,
    evaluate,
    validate_schedule,
)

__all__ = [
    "Schedule",
    "SchedTask",
    "SchedulingProblem",
    "evaluate",
    "validate_schedule",
    "naive_schedule",
    "load_balance_schedule",
    "dfs_schedule",
    "randomized_greedy_schedule",
    "ensemble_schedule",
    "brute_force_schedule",
]

SCHEDULERS = {
    "naive": naive_schedule,
    "load_balance": load_balance_schedule,
    "dfs": dfs_schedule,
    "randomized_greedy": randomized_greedy_schedule,
    "ensemble": ensemble_schedule,
}
