"""Load-balancing and scheduling algorithms from §3.2.

* :func:`naive_schedule` — first (lowest-indexed) sender host, task-id
  order; the paper's baseline.
* :func:`load_balance_schedule` — the classical LPT greedy: sort tasks
  by descending duration, assign each to the currently lightest sender
  host; order is the sorted order.
* :func:`dfs_schedule` — depth-first search over (assignment, order)
  decisions with lower-bound pruning and a deterministic node budget.
* :func:`randomized_greedy_schedule` — iterative rounds; each round
  picks, via random restarts, a conflict-free task set maximizing the
  number of devices involved.
* :func:`ensemble_schedule` — run DFS and randomized greedy, keep the
  better result (the paper's "ours" in the Fig. 8 ablation).
* :func:`brute_force_schedule` — exact, for optimality tests on tiny
  instances.
"""

from __future__ import annotations

import itertools
import random
from typing import Optional

from .problem import Schedule, SchedulingProblem, evaluate

__all__ = [
    "naive_schedule",
    "load_balance_schedule",
    "dfs_schedule",
    "randomized_greedy_schedule",
    "ensemble_schedule",
    "brute_force_schedule",
]


#: nominal DFS node expansions per "budget second" — fixes the search
#: depth so schedules cannot vary with CPU speed
_DFS_NODES_PER_SECOND = 200_000


def _finalize(
    problem: SchedulingProblem,
    assignment: dict[int, int],
    order: tuple[int, ...],
    algorithm: str,
) -> Schedule:
    makespan, starts = evaluate(problem, assignment, order)
    return Schedule(
        assignment=dict(assignment),
        order=tuple(order),
        makespan=makespan,
        algorithm=algorithm,
        start_times=starts,
    )


# ----------------------------------------------------------------------
def naive_schedule(problem: SchedulingProblem) -> Schedule:
    """Lowest-indexed sender host; arbitrary (task id) global order."""
    assignment = {t.task_id: min(t.sender_host_options) for t in problem.tasks}
    order = tuple(sorted(t.task_id for t in problem.tasks))
    return _finalize(problem, assignment, order, "naive")


# ----------------------------------------------------------------------
def load_balance_schedule(problem: SchedulingProblem) -> Schedule:
    """LPT greedy solving the minimax sender-load relaxation (Eq. 4)."""
    load: dict[int, float] = {}
    assignment: dict[int, int] = {}
    # Descending duration (use the max over options as the sort key so
    # ties are broken deterministically), then assign to lightest host.
    tasks = sorted(
        problem.tasks,
        key=lambda t: (-max(t.duration_by_host.values()), t.task_id),
    )
    order = []
    for t in tasks:
        best = min(
            t.sender_host_options,
            key=lambda h: (load.get(h, 0.0) + t.duration(h), h),
        )
        assignment[t.task_id] = best
        load[best] = load.get(best, 0.0) + t.duration(best)
        order.append(t.task_id)
    return _finalize(problem, assignment, order, "load_balance")


# ----------------------------------------------------------------------
def dfs_schedule(
    problem: SchedulingProblem,
    time_budget: float = 0.2,
    initial_best: Optional[Schedule] = None,
) -> Schedule:
    """Branch over (next task, sender host) with lower-bound pruning.

    The bound below a partial schedule is the larger of (a) the current
    partial makespan and (b) for each host, its committed busy time plus
    the total duration of remaining tasks *forced* through it (single
    sender option or receiver membership) — the per-device load bound of
    Eq. 4.  ``time_budget`` scales a fixed node-expansion budget
    (``time_budget * 200_000`` branch expansions, roughly seconds on the
    reference machine); a wall-clock deadline would make the chosen
    schedule depend on CPU speed, so identical inputs would produce
    different plans on different machines (repro-lint L001).  Search
    stops at the budget and returns the best complete schedule found
    (falling back to LPT if none completed).
    """
    node_budget = max(1, int(time_budget * _DFS_NODES_PER_SECOND))
    nodes = 0
    best = initial_best if initial_best is not None else load_balance_schedule(problem)
    best_makespan = best.makespan
    tasks = {t.task_id: t for t in problem.tasks}
    all_ids = sorted(tasks)
    # Remaining-work lower bound per host is maintained incrementally:
    # forced_load[h] = sum of min-durations of unscheduled tasks that must
    # occupy host h (as a receiver, or as the only sender option).
    forced_load: dict[int, float] = {}

    def forced_hosts(t) -> set[int]:
        hosts = set(t.receiver_hosts)
        if len(t.sender_host_options) == 1:
            hosts.add(t.sender_host_options[0])
        return hosts

    for t in tasks.values():
        d = min(t.duration_by_host.values())
        for h in forced_hosts(t):
            forced_load[h] = forced_load.get(h, 0.0) + d

    host_free: dict[int, float] = {}
    assignment: dict[int, int] = {}
    order: list[int] = []
    remaining = set(all_ids)
    out_of_time = False

    def bound(partial_makespan: float) -> float:
        b = partial_makespan
        for h, extra in forced_load.items():
            b = max(b, host_free.get(h, 0.0) + extra)
        return b

    def recurse(partial_makespan: float) -> None:
        nonlocal best, best_makespan, out_of_time, nodes
        nodes += 1
        if out_of_time or nodes > node_budget:
            out_of_time = True
            return
        if not remaining:
            if partial_makespan < best_makespan - 1e-15:
                best_makespan = partial_makespan
                best = _finalize(problem, assignment, tuple(order), "dfs")
            return
        if bound(partial_makespan) >= best_makespan - 1e-15:
            return
        # Branch on longer tasks first; they constrain the bound most.
        cand = sorted(
            remaining,
            key=lambda tid: (-max(tasks[tid].duration_by_host.values()), tid),
        )
        for tid in cand:
            t = tasks[tid]
            fh = forced_hosts(t)
            dmin = min(t.duration_by_host.values())
            for h in t.sender_host_options:
                dur = t.duration(h)
                hosts = t.hosts(h)
                start = max((host_free.get(x, 0.0) for x in hosts), default=0.0)
                finish = start + dur
                # -- apply
                saved = {x: host_free.get(x, 0.0) for x in hosts}
                for x in hosts:
                    host_free[x] = finish
                for x in fh:
                    forced_load[x] -= dmin
                remaining.discard(tid)
                assignment[tid] = h
                order.append(tid)
                recurse(max(partial_makespan, finish))
                # -- undo
                order.pop()
                del assignment[tid]
                remaining.add(tid)
                for x in fh:
                    forced_load[x] += dmin
                for x, v in saved.items():
                    host_free[x] = v
                if out_of_time:
                    return

    recurse(0.0)
    return Schedule(
        assignment=best.assignment,
        order=best.order,
        makespan=best.makespan,
        algorithm="dfs",
        start_times=best.start_times,
    )


# ----------------------------------------------------------------------
def randomized_greedy_schedule(
    problem: SchedulingProblem,
    n_trials: int = 32,
    seed: int = 0,
) -> Schedule:
    """Iterative rounds of randomized maximal conflict-free sets.

    Each round repeatedly shuffles the remaining tasks and greedily
    keeps those that can run concurrently with the set built so far
    (no shared sender or receiver host); the trial covering the most
    devices wins the round.  Concatenating rounds yields the global
    order; list scheduling then recovers concurrency inside rounds.
    """
    rng = random.Random(seed)
    remaining = {t.task_id: t for t in problem.tasks}
    assignment: dict[int, int] = {}
    order: list[int] = []
    while remaining:
        best_set: list[tuple[int, int]] = []  # (task_id, host)
        best_score = -1
        ids = sorted(remaining)
        for _ in range(n_trials):
            perm = ids[:]
            rng.shuffle(perm)
            used_hosts: set[int] = set()
            chosen: list[tuple[int, int]] = []
            score = 0
            for tid in perm:
                t = remaining[tid]
                if used_hosts & t.receiver_hosts:
                    continue
                # Prefer the fastest compatible sender host.
                options = [h for h in t.sender_host_options if h not in used_hosts]
                if not options:
                    continue
                h = min(options, key=lambda x: (t.duration(x), x))
                chosen.append((tid, h))
                used_hosts |= t.hosts(h)
                score += t.n_devices
            if score > best_score:
                best_score = score
                best_set = chosen
        for tid, h in sorted(best_set):
            assignment[tid] = h
            order.append(tid)
            del remaining[tid]
    return _finalize(problem, assignment, tuple(order), "randomized_greedy")


# ----------------------------------------------------------------------
def ensemble_schedule(
    problem: SchedulingProblem,
    dfs_budget: float = 0.2,
    n_trials: int = 32,
    seed: int = 0,
    dfs_max_tasks: int = 20,
) -> Schedule:
    """The paper's "ours": best of DFS-with-pruning and randomized greedy.

    DFS is skipped beyond ``dfs_max_tasks`` tasks, where the paper
    observes it cannot find good schedules within the budget.
    """
    rg = randomized_greedy_schedule(problem, n_trials=n_trials, seed=seed)
    if problem.n_tasks > dfs_max_tasks:
        return Schedule(
            assignment=rg.assignment,
            order=rg.order,
            makespan=rg.makespan,
            algorithm="ensemble",
            start_times=rg.start_times,
        )
    df = dfs_schedule(problem, time_budget=dfs_budget, initial_best=rg)
    winner = df if df.makespan <= rg.makespan else rg
    return Schedule(
        assignment=winner.assignment,
        order=winner.order,
        makespan=winner.makespan,
        algorithm="ensemble",
        start_times=winner.start_times,
    )


# ----------------------------------------------------------------------
def brute_force_schedule(problem: SchedulingProblem, max_tasks: int = 7) -> Schedule:
    """Exact minimum over all assignments and orders (test oracle)."""
    if problem.n_tasks > max_tasks:
        raise ValueError(
            f"brute force limited to {max_tasks} tasks, got {problem.n_tasks}"
        )
    ids = [t.task_id for t in problem.tasks]
    best: Optional[Schedule] = None
    option_lists = [problem.by_id(tid).sender_host_options for tid in ids]
    for choices in itertools.product(*option_lists):
        assignment = dict(zip(ids, choices))
        for order in itertools.permutations(ids):
            makespan, starts = evaluate(problem, assignment, order)
            if best is None or makespan < best.makespan - 1e-15:
                best = Schedule(
                    assignment=dict(assignment),
                    order=tuple(order),
                    makespan=makespan,
                    algorithm="brute_force",
                    start_times=starts,
                )
    assert best is not None
    return best
