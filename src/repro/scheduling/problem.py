"""The load-balancing and scheduling problem of §3.2 (Eq. 1-3).

Each unit communication task ``i`` has a set of candidate *sender hosts*
``n_i`` (hosts holding a replica of its data slice), a set of *receiver
hosts* ``m_i``, and a duration ``T_i`` (which may depend on the chosen
sender host).  A solution picks one sender host per task and start times
such that two tasks sharing the sender host or any receiver host never
overlap; the objective is the completion time of the last task
(makespan).

We represent a solution as an *assignment* (task -> sender host) plus a
*global order*; start times follow by list scheduling: each task starts
at the earliest time all of its hosts are free of earlier-ordered tasks.
That is exactly the simplification stated in the paper ("assign an
execution order to all of the send/receive tasks on that host; the
starting time of each task can then be set to the earliest time at which
all preceding tasks have finished on the sender host and the receiver
hosts").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

if TYPE_CHECKING:  # avoid a hard import cycle with repro.core
    from ..core.task import ReshardingTask
    from ..sim.faults import FaultSchedule

__all__ = ["SchedTask", "SchedulingProblem", "Schedule", "evaluate", "validate_schedule"]


@dataclass(frozen=True)
class SchedTask:
    """Host-level view of one unit communication task."""

    task_id: int
    sender_host_options: tuple[int, ...]
    receiver_hosts: frozenset[int]
    #: duration keyed by chosen sender host
    duration_by_host: Mapping[int, float]
    #: total devices the task touches (randomized-greedy's round score)
    n_devices: int = 1

    def duration(self, host: int) -> float:
        return self.duration_by_host[host]

    def hosts(self, sender_host: int) -> frozenset[int]:
        """All hosts the task occupies once its sender host is chosen."""
        return self.receiver_hosts | {sender_host}


@dataclass
class SchedulingProblem:
    """A set of unit tasks to load-balance and order."""

    tasks: list[SchedTask]

    def __post_init__(self) -> None:
        ids = [t.task_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate task ids")
        for t in self.tasks:
            if not t.sender_host_options:
                raise ValueError(f"task {t.task_id} has no sender host option")
            missing = [
                h for h in t.sender_host_options if h not in t.duration_by_host
            ]
            if missing:
                raise ValueError(
                    f"task {t.task_id} lacks durations for hosts {missing}"
                )

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def by_id(self, task_id: int) -> SchedTask:
        for t in self.tasks:
            if t.task_id == task_id:
                return t
        raise KeyError(task_id)

    # ------------------------------------------------------------------
    @classmethod
    def from_resharding(
        cls,
        rt: "ReshardingTask",
        cross_bandwidth: Optional[float] = None,
        intra_bandwidth: Optional[float] = None,
        granularity: str = "intersection",
        faults: "Optional[FaultSchedule]" = None,
    ) -> "SchedulingProblem":
        """Build the host-level problem from a resharding task.

        A task's duration under a candidate sender host is the time of
        one broadcast rooted there: one traversal of the slice across
        the host boundary if any receiver lives on another host,
        otherwise a fast intra-host copy.

        With ``faults``, each host's NIC bandwidth is discounted by its
        time-averaged degradation factor over the fault horizon, so the
        load balancer steers work away from degraded (or flapping)
        hosts.
        """
        spec = rt.cluster.spec
        intra = intra_bandwidth if intra_bandwidth else spec.intra_host_bandwidth

        def nic_bw(host: int) -> float:
            bw = spec.host_nic_bandwidth(host)
            if faults is not None:
                bw *= faults.mean_nic_factor(host)
            return bw

        def cross_bw(sender_host: int, rhosts: frozenset[int]) -> float:
            if cross_bandwidth:
                return cross_bandwidth
            # The broadcast ring's throughput is capped by its slowest
            # participating NIC and any contended fabric link on the
            # root->receiver paths (topology- and override-aware).
            return rt.cluster.topo.ring_bandwidth(sender_host, rhosts, nic_bw)

        tasks = []
        for ut in rt.unit_tasks(granularity):
            options = tuple(sorted(rt.sender_hosts(ut)))
            rhosts = rt.receiver_hosts(ut)
            durations = {
                h: (
                    ut.nbytes / cross_bw(h, rhosts)
                    if (rhosts - {h})
                    else ut.nbytes / intra
                )
                for h in options
            }
            tasks.append(
                SchedTask(
                    task_id=ut.task_id,
                    sender_host_options=options,
                    receiver_hosts=rhosts,
                    duration_by_host=durations,
                    n_devices=len(ut.senders) + len(ut.receivers),
                )
            )
        return cls(tasks)


@dataclass
class Schedule:
    """A solution: sender-host assignment plus a global task order."""

    assignment: dict[int, int]
    order: tuple[int, ...]
    makespan: float = float("nan")
    algorithm: str = ""
    start_times: dict[int, float] = field(default_factory=dict)

    def sender_host(self, task_id: int) -> int:
        return self.assignment[task_id]


def validate_schedule(problem: SchedulingProblem, schedule: Schedule) -> None:
    """Raise if the schedule is structurally invalid for the problem."""
    ids = {t.task_id for t in problem.tasks}
    if set(schedule.order) != ids or len(schedule.order) != len(ids):
        raise ValueError("order must be a permutation of task ids")
    for t in problem.tasks:
        h = schedule.assignment.get(t.task_id)
        if h not in t.sender_host_options:
            raise ValueError(
                f"task {t.task_id}: sender host {h} not in options "
                f"{t.sender_host_options} (Eq. 2 violated)"
            )


def evaluate(
    problem: SchedulingProblem,
    assignment: Mapping[int, int],
    order: Sequence[int],
) -> tuple[float, dict[int, float]]:
    """List-schedule the tasks; return (makespan, start time per task).

    Tasks are started in ``order``; each begins at the earliest time all
    of its hosts (sender + receivers) are free, which enforces Eq. 3.
    """
    host_free: dict[int, float] = {}
    starts: dict[int, float] = {}
    makespan = 0.0
    for tid in order:
        t = problem.by_id(tid)
        h = assignment[tid]
        hosts = t.hosts(h)
        start = max((host_free.get(x, 0.0) for x in hosts), default=0.0)
        finish = start + t.duration(h)
        for x in hosts:
            host_free[x] = finish
        starts[tid] = start
        makespan = max(makespan, finish)
    return makespan, starts
