"""Property-based chaos fuzzer for the compile → simulate → verify stack.

Everything in this repo is deterministic under a seed, which makes it
fuzzable the way pure functions are: generate a random (but replayable)
:class:`~repro.sim.faults.FaultSchedule`, throw it at a golden workload,
and assert *properties* instead of golden outputs.  The standing
invariants checked on every run:

1. **No hangs** — the virtual-time simulation terminates and its
   makespan stays under a generous bound derived from the schedule's
   horizon.  A cycle or lost wake-up shows up here, not as a wedged CI
   job.
2. **Delivery integrity or loud failure** — after simulating, either
   :func:`~repro.core.verify_data.verify_delivery` finds every tile
   delivered with nothing unverifiable, or the run's
   :class:`~repro.sim.faults.FaultReport` is ``fatal``.  "Silently
   incomplete" and "silently corrupted" are the bugs this exists to
   catch; compiled plans carry per-slice checksums, so corruption with
   no checksum (``unverified_corruption``) is itself a violation.
3. **Byte-deterministic replay** — compiling and simulating the same
   (workload, schedule) twice yields byte-identical
   :meth:`~repro.runtime.telemetry.TelemetryBus.digest` values.
4. **Analyzer-clean plans** — :func:`~repro.analysis.check_plan` (with
   the fault schedule, so F001/F003 are armed) finds no ERROR in any
   plan the compiler emits, including the re-anchored "replan view"
   compiled after the first permanent failure.
5. **Memory soundness** — the static per-host peak-buffer bound
   (:func:`~repro.analysis.memory_analysis.static_host_bounds`)
   dominates the simulated high-water mark
   (``TimingResult.host_peak_buffers``) on every host of every run.
   The bound is only useful as an admission gate if nothing the
   simulator can do — retries, stragglers, reordering under faults —
   ever pushes real usage above it.

Failing schedules are **shrunk** to a minimal reproducer: events are
removed one at a time while the violation persists, so the saved
fixture names the one fault (or minimal combination) that matters.

``break_reroot=True`` compiles with a deliberately broken re-root pass
(spliced after the real one) that lands fallbacks back inside the
failed host's domain — the self-test proving the fuzzer and the F001
analyzer both catch a real regression.  ``break_memory=True`` simulates
with a deliberately leaky buffer accountant
(:class:`LeakyBufferRunner`) so observed peaks climb past the static
bound — the self-test proving the memory-sound invariant has teeth.

Entry points: :func:`run_fuzz` (library), ``python -m repro fuzz``
(CLI), ``tests/fuzz/`` (pytest), ``benchmarks/bench_fuzz.py`` (persisted
stats).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

import numpy as np

from .analysis.plan_checker import check_plan
from .compiler import CompileContext, compile_resharding
from .compiler.passes import DEFAULT_PASSES, FaultRewritePass, PlanState
from .core.executor import PlanRunner, TimingResult, simulate_plan
from .core.mesh import DeviceMesh
from .core.plan import CommPlan
from .core.task import ReshardingTask
from .sim.cluster import Cluster, ClusterSpec, FailureDomain
from .sim.faults import (
    CorruptionWindow,
    DegradedWindow,
    DomainFailure,
    FaultSchedule,
    FlapWindow,
    HostFailure,
    Partition,
    RetryPolicy,
    StragglerWindow,
)

__all__ = [
    "FuzzWorkload",
    "FuzzViolation",
    "FuzzStats",
    "fuzz_workloads",
    "run_fuzz",
    "run_one",
    "shrink_schedule",
    "schedule_to_json",
    "schedule_from_json",
    "BrokenRerootPass",
    "LeakyBufferRunner",
]

#: virtual seconds past the schedule horizon before a run counts as hung
HANG_SLACK = 300.0

#: fault-injection window the generated schedules live in (virtual
#: seconds) — sized to overlap the golden workloads' actual runtimes
FUZZ_HORIZON = 0.004


@dataclass(frozen=True)
class FuzzWorkload:
    """One golden workload the fuzzer throws schedules at."""

    name: str
    task: ReshardingTask = field(repr=False)
    strategy: str = "broadcast"

    @property
    def n_hosts(self) -> int:
        return self.task.cluster.spec.n_hosts

    @property
    def domains(self) -> tuple[FailureDomain, ...]:
        return self.task.cluster.spec.failure_domains


def fuzz_workloads() -> list[FuzzWorkload]:
    """The golden workloads: fig5/6/7-shaped reshardings, shrunk.

    Same mesh/spec shapes as the paper figures' micro-benchmarks but
    with small tensors (the flow simulator's cost is flow-count-driven,
    and ``verify_delivery`` allocates per-tile count arrays) and with
    failure domains declared, so correlated faults and domain-aware
    re-rooting are actually exercised.
    """
    out: list[FuzzWorkload] = []

    # fig5-shaped: one sender host broadcasting to a receiving mesh.
    spec5 = ClusterSpec(
        n_hosts=5,
        devices_per_host=2,
        failure_domains=(
            FailureDomain("rack0", (0, 1)),
            FailureDomain("rack1", (2, 3)),
            FailureDomain("rack2", (4,)),
        ),
    )
    c5 = Cluster(spec5)
    out.append(
        FuzzWorkload(
            name="fig5-bcast",
            task=ReshardingTask(
                (16384,),
                DeviceMesh(c5, [[0]]),
                "R",
                DeviceMesh.from_hosts(c5, range(1, 5)),
                "R",
                dtype=np.float32,
            ),
        )
    )

    # fig6-shaped: disjoint cross-mesh reshard with a layout change.
    spec6 = ClusterSpec(
        n_hosts=4,
        devices_per_host=2,
        failure_domains=(
            FailureDomain("rack0", (0, 1)),
            FailureDomain("rack1", (2, 3)),
        ),
    )
    c6 = Cluster(spec6)
    out.append(
        FuzzWorkload(
            name="fig6-crossmesh",
            task=ReshardingTask(
                (128, 128),
                DeviceMesh.from_hosts(c6, (0, 1)),
                "S0R",
                DeviceMesh.from_hosts(c6, (2, 3)),
                "RS1",
                dtype=np.float32,
            ),
        )
    )

    # fig7-shaped: replicated source (a pipeline boundary with the state
    # mirrored across four hosts spanning two racks) feeding a third
    # rack — the workload where sender re-rooting has real choices.
    spec7 = ClusterSpec(
        n_hosts=6,
        devices_per_host=2,
        failure_domains=(
            FailureDomain("rack0", (0, 1)),
            FailureDomain("rack1", (2, 3)),
            FailureDomain("rack2", (4, 5)),
        ),
    )
    c7 = Cluster(spec7)
    out.append(
        FuzzWorkload(
            name="fig7-replicated",
            task=ReshardingTask(
                (128, 128),
                DeviceMesh.from_hosts(c7, (0, 1, 2, 3)),
                "RS1",
                DeviceMesh.from_hosts(c7, (4, 5)),
                "S0R",
                dtype=np.float32,
            ),
        )
    )
    return out


# ----------------------------------------------------------------------
# Schedule <-> JSON (reproducer fixtures)
# ----------------------------------------------------------------------
def schedule_to_json(schedule: FaultSchedule) -> dict[str, Any]:
    """Serialize a schedule losslessly (for reproducer fixtures)."""

    def rows(items) -> list[dict[str, Any]]:
        return [dataclasses.asdict(i) for i in items]

    return {
        "seed": schedule.seed,
        "drop_rate": schedule.drop_rate,
        "degradations": rows(schedule.degradations),
        "flaps": rows(schedule.flaps),
        "stragglers": rows(schedule.stragglers),
        "host_failures": rows(schedule.host_failures),
        "domain_failures": [
            {**dataclasses.asdict(d), "hosts": list(d.hosts)}
            for d in schedule.domain_failures
        ],
        "partitions": [
            {
                **dataclasses.asdict(p),
                "src_hosts": list(p.src_hosts),
                "dst_hosts": list(p.dst_hosts),
            }
            for p in schedule.partitions
        ],
        "corruptions": rows(schedule.corruptions),
    }


def schedule_from_json(raw: dict[str, Any]) -> FaultSchedule:
    """Inverse of :func:`schedule_to_json`."""
    return FaultSchedule(
        seed=int(raw.get("seed", 0)),
        drop_rate=float(raw.get("drop_rate", 0.0)),
        degradations=tuple(
            DegradedWindow(**d) for d in raw.get("degradations", ())
        ),
        flaps=tuple(FlapWindow(**d) for d in raw.get("flaps", ())),
        stragglers=tuple(
            StragglerWindow(**d) for d in raw.get("stragglers", ())
        ),
        host_failures=tuple(
            HostFailure(**d) for d in raw.get("host_failures", ())
        ),
        domain_failures=tuple(
            DomainFailure(**{**d, "hosts": tuple(d["hosts"])})
            for d in raw.get("domain_failures", ())
        ),
        partitions=tuple(
            Partition(
                **{
                    **d,
                    "src_hosts": tuple(d["src_hosts"]),
                    "dst_hosts": tuple(d["dst_hosts"]),
                }
            )
            for d in raw.get("partitions", ())
        ),
        corruptions=tuple(
            CorruptionWindow(**d) for d in raw.get("corruptions", ())
        ),
    )


def _n_events(schedule: FaultSchedule) -> int:
    return (
        len(schedule.degradations)
        + len(schedule.flaps)
        + len(schedule.stragglers)
        + len(schedule.host_failures)
        + len(schedule.domain_failures)
        + len(schedule.partitions)
        + len(schedule.corruptions)
        + (1 if schedule.drop_rate > 0 else 0)
    )


# ----------------------------------------------------------------------
# Broken build (self-test)
# ----------------------------------------------------------------------
class BrokenRerootPass:
    """Deliberately wrong re-rooting: land fallbacks back in-domain.

    Spliced after the real :class:`FaultRewritePass`, it re-points every
    fallback whose unit task has a *live in-domain* replica onto that
    replica — exactly the correlated-failure mistake F001 exists to
    reject.  Used only by ``run_fuzz(break_reroot=True)`` to prove the
    fuzzer and the analyzer both catch the regression.
    """

    name = "broken_reroot"

    def run(self, state: PlanState, ctx: CompileContext) -> str:
        faults = ctx.effective_faults(state.strategy)
        if faults is None or state.schedule is None:
            return "no-op"
        spec = state.task.cluster.spec
        ut_by_id = {ut.task_id: ut for ut in state.unit_tasks}
        n = 0
        for i, fb in enumerate(state.fallbacks):
            ut = ut_by_id.get(fb.unit_task_id)
            if ut is None:
                continue
            in_domain = [
                h
                for h in sorted(state.task.sender_hosts(ut))
                if h != fb.from_host
                and not faults.host_down(h, 0.0)
                and spec.shares_domain(fb.from_host, h)
            ]
            if not in_domain:
                continue
            state.fallbacks[i] = dataclasses.replace(
                fb, to_host=in_domain[0]
            )
            state.schedule.assignment[fb.unit_task_id] = in_domain[0]
            n += 1
        return f"broke {n} re-root(s)"


def _passes(break_reroot: bool) -> list[Any]:
    passes = DEFAULT_PASSES()
    if break_reroot:
        idx = next(
            i for i, p in enumerate(passes) if isinstance(p, FaultRewritePass)
        )
        passes.insert(idx + 1, BrokenRerootPass())
    return passes


class LeakyBufferRunner(PlanRunner):
    """Deliberately leaky buffer accounting: charge, never release.

    With releases gone, a host's observed "live" bytes are the running
    sum of everything ever delivered to it, so on any multi-op host the
    high-water mark climbs past the serialization-based static bound —
    exactly the accounting drift the memory-sound invariant exists to
    catch.  Used only by ``run_fuzz(break_memory=True)``.  The leak
    touches only the accounting dicts (never the telemetry bus), so
    replay determinism is unaffected.
    """

    def _buffer_release(self, op: Any, at: float) -> None:
        pass


def _simulate(
    plan: CommPlan, faults: FaultSchedule, break_memory: bool
) -> TimingResult:
    """Simulate with the real or (self-test) leaky buffer accountant."""
    if break_memory:
        return LeakyBufferRunner(
            plan, faults=faults, retry_policy=RetryPolicy()
        ).run()
    return simulate_plan(plan, faults=faults, retry_policy=RetryPolicy())


# ----------------------------------------------------------------------
# One run
# ----------------------------------------------------------------------
@dataclass
class FuzzViolation:
    """One invariant violation, with its (shrunk) reproducer schedule."""

    workload: str
    run_index: int
    invariant: str
    detail: str
    schedule: FaultSchedule = field(repr=False)

    def reproducer(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "run_index": self.run_index,
            "invariant": self.invariant,
            "detail": self.detail,
            "schedule": schedule_to_json(self.schedule),
        }


@dataclass
class FuzzStats:
    """Aggregate outcome of one fuzzing campaign."""

    runs: int = 0
    events_injected: int = 0
    faults_observed: int = 0
    loud_failures: int = 0
    corruptions_detected: int = 0
    replans_checked: int = 0
    violations: list[FuzzViolation] = field(default_factory=list)
    #: sha256 over every run's telemetry digest, in order — the
    #: campaign-level byte-identity fingerprint
    digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict[str, Any]:
        return {
            "runs": self.runs,
            "events_injected": self.events_injected,
            "faults_observed": self.faults_observed,
            "loud_failures": self.loud_failures,
            "corruptions_detected": self.corruptions_detected,
            "replans_checked": self.replans_checked,
            "n_violations": len(self.violations),
            "violations": [v.reproducer() for v in self.violations],
            "digest": self.digest,
        }


def _compile(
    workload: FuzzWorkload,
    faults: FaultSchedule,
    break_reroot: bool,
) -> CommPlan:
    strategy: Any = workload.strategy
    if break_reroot:
        # The broadcast scheduler is itself fault-aware, so on a healthy
        # compile it simply never assigns a dead sender and the re-root
        # pass has nothing to do.  The broken build blinds the scheduler
        # (as a buggy deployment might), forcing the re-root path to
        # carry the load — which BrokenRerootPass then does wrongly.
        from .strategies import make_strategy

        strategy = make_strategy(workload.strategy)
        strategy.schedule_uses_faults = False
    compiled = compile_resharding(
        workload.task,
        CompileContext(
            strategy=strategy,
            faults=faults,
            retry_policy=RetryPolicy(),
            cache=None,
            validate=False,  # the fuzzer runs the analyzer itself
            passes=_passes(break_reroot),
        ),
    )
    return compiled.plan


def _check_invariants(
    workload: FuzzWorkload,
    faults: FaultSchedule,
    plan: CommPlan,
    timing: TimingResult,
    phase: str,
) -> list[tuple[str, str]]:
    """Invariants 1, 2, 4, and 5 for one simulated plan."""
    from .analysis.memory_analysis import (
        SOUNDNESS_SLACK_BYTES,
        static_host_bounds,
    )
    from .core.verify_data import verify_delivery

    found: list[tuple[str, str]] = []

    bound = faults.horizon() + HANG_SLACK
    if not math.isfinite(timing.total_time) or timing.total_time > bound:
        found.append(
            (
                "no-hangs",
                f"{phase}: makespan {timing.total_time!r} exceeds virtual-"
                f"time bound {bound:g}",
            )
        )

    loud = timing.fault_report is not None and timing.fault_report.fatal
    report = verify_delivery(plan, timing, strict=False, raise_on_error=False)
    if report.unverifiable_ops:
        found.append(
            (
                "never-silent",
                f"{phase}: compiled plan has unverifiable corruption on "
                f"op(s) {list(report.unverifiable_ops)[:8]} — checksum "
                "stamping failed",
            )
        )
    if (report.gaps or timing.corrupted_ops) and not loud:
        found.append(
            (
                "loud-failure",
                f"{phase}: delivery incomplete (gaps={report.gaps}, "
                f"corrupted={list(timing.corrupted_ops)[:8]}) but the "
                "fault report is not fatal",
            )
        )

    analysis = check_plan(plan, faults=faults)
    if not analysis.ok:
        found.append(
            (
                "analyzer-clean",
                f"{phase}: " + "; ".join(d.format() for d in analysis.errors),
            )
        )

    mem = static_host_bounds(plan)
    for host, observed in sorted(timing.host_peak_buffers.items()):
        bound = mem.per_host.get(host, 0.0)
        if observed > bound + SOUNDNESS_SLACK_BYTES:
            found.append(
                (
                    "memory-sound",
                    f"{phase}: host {host} simulated peak buffer "
                    f"{observed:.0f} B exceeds the static bound "
                    f"{bound:.0f} B",
                )
            )
    return found


def run_one(
    workload: FuzzWorkload,
    schedule: FaultSchedule,
    break_reroot: bool = False,
    break_memory: bool = False,
) -> tuple[list[tuple[str, str]], str, dict[str, int]]:
    """Fuzz one (workload, schedule) pair.

    Returns ``(violations, digest, counters)`` where violations are
    ``(invariant, detail)`` pairs, digest is the steady-state run's
    telemetry digest, and counters feed :class:`FuzzStats`.
    """
    counters = {
        "faults_observed": 0,
        "loud_failures": 0,
        "corruptions_detected": 0,
        "replans_checked": 0,
    }
    found: list[tuple[str, str]] = []
    digest = ""

    def observe(timing: TimingResult) -> None:
        rep = timing.fault_report
        if rep is not None:
            counters["faults_observed"] += rep.n_faults
            if rep.fatal:
                counters["loud_failures"] += 1
        counters["corruptions_detected"] += len(timing.corrupted_ops)

    # Phase A: steady state — compile at t=0, run under the schedule.
    try:
        plan = _compile(workload, schedule, break_reroot)
        timing = _simulate(plan, schedule, break_memory)
    except Exception as exc:  # crash = violation, never acceptable
        return (
            [("no-crash", f"steady: {type(exc).__name__}: {exc}")],
            digest,
            counters,
        )
    observe(timing)
    digest = timing.telemetry.digest()
    found.extend(_check_invariants(workload, schedule, plan, timing, "steady"))

    # Invariant 3: byte-deterministic replay of the same run.
    try:
        plan2 = _compile(workload, schedule, break_reroot)
        timing2 = _simulate(plan2, schedule, break_memory)
        if timing2.telemetry.digest() != digest:
            found.append(
                (
                    "determinism",
                    "steady: same-seed replay produced a different "
                    "telemetry digest",
                )
            )
    except Exception as exc:
        found.append(("no-crash", f"replay: {type(exc).__name__}: {exc}"))

    # Phase B: replan view — re-anchor at the first permanent failure
    # (the compiler now sees dead hosts at t=0 and must re-root around
    # them, domain-aware).
    strike = schedule.first_host_failure()
    if strike is not None:
        counters["replans_checked"] += 1
        faults_now = schedule.shifted(strike.time)
        try:
            plan_b = _compile(workload, faults_now, break_reroot)
            timing_b = _simulate(plan_b, faults_now, break_memory)
        except Exception as exc:
            found.append(("no-crash", f"replan: {type(exc).__name__}: {exc}"))
        else:
            observe(timing_b)
            found.extend(
                _check_invariants(
                    workload, faults_now, plan_b, timing_b, "replan"
                )
            )
    return found, digest, counters


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _one_step_reductions(schedule: FaultSchedule):
    """Yield every schedule with exactly one event removed."""
    tuple_fields = (
        "degradations",
        "flaps",
        "stragglers",
        "host_failures",
        "domain_failures",
        "partitions",
        "corruptions",
    )
    for name in tuple_fields:
        items = getattr(schedule, name)
        for i in range(len(items)):
            yield dataclasses.replace(
                schedule, **{name: items[:i] + items[i + 1 :]}
            )
    if schedule.drop_rate > 0:
        yield dataclasses.replace(schedule, drop_rate=0.0)


def shrink_schedule(
    schedule: FaultSchedule,
    still_fails: Callable[[FaultSchedule], bool],
    max_steps: int = 200,
) -> FaultSchedule:
    """Greedily remove events while ``still_fails`` holds (to fixpoint).

    The result is 1-minimal: removing any single remaining event makes
    the violation disappear (or ``max_steps`` candidate evaluations ran
    out — generated schedules carry at most a dozen events, so in
    practice the fixpoint is always reached).
    """
    current = schedule
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for cand in _one_step_reductions(current):
            steps += 1
            if still_fails(cand):
                current = cand
                improved = True
                break
            if steps >= max_steps:
                break
    return current


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------
def _generate_schedule(
    seed: int, index: int, workload: FuzzWorkload
) -> FaultSchedule:
    """A deterministic, class-diverse schedule for run ``index``."""
    schedule = FaultSchedule.generate(
        seed=seed * 1_000_003 + index,
        n_hosts=workload.n_hosts,
        horizon=FUZZ_HORIZON,
        n_degradations=index % 3,
        n_flaps=(index + 1) % 2,
        drop_rate=0.05 if index % 4 == 0 else 0.0,
        n_host_failures=index % 2,
        domains=workload.domains,
        n_domain_failures=1 if index % 3 == 1 else 0,
        n_partitions=1 if index % 3 == 2 else 0,
        n_corruptions=index % 3,
        max_window_frac=0.5,
    )
    if index % 3 == 2:
        # Randomly-placed corruption windows rarely intersect the short
        # flow burst near t=0; to actually exercise the gray-failure
        # detection path, every third run pins a wide window over a
        # receiving host's NIC for the whole run (retries included).
        hosts = sorted(set(workload.task.dst_mesh.hosts))
        schedule = dataclasses.replace(
            schedule,
            corruptions=schedule.corruptions
            + (
                CorruptionWindow(
                    host=hosts[index % len(hosts)],
                    start=0.0,
                    duration=1.0,
                    rate=0.75,
                ),
            ),
        )
    return schedule


def run_fuzz(
    runs: int = 100,
    seed: int = 0,
    workloads: Optional[list[FuzzWorkload]] = None,
    break_reroot: bool = False,
    break_memory: bool = False,
    shrink: bool = True,
    save_repros_dir: Optional[Union[str, Path]] = None,
) -> FuzzStats:
    """Run a fuzzing campaign: ``runs`` seeded schedules over the
    golden workloads (round-robin), asserting the standing invariants
    on every run.

    On violation the schedule is shrunk to a 1-minimal reproducer
    (unless ``shrink=False``) and, when ``save_repros_dir`` is given,
    written there as JSON loadable via :func:`schedule_from_json`.
    """
    wls = workloads if workloads is not None else fuzz_workloads()
    if not wls:
        raise ValueError("no workloads to fuzz")
    stats = FuzzStats()
    h = hashlib.sha256()
    for index in range(runs):
        workload = wls[index % len(wls)]
        schedule = _generate_schedule(seed, index, workload)
        stats.runs += 1
        stats.events_injected += _n_events(schedule)
        found, digest, counters = run_one(
            workload, schedule, break_reroot, break_memory
        )
        h.update(digest.encode())
        for key, value in counters.items():
            setattr(stats, key, getattr(stats, key) + value)
        if not found:
            continue
        minimal = schedule
        if shrink:
            invariants = {inv for inv, _ in found}

            def still_fails(cand: FaultSchedule) -> bool:
                got, _, _ = run_one(workload, cand, break_reroot, break_memory)
                return any(inv in invariants for inv, _ in got)

            minimal = shrink_schedule(schedule, still_fails)
            found, _, _ = run_one(workload, minimal, break_reroot, break_memory)
        for invariant, detail in found:
            stats.violations.append(
                FuzzViolation(
                    workload=workload.name,
                    run_index=index,
                    invariant=invariant,
                    detail=detail,
                    schedule=minimal,
                )
            )
        if save_repros_dir is not None:
            out = Path(save_repros_dir)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"{workload.name}-seed{seed}-run{index}.json"
            path.write_text(
                json.dumps(
                    {
                        "workload": workload.name,
                        "seed": seed,
                        "run_index": index,
                        "invariants": sorted({inv for inv, _ in found}),
                        "schedule": schedule_to_json(minimal),
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
                encoding="utf-8",
            )
    stats.digest = h.hexdigest()
    return stats
