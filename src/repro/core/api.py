"""Top-level convenience API for cross-mesh resharding.

Typical use::

    from repro import ClusterSpec, Cluster, DeviceMesh, reshard

    cluster = Cluster(ClusterSpec(n_hosts=4, devices_per_host=4))
    src = DeviceMesh.from_hosts(cluster, [0, 1])
    dst = DeviceMesh.from_hosts(cluster, [2, 3])
    result = reshard(
        np.arange(2 ** 20, dtype=np.float32).reshape(1024, 1024),
        src, "S0R", dst, "RS1", strategy="broadcast",
    )
    print(result.latency, result.dst_tensor)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..strategies import CommStrategy, make_strategy
from .data import apply_plan
from .executor import TimingResult
from .mesh import DeviceMesh
from .plan import CommPlan
from .task import ReshardingTask
from .tensor import DistributedTensor

__all__ = ["ReshardResult", "reshard", "plan_resharding"]


@dataclass
class ReshardResult:
    """Everything produced by one resharding run."""

    task: ReshardingTask
    plan: CommPlan
    timing: TimingResult
    dst_tensor: Optional[DistributedTensor] = None

    @property
    def latency(self) -> float:
        """Simulated completion time of the resharding (seconds)."""
        return self.timing.total_time

    @property
    def cross_host_bytes(self) -> float:
        return self.timing.bytes_cross_host


def plan_resharding(
    shape,
    src_mesh: DeviceMesh,
    src_spec,
    dst_mesh: DeviceMesh,
    dst_spec,
    strategy: Union[str, CommStrategy] = "broadcast",
    dtype=np.float32,
    **strategy_kwargs,
) -> CommPlan:
    """Compile a resharding plan without executing it.

    Always compiles fresh (uncached) so the returned plan is the
    caller's to mutate; :func:`reshard` goes through the shared plan
    cache instead.
    """
    task = ReshardingTask(shape, src_mesh, src_spec, dst_mesh, dst_spec, dtype=dtype)
    strat = make_strategy(strategy, **strategy_kwargs)
    return strat.plan(task)


def reshard(
    tensor_or_shape,
    src_mesh: DeviceMesh,
    src_spec,
    dst_mesh: DeviceMesh,
    dst_spec,
    strategy: Union[str, CommStrategy] = "broadcast",
    dtype=np.float32,
    move_data: Optional[bool] = None,
    **strategy_kwargs,
) -> ReshardResult:
    """Plan, simulate, and (optionally) execute one cross-mesh resharding.

    ``tensor_or_shape`` may be a NumPy array — then the data plane runs
    and ``dst_tensor`` holds the destination layout — or a plain shape
    tuple for timing-only studies.  ``move_data`` forces/disables the
    data plane (defaults to "move when given an array and the strategy
    carries data").

    Compiles through the staged plan compiler and the process-wide
    content-addressed plan cache: repeating a resharding with identical
    content (specs, meshes, topology, strategy, fault epoch) reuses the
    compiled plan *and* its memoized timing.  Pass ``cache=None`` to
    compile fresh, or another :class:`~repro.compiler.PlanCache`.

    ``deadline`` bounds the compile in deterministic budget seconds
    (:mod:`repro.compiler.budget`); exceeding it raises
    :class:`~repro.compiler.CompileTimeout` identically on every
    machine.
    """
    from ..compiler.pipeline import USE_DEFAULT_CACHE, CompileContext, compile_resharding

    cache = strategy_kwargs.pop("cache", USE_DEFAULT_CACHE)
    deadline = strategy_kwargs.pop("deadline", None)
    if isinstance(tensor_or_shape, np.ndarray):
        array: Optional[np.ndarray] = tensor_or_shape
        shape = array.shape
        dtype = array.dtype
    else:
        array = None
        shape = tuple(tensor_or_shape)

    task = ReshardingTask(shape, src_mesh, src_spec, dst_mesh, dst_spec, dtype=dtype)
    ctx = CompileContext(
        strategy=strategy, strategy_kwargs=strategy_kwargs, cache=cache,
        deadline=deadline,
    )
    compiled = compile_resharding(task, ctx)
    plan = compiled.plan
    timing = compiled.ensure_timing()

    dst_tensor = None
    do_move = (
        move_data
        if move_data is not None
        else (array is not None and plan.data_complete)
    )
    if do_move:
        if array is None:
            raise ValueError("move_data=True requires an actual array")
        src_tensor = DistributedTensor.from_global(src_mesh, plan.task.src_spec, array)
        dst_tensor = apply_plan(plan, src_tensor)
    return ReshardResult(task=plan.task, plan=plan, timing=timing, dst_tensor=dst_tensor)
