"""Cross-mesh resharding tasks and their decomposition (paper §2.2).

A :class:`ReshardingTask` sends one tensor, sharded on a source mesh
under a source spec, to a destination mesh under a destination spec.  It
decomposes into :class:`UnitCommTask`\\ s — one per *unique data slice*
on the source mesh — each responsible for delivering its slice to the
subset of destination devices whose tiles overlap it.  This is exactly
the paper's decomposition (Figure 2): receivers that need only part of a
slice receive the slice and crop locally.

For strategies that transfer exact sub-regions instead (plain
send/recv), :meth:`ReshardingTask.intersections` yields the finer
``src tile x dst tile`` pieces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .mesh import DeviceMesh
from .slices import Region, TileGrid, region_intersection
from .spec import ShardingSpec, parse_spec
from .tensor import nbytes_of, region_nbytes

__all__ = ["UnitCommTask", "IntersectionTransfer", "ReshardingTask"]


@dataclass(frozen=True)
class UnitCommTask:
    """One multicast unit: a region, its holders, and its requesters.

    ``senders`` are the source devices holding a replica of the region
    (the paper's ``N_i``); ``receivers`` the destination devices that
    must end up with it (``M_i``).  At ``"slice"`` granularity the
    region is a full source tile and ``dst_tile`` is None; at
    ``"intersection"`` granularity (the default, matching the unit-task
    counts of the paper's §5) it is one overlap-grid tile and both
    parent tiles are recorded.
    """

    task_id: int
    src_tile: tuple[int, ...]
    region: Region
    senders: tuple[int, ...]
    receivers: tuple[int, ...]
    nbytes: int
    dst_tile: Optional[tuple[int, ...]] = None


@dataclass(frozen=True)
class IntersectionTransfer:
    """An exact ``src tile ∩ dst tile`` piece for send/recv strategies."""

    src_tile: tuple[int, ...]
    dst_tile: tuple[int, ...]
    region: Region
    senders: tuple[int, ...]
    receivers: tuple[int, ...]
    nbytes: int


class ReshardingTask:
    """Send tensor ``D`` from (src_mesh, src_spec) to (dst_mesh, dst_spec)."""

    def __init__(
        self,
        shape,
        src_mesh: DeviceMesh,
        src_spec: "str | ShardingSpec",
        dst_mesh: DeviceMesh,
        dst_spec: "str | ShardingSpec",
        dtype=np.float32,
        require_disjoint: bool = True,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.src_mesh = src_mesh
        self.dst_mesh = dst_mesh
        self.src_spec = parse_spec(src_spec)
        self.dst_spec = parse_spec(dst_spec)
        if src_mesh.cluster is not dst_mesh.cluster:
            raise ValueError("meshes must live on the same cluster")
        if require_disjoint and not src_mesh.disjoint_from(dst_mesh):
            raise ValueError(
                "cross-mesh resharding requires disjoint meshes "
                f"(shared: {set(src_mesh.devices) & set(dst_mesh.devices)})"
            )
        self.src_grid = TileGrid(self.shape, self.src_spec, src_mesh)
        self.dst_grid = TileGrid(self.shape, self.dst_spec, dst_mesh)
        self._unit_tasks: dict[str, list[UnitCommTask]] = {}
        self._intersections: Optional[list[IntersectionTransfer]] = None

    # ------------------------------------------------------------------
    @property
    def cluster(self):
        return self.src_mesh.cluster

    @property
    def total_nbytes(self) -> int:
        """Size of D — the lower bound on inter-mesh traffic (§2.2)."""
        n = 1
        for s in self.shape:
            n *= s
        return nbytes_of(n, self.dtype)

    # ------------------------------------------------------------------
    # Decompositions
    # ------------------------------------------------------------------
    def unit_tasks(self, granularity: str = "intersection") -> list[UnitCommTask]:
        """Decompose into unit communication tasks (cached per granularity).

        ``"intersection"`` (default): one task per non-empty overlap-grid
        tile (src tile ∩ dst tile); each receiver gets exactly the bytes
        it needs.  This matches the unit-task counts in the paper's
        evaluation (e.g. 64 tasks in Table 2's case 4, one in case 8).

        ``"slice"``: one task per unique source data slice, sent whole
        to every destination device overlapping it, which then crops
        locally — the coarser decomposition described in §2.2's prose.
        """
        if granularity not in ("intersection", "slice"):
            raise ValueError(
                f"granularity must be 'intersection' or 'slice', got {granularity!r}"
            )
        if granularity not in self._unit_tasks:
            tasks: list[UnitCommTask] = []
            if granularity == "slice":
                for tid, idx in enumerate(self.src_grid.all_tile_indices()):
                    region = self.src_grid.tile_region(idx)
                    senders = self.src_grid.tile_replicas(idx)
                    receivers = tuple(
                        d
                        for d in self.dst_mesh.devices
                        if region_intersection(
                            self.dst_grid.device_region(d), region
                        )
                        is not None
                    )
                    tasks.append(
                        UnitCommTask(
                            task_id=tid,
                            src_tile=idx,
                            region=region,
                            senders=senders,
                            receivers=receivers,
                            nbytes=region_nbytes(region, self.dtype),
                        )
                    )
            else:
                for tid, tr in enumerate(self.intersections()):
                    tasks.append(
                        UnitCommTask(
                            task_id=tid,
                            src_tile=tr.src_tile,
                            region=tr.region,
                            senders=tr.senders,
                            receivers=tr.receivers,
                            nbytes=tr.nbytes,
                            dst_tile=tr.dst_tile,
                        )
                    )
            self._unit_tasks[granularity] = tasks
        return self._unit_tasks[granularity]

    def intersections(self) -> list[IntersectionTransfer]:
        """Exact src-tile x dst-tile pieces (cached)."""
        if self._intersections is None:
            out: list[IntersectionTransfer] = []
            dst_tiles = [
                (didx, self.dst_grid.tile_region(didx), self.dst_grid.tile_replicas(didx))
                for didx in self.dst_grid.all_tile_indices()
            ]
            for sidx in self.src_grid.all_tile_indices():
                sregion = self.src_grid.tile_region(sidx)
                senders = self.src_grid.tile_replicas(sidx)
                for didx, dregion, receivers in dst_tiles:
                    inter = region_intersection(sregion, dregion)
                    if inter is None:
                        continue
                    out.append(
                        IntersectionTransfer(
                            src_tile=sidx,
                            dst_tile=didx,
                            region=inter,
                            senders=senders,
                            receivers=receivers,
                            nbytes=region_nbytes(inter, self.dtype),
                        )
                    )
            self._intersections = out
        return self._intersections

    # ------------------------------------------------------------------
    # Host-level views used by the scheduler (§3.2 works at host level)
    # ------------------------------------------------------------------
    def sender_hosts(self, task: UnitCommTask) -> frozenset[int]:
        """Hosts offering a replica of the task's slice (``n_i``)."""
        return frozenset(self.cluster.host_of(d) for d in task.senders)

    def receiver_hosts(self, task: UnitCommTask) -> frozenset[int]:
        """Hosts that must receive the slice (``m_i``)."""
        return frozenset(self.cluster.host_of(d) for d in task.receivers)

    def senders_on_host(self, task: UnitCommTask, host: int) -> tuple[int, ...]:
        return tuple(d for d in task.senders if self.cluster.host_of(d) == host)

    def __repr__(self) -> str:
        return (
            f"ReshardingTask({self.src_spec}@{self.src_mesh.shape} -> "
            f"{self.dst_spec}@{self.dst_mesh.shape}, shape={self.shape}, "
            f"dtype={self.dtype.name})"
        )
