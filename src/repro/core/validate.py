"""Static validation of communication plans.

:func:`verify_plan_coverage` proves — without moving any bytes — that a
CommPlan delivers every element each destination device needs and that
every op reads data its sender actually holds.  It is the cheap
counterpart of the NumPy data plane (`repro.core.data`): the data plane
checks values, this checks *regions*, so it also works for plans too
large to materialize.

Since the static-analysis package landed, this module is a thin raising
facade over :func:`repro.analysis.check_plan`: the full analyzer runs
(coverage, sender authority, dependency sanity, write races, schedule
consistency, deadlock) and any ERROR-severity diagnostic aborts with a
:class:`PlanValidationError` listing every finding with its stable code.
Callers that want the structured report instead of an exception should
call :func:`repro.analysis.check_plan` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .plan import CommPlan

__all__ = ["PlanValidationError", "CoverageReport", "verify_plan_coverage"]


class PlanValidationError(ValueError):
    """The plan is structurally unable to perform its resharding."""


@dataclass
class CoverageReport:
    """Result of a successful validation."""

    n_ops: int
    n_receivers: int
    delivered_regions: dict[int, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"CoverageReport(ops={self.n_ops}, receivers={self.n_receivers})"
        )


def verify_plan_coverage(plan: CommPlan) -> CoverageReport:
    """Raise :class:`PlanValidationError` unless the plan is complete.

    Delegates to :func:`repro.analysis.check_plan`; the exception message
    carries every ERROR diagnostic (code, op ids, message), one per line.
    """
    if not plan.data_complete:
        raise PlanValidationError(
            f"strategy {plan.strategy!r} plans carry no data by design"
        )
    # Imported here: repro.analysis builds plans (loader) and therefore
    # imports repro.core; a module-level import would be circular.
    from ..analysis.plan_checker import check_plan

    report = check_plan(plan)
    errors = report.errors
    if errors:
        raise PlanValidationError(
            "\n".join(diag.format() for diag in errors)
        )
    return CoverageReport(
        n_ops=len(plan.ops), n_receivers=len(plan.task.dst_mesh.devices)
    )
