"""Static validation of communication plans.

:func:`verify_plan_coverage` proves — without moving any bytes — that a
CommPlan delivers every element each destination device needs and that
every op reads data its sender actually holds.  It is the cheap
counterpart of the NumPy data plane (`repro.core.data`): the data plane
checks values, this checks *regions*, so it also works for plans too
large to materialize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .plan import AllGatherOp, BroadcastOp, CommPlan, ScatterOp, SendOp
from .slices import Region, region_intersection, region_size, region_shape

__all__ = ["PlanValidationError", "CoverageReport", "verify_plan_coverage"]


class PlanValidationError(ValueError):
    """The plan is structurally unable to perform its resharding."""


@dataclass
class CoverageReport:
    """Result of a successful validation."""

    n_ops: int
    n_receivers: int
    delivered_regions: dict[int, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"CoverageReport(ops={self.n_ops}, receivers={self.n_receivers})"
        )


def _check_sender_holds(plan: CommPlan, sender: int, region: Region, op_id: int) -> None:
    task = plan.task
    if sender not in task.src_mesh.devices:
        raise PlanValidationError(
            f"op {op_id}: sender {sender} is not a source-mesh device"
        )
    holder = task.src_grid.device_region(sender)
    if region_intersection(holder, region) != region:
        raise PlanValidationError(
            f"op {op_id}: sender {sender} holds {holder}, not {region}"
        )


def verify_plan_coverage(plan: CommPlan) -> CoverageReport:
    """Raise :class:`PlanValidationError` unless the plan is complete.

    Checks: (1) dependencies precede their dependents and scatter feeds
    all-gather groups entirely; (2) every op's sender holds its region;
    (3) after all ops, every destination device's tile is fully covered
    by delivered regions (counting local reuse for intra-mesh plans).
    """
    task = plan.task
    if not plan.data_complete:
        raise PlanValidationError(
            f"strategy {plan.strategy!r} plans carry no data by design"
        )
    delivered: dict[int, list[Region]] = {d: [] for d in task.dst_mesh.devices}
    scattered: dict[tuple[int, Region], set[int]] = {}

    for op in plan.ops:
        for dep in op.deps:
            if dep >= op.op_id:
                raise PlanValidationError(
                    f"op {op.op_id}: dependency {dep} does not precede it"
                )
        if isinstance(op, SendOp):
            _check_sender_holds(plan, op.sender, op.region, op.op_id)
            if op.receiver in delivered:
                delivered[op.receiver].append(op.region)
        elif isinstance(op, BroadcastOp):
            _check_sender_holds(plan, op.sender, op.region, op.op_id)
            for r in op.receivers:
                if r in delivered:
                    delivered[r].append(op.region)
        elif isinstance(op, ScatterOp):
            _check_sender_holds(plan, op.sender, op.region, op.op_id)
            for r in op.receivers:
                scattered.setdefault((op.op_id, op.region), set()).add(r)
        elif isinstance(op, AllGatherOp):
            feeders = [
                devs
                for (dep_id, region), devs in scattered.items()
                if region == op.region and dep_id in op.deps
            ]
            if not feeders or not set(op.devices) <= set().union(*feeders):
                raise PlanValidationError(
                    f"op {op.op_id}: all-gather group not fully fed by a "
                    "preceding scatter of the same region"
                )
            for r in op.devices:
                if r in delivered:
                    delivered[r].append(op.region)
        else:
            raise PlanValidationError(f"unknown op type {type(op).__name__}")

    # Coverage check per destination device, on a boolean grid.
    intra = set(task.src_mesh.devices) & set(task.dst_mesh.devices)
    for dev in task.dst_mesh.devices:
        want = task.dst_grid.device_region(dev)
        got = np.zeros(region_shape(want), dtype=bool)
        regions = list(delivered[dev])
        if dev in intra:
            regions.append(task.src_grid.device_region(dev))
        for region in regions:
            inter = region_intersection(region, want)
            if inter is None:
                continue
            sl = tuple(
                slice(i0 - w0, i1 - w0) for (i0, i1), (w0, _) in zip(inter, want)
            )
            got[sl] = True
        if not got.all():
            missing = int(region_size(want) - got.sum())
            raise PlanValidationError(
                f"device {dev}: {missing} of {region_size(want)} elements of "
                f"tile {want} are never delivered"
            )
    return CoverageReport(n_ops=len(plan.ops), n_receivers=len(delivered))
