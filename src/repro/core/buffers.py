"""Per-host transient buffer attribution — the one sizeof/buffer oracle.

Both sides of the memory-soundness invariant live on this module:

* the **runtime** accounting in :class:`~repro.core.executor.PlanRunner`
  charges :func:`op_host_buffers` when an op launches and releases it
  when the op completes, tracking the actual per-host high-water mark;
* the **static** analyzer (:mod:`repro.analysis.memory_analysis`)
  combines the same per-op charges with the schedule's host-serialization
  order into a sound upper bound, per host, on live transient bytes.

Because both consume the identical attribution, ``static_bound >=
simulated_peak`` reduces to the serialization argument alone — the
formulas cannot drift apart.

Attribution is **receiver-side**: senders read resident tensor shards
(already accounted as model state), while every receiver needs a
transient landing buffer until the op's payload is consumed:

* ``SendOp`` — ``nbytes`` on the receiver's host;
* ``BroadcastOp``/``MulticastOp`` — ``nbytes`` per receiver (ring
  forwarding and switch fanout both materialize the full slice on every
  receiver, including same-host siblings);
* ``ScatterOp`` — ``nbytes / len(receivers)`` per receiver (each part
  is staged only on the device that owns it);
* ``AllGatherOp`` — ``nbytes`` per group device (each device assembles
  the full region from the ring).

This module and :mod:`repro.core.tensor` are the only places raw
``itemsize`` byte math is allowed (repro-lint L004).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .plan import (
    AllGatherOp,
    BroadcastOp,
    CommOp,
    MulticastOp,
    ScatterOp,
    SendOp,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.cluster import Cluster

__all__ = ["op_host_buffers", "plan_op_buffers"]


def op_host_buffers(cluster: "Cluster", op: CommOp) -> dict[int, float]:
    """Transient buffer bytes ``op`` pins while in flight, per host id.

    Devices outside the cluster are skipped — hand-built fixture plans
    may reference them, and sender-authority analysis (P005/P008)
    already reports the defect; attribution stays total either way.
    Hosts with a zero charge are omitted.
    """
    out: dict[int, float] = {}

    def charge(device: int, nbytes: float) -> None:
        if 0 <= device < cluster.n_devices:
            host = cluster.host_of(device)
            out[host] = out.get(host, 0.0) + nbytes

    if isinstance(op, SendOp):
        charge(op.receiver, op.nbytes)
    elif isinstance(op, (BroadcastOp, MulticastOp)):
        for r in op.receivers:
            charge(r, op.nbytes)
    elif isinstance(op, ScatterOp):
        if op.receivers:
            part = op.nbytes / len(op.receivers)
            for r in op.receivers:
                charge(r, part)
    elif isinstance(op, AllGatherOp):
        for d in op.devices:
            charge(d, op.nbytes)
    return out


def plan_op_buffers(
    cluster: "Cluster", ops: "list[CommOp] | tuple[CommOp, ...]"
) -> dict[int, dict[int, float]]:
    """Per-op host attribution for a whole op list, keyed by op id."""
    return {op.op_id: op_host_buffers(cluster, op) for op in ops}
