"""Slice algebra: tile grids, regions, and device <-> tile maps.

A sharding spec over a mesh induces a *tile grid* on the tensor: every
tensor dimension is cut into contiguous intervals (one per shard index)
and each device of the mesh holds exactly one tile, possibly replicated
across the mesh axes the spec leaves unused.  A *region* is an axis-
aligned box ``((start, stop), ...)`` in tensor index space.

Uneven dimensions are split with the NumPy ``array_split`` convention
(the first ``size % n`` parts get one extra element), which is how the
paper's system "efficiently handles tiling, padding" (§5.1.1); the Alpa
baseline refuses uneven splits and falls back (see
:mod:`repro.strategies.allgather`).
"""

from __future__ import annotations

from functools import reduce
from itertools import product
from typing import Iterator, Optional, Sequence

from .mesh import DeviceMesh
from .spec import ShardingSpec

__all__ = [
    "Region",
    "split_offsets",
    "region_intersection",
    "region_size",
    "region_shape",
    "relative_region",
    "TileGrid",
]

Region = tuple[tuple[int, int], ...]


def split_offsets(size: int, n: int) -> tuple[int, ...]:
    """Offsets cutting ``[0, size)`` into ``n`` near-equal intervals.

    Returns ``n + 1`` ascending offsets; interval ``k`` is
    ``[offsets[k], offsets[k+1])``.  Matches ``numpy.array_split``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if size < n:
        raise ValueError(f"cannot split size {size} into {n} non-empty parts")
    q, r = divmod(size, n)
    offsets = [0]
    for k in range(n):
        offsets.append(offsets[-1] + q + (1 if k < r else 0))
    return tuple(offsets)


def region_intersection(a: Region, b: Region) -> Optional[Region]:
    """Intersection box of two regions, or None when empty."""
    if len(a) != len(b):
        raise ValueError(f"rank mismatch: {len(a)} vs {len(b)}")
    out = []
    for (a0, a1), (b0, b1) in zip(a, b):
        lo, hi = max(a0, b0), min(a1, b1)
        if lo >= hi:
            return None
        out.append((lo, hi))
    return tuple(out)


def region_shape(r: Region) -> tuple[int, ...]:
    return tuple(hi - lo for lo, hi in r)


def region_size(r: Region) -> int:
    """Number of elements in the region."""
    return reduce(lambda x, y: x * y, (hi - lo for lo, hi in r), 1)


def relative_region(outer: Region, inner: Region) -> Region:
    """Express ``inner`` in coordinates relative to ``outer``'s origin.

    ``inner`` must be contained in ``outer``.
    """
    out = []
    for (o0, o1), (i0, i1) in zip(outer, inner):
        if not (o0 <= i0 and i1 <= o1):
            raise ValueError(f"{inner} is not contained in {outer}")
        out.append((i0 - o0, i1 - o0))
    return tuple(out)


class TileGrid:
    """The tiling of one tensor induced by (shape, spec, mesh)."""

    def __init__(
        self, shape: Sequence[int], spec: ShardingSpec, mesh: DeviceMesh
    ) -> None:
        spec.validate(shape, mesh)
        self.shape = tuple(int(s) for s in shape)
        self.spec = spec
        self.mesh = mesh
        self.shards = spec.shards_per_dim(mesh)
        self.boundaries: tuple[tuple[int, ...], ...] = tuple(
            split_offsets(size, n) for size, n in zip(self.shape, self.shards)
        )

    # ------------------------------------------------------------------
    # Tiles
    # ------------------------------------------------------------------
    def tile_region(self, idx: Sequence[int]) -> Region:
        """The tensor region of tile ``idx`` (one index per dim)."""
        if len(idx) != len(self.shape):
            raise ValueError(f"tile index rank {len(idx)} != tensor rank")
        out = []
        for k, b in zip(idx, self.boundaries):
            if not 0 <= k < len(b) - 1:
                raise IndexError(f"tile index {k} out of range [0, {len(b) - 1})")
            out.append((b[k], b[k + 1]))
        return tuple(out)

    def all_tile_indices(self) -> Iterator[tuple[int, ...]]:
        """All tile indices, lexicographic."""
        return product(*(range(n) for n in self.shards))

    # ------------------------------------------------------------------
    # Device <-> tile mapping
    # ------------------------------------------------------------------
    def tile_index_of_coords(self, coords: tuple[int, int]) -> tuple[int, ...]:
        """Tile held by the device at mesh coordinates ``coords``.

        A dimension sharded along mesh axes ``(a, b, ...)`` uses the
        mixed-radix number formed by the device's coordinates on those
        axes (most significant first), matching GSPMD's ``S^{01}``.
        """
        idx = []
        for axes in self.spec.dims:
            k = 0
            for a in axes:
                k = k * self.mesh.shape[a] + coords[a]
            idx.append(k)
        return tuple(idx)

    def device_tile_index(self, device_id: int) -> tuple[int, ...]:
        return self.tile_index_of_coords(self.mesh.coords_of(device_id))

    def device_region(self, device_id: int) -> Region:
        """The tensor region device ``device_id`` holds."""
        return self.tile_region(self.device_tile_index(device_id))

    def tile_replicas(self, idx: Sequence[int]) -> tuple[int, ...]:
        """All devices holding tile ``idx`` (the slice's replica set)."""
        idx = tuple(idx)
        out = [
            self.mesh.device_at(i, j)
            for i in range(self.mesh.shape[0])
            for j in range(self.mesh.shape[1])
            if self.tile_index_of_coords((i, j)) == idx
        ]
        if not out:
            raise IndexError(f"no device holds tile {idx}")
        return tuple(out)

    def __repr__(self) -> str:
        return (
            f"TileGrid(shape={self.shape}, spec={self.spec}, "
            f"mesh={self.mesh.shape}, shards={self.shards})"
        )
