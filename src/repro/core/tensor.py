"""Distributed tensors with real NumPy shards on simulated devices.

This is the functional-correctness layer the paper gets for free from
NCCL: a :class:`DistributedTensor` places actual array tiles on each
device of a mesh according to a sharding spec, and the data interpreter
(:mod:`repro.core.data`) moves those bytes following a CommPlan so tests
can verify every destination device ends up with exactly its tile.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .mesh import DeviceMesh
from .slices import Region, TileGrid, region_shape, region_size
from .spec import ShardingSpec, parse_spec

__all__ = ["DistributedTensor", "read_region", "nbytes_of", "region_nbytes"]


def nbytes_of(n_elements: int, dtype: "np.dtype") -> int:
    """Bytes occupied by ``n_elements`` values of ``dtype``.

    The single source of truth for sizeof math: every byte count in the
    repo derives from here (or :func:`region_nbytes`), so dtype handling
    cannot silently diverge between the planner, the analyzers, and the
    fixture loader.  Raw ``count * itemsize`` arithmetic anywhere else
    is rejected by repro-lint rule L004.
    """
    return int(n_elements) * np.dtype(dtype).itemsize


def region_nbytes(region: Region, dtype: "np.dtype") -> int:
    """Bytes occupied by one ``dtype`` tensor region."""
    return nbytes_of(region_size(region), dtype)


def _region_slices(region: Region) -> tuple[slice, ...]:
    return tuple(slice(lo, hi) for lo, hi in region)


def read_region(tile: np.ndarray, tile_region: Region, want: Region) -> np.ndarray:
    """Crop ``want`` (global coordinates) out of a device's tile array."""
    rel = []
    for (t0, t1), (w0, w1) in zip(tile_region, want):
        if not (t0 <= w0 and w1 <= t1):
            raise ValueError(f"region {want} not contained in tile {tile_region}")
        rel.append(slice(w0 - t0, w1 - t0))
    return tile[tuple(rel)]


class DistributedTensor:
    """A tensor sharded over a mesh; each device holds its tile."""

    def __init__(
        self,
        mesh: DeviceMesh,
        spec: "str | ShardingSpec",
        shape,
        shards: Mapping[int, np.ndarray],
        dtype=None,
    ) -> None:
        self.mesh = mesh
        self.spec = parse_spec(spec)
        self.shape = tuple(int(s) for s in shape)
        self.grid = TileGrid(self.shape, self.spec, mesh)
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.shards: dict[int, np.ndarray] = {}
        missing = set(mesh.devices) - set(shards)
        if missing:
            raise ValueError(f"missing shards for devices {sorted(missing)}")
        for d in mesh.devices:
            arr = np.asarray(shards[d])
            want = region_shape(self.grid.device_region(d))
            if arr.shape != want:
                raise ValueError(
                    f"device {d}: shard shape {arr.shape} != tile shape {want}"
                )
            if self.dtype is None:
                self.dtype = arr.dtype
            elif arr.dtype != self.dtype:
                raise ValueError(
                    f"device {d}: dtype {arr.dtype} != tensor dtype {self.dtype}"
                )
            self.shards[d] = arr

    # ------------------------------------------------------------------
    @classmethod
    def from_global(
        cls,
        mesh: DeviceMesh,
        spec: "str | ShardingSpec",
        array: np.ndarray,
    ) -> "DistributedTensor":
        """Shard a global array over the mesh per the spec."""
        array = np.asarray(array)
        spec = parse_spec(spec)
        grid = TileGrid(array.shape, spec, mesh)
        shards = {
            d: array[_region_slices(grid.device_region(d))].copy()
            for d in mesh.devices
        }
        return cls(mesh, spec, array.shape, shards, dtype=array.dtype)

    # ------------------------------------------------------------------
    def shard_of(self, device_id: int) -> np.ndarray:
        return self.shards[device_id]

    def device_region(self, device_id: int) -> Region:
        return self.grid.device_region(device_id)

    def to_global(self, check_replicas: bool = True) -> np.ndarray:
        """Reassemble the global tensor, verifying replica consistency."""
        out = np.empty(self.shape, dtype=self.dtype)
        covered = np.zeros(self.shape, dtype=bool)
        for d in self.mesh.devices:
            region = self.grid.device_region(d)
            sl = _region_slices(region)
            if check_replicas and covered[sl].any():
                if not np.array_equal(out[sl], self.shards[d]):
                    raise ValueError(
                        f"replica mismatch: device {d} disagrees on {region}"
                    )
            out[sl] = self.shards[d]
            covered[sl] = True
        if not covered.all():
            raise ValueError("mesh tiles do not cover the tensor")  # pragma: no cover
        return out

    def allclose(self, other: "DistributedTensor | np.ndarray", **kw) -> bool:
        if isinstance(other, DistributedTensor):
            other = other.to_global()
        return bool(np.allclose(self.to_global(), np.asarray(other), **kw))

    def __repr__(self) -> str:
        return (
            f"DistributedTensor(shape={self.shape}, dtype={self.dtype}, "
            f"spec={self.spec}, mesh={self.mesh.shape})"
        )
