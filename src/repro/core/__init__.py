"""Core cross-mesh resharding library (the paper's primary contribution)."""

from .api import ReshardResult, plan_resharding, reshard
from .data import DataPlaneError, apply_plan
from .executor import TimingResult, simulate_plan
from .intra import IntraReshardResult, intra_mesh_reshard, plan_intra_mesh
from .joint import (
    JointTimingResult,
    plan_joint_broadcast,
    reshard_boundary,
    simulate_joint,
)
from .mesh import DeviceMesh
from .plan import (
    AllGatherOp,
    BroadcastOp,
    CommOp,
    CommPlan,
    MulticastOp,
    ScatterOp,
    SendOp,
)
from .slices import (
    Region,
    TileGrid,
    region_intersection,
    region_shape,
    region_size,
    relative_region,
    split_offsets,
)
from .spec import REPLICATED, ShardingSpec, parse_spec
from .validate import CoverageReport, PlanValidationError, verify_plan_coverage
from .verify_data import IntegrityError, IntegrityReport, verify_delivery
from .task import IntersectionTransfer, ReshardingTask, UnitCommTask
from .tensor import DistributedTensor

__all__ = [
    "DeviceMesh",
    "ShardingSpec",
    "parse_spec",
    "REPLICATED",
    "Region",
    "TileGrid",
    "region_intersection",
    "region_shape",
    "region_size",
    "relative_region",
    "split_offsets",
    "ReshardingTask",
    "UnitCommTask",
    "IntersectionTransfer",
    "CommPlan",
    "CommOp",
    "SendOp",
    "BroadcastOp",
    "MulticastOp",
    "ScatterOp",
    "AllGatherOp",
    "simulate_plan",
    "TimingResult",
    "apply_plan",
    "DataPlaneError",
    "DistributedTensor",
    "reshard",
    "plan_resharding",
    "ReshardResult",
    "intra_mesh_reshard",
    "plan_intra_mesh",
    "IntraReshardResult",
    "reshard_boundary",
    "plan_joint_broadcast",
    "simulate_joint",
    "JointTimingResult",
    "verify_plan_coverage",
    "PlanValidationError",
    "CoverageReport",
    "verify_delivery",
    "IntegrityError",
    "IntegrityReport",
]
