"""Sharding specs in the paper's notation (§2.2).

The layout of an N-dimensional tensor ``D`` over a 2-D mesh is an
N-element string ``X_0^{d_0} ... X_{N-1}^{d_{N-1}}`` where each ``X_i`` is
``S`` (sharded) or ``R`` (replicated) and ``d_i`` names the mesh axes the
sharding maps to (``0``, ``1`` or ``01``).  Examples: ``S0RR``, ``RS01R``,
``RRR``.

Internally a spec is a tuple with one entry per tensor dimension: an empty
tuple for ``R`` or a tuple of mesh axes for ``S`` (``(0,)``, ``(1,)``,
``(0, 1)`` or ``(1, 0)``).  A mesh axis may be used by at most one tensor
dimension; mesh axes used by no dimension replicate the tensor along them.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from .mesh import DeviceMesh

__all__ = ["ShardingSpec", "parse_spec", "REPLICATED"]

_TOKEN = re.compile(r"S(\d+)|R")

#: Per-dimension assignment for a replicated dimension.
REPLICATED: tuple[int, ...] = ()


class ShardingSpec:
    """Immutable sharding spec for an N-dimensional tensor on a 2-D mesh."""

    __slots__ = ("dims",)

    def __init__(self, dims: Iterable[Sequence[int]]) -> None:
        norm: list[tuple[int, ...]] = []
        for d in dims:
            axes = tuple(int(a) for a in d)
            for a in axes:
                if a not in (0, 1):
                    raise ValueError(f"mesh axis must be 0 or 1, got {a}")
            if len(set(axes)) != len(axes):
                raise ValueError(f"repeated mesh axis within one dim: {axes}")
            norm.append(axes)
        used = [a for axes in norm for a in axes]
        if len(set(used)) != len(used):
            raise ValueError(
                f"a mesh axis may shard at most one tensor dim: {norm}"
            )
        if not norm:
            raise ValueError("spec must cover at least one tensor dimension")
        object.__setattr__(self, "dims", tuple(norm))

    def __setattr__(self, *a) -> None:  # immutability
        raise AttributeError("ShardingSpec is immutable")

    # ------------------------------------------------------------------
    # Parsing / formatting
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "ShardingSpec":
        """Parse the paper's string notation, e.g. ``"S0RR"``, ``"RS01R"``."""
        pos = 0
        dims: list[tuple[int, ...]] = []
        while pos < len(text):
            m = _TOKEN.match(text, pos)
            if m is None:
                raise ValueError(f"bad sharding spec {text!r} at position {pos}")
            if m.group(0) == "R":
                dims.append(REPLICATED)
            else:
                dims.append(tuple(int(ch) for ch in m.group(1)))
            pos = m.end()
        if not dims:
            raise ValueError("empty sharding spec")
        return cls(dims)

    def __str__(self) -> str:
        return "".join(
            "R" if not axes else "S" + "".join(str(a) for a in axes)
            for axes in self.dims
        )

    def __repr__(self) -> str:
        return f"ShardingSpec({self})"

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def used_mesh_axes(self) -> frozenset[int]:
        return frozenset(a for axes in self.dims for a in axes)

    def replica_mesh_axes(self) -> tuple[int, ...]:
        """Mesh axes along which the tensor is replicated."""
        return tuple(a for a in (0, 1) if a not in self.used_mesh_axes)

    def shards_per_dim(self, mesh: DeviceMesh) -> tuple[int, ...]:
        """Number of tile intervals along each tensor dimension."""
        out = []
        for axes in self.dims:
            n = 1
            for a in axes:
                n *= mesh.shape[a]
            out.append(n)
        return tuple(out)

    def replication_factor(self, mesh: DeviceMesh) -> int:
        """How many devices hold each data slice."""
        n = 1
        for a in self.replica_mesh_axes():
            n *= mesh.shape[a]
        return n

    def validate(self, shape: Sequence[int], mesh: DeviceMesh) -> None:
        """Check the spec fits a tensor ``shape`` over ``mesh``.

        Allows uneven partitions (a dimension smaller than its shard
        count is the only hard error).
        """
        if len(shape) != self.ndim:
            raise ValueError(
                f"spec {self} has {self.ndim} dims but tensor has {len(shape)}"
            )
        for size, n in zip(shape, self.shards_per_dim(mesh)):
            if n > size:
                raise ValueError(
                    f"cannot split dimension of size {size} into {n} shards"
                )

    def is_even(self, shape: Sequence[int], mesh: DeviceMesh) -> bool:
        """True when every sharded dim divides evenly (no padding needed)."""
        return all(
            size % n == 0 for size, n in zip(shape, self.shards_per_dim(mesh))
        )

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, ShardingSpec) and self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)


def parse_spec(text: "str | ShardingSpec") -> ShardingSpec:
    """Coerce a string (or pass through a spec) to :class:`ShardingSpec`."""
    if isinstance(text, ShardingSpec):
        return text
    return ShardingSpec.parse(text)
