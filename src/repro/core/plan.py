"""Communication-plan IR for cross-mesh resharding.

A strategy compiles a :class:`~repro.core.task.ReshardingTask` into a
:class:`CommPlan`: a list of communication ops plus (optionally) a unit-
task schedule.  The plan has two interpreters:

* the **timing interpreter** (:mod:`repro.core.executor`) maps ops onto
  the flow simulator's primitives and reports simulated latency;
* the **data interpreter** (:mod:`repro.core.data`) moves real NumPy
  buffers between simulated devices and verifies every destination
  device ends up with exactly its required tile.

Op kinds:

``SendOp``
    sender delivers the exact ``region`` to one receiver.
``BroadcastOp``
    sender delivers the full ``region`` to every receiver (ring
    broadcast with ``n_chunks`` pipeline chunks); receivers crop.
``ScatterOp``
    region's elements (row-major flattened) are split into
    ``len(receivers)`` near-equal flat parts; part ``k`` goes to
    ``receivers[k]``.
``AllGatherOp``
    the group devices, each holding flat part ``k`` of ``region``
    (from a prior ScatterOp, named via ``deps``), exchange parts so all
    of them hold the full region.
``MulticastOp``
    sender delivers the full ``region`` to every receiver via switch
    replication: one upstream traversal of the named ``switch`` per
    chunk, replicated downstream to each receiving host concurrently.
    Requires a topology whose switch spans sender and receivers;
    receivers crop like BroadcastOp.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..scheduling.problem import Schedule
from .slices import Region
from .task import ReshardingTask

__all__ = [
    "CommOp",
    "SendOp",
    "BroadcastOp",
    "ScatterOp",
    "AllGatherOp",
    "MulticastOp",
    "FallbackRecord",
    "CommPlan",
    "slice_checksum",
]


def slice_checksum(task: ReshardingTask, op: CommOp) -> str:
    """Content fingerprint of the slice ``op`` moves (16 hex chars).

    Derived from stable plan content only — tensor shape/dtype, the op's
    kind, region, and id — never from wall-clock or process state, so
    recompiling the same task yields the identical stamp and replays
    verify byte-identically.  In a real deployment this would be a CRC
    of the payload; in the simulator the *presence* of the stamp is what
    matters: it marks the op as end-to-end verifiable.
    """
    key = repr((
        tuple(task.shape),
        str(task.dtype),
        type(op).__name__,
        op.op_id,
        op.region,
        op.nbytes,
    ))
    return hashlib.sha256(key.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class FallbackRecord:
    """A failure-aware deviation a strategy took while compiling the plan.

    E.g. the scheduler assigned unit task ``unit_task_id`` to sender
    host ``from_host``, but that host's NIC was down at plan time, so
    the broadcast was re-rooted onto surviving replica host ``to_host``.
    """

    unit_task_id: int
    from_host: int
    to_host: int
    reason: str


@dataclass(frozen=True)
class CommOp:
    """Base communication op.

    ``deps`` are op ids that must complete before this op starts (data
    dependencies within a composite, e.g. scatter before all-gather).
    ``unit_task_id`` ties the op to the unit communication task it
    implements, used for schedule gating; ``-1`` means ungated.

    ``checksum`` is a per-slice content fingerprint stamped by the
    compiler's emit pass (:func:`repro.core.plan.slice_checksum`): the
    receiver-side end-to-end check that turns gray corruption
    (:class:`repro.sim.faults.CorruptionWindow`) from silent data loss
    into a detected, reportable fault.  Empty string means "unstamped"
    (hand-built plans); the verifier treats corruption of an unstamped
    op as *undetectable* and refuses to certify the plan.
    """

    op_id: int
    unit_task_id: int
    region: Region
    nbytes: float
    deps: tuple[int, ...] = ()
    checksum: str = ""


@dataclass(frozen=True)
class SendOp(CommOp):
    sender: int = -1
    receiver: int = -1


@dataclass(frozen=True)
class BroadcastOp(CommOp):
    sender: int = -1
    receivers: tuple[int, ...] = ()
    n_chunks: int = 64


@dataclass(frozen=True)
class ScatterOp(CommOp):
    sender: int = -1
    receivers: tuple[int, ...] = ()


@dataclass(frozen=True)
class AllGatherOp(CommOp):
    devices: tuple[int, ...] = ()


@dataclass(frozen=True)
class MulticastOp(CommOp):
    sender: int = -1
    receivers: tuple[int, ...] = ()
    #: topology switch carrying the replicated send (must span all hosts)
    switch: str = ""
    n_chunks: int = 16


@dataclass
class CommPlan:
    """A compiled cross-mesh resharding plan."""

    task: ReshardingTask
    strategy: str
    ops: list[CommOp] = field(default_factory=list)
    #: unit-task schedule (assignment + order); None means "launch all"
    schedule: Optional[Schedule] = None
    #: False when the plan does not actually move the tensor (signal)
    data_complete: bool = True
    #: unit-task decomposition the op unit_task_ids refer to
    granularity: str = "intersection"
    #: failure-aware deviations taken at plan time (e.g. re-rooted senders)
    fallbacks: list[FallbackRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._ops_index: Optional[dict[int, list[CommOp]]] = None
        self._indexed: tuple[int, int] = (-1, -1)

    def add(self, op: CommOp) -> CommOp:
        if op.op_id != len(self.ops):
            raise ValueError(
                f"op_id {op.op_id} out of sequence (expected {len(self.ops)})"
            )
        for d in op.deps:
            if not 0 <= d < len(self.ops):
                raise ValueError(f"dep {d} references unknown op")
        self.ops.append(op)
        return op

    @property
    def next_op_id(self) -> int:
        return len(self.ops)

    def ops_by_task(self) -> dict[int, list[CommOp]]:
        """``unit_task_id -> ops`` index, built once per plan revision.

        The index is rebuilt when the ops list was appended to (or
        swapped out) since the last build; both interpreters walk every
        unit task, so the old per-call linear scan made ``ops_of_task``
        O(n·m) overall.
        """
        key = (len(self.ops), id(self.ops))
        if self._ops_index is None or self._indexed != key:
            index: dict[int, list[CommOp]] = {}
            for op in self.ops:
                index.setdefault(op.unit_task_id, []).append(op)
            self._ops_index = index
            self._indexed = key
        return self._ops_index

    def ops_of_task(self, unit_task_id: int) -> list[CommOp]:
        return list(self.ops_by_task().get(unit_task_id, ()))

    def total_bytes(self) -> float:
        """Sum of bytes injected by each op (broadcast counts once per hop
        at execution time; here we count the op's payload once)."""
        return sum(op.nbytes for op in self.ops)

    def __repr__(self) -> str:
        kinds: dict[str, int] = {}
        for op in self.ops:
            kinds[type(op).__name__] = kinds.get(type(op).__name__, 0) + 1
        return f"CommPlan({self.strategy}, ops={kinds})"
