"""Intra-mesh resharding: layout conversion within one device mesh.

The paper's background (§2.1, Figure 1b): when an operator's required
input layout disagrees with a tensor's current layout *on the same
mesh*, a conversion is needed.  Unlike cross-mesh resharding, the
participating devices overlap, so three things change:

* a destination device that already holds (part of) its new tile reuses
  it locally at zero cost;
* the conversion maps onto classic collectives — ``S -> R`` along a mesh
  axis is an all-gather within each replica group, ``R -> S`` is a free
  local slice, and shard-axis swaps become all-to-all-like exchanges;
* NVLink carries most traffic when the mesh axis stays inside a host.

This module compiles the conversion with the same CommPlan IR used for
cross-mesh resharding, choosing, per unit region, the cheapest holder
(same device > same host > remote) and broadcast for multi-receiver
regions.  The plan runs on both interpreters: the flow simulator for
timing and the NumPy data plane for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..sim.network import Network
from ..strategies.broadcast import adaptive_chunks
from .data import apply_plan
from .executor import TimingResult, simulate_plan
from .mesh import DeviceMesh
from .plan import BroadcastOp, CommPlan, SendOp
from .slices import region_intersection
from .task import ReshardingTask
from .tensor import DistributedTensor

__all__ = ["plan_intra_mesh", "intra_mesh_reshard", "IntraReshardResult"]


def plan_intra_mesh(
    shape,
    mesh: DeviceMesh,
    src_spec,
    dst_spec,
    dtype=np.float32,
) -> CommPlan:
    """Compile the layout conversion ``src_spec -> dst_spec`` on ``mesh``.

    Unit regions come from the overlap grid of the two layouts.  For
    each region, destination devices that already hold it are dropped;
    the remaining receivers are served by one broadcast (or a plain send
    when there is a single receiver) rooted at the closest holder.
    """
    task = ReshardingTask(
        shape, mesh, src_spec, mesh, dst_spec, dtype=dtype, require_disjoint=False
    )
    plan = CommPlan(task=task, strategy="intra_mesh")
    cluster = mesh.cluster
    def emit(ut, sender: int, receivers: tuple[int, ...]) -> None:
        if len(receivers) == 1:
            plan.add(
                SendOp(
                    op_id=plan.next_op_id,
                    unit_task_id=ut.task_id,
                    region=ut.region,
                    nbytes=ut.nbytes,
                    sender=sender,
                    receiver=receivers[0],
                )
            )
        else:
            plan.add(
                BroadcastOp(
                    op_id=plan.next_op_id,
                    unit_task_id=ut.task_id,
                    region=ut.region,
                    nbytes=ut.nbytes,
                    sender=sender,
                    receivers=receivers,
                    n_chunks=adaptive_chunks(ut.nbytes),
                )
            )

    for ut in task.unit_tasks("intersection"):
        receivers = tuple(
            d
            for d in ut.receivers
            if region_intersection(task.src_grid.device_region(d), ut.region)
            != ut.region
        )
        if not receivers:
            continue  # every consumer already holds the region locally
        # Hosts that hold a replica serve their own receivers over NVLink;
        # the rest share one broadcast from a single chosen holder.
        senders_by_host: dict[int, list[int]] = {}
        for s in ut.senders:
            senders_by_host.setdefault(cluster.host_of(s), []).append(s)
        remote: list[int] = []
        for h in sorted({cluster.host_of(d) for d in receivers}):
            local_recv = tuple(d for d in receivers if cluster.host_of(d) == h)
            if h in senders_by_host:
                emit(ut, min(senders_by_host[h]), local_recv)
            else:
                remote.extend(local_recv)
        if remote:
            sender = min(ut.senders, key=lambda s: (cluster.host_of(s), s))
            emit(ut, sender, tuple(remote))
    return plan


@dataclass
class IntraReshardResult:
    """Outcome of one intra-mesh layout conversion."""

    task: ReshardingTask
    plan: CommPlan
    timing: TimingResult
    dst_tensor: Optional[DistributedTensor] = None

    @property
    def latency(self) -> float:
        return self.timing.total_time

    @property
    def is_free(self) -> bool:
        """True when the conversion needed no communication at all."""
        return not self.plan.ops


def intra_mesh_reshard(
    tensor_or_shape: Union[np.ndarray, tuple],
    mesh: DeviceMesh,
    src_spec,
    dst_spec,
    dtype=np.float32,
    network: Optional[Network] = None,
) -> IntraReshardResult:
    """Convert a tensor's layout on one mesh; time it and optionally
    move real data (when given an array)."""
    if isinstance(tensor_or_shape, np.ndarray):
        array: Optional[np.ndarray] = tensor_or_shape
        shape = array.shape
        dtype = array.dtype
    else:
        array = None
        shape = tuple(tensor_or_shape)
    plan = plan_intra_mesh(shape, mesh, src_spec, dst_spec, dtype=dtype)
    timing = simulate_plan(plan, network=network)
    dst_tensor = None
    if array is not None:
        src_tensor = DistributedTensor.from_global(mesh, plan.task.src_spec, array)
        dst_tensor = apply_plan(plan, src_tensor)
    return IntraReshardResult(
        task=plan.task, plan=plan, timing=timing, dst_tensor=dst_tensor
    )
