"""Timing interpreter: run a CommPlan on the flow-level network simulator.

Ops map onto the timed primitives of :mod:`repro.sim.primitives`.  When
the plan carries a schedule, unit tasks are *gated*: task ``i`` may only
start once every earlier-ordered task sharing one of its hosts has
finished — the executable form of the paper's Eq. 3 non-overlap
constraint.  Ungated plans (the baselines) launch everything at once and
let max-min fair bandwidth sharing model the resulting congestion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime.telemetry import TelemetryBus
from ..sim.faults import FaultReport, FaultSchedule, RetryPolicy
from ..sim.network import Network
from ..sim.primitives import (
    CollectiveHandle,
    p2p,
    ring_allgather,
    ring_broadcast,
    ring_order,
    scatter,
    switch_multicast,
)
from .plan import (
    AllGatherOp,
    BroadcastOp,
    CommOp,
    CommPlan,
    MulticastOp,
    ScatterOp,
    SendOp,
)

__all__ = ["TimingResult", "simulate_plan"]


@dataclass
class TimingResult:
    """Outcome of simulating one communication plan.

    Under fault injection ``fault_report`` summarizes what struck and
    whether the plan recovered; ``failed_ops`` lists ops whose transfers
    were abandoned (their data never fully arrived).  ``blocked_tasks``
    lists unit tasks gated (via the schedule's host ordering) behind a
    task whose ops *all* failed: their host queue was wedged, so their
    own apparent completion is vacuous — they are dropped from
    ``task_finish`` and their ops counted as failed.

    Gray corruption splits on detectability: ``corrupted_ops`` are ops
    whose delivery carried bad bytes *and* whose per-slice checksum
    (stamped at emission) caught it — the report escalates to fatal, a
    loud failure.  ``unverified_corruption`` are corrupted ops with no
    checksum (hand-built plans): nothing in-band can see the damage, so
    the report is *not* escalated here — instead
    :func:`repro.core.verify_data.verify_delivery` refuses to certify
    any plan with unverified corruption, which keeps the failure from
    ever being silent.
    """

    total_time: float
    op_finish: dict[int, float]
    task_finish: dict[int, float]
    bytes_cross_host: float
    bytes_intra_host: float
    network: Network = field(repr=False)
    fault_report: Optional[FaultReport] = None
    failed_ops: tuple[int, ...] = ()
    blocked_tasks: tuple[int, ...] = ()
    corrupted_ops: tuple[int, ...] = ()
    unverified_corruption: tuple[int, ...] = ()

    @property
    def makespan(self) -> float:
        return self.total_time

    @property
    def completed(self) -> bool:
        """True when every op delivered its payload intact."""
        return not self.failed_ops and not self.corrupted_ops

    @property
    def telemetry(self) -> "TelemetryBus":
        """The run's span stream (op/task/flow records) on the network's bus."""
        return self.network.bus


def _launch_op(network: Network, op: CommOp) -> CollectiveHandle:
    if isinstance(op, SendOp):
        return p2p(network, op.sender, op.receiver, op.nbytes, tag=f"op{op.op_id}")
    if isinstance(op, BroadcastOp):
        return ring_broadcast(
            network,
            op.sender,
            op.receivers,
            op.nbytes,
            n_chunks=op.n_chunks,
            tag=f"op{op.op_id}",
        )
    if isinstance(op, MulticastOp):
        return switch_multicast(
            network,
            op.sender,
            op.receivers,
            op.nbytes,
            switch=op.switch,
            n_chunks=op.n_chunks,
            tag=f"op{op.op_id}",
        )
    if isinstance(op, ScatterOp):
        return scatter(network, op.sender, op.receivers, op.nbytes, tag=f"op{op.op_id}")
    if isinstance(op, AllGatherOp):
        group = ring_order(network.cluster, op.devices[0], op.devices)
        shard = op.nbytes / len(op.devices)
        return ring_allgather(network, group, shard, tag=f"op{op.op_id}")
    raise TypeError(f"unknown op type {type(op).__name__}")


def simulate_plan(
    plan: CommPlan,
    network: Optional[Network] = None,
    respect_schedule: bool = True,
    faults: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> TimingResult:
    """Simulate ``plan``; returns latency and traffic statistics.

    Pass ``faults`` (and optionally ``retry_policy``) to run the plan on
    a lossy network; transfers are retried per the policy and the result
    carries a :class:`~repro.sim.faults.FaultReport`.  An op whose
    collective is abandoned is recorded in ``failed_ops`` instead of
    deadlocking the simulation.
    """
    if network is not None and faults is not None:
        raise ValueError("pass faults via the Network, not alongside one")
    net = (
        network
        if network is not None
        else Network(plan.task.cluster, faults=faults, retry_policy=retry_policy)
    )
    base_cross = net.bytes_cross_host
    base_intra = net.bytes_intra_host

    bus = net.bus

    op_finish: dict[int, float] = {}
    task_finish: dict[int, float] = {}
    op_done: set[int] = set()
    launched: set[int] = set()
    failed_ops: set[int] = set()
    op_launch: dict[int, float] = {}
    task_release: dict[int, float] = {}

    # ---- schedule gating -------------------------------------------------
    # For each unit task, `task_preds[tid]` is the set of earlier-ordered
    # tasks that share a host with it; it may start when all preds finish.
    schedule = plan.schedule if respect_schedule else None
    task_ops: dict[int, list[CommOp]] = plan.ops_by_task()
    tasks_pending_ops = {tid: len(ops) for tid, ops in task_ops.items()}

    task_preds: dict[int, set[int]] = {tid: set() for tid in task_ops}
    task_succs: dict[int, set[int]] = {tid: set() for tid in task_ops}
    released: set[int] = set()
    if schedule is not None:
        ut_by_id = {ut.task_id: ut for ut in plan.task.unit_tasks(plan.granularity)}
        last_on_host: dict[int, int] = {}
        for tid in schedule.order:
            if tid not in task_ops:
                continue  # task had no receivers / no ops
            ut = ut_by_id[tid]
            hosts = set(plan.task.receiver_hosts(ut))
            hosts.add(schedule.assignment[tid])
            for h in sorted(hosts):
                if h in last_on_host:
                    prev = last_on_host[h]
                    if prev != tid:
                        task_preds[tid].add(prev)
                        task_succs[prev].add(tid)
                last_on_host[h] = tid

    def op_ready(op: CommOp) -> bool:
        return (
            op.op_id not in launched
            and all(d in op_done for d in op.deps)
            and (op.unit_task_id == -1 or op.unit_task_id in released)
        )

    def on_op_done(op: CommOp, handle: CollectiveHandle) -> None:
        op_done.add(op.op_id)
        op_finish[op.op_id] = handle.finish_time
        if handle.failed:
            failed_ops.add(op.op_id)
        tid = op.unit_task_id
        bus.emit_span(
            f"op{op.op_id}",
            cat="op",
            track="plan" if tid == -1 else f"task:{tid}",
            start=op_launch.get(op.op_id, handle.finish_time),
            end=handle.finish_time,
            op_id=op.op_id,
            task=tid,
            kind=type(op).__name__,
            status="failed" if handle.failed else "ok",
        )
        if tid in tasks_pending_ops:
            tasks_pending_ops[tid] -= 1
            if tasks_pending_ops[tid] == 0:
                task_finish[tid] = handle.finish_time
                bus.emit_span(
                    f"task{tid}",
                    cat="task",
                    track=f"task:{tid}",
                    start=task_release.get(tid, 0.0),
                    end=handle.finish_time,
                    task=tid,
                )
                for succ in task_succs.get(tid, ()):
                    maybe_release(succ)
        # Same-task ops with deps may now be ready.
        for nxt in task_ops.get(tid, ()):
            if op_ready(nxt):
                launch(nxt)

    def launch(op: CommOp) -> None:
        launched.add(op.op_id)
        op_launch[op.op_id] = net.loop.now
        if isinstance(op, (BroadcastOp, MulticastOp)) and not op.receivers:
            on_op_done(op, _immediate(net))
            return
        handle = _launch_op(net, op)
        handle.add_done_callback(lambda h, op=op: on_op_done(op, h))

    def maybe_release(tid: int) -> None:
        if tid in released:
            return
        if all(p in task_finish for p in task_preds.get(tid, ())):
            released.add(tid)
            task_release[tid] = net.loop.now
            for op in task_ops.get(tid, ()):
                if op_ready(op):
                    launch(op)

    # Release roots.
    for tid in list(task_ops):
        if tid == -1:
            released.add(tid)
            task_release[tid] = net.loop.now
            for op in task_ops[tid]:
                if op_ready(op):
                    launch(op)
        else:
            maybe_release(tid)

    net.run()

    missing = [op.op_id for op in plan.ops if op.op_id not in op_done]
    if missing and net.faults is None:
        raise RuntimeError(
            f"plan deadlocked: ops never completed: {missing[:10]}"
            + ("..." if len(missing) > 10 else "")
        )
    # Under faults a missing op means its collective died without even
    # reporting (should not happen — abandonment aborts the handle), or
    # it was gated behind a failed op; treat both as failed, not hung.
    failed_ops.update(missing)

    # A task whose ops ALL failed wedged its host queues: the tasks
    # ordered behind it (transitively) ran against a broken ordering
    # guarantee, so their completion is vacuous.  Mark them blocked,
    # drop their (meaningless) finish times, and fail their ops.
    blocked: set[int] = set()
    if failed_ops:
        fully_failed = {
            tid
            for tid, ops in task_ops.items()
            if tid != -1 and ops and all(op.op_id in failed_ops for op in ops)
        }
        frontier = list(fully_failed)
        while frontier:
            tid = frontier.pop()
            for succ in task_succs.get(tid, ()):
                if succ not in blocked and succ not in fully_failed:
                    blocked.add(succ)
                    frontier.append(succ)
        for tid in sorted(blocked):
            task_finish.pop(tid, None)
            failed_ops.update(op.op_id for op in task_ops.get(tid, ()))

    # Gray corruption: join the network's corrupted deliveries against
    # the plan's ops.  An op with a checksum detects the bad bytes
    # (receiver-side verify) — loud failure.  An op without one cannot;
    # it is recorded separately and verify_data refuses to certify it.
    corrupted_ops: set[int] = set()
    unverified: set[int] = set()
    if net.faults is not None and net.corrupted_flows:
        hit_tags = sorted({tag for tag, _ in net.corrupted_flows})
        for op in plan.ops:
            base = f"op{op.op_id}"
            if base in hit_tags or any(
                t.startswith(base + ":") for t in hit_tags
            ):
                (corrupted_ops if op.checksum else unverified).add(op.op_id)

    report = net.fault_report()
    if report is not None and failed_ops:
        detail = f"{len(failed_ops)} op(s) did not deliver: " + ", ".join(
            str(i) for i in sorted(failed_ops)[:10]
        )
        if blocked:
            detail += f"; {len(blocked)} task(s) blocked behind failed tasks"
        report.escalate(detail)
    if report is not None and corrupted_ops:
        report.escalate(
            f"checksum mismatch on {len(corrupted_ops)} op(s): "
            + ", ".join(str(i) for i in sorted(corrupted_ops)[:10])
        )
    total = max(op_finish.values(), default=0.0)
    return TimingResult(
        total_time=total,
        op_finish=op_finish,
        task_finish=task_finish,
        bytes_cross_host=net.bytes_cross_host - base_cross,
        bytes_intra_host=net.bytes_intra_host - base_intra,
        network=net,
        fault_report=report,
        failed_ops=tuple(sorted(failed_ops)),
        blocked_tasks=tuple(sorted(blocked)),
        corrupted_ops=tuple(sorted(corrupted_ops)),
        unverified_corruption=tuple(sorted(unverified)),
    )


def _immediate(net: Network) -> CollectiveHandle:
    h = CollectiveHandle(net, "noop")
    h._seal()
    return h
