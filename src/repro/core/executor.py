"""Timing interpreter: run a CommPlan on the flow-level network simulator.

Ops map onto the timed primitives of :mod:`repro.sim.primitives`.  When
the plan carries a schedule, unit tasks are *gated*: task ``i`` may only
start once every earlier-ordered task sharing one of its hosts has
finished — the executable form of the paper's Eq. 3 non-overlap
constraint.  Ungated plans (the baselines) launch everything at once and
let max-min fair bandwidth sharing model the resulting congestion.

The interpreter is a :class:`PlanRunner` object (not a closure nest) so
its execution state — which ops finished, which tasks released, where
simulated time stands — is *inspectable and restorable*.  That is what
makes incremental re-simulation possible: :mod:`repro.compiler.resim`
snapshots a runner at quiescent task boundaries and resumes a later
plan that shares the same schedule prefix from the snapshot instead of
re-running it from zero.  :func:`simulate_plan` remains the one-call
façade and behaves exactly as it always did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..runtime.telemetry import TelemetryBus
from ..sim.faults import FaultReport, FaultSchedule, RetryPolicy
from ..sim.network import Network
from .buffers import op_host_buffers
from ..sim.primitives import (
    CollectiveHandle,
    p2p,
    ring_allgather,
    ring_broadcast,
    ring_order,
    scatter,
    switch_multicast,
)
from .plan import (
    AllGatherOp,
    BroadcastOp,
    CommOp,
    CommPlan,
    MulticastOp,
    ScatterOp,
    SendOp,
)

__all__ = ["TimingResult", "PlanRunner", "simulate_plan"]


@dataclass
class TimingResult:
    """Outcome of simulating one communication plan.

    Under fault injection ``fault_report`` summarizes what struck and
    whether the plan recovered; ``failed_ops`` lists ops whose transfers
    were abandoned (their data never fully arrived).  ``blocked_tasks``
    lists unit tasks gated (via the schedule's host ordering) behind a
    task whose ops *all* failed: their host queue was wedged, so their
    own apparent completion is vacuous — they are dropped from
    ``task_finish`` and their ops counted as failed.

    Gray corruption splits on detectability: ``corrupted_ops`` are ops
    whose delivery carried bad bytes *and* whose per-slice checksum
    (stamped at emission) caught it — the report escalates to fatal, a
    loud failure.  ``unverified_corruption`` are corrupted ops with no
    checksum (hand-built plans): nothing in-band can see the damage, so
    the report is *not* escalated here — instead
    :func:`repro.core.verify_data.verify_delivery` refuses to certify
    any plan with unverified corruption, which keeps the failure from
    ever being silent.
    """

    total_time: float
    op_finish: dict[int, float]
    task_finish: dict[int, float]
    bytes_cross_host: float
    bytes_intra_host: float
    network: Network = field(repr=False)
    fault_report: Optional[FaultReport] = None
    failed_ops: tuple[int, ...] = ()
    blocked_tasks: tuple[int, ...] = ()
    corrupted_ops: tuple[int, ...] = ()
    unverified_corruption: tuple[int, ...] = ()
    #: per-host transient-buffer high-water marks (bytes), from the
    #: runner's accounting — the ground truth the static analyzer's
    #: bound (:mod:`repro.analysis.memory_analysis`) must dominate
    host_peak_buffers: dict[int, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.total_time

    @property
    def completed(self) -> bool:
        """True when every op delivered its payload intact."""
        return not self.failed_ops and not self.corrupted_ops

    @property
    def telemetry(self) -> "TelemetryBus":
        """The run's span stream (op/task/flow records) on the network's bus."""
        return self.network.bus


def _launch_op(network: Network, op: CommOp) -> CollectiveHandle:
    if isinstance(op, SendOp):
        return p2p(network, op.sender, op.receiver, op.nbytes, tag=f"op{op.op_id}")
    if isinstance(op, BroadcastOp):
        return ring_broadcast(
            network,
            op.sender,
            op.receivers,
            op.nbytes,
            n_chunks=op.n_chunks,
            tag=f"op{op.op_id}",
        )
    if isinstance(op, MulticastOp):
        return switch_multicast(
            network,
            op.sender,
            op.receivers,
            op.nbytes,
            switch=op.switch,
            n_chunks=op.n_chunks,
            tag=f"op{op.op_id}",
        )
    if isinstance(op, ScatterOp):
        return scatter(network, op.sender, op.receivers, op.nbytes, tag=f"op{op.op_id}")
    if isinstance(op, AllGatherOp):
        group = ring_order(network.cluster, op.devices[0], op.devices)
        shard = op.nbytes / len(op.devices)
        return ring_allgather(network, group, shard, tag=f"op{op.op_id}")
    raise TypeError(f"unknown op type {type(op).__name__}")


class PlanRunner:
    """Resumable plan interpreter: gating graph + run state + driver.

    ``on_task_done(tid)`` (when given) fires at the instant unit task
    ``tid`` finishes — after its task span is emitted, *before* any
    successor task is released.  When that instant is a quiescent
    barrier cut (no active flows, no pending events, every released
    task finished), :mod:`repro.compiler.resim` snapshots the runner's
    state there.  All of ``op_finish`` / ``task_finish`` /
    ``op_done`` / ``launched`` / ``released`` / ``task_release`` /
    ``op_launch`` / ``tasks_pending_ops`` are plain containers a
    snapshot can copy and a resume can preload before calling
    :meth:`run`.
    """

    def __init__(
        self,
        plan: CommPlan,
        network: Optional[Network] = None,
        respect_schedule: bool = True,
        faults: Optional[FaultSchedule] = None,
        retry_policy: Optional[RetryPolicy] = None,
        on_task_done: Optional[Callable[[int], None]] = None,
        track_buffers: bool = False,
    ) -> None:
        if network is not None and faults is not None:
            raise ValueError("pass faults via the Network, not alongside one")
        self.plan = plan
        self.net = (
            network
            if network is not None
            else Network(plan.task.cluster, faults=faults, retry_policy=retry_policy)
        )
        self.base_cross = self.net.bytes_cross_host
        self.base_intra = self.net.bytes_intra_host
        self.on_task_done = on_task_done
        #: emit ``buffer_bytes`` gauges per host on the telemetry bus.
        #: Opt-in: gauge samples enter the bus digest, so tracking must
        #: not change the byte-identity of existing runs.  The plain
        #: dict accounting below is always on (it never touches the bus).
        self.track_buffers = track_buffers

        # ---- run state (copyable by checkpoints, preloadable on resume)
        self.op_finish: dict[int, float] = {}
        self.task_finish: dict[int, float] = {}
        self.op_done: set[int] = set()
        self.launched: set[int] = set()
        self.failed_ops: set[int] = set()
        self.op_launch: dict[int, float] = {}
        self.task_release: dict[int, float] = {}
        self.released: set[int] = set()
        #: live transient buffer bytes per host (charged at op launch,
        #: released at op completion — see :mod:`repro.core.buffers`)
        self.host_live: dict[int, float] = {}
        #: per-host high-water mark of ``host_live``
        self.host_peak: dict[int, float] = {}

        # ---- schedule gating ---------------------------------------------
        # For each unit task, `task_preds[tid]` is the set of earlier-ordered
        # tasks that share a host with it; it may start when all preds finish.
        schedule = plan.schedule if respect_schedule else None
        self.task_ops: dict[int, list[CommOp]] = plan.ops_by_task()
        self.tasks_pending_ops = {tid: len(ops) for tid, ops in self.task_ops.items()}

        self.task_preds: dict[int, set[int]] = {tid: set() for tid in self.task_ops}
        self.task_succs: dict[int, set[int]] = {tid: set() for tid in self.task_ops}
        if schedule is not None:
            ut_by_id = {ut.task_id: ut for ut in plan.task.unit_tasks(plan.granularity)}
            last_on_host: dict[int, int] = {}
            for tid in schedule.order:
                if tid not in self.task_ops:
                    continue  # task had no receivers / no ops
                ut = ut_by_id[tid]
                hosts = set(plan.task.receiver_hosts(ut))
                hosts.add(schedule.assignment[tid])
                for h in sorted(hosts):
                    if h in last_on_host:
                        prev = last_on_host[h]
                        if prev != tid:
                            self.task_preds[tid].add(prev)
                            self.task_succs[prev].add(tid)
                    last_on_host[h] = tid

    # ------------------------------------------------------------------
    # Execution machinery
    # ------------------------------------------------------------------
    def op_ready(self, op: CommOp) -> bool:
        return (
            op.op_id not in self.launched
            and all(d in self.op_done for d in op.deps)
            and (op.unit_task_id == -1 or op.unit_task_id in self.released)
        )

    # ------------------------------------------------------------------
    # Buffer accounting (the runtime side of the soundness invariant)
    # ------------------------------------------------------------------
    def _buffer_charge(self, op: CommOp) -> None:
        """Charge the op's transient buffers; called at launch."""
        for host, nbytes in sorted(op_host_buffers(self.net.cluster, op).items()):
            live = self.host_live.get(host, 0.0) + nbytes
            self.host_live[host] = live
            if live > self.host_peak.get(host, 0.0):
                self.host_peak[host] = live
            if self.track_buffers:
                self.net.bus.gauge("buffer_bytes", f"host{host}").add(
                    nbytes, at=self.net.loop.now
                )

    def _buffer_release(self, op: CommOp, at: float) -> None:
        """Release the op's buffers; called when the op completes.

        Runs *before* any dependent op or gated successor task launches,
        so a handoff at one instant never double-counts on the peak.
        """
        for host, nbytes in sorted(op_host_buffers(self.net.cluster, op).items()):
            self.host_live[host] = self.host_live.get(host, 0.0) - nbytes
            if self.track_buffers:
                self.net.bus.gauge("buffer_bytes", f"host{host}").add(
                    -nbytes, at=at
                )

    def on_op_done(self, op: CommOp, handle: CollectiveHandle) -> None:
        self._buffer_release(op, handle.finish_time)
        self.op_done.add(op.op_id)
        self.op_finish[op.op_id] = handle.finish_time
        if handle.failed:
            self.failed_ops.add(op.op_id)
        tid = op.unit_task_id
        bus = self.net.bus
        bus.emit_span(
            f"op{op.op_id}",
            cat="op",
            track="plan" if tid == -1 else f"task:{tid}",
            start=self.op_launch.get(op.op_id, handle.finish_time),
            end=handle.finish_time,
            op_id=op.op_id,
            task=tid,
            kind=type(op).__name__,
            status="failed" if handle.failed else "ok",
        )
        if tid in self.tasks_pending_ops:
            self.tasks_pending_ops[tid] -= 1
            if self.tasks_pending_ops[tid] == 0:
                self.task_finish[tid] = handle.finish_time
                bus.emit_span(
                    f"task{tid}",
                    cat="task",
                    track=f"task:{tid}",
                    start=self.task_release.get(tid, 0.0),
                    end=handle.finish_time,
                    task=tid,
                )
                if self.on_task_done is not None:
                    self.on_task_done(tid)
                # Sorted: successor release order decides flow-id and
                # event order when several tasks unblock at once, so it
                # must be reproducible by a checkpoint resume (resim).
                for succ in sorted(self.task_succs.get(tid, ())):
                    self.maybe_release(succ)
        # Same-task ops with deps may now be ready.
        for nxt in self.task_ops.get(tid, ()):
            if self.op_ready(nxt):
                self.launch(nxt)

    def launch(self, op: CommOp) -> None:
        self.launched.add(op.op_id)
        self.op_launch[op.op_id] = self.net.loop.now
        self._buffer_charge(op)
        if isinstance(op, (BroadcastOp, MulticastOp)) and not op.receivers:
            self.on_op_done(op, _immediate(self.net))
            return
        handle = _launch_op(self.net, op)
        handle.add_done_callback(lambda h, op=op: self.on_op_done(op, h))

    def maybe_release(self, tid: int) -> None:
        if tid in self.released:
            return
        if all(p in self.task_finish for p in self.task_preds.get(tid, ())):
            self.released.add(tid)
            self.task_release[tid] = self.net.loop.now
            for op in self.task_ops.get(tid, ()):
                if self.op_ready(op):
                    self.launch(op)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self) -> TimingResult:
        """Release every startable task, drain the loop, build the result.

        On a fresh runner this is the full simulation.  On a runner
        whose state was preloaded from a checkpoint, already-released
        tasks are skipped and the first unfinished task (whose
        predecessors all finished in the restored prefix) launches at
        the restored simulated time — the suffix replays exactly as the
        cold run would have run it.
        """
        net = self.net
        for tid in list(self.task_ops):
            if tid == -1:
                if -1 not in self.released:
                    self.released.add(-1)
                    self.task_release[-1] = net.loop.now
                for op in self.task_ops[-1]:
                    if self.op_ready(op):
                        self.launch(op)
            else:
                self.maybe_release(tid)

        net.run()

        plan = self.plan
        missing = [op.op_id for op in plan.ops if op.op_id not in self.op_done]
        if missing and net.faults is None:
            raise RuntimeError(
                f"plan deadlocked: ops never completed: {missing[:10]}"
                + ("..." if len(missing) > 10 else "")
            )
        # Under faults a missing op means its collective died without even
        # reporting (should not happen — abandonment aborts the handle), or
        # it was gated behind a failed op; treat both as failed, not hung.
        failed_ops = self.failed_ops
        failed_ops.update(missing)

        # A task whose ops ALL failed wedged its host queues: the tasks
        # ordered behind it (transitively) ran against a broken ordering
        # guarantee, so their completion is vacuous.  Mark them blocked,
        # drop their (meaningless) finish times, and fail their ops.
        blocked: set[int] = set()
        if failed_ops:
            fully_failed = {
                tid
                for tid, ops in self.task_ops.items()
                if tid != -1 and ops and all(op.op_id in failed_ops for op in ops)
            }
            frontier = list(fully_failed)
            while frontier:
                tid = frontier.pop()
                for succ in self.task_succs.get(tid, ()):
                    if succ not in blocked and succ not in fully_failed:
                        blocked.add(succ)
                        frontier.append(succ)
            for tid in sorted(blocked):
                self.task_finish.pop(tid, None)
                failed_ops.update(op.op_id for op in self.task_ops.get(tid, ()))

        # Gray corruption: join the network's corrupted deliveries against
        # the plan's ops.  An op with a checksum detects the bad bytes
        # (receiver-side verify) — loud failure.  An op without one cannot;
        # it is recorded separately and verify_data refuses to certify it.
        corrupted_ops: set[int] = set()
        unverified: set[int] = set()
        if net.faults is not None and net.corrupted_flows:
            hit_tags = sorted({tag for tag, _ in net.corrupted_flows})
            for op in plan.ops:
                base = f"op{op.op_id}"
                if base in hit_tags or any(
                    t.startswith(base + ":") for t in hit_tags
                ):
                    (corrupted_ops if op.checksum else unverified).add(op.op_id)

        report = net.fault_report()
        if report is not None and failed_ops:
            detail = f"{len(failed_ops)} op(s) did not deliver: " + ", ".join(
                str(i) for i in sorted(failed_ops)[:10]
            )
            if blocked:
                detail += f"; {len(blocked)} task(s) blocked behind failed tasks"
            report.escalate(detail)
        if report is not None and corrupted_ops:
            report.escalate(
                f"checksum mismatch on {len(corrupted_ops)} op(s): "
                + ", ".join(str(i) for i in sorted(corrupted_ops)[:10])
            )
        total = max(self.op_finish.values(), default=0.0)
        return TimingResult(
            total_time=total,
            op_finish=self.op_finish,
            task_finish=self.task_finish,
            bytes_cross_host=net.bytes_cross_host - self.base_cross,
            bytes_intra_host=net.bytes_intra_host - self.base_intra,
            network=net,
            fault_report=report,
            failed_ops=tuple(sorted(failed_ops)),
            blocked_tasks=tuple(sorted(blocked)),
            corrupted_ops=tuple(sorted(corrupted_ops)),
            unverified_corruption=tuple(sorted(unverified)),
            host_peak_buffers=dict(self.host_peak),
        )


def simulate_plan(
    plan: CommPlan,
    network: Optional[Network] = None,
    respect_schedule: bool = True,
    faults: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
    track_buffers: bool = False,
) -> TimingResult:
    """Simulate ``plan``; returns latency and traffic statistics.

    Pass ``faults`` (and optionally ``retry_policy``) to run the plan on
    a lossy network; transfers are retried per the policy and the result
    carries a :class:`~repro.sim.faults.FaultReport`.  An op whose
    collective is abandoned is recorded in ``failed_ops`` instead of
    deadlocking the simulation.  ``track_buffers=True`` additionally
    emits per-host ``buffer_bytes`` gauges on the telemetry bus (the
    result's ``host_peak_buffers`` high-water marks are recorded either
    way; only the gauge stream — and hence the bus digest — is opt-in).
    """
    return PlanRunner(
        plan,
        network=network,
        respect_schedule=respect_schedule,
        faults=faults,
        retry_policy=retry_policy,
        track_buffers=track_buffers,
    ).run()


def _immediate(net: Network) -> CollectiveHandle:
    h = CollectiveHandle(net, "noop")
    h._seal()
    return h
