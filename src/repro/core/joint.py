"""Joint planning of several cross-mesh resharding tasks.

A pipeline-stage boundary often carries *several* tensors per
micro-batch (the U-Transformer sends the sequential activation plus
every long skip).  Planning each tensor separately leaves bandwidth on
the table: their unit communication tasks contend for the same host
NICs, so the §3.2 load-balance/ordering problem should be solved over
the union.  This module builds one combined scheduling problem across
all tensors, runs the ensemble scheduler once, and simulates all plans
under a single global gating — the "collectively optimize all cross-mesh
resharding tasks" framing of the paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..scheduling import SCHEDULERS, Schedule, SchedTask, SchedulingProblem
from ..sim.network import Network
from ..strategies.base import LoadTracker
from ..strategies.broadcast import adaptive_chunks
from .executor import CollectiveHandle, _launch_op
from .plan import BroadcastOp, CommPlan
from .task import ReshardingTask

__all__ = ["JointTimingResult", "plan_joint_broadcast", "simulate_joint", "reshard_boundary"]


def _combined_problem(
    tasks: Sequence[ReshardingTask], granularity: str = "intersection"
) -> tuple[SchedulingProblem, list[tuple[int, int]]]:
    """Union of all tensors' unit tasks under globally unique ids.

    Returns the problem plus ``key[global_id] = (tensor_idx, local_id)``.
    """
    sched_tasks: list[SchedTask] = []
    key: list[tuple[int, int]] = []
    for ti, rt in enumerate(tasks):
        sub = SchedulingProblem.from_resharding(rt, granularity=granularity)
        for st in sub.tasks:
            gid = len(key)
            key.append((ti, st.task_id))
            sched_tasks.append(
                SchedTask(
                    task_id=gid,
                    sender_host_options=st.sender_host_options,
                    receiver_hosts=st.receiver_hosts,
                    duration_by_host=st.duration_by_host,
                    n_devices=st.n_devices,
                )
            )
    return SchedulingProblem(sched_tasks), key


def plan_joint_broadcast(
    tasks: Sequence[ReshardingTask],
    scheduler: str = "ensemble",
    granularity: str = "intersection",
) -> tuple[list[CommPlan], Schedule, list[tuple[int, int]]]:
    """Broadcast plans for all tensors under one global schedule."""
    if not tasks:
        raise ValueError("need at least one resharding task")
    cluster = tasks[0].cluster
    for rt in tasks:
        if rt.cluster is not cluster:
            raise ValueError("all tasks must share one cluster")
    if scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}")
    problem, key = _combined_problem(tasks, granularity)
    schedule = SCHEDULERS[scheduler](problem)
    load = LoadTracker(cluster)
    plans = [CommPlan(task=rt, strategy="broadcast", granularity=granularity)
             for rt in tasks]
    for gid, (ti, local) in enumerate(key):
        rt, plan = tasks[ti], plans[ti]
        ut = rt.unit_tasks(granularity)[local]
        if not ut.receivers:
            continue
        host = schedule.assignment[gid]
        sender = load.pick_on_host(ut.senders, host, ut.nbytes)
        plan.add(
            BroadcastOp(
                op_id=plan.next_op_id,
                unit_task_id=local,
                region=ut.region,
                nbytes=ut.nbytes,
                sender=sender,
                receivers=ut.receivers,
                n_chunks=adaptive_chunks(ut.nbytes),
            )
        )
    return plans, schedule, key


@dataclass
class JointTimingResult:
    total_time: float
    per_tensor_finish: list[float]
    bytes_cross_host: float
    network: Network


def simulate_joint(
    plans: Sequence[CommPlan],
    schedule: Schedule,
    key: Sequence[tuple[int, int]],
    network: Optional[Network] = None,
) -> JointTimingResult:
    """Simulate several plans under one global schedule gating.

    Gating follows the executor's Eq. 3 semantics, with per-host
    program order derived from the *global* schedule order.
    """
    if not plans:
        raise ValueError("need at least one plan")
    net = network if network is not None else Network(plans[0].task.cluster)
    base_cross = net.bytes_cross_host

    # global id -> op (joint broadcast plans have one op per unit task)
    ops: dict[int, BroadcastOp] = {}
    hosts_of: dict[int, set[int]] = {}
    local_to_gid = {pair: gid for gid, pair in enumerate(key)}
    for ti, plan in enumerate(plans):
        for op in plan.ops:
            gid = local_to_gid[(ti, op.unit_task_id)]
            ops[gid] = op
            ut = plan.task.unit_tasks(plan.granularity)[op.unit_task_id]
            h = set(plan.task.receiver_hosts(ut))
            h.add(schedule.assignment[gid])
            hosts_of[gid] = h

    preds: dict[int, set[int]] = {g: set() for g in ops}
    succs: dict[int, set[int]] = {g: set() for g in ops}
    last_on_host: dict[int, int] = {}
    for gid in schedule.order:
        if gid not in ops:
            continue
        for h in hosts_of[gid]:
            if h in last_on_host and last_on_host[h] != gid:
                preds[gid].add(last_on_host[h])
                succs[last_on_host[h]].add(gid)
            last_on_host[h] = gid

    finish: dict[int, float] = {}
    tensor_pending = [len(p.ops) for p in plans]
    tensor_finish = [0.0] * len(plans)
    gid_tensor = {local_to_gid[(ti, op.unit_task_id)]: ti
                  for ti, plan in enumerate(plans) for op in plan.ops}

    def on_done(gid: int, handle: CollectiveHandle) -> None:
        finish[gid] = handle.finish_time
        ti = gid_tensor[gid]
        tensor_pending[ti] -= 1
        if tensor_pending[ti] == 0:
            tensor_finish[ti] = handle.finish_time
        for s in succs[gid]:
            maybe_launch(s)

    launched: set[int] = set()

    def maybe_launch(gid: int) -> None:
        if gid in launched or any(p not in finish for p in preds[gid]):
            return
        launched.add(gid)
        handle = _launch_op(net, ops[gid])
        handle.add_done_callback(lambda h, g=gid: on_done(g, h))

    for gid in ops:
        maybe_launch(gid)
    net.run()
    missing = [g for g in ops if g not in finish]
    if missing:
        raise RuntimeError(f"joint simulation deadlocked on tasks {missing[:5]}")
    return JointTimingResult(
        total_time=max(finish.values(), default=0.0),
        per_tensor_finish=tensor_finish,
        bytes_cross_host=net.bytes_cross_host - base_cross,
        network=net,
    )


def reshard_boundary(
    tasks: Sequence[ReshardingTask],
    scheduler: str = "ensemble",
) -> JointTimingResult:
    """Plan and simulate a multi-tensor boundary in one shot."""
    plans, schedule, key = plan_joint_broadcast(tasks, scheduler=scheduler)
    return simulate_joint(plans, schedule, key)
