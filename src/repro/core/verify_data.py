"""Execution-aware data-plane integrity verification.

:func:`verify_plan_coverage` (in :mod:`repro.core.validate`) proves a
plan *would* deliver everything if every op succeeded.  This module
closes the remaining gap for faulted runs: given the plan **and** the
timing outcome of actually executing it (which ops delivered, which were
abandoned after retries, which were blocked behind wedged host queues),
it symbolically tracks which source slices each destination device
*actually received* and fails loudly on any gap or overlap.

Because every sender is checked against the source tile grid (a replica
must genuinely hold the region it claims to send), two deliveries of
the same element are value-identical by construction whenever both
senders are authoritative — so "overlap" here means *duplicated
delivery*, which the strict mode (used by the recovery runtime to
certify restored state) treats as an error just like a gap: a correct
recovery reshard delivers every element of every destination tile
exactly once.

Broadcast re-roots (``CommPlan.fallbacks``) need no special casing: the
re-rooted op names its actual sender, which the authority check covers;
retries are invisible at this level because the network either delivered
the full payload (possibly after retries) or abandoned the op, and
abandonment shows up in ``TimingResult.failed_ops``.

**Gray corruption** (:class:`repro.sim.faults.CorruptionWindow`) is the
one fault the timing layer cannot surface on its own: the flow completed
on time, the bytes are just wrong.  The verifier closes that hole with a
hard never-silent rule.  A corrupted op whose checksum caught it
(``TimingResult.corrupted_ops``) had its payload *discarded* by the
receiver, so it is credited with **no** delivery — if no duplicate
replica delivery covers the same tile, the gap fails certification
exactly like an abandoned transfer.  A corrupted op *without* a
checksum (``unverified_corruption``, possible only for hand-built plans
that skipped the compiler's emit stamping) means bad bytes were applied
and nothing in-band could know: the report is never certified, and
under ``raise_on_error`` it raises before anything else — "maybe-bad
data certified as good" is the one outcome this module exists to
prevent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .plan import AllGatherOp, BroadcastOp, CommPlan, MulticastOp, ScatterOp, SendOp
from .slices import Region, region_intersection, region_shape, region_size, split_offsets

__all__ = ["IntegrityError", "IntegrityReport", "verify_delivery"]


class IntegrityError(RuntimeError):
    """The executed plan did not deliver exactly the required data."""


@dataclass
class IntegrityReport:
    """Outcome of verifying one executed (or hypothetical) plan.

    ``gaps`` / ``duplicates`` map destination device id to the number of
    elements of its tile that arrived zero / more-than-one times.  A
    report is *certified* when every destination tile was covered
    exactly once — no missing and no duplicated slices.
    """

    n_ops: int
    n_ops_failed: int
    n_devices: int
    gaps: dict[int, int] = field(default_factory=dict)
    duplicates: dict[int, int] = field(default_factory=dict)
    #: ops the verifier refused to credit (e.g. all-gather missing parts)
    discredited_ops: tuple[int, ...] = ()
    #: plan-time re-roots that were honoured (from ``CommPlan.fallbacks``)
    n_fallbacks: int = 0
    #: flows the network delivered only after retrying (when known)
    n_retried_flows: int = 0
    #: ops whose delivery was corrupted and *detected* by checksum
    #: (payload discarded, no delivery credit)
    corrupted_ops: tuple[int, ...] = ()
    #: corrupted ops with no checksum: undetectable in-band, never
    #: certifiable
    unverifiable_ops: tuple[int, ...] = ()

    @property
    def certified(self) -> bool:
        return (
            not self.gaps
            and not self.duplicates
            and not self.unverifiable_ops
        )

    def __repr__(self) -> str:
        state = "certified" if self.certified else (
            f"gaps={self.gaps} duplicates={self.duplicates}"
        )
        return (
            f"IntegrityReport({state}, ops={self.n_ops}, "
            f"failed={self.n_ops_failed}, devices={self.n_devices})"
        )


def _sender_is_authoritative(plan: CommPlan, sender: int, region: Region) -> bool:
    task = plan.task
    if sender not in task.src_mesh.devices:
        return False
    holder = task.src_grid.device_region(sender)
    return region_intersection(holder, region) == region


def verify_delivery(
    plan: CommPlan,
    timing=None,
    strict: bool = True,
    raise_on_error: bool = True,
) -> IntegrityReport:
    """Certify that the executed plan delivered every tile exactly once.

    ``timing`` is the :class:`~repro.core.executor.TimingResult` of
    running the plan; ops listed in its ``failed_ops`` (abandoned
    transfers, or tasks blocked behind wedged host queues) are credited
    with **no** delivery — a partially received broadcast is unusable.
    With ``timing=None`` the plan is assumed fully executed (the purely
    static check, equivalent in strength to ``verify_plan_coverage``
    plus duplicate detection).

    ``strict`` also fails duplicated deliveries (exact-once cover, the
    bar the recovery runtime certifies restored state against); with
    ``strict=False`` duplicates are still *reported* but do not raise —
    appropriate for replica-delivery strategies whose receivers crop.
    """
    task = plan.task
    corrupted: tuple[int, ...] = (
        tuple(timing.corrupted_ops) if timing is not None else ()
    )
    unverifiable: tuple[int, ...] = (
        tuple(timing.unverified_corruption) if timing is not None else ()
    )
    # Detected corruption = discarded payload = no delivery credit.
    failed: frozenset[int] = frozenset(
        (timing.failed_ops if timing is not None else ())
    ) | frozenset(corrupted)
    # Elements delivered per destination device, as (region, count).
    delivered: dict[int, list[Region]] = {d: [] for d in task.dst_mesh.devices}
    # Flat scatter parts per (device, region): list of (lo, hi).
    flat: dict[tuple[int, Region], list[tuple[int, int]]] = {}
    discredited: list[int] = []

    for op in plan.ops:
        if op.op_id in failed:
            continue
        if isinstance(op, SendOp):
            if not _sender_is_authoritative(plan, op.sender, op.region):
                discredited.append(op.op_id)
                continue
            if op.receiver in delivered:
                delivered[op.receiver].append(op.region)
        elif isinstance(op, (BroadcastOp, MulticastOp)):
            if not _sender_is_authoritative(plan, op.sender, op.region):
                discredited.append(op.op_id)
                continue
            for r in op.receivers:
                if r in delivered:
                    delivered[r].append(op.region)
        elif isinstance(op, ScatterOp):
            if not _sender_is_authoritative(plan, op.sender, op.region):
                discredited.append(op.op_id)
                continue
            offs = split_offsets(region_size(op.region), len(op.receivers))
            for k, r in enumerate(op.receivers):
                flat.setdefault((r, op.region), []).append((offs[k], offs[k + 1]))
        elif isinstance(op, AllGatherOp):
            # The group can reconstruct the region only if the parts its
            # members actually hold cover the flattened region entirely.
            size = region_size(op.region)
            covered = np.zeros(size, dtype=bool)
            for dev in op.devices:
                for lo, hi in flat.get((dev, op.region), ()):
                    covered[lo:hi] = True
            if not covered.all():
                discredited.append(op.op_id)
                continue
            for dev in op.devices:
                if dev in delivered:
                    delivered[dev].append(op.region)
        else:
            raise IntegrityError(f"unknown op type {type(op).__name__}")

    # Count per-element arrivals on each destination tile.
    gaps: dict[int, int] = {}
    duplicates: dict[int, int] = {}
    intra = set(task.src_mesh.devices) & set(task.dst_mesh.devices)
    for dev in task.dst_mesh.devices:
        want = task.dst_grid.device_region(dev)
        counts = np.zeros(region_shape(want), dtype=np.int32)
        regions = list(delivered[dev])
        if dev in intra:
            # Intra-mesh plans: the device reuses its local source shard.
            regions.append(task.src_grid.device_region(dev))
        for region in regions:
            inter = region_intersection(region, want)
            if inter is None:
                continue
            sl = tuple(
                slice(i0 - w0, i1 - w0) for (i0, i1), (w0, _) in zip(inter, want)
            )
            counts[sl] += 1
        n_missing = int((counts == 0).sum())
        n_dup = int((counts > 1).sum())
        if n_missing:
            gaps[dev] = n_missing
        if n_dup:
            duplicates[dev] = n_dup

    report = IntegrityReport(
        n_ops=len(plan.ops),
        n_ops_failed=len(failed),
        n_devices=len(delivered),
        gaps=gaps,
        duplicates=duplicates,
        discredited_ops=tuple(discredited),
        n_fallbacks=len(plan.fallbacks),
        n_retried_flows=(
            sum(1 for r in timing.network.trace if r.status == "retried")
            if timing is not None
            else 0
        ),
        corrupted_ops=corrupted,
        unverifiable_ops=unverifiable,
    )
    if raise_on_error:
        if report.unverifiable_ops:
            raise IntegrityError(
                f"silent corruption possible: op(s) "
                f"{list(report.unverifiable_ops)[:8]} delivered corrupted "
                f"bytes but carry no checksum — delivery integrity cannot "
                f"be certified"
            )
        if report.gaps:
            raise IntegrityError(
                f"missing data on {len(report.gaps)} device(s): "
                + ", ".join(
                    f"d{d}:{n}el" for d, n in sorted(report.gaps.items())[:8]
                )
            )
        if strict and report.duplicates:
            raise IntegrityError(
                f"duplicated deliveries on {len(report.duplicates)} device(s): "
                + ", ".join(
                    f"d{d}:{n}el" for d, n in sorted(report.duplicates.items())[:8]
                )
            )
    return report
