"""Data interpreter: execute a CommPlan on real NumPy shards.

The same plan the timing interpreter simulates is replayed here as
actual byte movement between device buffers, so tests can assert that a
strategy's plan reconstructs the destination layout exactly.  Semantics
per op kind are documented in :mod:`repro.core.plan`.

Receivers stage pieces as they arrive; at the end each destination
device assembles its required tile from the staged full-region pieces
and the assembly is verified for complete coverage and replica
consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .plan import AllGatherOp, BroadcastOp, CommPlan, MulticastOp, ScatterOp, SendOp
from .slices import (
    Region,
    region_intersection,
    region_shape,
    region_size,
    split_offsets,
)
from .tensor import DistributedTensor, read_region

__all__ = ["apply_plan", "DataPlaneError"]


class DataPlaneError(RuntimeError):
    """A plan failed to move the data it claimed to move."""


@dataclass
class _RegionPiece:
    region: Region
    data: np.ndarray  # shaped like the region


@dataclass
class _FlatPiece:
    region: Region
    lo: int  # element offsets into the region's row-major flattening
    hi: int
    data: np.ndarray  # 1-D


def _read_from_source(src: DistributedTensor, device: int, region: Region) -> np.ndarray:
    if device not in src.shards:
        raise DataPlaneError(f"sender {device} is not a source-mesh device")
    tile_region = src.device_region(device)
    try:
        return read_region(src.shards[device], tile_region, region)
    except ValueError as e:
        raise DataPlaneError(
            f"sender {device} does not hold region {region}: {e}"
        ) from e


def apply_plan(plan: CommPlan, src: DistributedTensor) -> DistributedTensor:
    """Execute the plan's data movement; return the destination tensor."""
    task = plan.task
    if not plan.data_complete:
        raise DataPlaneError(
            f"plan of strategy {plan.strategy!r} does not carry data "
            "(data_complete=False)"
        )
    if src.mesh is not task.src_mesh and src.mesh != task.src_mesh:
        raise DataPlaneError("source tensor mesh does not match the task")
    if src.spec != task.src_spec or src.shape != task.shape:
        raise DataPlaneError("source tensor layout does not match the task")

    region_pieces: dict[int, list[_RegionPiece]] = {}
    flat_pieces: dict[int, list[_FlatPiece]] = {}

    def stage_region(device: int, region: Region, data: np.ndarray) -> None:
        region_pieces.setdefault(device, []).append(_RegionPiece(region, data))

    done: set[int] = set()
    for op in plan.ops:
        for d in op.deps:
            if d not in done:
                raise DataPlaneError(
                    f"op {op.op_id} executed before its dependency {d}"
                )
        if isinstance(op, SendOp):
            data = _read_from_source(src, op.sender, op.region)
            stage_region(op.receiver, op.region, data)
        elif isinstance(op, (BroadcastOp, MulticastOp)):
            data = _read_from_source(src, op.sender, op.region)
            for r in op.receivers:
                stage_region(r, op.region, data)
        elif isinstance(op, ScatterOp):
            data = _read_from_source(src, op.sender, op.region).reshape(-1)
            offs = split_offsets(region_size(op.region), len(op.receivers))
            for k, r in enumerate(op.receivers):
                flat_pieces.setdefault(r, []).append(
                    _FlatPiece(op.region, offs[k], offs[k + 1], data[offs[k] : offs[k + 1]])
                )
        elif isinstance(op, AllGatherOp):
            # Collect every member's flat parts of this region and check
            # they cover it entirely, then hand everyone the full region.
            size = region_size(op.region)
            full = np.empty(size, dtype=src.dtype)
            covered = np.zeros(size, dtype=bool)
            for dev in op.devices:
                for p in flat_pieces.get(dev, []):
                    if p.region != op.region:
                        continue
                    full[p.lo : p.hi] = p.data
                    covered[p.lo : p.hi] = True
            if not covered.all():
                raise DataPlaneError(
                    f"all-gather op {op.op_id}: parts cover only "
                    f"{int(covered.sum())}/{size} elements of {op.region}"
                )
            shaped = full.reshape(region_shape(op.region))
            for dev in op.devices:
                stage_region(dev, op.region, shaped)
        else:
            raise DataPlaneError(f"unknown op type {type(op).__name__}")
        done.add(op.op_id)

    # ------------------------------------------------------------------
    # Assemble each destination device's tile from its staged pieces.
    # ------------------------------------------------------------------
    shards: dict[int, np.ndarray] = {}
    for dev in task.dst_mesh.devices:
        want = task.dst_grid.device_region(dev)
        tile = np.empty(region_shape(want), dtype=src.dtype)
        covered = np.zeros(region_shape(want), dtype=bool)
        pieces = list(region_pieces.get(dev, []))
        if dev in src.shards:
            # Intra-mesh resharding: the device reuses its local shard.
            pieces.append(_RegionPiece(src.device_region(dev), src.shards[dev]))
        for p in pieces:
            inter = region_intersection(p.region, want)
            if inter is None:
                continue
            dst_sl = tuple(
                slice(i0 - w0, i1 - w0) for (i0, i1), (w0, _) in zip(inter, want)
            )
            src_sl = tuple(
                slice(i0 - p0, i1 - p0) for (i0, i1), (p0, _) in zip(inter, p.region)
            )
            piece = p.data[src_sl]
            if covered[dst_sl].any() and not np.array_equal(tile[dst_sl], piece):
                overlap_ok = np.where(covered[dst_sl], tile[dst_sl] == piece, True)
                if not overlap_ok.all():
                    raise DataPlaneError(
                        f"device {dev}: conflicting data for {inter}"
                    )
            tile[dst_sl] = piece
            covered[dst_sl] = True
        if not covered.all():
            missing = int((~covered).sum())
            raise DataPlaneError(
                f"device {dev}: tile {want} missing {missing} elements "
                f"after plan execution (strategy {plan.strategy!r})"
            )
        shards[dev] = tile
    return DistributedTensor(
        task.dst_mesh, task.dst_spec, task.shape, shards, dtype=src.dtype
    )
