"""Logical device meshes over a simulated cluster.

Following GSPMD/Alpa (paper §2.2), a *device mesh* is a 2-D logical view
``(m1, m2)`` of a group of physical devices.  A cluster of 2 nodes with 2
GPUs each can be viewed as a ``(2, 2)`` mesh ``[[0, 1], [2, 3]]`` or as a
``(1, 4)`` mesh ``[[0, 1, 2, 3]]``.  The mesh does not have to align with
host boundaries; host locality is recovered through the cluster.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..sim.cluster import Cluster

__all__ = ["DeviceMesh"]


class DeviceMesh:
    """A 2-D logical arrangement of distinct cluster devices."""

    def __init__(self, cluster: Cluster, device_grid: Sequence[Sequence[int]]) -> None:
        if not device_grid or not device_grid[0]:
            raise ValueError("device grid must be non-empty")
        width = len(device_grid[0])
        if any(len(row) != width for row in device_grid):
            raise ValueError("device grid rows must have equal length")
        flat = [int(d) for row in device_grid for d in row]
        if len(set(flat)) != len(flat):
            raise ValueError(f"duplicate devices in mesh: {flat}")
        for d in flat:
            cluster.device(d)  # raises KeyError on unknown device
        self.cluster = cluster
        self.grid: tuple[tuple[int, ...], ...] = tuple(
            tuple(int(d) for d in row) for row in device_grid
        )
        self.shape: tuple[int, int] = (len(self.grid), width)
        self._coords = {
            self.grid[i][j]: (i, j)
            for i in range(self.shape[0])
            for j in range(self.shape[1])
        }

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_hosts(
        cls,
        cluster: Cluster,
        host_ids: Iterable[int],
        devices_per_host: Optional[int] = None,
    ) -> "DeviceMesh":
        """Mesh with one row per host (the Alpa convention).

        ``devices_per_host`` selects the first N devices of each host;
        defaults to all of them.
        """
        hosts = list(host_ids)
        if not hosts:
            raise ValueError("need at least one host")
        dph = (
            cluster.spec.devices_per_host
            if devices_per_host is None
            else devices_per_host
        )
        if not 1 <= dph <= cluster.spec.devices_per_host:
            raise ValueError(
                f"devices_per_host={dph} outside [1, {cluster.spec.devices_per_host}]"
            )
        grid = [
            [cluster.hosts[h].devices[i].device_id for i in range(dph)] for h in hosts
        ]
        return cls(cluster, grid)

    def reshaped(self, m1: int, m2: int) -> "DeviceMesh":
        """Reinterpret the same devices (row-major) as an ``(m1, m2)`` mesh."""
        flat = [d for row in self.grid for d in row]
        if m1 * m2 != len(flat):
            raise ValueError(
                f"cannot reshape {len(flat)} devices into ({m1}, {m2})"
            )
        grid = [flat[i * m2 : (i + 1) * m2] for i in range(m1)]
        return DeviceMesh(self.cluster, grid)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def devices(self) -> tuple[int, ...]:
        """All device ids, row-major."""
        return tuple(d for row in self.grid for d in row)

    @property
    def n_devices(self) -> int:
        return self.shape[0] * self.shape[1]

    @property
    def hosts(self) -> tuple[int, ...]:
        """Host ids spanned by the mesh, ascending."""
        return tuple(sorted({self.cluster.host_of(d) for d in self.devices}))

    def device_at(self, i: int, j: int) -> int:
        return self.grid[i][j]

    def coords_of(self, device_id: int) -> tuple[int, int]:
        try:
            return self._coords[device_id]
        except KeyError:
            raise KeyError(f"device {device_id} not in mesh") from None

    def host_of(self, device_id: int) -> int:
        if device_id not in self._coords:
            raise KeyError(f"device {device_id} not in mesh")
        return self.cluster.host_of(device_id)

    def disjoint_from(self, other: "DeviceMesh") -> bool:
        """True when the two meshes share no device (cross-mesh setting)."""
        return not set(self.devices) & set(other.devices)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DeviceMesh)
            and self.grid == other.grid
            and self.cluster is other.cluster
        )

    def __hash__(self) -> int:
        return hash((id(self.cluster), self.grid))

    def __repr__(self) -> str:
        return f"DeviceMesh{self.shape}{list(map(list, self.grid))}"
