"""Interleaved 1F1B with virtual pipeline stages (Megatron-style).

An extension beyond the paper: each physical stage hosts ``v`` model
*chunks* (virtual stages); chunk ``c`` of ``V = p*v`` lives on physical
stage ``c mod p``.  Interleaving shrinks the pipeline bubble from
``(p-1)/m`` to ``(p-1)/(m*v)`` at the price of ``v`` times as many
cross-mesh transfers — which makes it an interesting stress test for
the paper's communication optimizations: the more chunk boundaries, the
more there is for broadcast + overlap to hide.

The schedule follows Megatron-LM's interleaved 1F1B: warm-up depth
``(p - rank - 1) * 2 + (v - 1) * p`` forward steps, then one-forward-
one-backward, with micro-batches processed in groups of ``p``.
Communication is always overlapped (channel per directed stage pair);
the blocking mode of the plain executor is deliberately not offered —
interleaving exists to create overlap opportunities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.events import EventLoop

__all__ = [
    "ChunkTask",
    "InterleavedJob",
    "InterleavedResult",
    "interleaved_order",
    "simulate_interleaved",
]


@dataclass(frozen=True)
class ChunkTask:
    """One compute step: forward or backward of (chunk, microbatch)."""

    kind: str  # "F" | "B"
    microbatch: int
    chunk: int

    def __repr__(self) -> str:
        return f"{self.kind}{self.microbatch}c{self.chunk}"


@dataclass(frozen=True)
class InterleavedJob:
    """A homogeneous interleaved pipeline job.

    Per-chunk compute costs and a uniform boundary transfer cost (the
    homogeneous-transformer case; chunk boundaries all carry the same
    activation tensor).
    """

    n_stages: int
    n_virtual: int
    n_microbatches: int
    fwd_time: float  # per chunk per micro-batch
    bwd_time: float
    comm_fwd: float  # per chunk-boundary transfer
    comm_bwd: float
    activation_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.n_stages < 1 or self.n_virtual < 1:
            raise ValueError("need at least one stage and one chunk")
        if self.n_microbatches < 1:
            raise ValueError("need at least one micro-batch")
        if self.n_microbatches % self.n_stages != 0:
            raise ValueError(
                "interleaved 1F1B needs micro-batches divisible by the "
                f"number of stages ({self.n_microbatches} % {self.n_stages})"
            )
        if min(self.fwd_time, self.bwd_time, self.comm_fwd, self.comm_bwd) < 0:
            raise ValueError("times must be non-negative")

    @property
    def n_chunks(self) -> int:
        return self.n_stages * self.n_virtual

    def stage_of(self, chunk: int) -> int:
        return chunk % self.n_stages


def interleaved_order(job: InterleavedJob, rank: int) -> list[ChunkTask]:
    """Megatron's interleaved 1F1B step order for one physical stage."""
    p, v, m = job.n_stages, job.n_virtual, job.n_microbatches
    if not 0 <= rank < p:
        raise ValueError(f"rank {rank} outside [0, {p})")
    total = m * v

    def f_task(step: int) -> ChunkTask:
        chunk_local = (step // p) % v
        mb = (step // (p * v)) * p + step % p
        return ChunkTask("F", mb, chunk_local * p + rank)

    def b_task(step: int) -> ChunkTask:
        chunk_local = v - 1 - ((step // p) % v)
        mb = (step // (p * v)) * p + step % p
        return ChunkTask("B", mb, chunk_local * p + rank)

    warmup = min(total, (p - rank - 1) * 2 + (v - 1) * p)
    order: list[ChunkTask] = [f_task(s) for s in range(warmup)]
    fstep, bstep = warmup, 0
    while fstep < total:
        order.append(f_task(fstep))
        fstep += 1
        order.append(b_task(bstep))
        bstep += 1
    while bstep < total:
        order.append(b_task(bstep))
        bstep += 1
    return order


@dataclass
class InterleavedResult:
    iteration_time: float
    timeline: list[tuple[int, ChunkTask, float, float]]  # (stage, task, start, end)
    peak_activation_counts: dict[int, int]
    job: InterleavedJob = field(repr=False)

    def bubble_fraction(self) -> float:
        """Idle fraction of the busiest stage."""
        busy = {}
        for stage, _t, start, end in self.timeline:
            busy[stage] = busy.get(stage, 0.0) + (end - start)
        return 1.0 - max(busy.values()) / self.iteration_time


def simulate_interleaved(job: InterleavedJob) -> InterleavedResult:
    """Event-driven execution of the interleaved schedule (overlapped).

    Dependencies: ``F(c, mb)`` waits for the activation of chunk
    ``c-1``; ``B(c, mb)`` for the gradient from chunk ``c+1``; the last
    chunk's backward starts from its own forward.  Transfers occupy a
    FIFO channel per (src stage, dst stage, direction).
    """
    loop = EventLoop()
    p = job.n_stages
    orders = [interleaved_order(job, r) for r in range(p)]

    idx = [0] * p
    running = [False] * p
    arrived: set[tuple[str, int, int]] = set()  # (kind, chunk, microbatch)
    timeline: list[tuple[int, ChunkTask, float, float]] = []
    act = dict.fromkeys(range(p), 0)
    peak = dict.fromkeys(range(p), 0)
    channel_free: dict[tuple[int, int, str], float] = {}
    done: set[tuple[str, int, int]] = set()

    def deps_met(t: ChunkTask) -> bool:
        if t.kind == "F":
            return t.chunk == 0 or ("F", t.chunk, t.microbatch) in arrived
        if t.chunk == job.n_chunks - 1:
            return ("F", t.chunk, t.microbatch) in done
        return ("B", t.chunk, t.microbatch) in arrived

    def send(kind: str, src_chunk: int, mb: int) -> None:
        """Transfer the produced tensor to the neighbouring chunk."""
        if kind == "F":
            dst_chunk = src_chunk + 1
            if dst_chunk >= job.n_chunks:
                return
            dur, direction = job.comm_fwd, "fwd"
            key_kind = "F"
        else:
            dst_chunk = src_chunk - 1
            if dst_chunk < 0:
                return
            dur, direction = job.comm_bwd, "bwd"
            key_kind = "B"
        src_stage, dst_stage = job.stage_of(src_chunk), job.stage_of(dst_chunk)
        ch = (src_stage, dst_stage, direction)
        start = max(loop.now, channel_free.get(ch, 0.0))
        end = start + dur
        channel_free[ch] = end

        def deliver(kk=key_kind, dc=dst_chunk, mb=mb, ds=dst_stage) -> None:
            arrived.add((kk, dc, mb))
            try_start(ds)

        loop.call_at(end, deliver)

    def on_complete(stage: int, t: ChunkTask, start: float) -> None:
        timeline.append((stage, t, start, loop.now))
        done.add((t.kind, t.chunk, t.microbatch))
        if t.kind == "F":
            act[stage] += 1
            peak[stage] = max(peak[stage], act[stage])
        else:
            act[stage] -= 1
        running[stage] = False
        idx[stage] += 1
        send(t.kind, t.chunk, t.microbatch)
        try_start(stage)

    def try_start(stage: int) -> None:
        if running[stage] or idx[stage] >= len(orders[stage]):
            return
        t = orders[stage][idx[stage]]
        if not deps_met(t):
            return
        running[stage] = True
        start = loop.now
        dur = job.fwd_time if t.kind == "F" else job.bwd_time
        loop.call_after(dur, lambda: on_complete(stage, t, start))

    for s in range(p):
        try_start(s)
    loop.run()

    stuck = [s for s in range(p) if idx[s] < len(orders[s])]
    if stuck:
        detail = {s: repr(orders[s][idx[s]]) for s in stuck}
        raise RuntimeError(f"interleaved schedule deadlocked at {detail}")
    return InterleavedResult(
        iteration_time=max((end for _s, _t, _a, end in timeline), default=0.0),
        timeline=timeline,
        peak_activation_counts=peak,
        job=job,
    )
